//! Criterion bench P1a — CAS generation speed: scheme enumeration,
//! gate-level synthesis, and VHDL emission across Table-1 geometries
//! (the paper's generator tool, measured).

use casbus::{CasGeometry, SchemeSet};
use casbus_netlist::synth;
use casbus_rtl::vhdl;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheme_enumeration");
    for (n, p) in [(4usize, 2usize), (6, 3), (6, 5), (8, 4)] {
        let geometry = CasGeometry::new(n, p).expect("valid");
        group.bench_with_input(
            BenchmarkId::new("enumerate", format!("n{n}p{p}")),
            &geometry,
            |b, g| {
                b.iter(|| SchemeSet::enumerate(black_box(*g)).expect("in budget"));
            },
        );
    }
    group.finish();
}

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("cas_synthesis");
    for (n, p) in [(4usize, 2usize), (6, 3), (8, 4)] {
        let set = SchemeSet::enumerate(CasGeometry::new(n, p).expect("valid")).expect("in budget");
        group.bench_with_input(
            BenchmarkId::new("synthesize", format!("n{n}p{p}")),
            &set,
            |b, s| {
                b.iter(|| synth::synthesize_cas(black_box(s)));
            },
        );
    }
    group.finish();
}

fn bench_vhdl(c: &mut Criterion) {
    let mut group = c.benchmark_group("vhdl_generation");
    for (n, p) in [(4usize, 2usize), (6, 3), (8, 4)] {
        let set = SchemeSet::enumerate(CasGeometry::new(n, p).expect("valid")).expect("in budget");
        group.bench_with_input(
            BenchmarkId::new("generate", format!("n{n}p{p}")),
            &set,
            |b, s| {
                b.iter(|| vhdl::generate_vhdl(black_box(s)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_enumeration, bench_synthesis, bench_vhdl);
criterion_main!(benches);
