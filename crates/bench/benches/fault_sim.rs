//! Criterion bench P1c — stuck-at fault simulation over synthesized CAS
//! netlists (grading the testability of the test infrastructure itself).

use casbus::{CasGeometry, SchemeSet};
use casbus_netlist::{fault, synth};
use casbus_tpg::BitVec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn sequences(inputs: usize, count: usize, depth: usize) -> Vec<Vec<BitVec>> {
    // Deterministic pseudo-random multi-cycle sequences.
    let mut state = 0x1234_5678_9abc_def0u64;
    (0..count)
        .map(|_| {
            (0..depth)
                .map(|_| {
                    (0..inputs)
                        .map(|_| {
                            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                            state >> 62 & 1 == 1
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn bench_fault_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_simulation");
    group.sample_size(10);
    for (n, p) in [(3usize, 1usize), (4, 2)] {
        let set = SchemeSet::enumerate(CasGeometry::new(n, p).expect("valid")).expect("in budget");
        let netlist = synth::synthesize_cas(&set);
        let inputs = 2 + n + p;
        let seqs = sequences(inputs, 8, 6);
        group.bench_with_input(
            BenchmarkId::new("cas", format!("n{n}p{p}")),
            &(netlist, seqs),
            |b, (nl, seqs)| {
                b.iter(|| fault::fault_simulate(black_box(nl), black_box(seqs)).expect("valid"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fault_sim);
criterion_main!(benches);
