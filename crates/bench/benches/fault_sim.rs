//! Criterion bench P1c — stuck-at fault simulation over synthesized CAS
//! netlists (grading the testability of the test infrastructure itself).
//!
//! Each Table-1 size is graded twice: `packed` is the default bit-parallel
//! PPSFP engine ([`fault::fault_simulate`]), `serial` the one-fault-at-a-time
//! reference ([`fault::fault_simulate_serial`]). Both produce bit-identical
//! coverage, so the ratio is a pure engine speedup. The larger sizes use a
//! reduced pattern budget to keep the serial baseline measurable; the
//! `fault_sim_speedup` binary records the same comparison machine-readably.

use casbus::{CasGeometry, SchemeSet};
use casbus_netlist::{fault, synth};
use casbus_tpg::BitVec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn sequences(inputs: usize, count: usize, depth: usize) -> Vec<Vec<BitVec>> {
    // Deterministic pseudo-random multi-cycle sequences.
    let mut state = 0x1234_5678_9abc_def0u64;
    (0..count)
        .map(|_| {
            (0..depth)
                .map(|_| {
                    (0..inputs)
                        .map(|_| {
                            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                            state >> 62 & 1 == 1
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn bench_fault_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_simulation");
    group.sample_size(10);
    // (n, p, sequence count, cycles per sequence) — the largest size gets a
    // reduced pattern budget so the serial baseline finishes in bench time.
    for (n, p, count, depth) in [
        (3usize, 1usize, 8, 6),
        (4, 2, 8, 6),
        (6, 3, 8, 6),
        (8, 4, 2, 3),
    ] {
        let set = SchemeSet::enumerate(CasGeometry::new(n, p).expect("valid")).expect("in budget");
        let netlist = synth::synthesize_cas(&set);
        let inputs = 2 + n + p;
        let seqs = sequences(inputs, count, depth);
        group.bench_with_input(
            BenchmarkId::new("packed", format!("n{n}p{p}")),
            &(&netlist, &seqs),
            |b, (nl, seqs)| {
                b.iter(|| fault::fault_simulate(black_box(nl), black_box(seqs)).expect("valid"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("serial", format!("n{n}p{p}")),
            &(&netlist, &seqs),
            |b, (nl, seqs)| {
                b.iter(|| {
                    fault::fault_simulate_serial(black_box(nl), black_box(seqs)).expect("valid")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fault_sim);
criterion_main!(benches);
