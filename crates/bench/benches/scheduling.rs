//! Criterion bench P1d — test scheduling throughput: packing core tests
//! onto the bus for SoCs of growing size.

use casbus_controller::schedule;
use casbus_soc::catalog;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling");
    group.sample_size(10);
    for cores in [10usize, 50] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let soc = catalog::random_soc(&mut rng, cores, 4);
        group.bench_with_input(BenchmarkId::new("packed", cores), &soc, |b, soc| {
            b.iter(|| schedule::packed_schedule(black_box(soc), 8).expect("fits"));
        });
        group.bench_with_input(BenchmarkId::new("serial", cores), &soc, |b, soc| {
            b.iter(|| schedule::serial_schedule(black_box(soc), 8).expect("fits"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scheduling);
criterion_main!(benches);
