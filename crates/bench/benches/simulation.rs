//! Criterion bench P1b — end-to-end simulation throughput: full verified
//! test sessions over the CAS-BUS (bit-level transport through
//! bus → CAS → wrapper → core and back).

use casbus_sim::{run_core_session, SocSimulator};
use casbus_soc::catalog;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_sessions(c: &mut Criterion) {
    let mut group = c.benchmark_group("soc_sessions");
    group.sample_size(20);

    group.bench_function("bist16_session", |b| {
        let soc = catalog::figure2b_bist_soc();
        b.iter(|| {
            let mut sim = SocSimulator::new(&soc, 3).expect("fits");
            run_core_session(black_box(&mut sim), "bist16").expect("session runs")
        });
    });

    group.bench_function("scan3_session", |b| {
        let soc = catalog::figure2a_scan_soc();
        b.iter(|| {
            let mut sim = SocSimulator::new(&soc, 4).expect("fits");
            run_core_session(black_box(&mut sim), "scan3").expect("session runs")
        });
    });

    group.bench_function("figure1_all_cores", |b| {
        let soc = catalog::figure1_soc();
        b.iter(|| {
            let mut sim = SocSimulator::new(&soc, 4).expect("fits");
            for core in soc.cores() {
                run_core_session(black_box(&mut sim), core.name()).expect("session runs");
            }
        });
    });

    group.finish();
}

fn bench_raw_transport(c: &mut Criterion) {
    use casbus_sim::ClockKind;
    use casbus_tpg::BitVec;

    c.bench_function("bus_transport_1k_cycles", |b| {
        let soc = catalog::figure1_soc();
        let mut sim = SocSimulator::new(&soc, 8).expect("fits");
        let kinds = vec![ClockKind::Idle; sim.tam().cas_count()];
        let bus: BitVec = "10110101".parse().expect("literal");
        b.iter(|| {
            for _ in 0..1000 {
                sim.data_clock(black_box(&bus), &kinds).expect("transports");
            }
        });
    });
}

criterion_group!(benches, bench_sessions, bench_raw_transport);
criterion_main!(benches);
