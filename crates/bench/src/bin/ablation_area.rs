//! Experiment A2 — the paper's §3.3 area discussion: the synthesized CAS
//! grows steeply with the bus width, and the two sketched "future work"
//! implementations — an optimized gate-level description and a
//! pass-transistor fabric — "solve the CAS area problem for large width
//! test busses, even without restricting heuristics".
//!
//! Reports all three area models over every Table-1 geometry.

use casbus::SchemeSet;
use casbus_bench::{ratio, PAPER_TABLE1};
use casbus_netlist::{area, crosspoint, opt, synth, AreaModel, AreaReport};

fn main() {
    println!("CAS area under five implementation styles (gate equivalents)");
    println!();
    println!(
        "{:>2} {:>2} {:>6} | {:>12} {:>9} {:>15} {:>12} {:>12} | {:>9}",
        "N",
        "P",
        "m",
        "synthesized",
        "CSE-opt",
        "optimized-gate",
        "xpoint-est",
        "xpoint-real",
        "xp/synth"
    );
    println!("{:-<13}+{:-<68}+{:-<10}", "", "", "");
    for row in PAPER_TABLE1 {
        let geometry = row.geometry();
        let report = AreaReport::for_geometry(geometry).expect("table rows enumerate");
        let synthesized = report.gate_equivalents;
        // Measured: run our own logic optimizer over the synthesized fabric.
        let set = SchemeSet::enumerate(geometry).expect("in budget");
        let cse = opt::optimize(&synth::synthesize_cas(&set)).expect("well-formed");
        let cse_area = area::gate_equivalents(&cse);
        let optimized = AreaModel::OptimizedGateLevel.estimate(geometry);
        let pass_transistor = AreaModel::PassTransistor.estimate(geometry);
        // Measured: a real crosspoint (pass-transistor style) netlist with
        // per-port select fields instead of the dense instruction decode.
        let xp = crosspoint::synthesize_crosspoint_cas(geometry);
        let xp_area = area::gate_equivalents(&xp);
        println!(
            "{:>2} {:>2} {:>6} | {:>12.0} {:>9.0} {:>15.0} {:>12.0} {:>12.0} | {:>9}",
            row.n,
            row.p,
            row.m,
            synthesized,
            cse_area,
            optimized,
            pass_transistor,
            xp_area,
            ratio(xp_area, synthesized)
        );
    }
    println!();
    println!("Reading: the synthesized fabric's area is dominated by the per-");
    println!("scheme decode (∝ m). Our measured CSE/constant-folding pass shaves");
    println!("only ~1% — the shared-prefix decoder is already share-maximal at");
    println!("the 2-input level, so the paper's smaller counts must come from");
    println!("multi-level restructuring (modelled by the optimized-gate column).");
    println!("The crosspoint (pass-transistor) columns — analytic AND a real,");
    println!("simulated netlist with per-port select fields — scale with N·P only,");
    println!("matching the paper's claim that the pass-transistor architecture");
    println!("removes the area obstacle for wide busses, 'even without");
    println!("restricting heuristics' (it can even express non-injective routes).");
}
