//! Experiment A1 — ablation of the paper's §3.2 switching heuristic.
//!
//! The heuristic ties the return path to the forward path ("when an input
//! e_i is switched to an output o_j, the corresponding i_j CAS input is
//! switched to the s_i output"), shrinking the instruction space from
//! (N!/(N−P)!)² + 2 to N!/(N−P)! + 2. This ablation quantifies what the
//! heuristic buys: instruction register width `k`, configuration time, and
//! decoder size.

use casbus_bench::PAPER_TABLE1;

fn main() {
    println!("Ablation: the paper's switching heuristic vs unrestricted switching");
    println!();
    println!(
        "{:>2} {:>2} | {:>8} {:>4} | {:>16} {:>4} | {:>9} {:>13}",
        "N", "P", "m", "k", "m(unrestricted)", "k'", "k saving", "decoder terms"
    );
    println!("{:-<6}+{:-<15}+{:-<22}+{:-<24}", "", "", "", "");
    for row in PAPER_TABLE1 {
        let g = row.geometry();
        let m = g.combination_count();
        let k = g.instruction_width();
        let m_free = g.unrestricted_combination_count();
        let k_free = g.unrestricted_instruction_width();
        println!(
            "{:>2} {:>2} | {:>8} {:>4} | {:>16} {:>4} | {:>8}b {:>6} vs {:>6}",
            row.n,
            row.p,
            m,
            k,
            m_free,
            k_free,
            k_free - k,
            m - 2,
            m_free - 2,
        );
    }
    println!();
    println!("Configuration time scales with the summed k over all CASes; the");
    println!("heuristic halves the register width (k' ~= 2k), and the decoder");
    println!("would need quadratically more terms without it — for N=8, P=4 the");
    println!("unrestricted CAS needs a 22-bit register decoding 2.8M schemes,");
    println!("which is why the paper's heuristic makes the generator practical.");
}
