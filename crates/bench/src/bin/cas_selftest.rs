//! Experiment X2 (extension) — testing the test infrastructure: compact
//! stuck-at pattern sets for the generated CASes themselves, produced by
//! random-pattern ATPG with fault dropping and reverse-order compaction.
//!
//! A TAM that cannot itself be tested would be a liability; this quantifies
//! how cheaply each Table-1 switch is covered.

use casbus::SchemeSet;
use casbus_bench::PAPER_TABLE1;
use casbus_netlist::atpg::{generate_patterns, AtpgConfig};
use casbus_netlist::synth;

fn main() {
    println!("CAS self-test: stuck-at ATPG over the generated switches");
    println!();
    println!(
        "{:>2} {:>2} | {:>6} {:>7} | {:>10} {:>10} {:>10} {:>10}",
        "N", "P", "gates", "faults", "coverage", "sequences", "cycles", "tried"
    );
    println!("{:-<6}+{:-<16}+{:-<44}", "", "", "");
    // Grading runs on the packed PPSFP engine (64 candidates per pass,
    // per-fault cone propagation), which covers every Table-1 row — the
    // old serial grader was O(faults × candidates × gates) and had to stop
    // at the small half (m <= 30).
    for row in PAPER_TABLE1.iter() {
        let set = SchemeSet::enumerate(row.geometry()).expect("in budget");
        let netlist = synth::synthesize_cas(&set);
        let config = AtpgConfig {
            target_coverage: 0.95,
            max_candidates: 300,
            sequence_depth: 12,
            seed: 0xCA5 ^ (row.n as u64) << 8 ^ row.p as u64,
        };
        let result = generate_patterns(&netlist, &config).expect("valid netlist");
        println!(
            "{:>2} {:>2} | {:>6} {:>7} | {:>9.1}% {:>10} {:>10} {:>10}",
            row.n,
            row.p,
            netlist.gate_count(),
            result.total,
            result.coverage() * 100.0,
            result.sequences.len(),
            result.total_cycles(),
            result.candidates_tried
        );
    }
    println!();
    println!("Undetected remainders are dominated by decoder minterms for");
    println!("unassigned opcodes (functionally redundant by construction) and");
    println!("faults observable only through longer configuration sequences.");
}
