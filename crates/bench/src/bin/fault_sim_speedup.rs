//! Serial vs packed (PPSFP) fault-simulation speedup over Table-1 CASes.
//!
//! Grades the same pseudo-random pattern set with both engines, checks the
//! coverages are bit-identical, and records wall-clock times plus the
//! speedup ratio to stdout and to `BENCH_fault_sim.json` at the workspace
//! root (machine-readable, for tracking across commits).
//!
//! ```text
//! cargo run --release -p casbus-bench --bin fault_sim_speedup
//! ```

use std::time::{Duration, Instant};

use casbus::SchemeSet;
use casbus_bench::PAPER_TABLE1;
use casbus_netlist::{fault, synth, Netlist};
use casbus_tpg::BitVec;

/// Sequence count and depth used at every size (the criterion group
/// `fault_simulation` in `benches/fault_sim.rs` uses the same workload).
const COUNT: usize = 8;
const DEPTH: usize = 6;

fn sequences(inputs: usize, count: usize, depth: usize) -> Vec<Vec<BitVec>> {
    let mut state = 0x1234_5678_9abc_def0u64;
    (0..count)
        .map(|_| {
            (0..depth)
                .map(|_| {
                    (0..inputs)
                        .map(|_| {
                            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                            state >> 62 & 1 == 1
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Runs `f` at least once and at most `max_runs` times or `budget` total,
/// returning the fastest observed wall-clock time.
fn best_of<T>(max_runs: usize, budget: Duration, mut f: impl FnMut() -> T) -> (Duration, T) {
    let started = Instant::now();
    let t0 = Instant::now();
    let mut result = f();
    let mut best = t0.elapsed();
    for _ in 1..max_runs {
        if started.elapsed() > budget {
            break;
        }
        let t0 = Instant::now();
        result = f();
        let run = t0.elapsed();
        if run < best {
            best = run;
        }
    }
    (best, result)
}

struct Row {
    n: usize,
    p: usize,
    gates: usize,
    faults: usize,
    serial: Duration,
    packed: Duration,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.serial.as_secs_f64() / self.packed.as_secs_f64().max(1e-9)
    }
}

fn measure(netlist: &Netlist, n: usize, p: usize) -> Row {
    let inputs = netlist.inputs().len();
    let seqs = sequences(inputs, COUNT, DEPTH);
    let (packed_t, packed) = best_of(5, Duration::from_secs(2), || {
        fault::fault_simulate(netlist, &seqs).expect("valid netlist")
    });
    let (serial_t, serial) = best_of(3, Duration::from_secs(10), || {
        fault::fault_simulate_serial(netlist, &seqs).expect("valid netlist")
    });
    assert_eq!(packed, serial, "engines disagree at N={n} P={p}");
    Row {
        n,
        p,
        gates: netlist.gate_count(),
        faults: serial.total,
        serial: serial_t,
        packed: packed_t,
    }
}

fn main() {
    let threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    println!("Fault-simulation engine comparison ({COUNT} sequences x {DEPTH} cycles, {threads} threads)");
    println!();
    println!(
        "{:>2} {:>2} | {:>6} {:>7} | {:>12} {:>12} {:>9}",
        "N", "P", "gates", "faults", "serial", "packed", "speedup"
    );
    println!("{:-<6}+{:-<16}+{:-<36}", "", "", "");
    let mut rows = Vec::new();
    for paper in PAPER_TABLE1.iter().filter(|r| {
        matches!(
            (r.n, r.p),
            (3, 1) | (4, 2) | (5, 3) | (6, 3) | (6, 5) | (8, 4)
        )
    }) {
        let set = SchemeSet::enumerate(paper.geometry()).expect("in budget");
        let netlist = synth::synthesize_cas(&set);
        let row = measure(&netlist, paper.n, paper.p);
        println!(
            "{:>2} {:>2} | {:>6} {:>7} | {:>10.2}ms {:>10.2}ms {:>8.1}x",
            row.n,
            row.p,
            row.gates,
            row.faults,
            row.serial.as_secs_f64() * 1e3,
            row.packed.as_secs_f64() * 1e3,
            row.speedup()
        );
        rows.push(row);
    }

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"n\": {}, \"p\": {}, \"gates\": {}, \"faults\": {}, \
                 \"sequences\": {COUNT}, \"depth\": {DEPTH}, \
                 \"serial_ms\": {:.3}, \"packed_ms\": {:.3}, \"speedup\": {:.2}}}",
                r.n,
                r.p,
                r.gates,
                r.faults,
                r.serial.as_secs_f64() * 1e3,
                r.packed.as_secs_f64() * 1e3,
                r.speedup()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"fault_simulation\",\n  \"engines\": [\"serial\", \"packed_ppsfp_threaded\"],\n  \"threads\": {threads},\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let path = "BENCH_fault_sim.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
