//! Experiment F2 — exercises the four test types of the paper's
//! **Figure 2**: (a) scannable cores on N/P switches, (b) BISTed cores on
//! N/1, (c) external source/sink cores, (d) hierarchical cores over an
//! internal test bus. Every session transports real bits through
//! bus → CAS → wrapper → core and verifies them against a golden model.

use casbus_sim::{run_core_session, SocSimulator};
use casbus_soc::catalog;

fn main() {
    println!("Figure 2 — test types supported by the CAS-BUS");
    println!();
    let cases = [
        ("(a) scan, N/P", catalog::figure2a_scan_soc(), 4),
        ("(b) BIST, N/1", catalog::figure2b_bist_soc(), 3),
        (
            "(c) external source/sink",
            catalog::figure2c_external_soc(),
            4,
        ),
        (
            "(d) hierarchical, N/P_int",
            catalog::figure2d_hierarchical_soc(),
            4,
        ),
    ];
    for (label, soc, n) in cases {
        println!("{label}  (SoC {:?}, N = {n})", soc.name());
        let mut sim = SocSimulator::new(&soc, n).expect("catalogue SoCs fit");
        for core in soc.cores() {
            let report = run_core_session(&mut sim, core.name()).expect("session runs");
            println!(
                "    {:<12} P={}  {:>7} config + {:>7} data cycles  -> {}",
                core.name(),
                core.required_ports(),
                report.config_cycles,
                report.data_cycles,
                report.verdict
            );
            assert!(report.verdict.is_pass(), "fault-free cores must pass");
        }
        println!();
    }
    println!("All four Figure-2 test types transport and verify bit-exactly.");
}
