//! Experiment F4 — demonstrates the three CAS functional modes of the
//! paper's **Figure 4** cycle by cycle on one N=4, P=2 CAS:
//!
//! * (a) CONFIGURATION — the instruction register threads e0→s0,
//! * (b) BYPASS — all wires pass straight through,
//! * (c) TEST — P wires switched to the core, N−P bypassing.

use casbus::{Cas, CasControl, CasGeometry, CasInstruction};
use casbus_tpg::BitVec;

fn main() {
    let geometry = CasGeometry::new(4, 2).expect("valid geometry");
    let mut cas = Cas::for_geometry(geometry).expect("within budget");
    println!(
        "Figure 4 — CAS modes on a {} switch (m = {}, k = {})",
        geometry,
        geometry.combination_count(),
        geometry.instruction_width()
    );

    // (b) BYPASS: power-on default.
    println!("\n(b) BYPASS — instruction register all zeros");
    let bus: BitVec = "1010".parse().expect("literal");
    let out = cas
        .clock(&bus, &BitVec::zeros(2), CasControl::run())
        .expect("widths match");
    println!(
        "    e = {bus}  ->  s = {}   o = {:?} (tri-stated)",
        out.bus_out, out.core_in
    );

    // (a) CONFIGURATION: shift a TEST opcode over wire 0.
    let target = CasInstruction::Test(9);
    let bits = target.encode(cas.schemes().len(), cas.instruction_width());
    println!("\n(a) CONFIGURATION — shifting opcode {bits} for {target} over e0/s0");
    for (cycle, bit) in bits.iter().enumerate() {
        let mut bus = BitVec::zeros(4);
        bus.set(0, bit);
        let out = cas
            .clock(&bus, &BitVec::zeros(2), CasControl::shift_config())
            .expect("widths match");
        println!(
            "    cycle {cycle}: e0 = {}  s0 = {}  IR = {}",
            u8::from(bit),
            u8::from(out.bus_out.get(0).expect("wire 0")),
            cas.ir_shift_stage()
        );
    }
    cas.clock(&BitVec::zeros(4), &BitVec::zeros(2), CasControl::update())
        .expect("widths match");
    println!(
        "    update pulse -> active instruction: {}",
        cas.instruction()
    );

    // (c) TEST: the configured scheme routes, the rest bypasses.
    let scheme = cas.active_scheme().expect("TEST mode").clone();
    println!("\n(c) TEST — active scheme: {scheme}");
    let bus: BitVec = "1100".parse().expect("literal");
    let core: BitVec = "11".parse().expect("literal");
    let out = cas
        .clock(&bus, &core, CasControl::run())
        .expect("widths match");
    println!(
        "    e = {bus}, i = {core}  ->  s = {}, o = {}",
        out.bus_out,
        out.core_in.expect("TEST mode drives the core")
    );
    println!(
        "    wires {:?} serve the core; wires {:?} bypass",
        scheme.wires(),
        scheme.bypassed_wires()
    );
}
