//! Fleet batch serving vs per-device planning throughput.
//!
//! The naive way to test N simulated devices with a searched schedule is a
//! loop of [`casbus_sim::run_program_searched`] calls: every device pays
//! the annealed schedule search, TAM build, program compilation, and route
//! compilation again. [`casbus_sim::FleetRunner`] pays all of that once
//! and serves the compiled plan to the whole fleet from a persistent
//! worker pool.
//!
//! Before any throughput is recorded, every fleet device's report — at
//! every thread count — is asserted bit-identical to the looped baseline's
//! report, so the numbers always describe *equivalent* work. Results go to
//! stdout and to `BENCH_fleet.json` at the workspace root.
//!
//! ```text
//! cargo run --release -p casbus-bench --bin fleet_throughput
//! ```
//!
//! Set `CASBUS_BENCH_SMOKE=1` for a fast CI configuration (smaller fleet,
//! fewer baseline iterations).

use std::time::Instant;

use casbus_controller::search::SearchBudget;
use casbus_sim::{run_program_searched, FleetRunner, VariationSpec};
use casbus_soc::catalog;

struct Row {
    threads: usize,
    wall_ms: f64,
    devices_per_sec: f64,
    wire_cycles_per_sec: f64,
    speedup: f64,
}

fn main() {
    let smoke = std::env::var("CASBUS_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let available = std::thread::available_parallelism().map_or(1, |t| t.get());
    let (fleet_size, baseline_runs) = if smoke { (64u64, 4usize) } else { (256, 8) };
    let soc = catalog::figure1_soc();
    let n = 8;
    let budget = SearchBudget::smoke();

    println!(
        "Fleet batch serving: figure1 SoC, N={n}, fleet of {fleet_size} devices{}",
        if smoke { " (smoke)" } else { "" }
    );
    println!();

    // Baseline: every device re-plans from scratch. Each iteration does
    // identical work, so the per-device rate from `baseline_runs` devices
    // is the rate a fleet-sized loop would sustain.
    let t0 = Instant::now();
    let (baseline_schedule, baseline_report) =
        run_program_searched(&soc, n, budget).expect("searched run");
    for _ in 1..baseline_runs {
        let (schedule, report) = run_program_searched(&soc, n, budget).expect("searched run");
        assert_eq!(schedule, baseline_schedule, "search must be deterministic");
        assert_eq!(report, baseline_report);
    }
    let baseline_wall = t0.elapsed();
    let baseline_per_device = baseline_wall.as_secs_f64() / baseline_runs as f64;
    let baseline_devices_per_sec = 1.0 / baseline_per_device.max(1e-9);
    println!(
        "baseline (looped run_program_searched): {:.1} ms/device, {:.2} devices/s",
        baseline_per_device * 1e3,
        baseline_devices_per_sec
    );

    // Fleet: the search, TAM build, program and route compilation happen
    // once, at construction.
    let t0 = Instant::now();
    let mut runner = FleetRunner::searched(&soc, n, budget).expect("searched runner");
    let setup = t0.elapsed();
    assert_eq!(
        runner.schedule(),
        &baseline_schedule,
        "fleet serves the same searched schedule"
    );
    println!(
        "fleet one-time setup (search + compile): {:.1} ms",
        setup.as_secs_f64() * 1e3
    );
    println!();
    println!(
        "{:>7} {:>10} {:>13} {:>16} {:>9}",
        "threads", "wall", "devices/s", "wire-cycles/s", "speedup"
    );

    let mut thread_counts = vec![1usize];
    if available > 1 {
        thread_counts.push(available);
    }
    let mut rows = Vec::new();
    for &threads in &thread_counts {
        runner = runner.with_threads(threads);
        let fleet = runner
            .run(&VariationSpec::perfect(), fleet_size)
            .expect("fleet run");
        for device in &fleet.devices {
            assert_eq!(
                device.report, baseline_report,
                "device {} diverged from the looped baseline at {threads} threads",
                device.device_id
            );
        }
        assert_eq!(fleet.passed, fleet_size as usize);
        let speedup = fleet.devices_per_sec() / baseline_devices_per_sec;
        println!(
            "{:>7} {:>8.1}ms {:>13.1} {:>16.0} {:>8.1}x",
            threads,
            fleet.wall.as_secs_f64() * 1e3,
            fleet.devices_per_sec(),
            fleet.wire_cycles_per_sec(),
            speedup
        );
        rows.push(Row {
            threads,
            wall_ms: fleet.wall.as_secs_f64() * 1e3,
            devices_per_sec: fleet.devices_per_sec(),
            wire_cycles_per_sec: fleet.wire_cycles_per_sec(),
            speedup,
        });
    }

    let best = rows
        .iter()
        .map(|r| r.speedup)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        best >= 5.0,
        "fleet serving must beat per-device planning by >=5x at fleet {fleet_size} \
         (best observed: {best:.1}x)"
    );
    println!("\nbest speedup vs looped run_program_searched: {best:.1}x");

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"threads\": {}, \"wall_ms\": {:.3}, \"devices_per_sec\": {:.2}, \
                 \"wire_cycles_per_sec\": {:.0}, \"speedup_vs_searched_loop\": {:.2}}}",
                r.threads, r.wall_ms, r.devices_per_sec, r.wire_cycles_per_sec, r.speedup
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"fleet_batch_serving\",\n  \"soc\": \"figure1\",\n  \
         \"n\": {n},\n  \"fleet_size\": {fleet_size},\n  \"smoke\": {smoke},\n  \
         \"baseline_ms_per_device\": {:.3},\n  \"baseline_devices_per_sec\": {:.2},\n  \
         \"setup_ms\": {:.3},\n  \"rows\": [\n{}\n  ]\n}}\n",
        baseline_per_device * 1e3,
        baseline_devices_per_sec,
        setup.as_secs_f64() * 1e3,
        json_rows.join(",\n")
    );
    let path = "BENCH_fleet.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
