//! Fleet batch serving vs per-device planning throughput.
//!
//! The naive way to test N simulated devices with a searched schedule is a
//! loop of [`casbus_sim::run_program_searched`] calls: every device pays
//! the annealed schedule search, TAM build, program compilation, and route
//! compilation again. [`casbus_sim::FleetRunner`] pays all of that once
//! and serves the compiled plan to the whole fleet from a persistent
//! worker pool — in two modes, both measured here:
//!
//! * **scalar** — one compiled-engine run per device, with the simulator
//!   and engine reused in place on each worker thread, and
//! * **packed** — cohorts of up to 64 devices share one word-level
//!   execution (healthy dies clone a baseline report, defective dies run
//!   as bit-lanes of a packed scan model).
//!
//! Before any throughput is recorded, packed and scalar runs of the same
//! defective fleet are asserted bit-identical to each other, and every
//! healthy device's report bit-identical to the looped baseline's — so the
//! numbers always describe *equivalent* work. One-time setup (search +
//! compile) is timed separately from steady-state devices/s: each timed
//! row is preceded by an untimed priming run that compiles the packed
//! engine and warms the per-worker simulator slots. Results go to stdout
//! and to `BENCH_fleet.json` at the workspace root.
//!
//! ```text
//! cargo run --release -p casbus-bench --bin fleet_throughput
//! ```
//!
//! Set `CASBUS_BENCH_SMOKE=1` for a fast CI configuration (smaller fleet,
//! fewer baseline iterations).

use std::time::Instant;

use casbus_controller::search::SearchBudget;
use casbus_sim::{run_program_searched, FleetRunner, VariationSpec};
use casbus_soc::catalog;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const DEFECT_RATE: f64 = 0.25;
const DEFECT_SEED: u64 = 7;

struct Row {
    threads: usize,
    mode: &'static str,
    wall_ms: f64,
    devices_per_sec: f64,
    wire_cycles_per_sec: f64,
    speedup: f64,
}

fn main() {
    let smoke = std::env::var("CASBUS_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let (fleet_size, baseline_runs) = if smoke { (64u64, 4usize) } else { (256, 8) };
    let soc = catalog::figure1_soc();
    let n = 8;
    let budget = SearchBudget::smoke();
    let spec = VariationSpec::new(DEFECT_SEED, DEFECT_RATE);

    println!(
        "Fleet batch serving: figure1 SoC, N={n}, fleet of {fleet_size} devices, \
         defect rate {DEFECT_RATE}{}",
        if smoke { " (smoke)" } else { "" }
    );
    println!();

    // Baseline: every device re-plans from scratch. Each iteration does
    // identical work, so the per-device rate from `baseline_runs` devices
    // is the rate a fleet-sized loop would sustain.
    let t0 = Instant::now();
    let (baseline_schedule, baseline_report) =
        run_program_searched(&soc, n, budget).expect("searched run");
    for _ in 1..baseline_runs {
        let (schedule, report) = run_program_searched(&soc, n, budget).expect("searched run");
        assert_eq!(schedule, baseline_schedule, "search must be deterministic");
        assert_eq!(report, baseline_report);
    }
    let baseline_wall = t0.elapsed();
    let baseline_per_device = baseline_wall.as_secs_f64() / baseline_runs as f64;
    let baseline_devices_per_sec = 1.0 / baseline_per_device.max(1e-9);
    println!(
        "baseline (looped run_program_searched): {:.1} ms/device, {:.2} devices/s",
        baseline_per_device * 1e3,
        baseline_devices_per_sec
    );

    // Fleet: the search, TAM build, program and route compilation happen
    // once, at construction.
    let t0 = Instant::now();
    let mut runner = FleetRunner::searched(&soc, n, budget).expect("searched runner");
    let setup = t0.elapsed();
    assert_eq!(
        runner.schedule(),
        &baseline_schedule,
        "fleet serves the same searched schedule"
    );
    println!(
        "fleet one-time setup (search + compile): {:.1} ms",
        setup.as_secs_f64() * 1e3
    );

    // Equivalence gate: the packed and scalar modes must agree bit for bit
    // on the defective fleet, and healthy dies must match the looped
    // baseline, before either mode's throughput means anything.
    runner = runner
        .with_threads(THREAD_COUNTS[THREAD_COUNTS.len() - 1])
        .with_packed(false);
    let scalar_fleet = runner.run(&spec, fleet_size).expect("scalar fleet run");
    runner = runner.with_packed(true);
    let packed_fleet = runner.run(&spec, fleet_size).expect("packed fleet run");
    assert_eq!(scalar_fleet.devices.len(), packed_fleet.devices.len());
    for (s, p) in scalar_fleet.devices.iter().zip(&packed_fleet.devices) {
        assert_eq!(s.device_id, p.device_id);
        assert_eq!(
            s.report, p.report,
            "packed report diverged from scalar on device {}",
            s.device_id
        );
        if spec.fault_for(&soc, s.device_id).is_none() {
            assert_eq!(
                s.report, baseline_report,
                "healthy device {} diverged from the looped baseline",
                s.device_id
            );
        }
    }
    println!(
        "equivalence gate: {} devices bit-identical across modes ({} defective)",
        fleet_size,
        fleet_size as usize - scalar_fleet.passed
    );

    println!();
    println!(
        "{:>7} {:>7} {:>10} {:>13} {:>16} {:>9}",
        "threads", "mode", "wall", "devices/s", "wire-cycles/s", "speedup"
    );

    let mut rows = Vec::new();
    for mode in ["scalar", "packed"] {
        runner = runner.with_packed(mode == "packed");
        for &threads in &THREAD_COUNTS {
            runner = runner.with_threads(threads);
            // Untimed priming run: compiles the packed engine (if packed)
            // and warms the fresh pool's per-worker simulator slots, so the
            // timed run below is steady state, not setup.
            runner.run(&spec, fleet_size).expect("priming run");
            let fleet = runner.run(&spec, fleet_size).expect("fleet run");
            assert_eq!(fleet.passed, scalar_fleet.passed, "yield drifted");
            let speedup = fleet.devices_per_sec() / baseline_devices_per_sec;
            println!(
                "{:>7} {:>7} {:>8.1}ms {:>13.1} {:>16.0} {:>8.1}x",
                threads,
                mode,
                fleet.wall.as_secs_f64() * 1e3,
                fleet.devices_per_sec(),
                fleet.wire_cycles_per_sec(),
                speedup
            );
            rows.push(Row {
                threads,
                mode,
                wall_ms: fleet.wall.as_secs_f64() * 1e3,
                devices_per_sec: fleet.devices_per_sec(),
                wire_cycles_per_sec: fleet.wire_cycles_per_sec(),
                speedup,
            });
        }
    }

    let best_of = |mode: &str| {
        rows.iter()
            .filter(|r| r.mode == mode)
            .map(|r| r.speedup)
            .fold(f64::NEG_INFINITY, f64::max)
    };
    let scalar_best = best_of("scalar");
    let packed_best = best_of("packed");
    assert!(
        scalar_best >= 5.0,
        "scalar fleet serving must beat per-device planning by >=5x at fleet {fleet_size} \
         (best observed: {scalar_best:.1}x)"
    );
    assert!(
        packed_best >= 5.0,
        "packed fleet serving must beat per-device planning by >=5x at fleet {fleet_size} \
         (best observed: {packed_best:.1}x)"
    );
    let packed_vs_scalar = packed_best / scalar_best;
    println!();
    println!("best scalar speedup vs looped run_program_searched: {scalar_best:.1}x");
    println!("best packed speedup vs looped run_program_searched: {packed_best:.1}x");
    println!("packed vs scalar (best rows): {packed_vs_scalar:.1}x");

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"threads\": {}, \"mode\": \"{}\", \"wall_ms\": {:.3}, \
                 \"devices_per_sec\": {:.2}, \"wire_cycles_per_sec\": {:.0}, \
                 \"speedup_vs_searched_loop\": {:.2}}}",
                r.threads, r.mode, r.wall_ms, r.devices_per_sec, r.wire_cycles_per_sec, r.speedup
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"fleet_batch_serving\",\n  \"soc\": \"figure1\",\n  \
         \"n\": {n},\n  \"fleet_size\": {fleet_size},\n  \"smoke\": {smoke},\n  \
         \"defect_rate\": {DEFECT_RATE},\n  \
         \"baseline_ms_per_device\": {:.3},\n  \"baseline_devices_per_sec\": {:.2},\n  \
         \"setup_ms\": {:.3},\n  \"packed_vs_scalar_best\": {:.2},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        baseline_per_device * 1e3,
        baseline_devices_per_sec,
        setup.as_secs_f64() * 1e3,
        packed_vs_scalar,
        json_rows.join(",\n")
    );
    let path = "BENCH_fleet.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
