//! Fleet batch serving vs per-device planning throughput.
//!
//! The naive way to test N simulated devices with a searched schedule is a
//! loop of [`casbus_sim::run_program_searched`] calls: every device pays
//! the annealed schedule search, TAM build, program compilation, and route
//! compilation again. [`casbus_sim::FleetRunner`] pays all of that once
//! and serves the compiled plan to the whole fleet from a persistent
//! worker pool — in two modes, both measured here:
//!
//! * **scalar** — one compiled-engine run per device, with the simulator
//!   and engine reused in place on each worker thread, and
//! * **packed** — cohorts of up to 64 devices share one word-level
//!   execution (healthy dies clone a baseline report, defective dies run
//!   as bit-lanes of packed scan, BIST, and memory models).
//!
//! Before any throughput is recorded, packed and scalar runs of the same
//! defective fleet are asserted bit-identical to each other, and every
//! healthy device's report bit-identical to the looped baseline's — so the
//! numbers always describe *equivalent* work. One-time setup (search +
//! compile) is timed separately from steady-state devices/s: each timed
//! row is preceded by an untimed priming run that compiles the packed
//! engine and warms the per-worker simulator slots.
//!
//! Two workloads run back to back:
//!
//! 1. the figure-1 SoC at a 25% defect rate (the mixed production lot), and
//! 2. a BIST + memory SoC at a 100% defect rate — the workload whose every
//!    defect used to force a scalar fallback and now rides the lane
//!    encoding (`fleet.packed.fallback.devices` is asserted to be 0).
//!
//! Each workload reports a per-mode `scaling_efficiency`: the best
//! multi-thread devices/s divided by the single-thread devices/s. Values
//! below 1.0 mean worker threads actively hurt and are flagged loudly.
//! Set `CASBUS_BENCH_REQUIRE_SCALING=1` to turn the packed 4-vs-1-thread
//! ratio into a hard failure (skipped, loudly, on single-core hosts where
//! no thread count can help). Results go to stdout and to
//! `BENCH_fleet.json` at the workspace root.
//!
//! ```text
//! cargo run --release -p casbus-bench --bin fleet_throughput
//! ```
//!
//! Set `CASBUS_BENCH_SMOKE=1` for a fast CI configuration (smaller fleet,
//! fewer baseline iterations).

use std::time::Instant;

use casbus_controller::schedule::packed_schedule;
use casbus_controller::search::SearchBudget;
use casbus_obs::MetricsRegistry;
use casbus_sim::{run_program_searched, FleetRunner, VariationSpec};
use casbus_soc::{catalog, CoreDescription, SocBuilder, TestMethod};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const DEFECT_RATE: f64 = 0.25;
const DEFECT_SEED: u64 = 7;

struct Row {
    threads: usize,
    mode: &'static str,
    wall_ms: f64,
    devices_per_sec: f64,
    wire_cycles_per_sec: f64,
    speedup: f64,
}

/// Times every `(mode, threads)` combination: an untimed priming run per
/// row (compiles the packed engine, warms the per-worker simulator slots),
/// then one timed fleet run. `speedup` is relative to the caller's
/// baseline rate.
fn measure_modes(
    mut runner: FleetRunner,
    spec: &VariationSpec,
    fleet_size: u64,
    expected_passed: usize,
    baseline_devices_per_sec: f64,
) -> (FleetRunner, Vec<Row>) {
    println!(
        "{:>7} {:>7} {:>10} {:>13} {:>16} {:>9}",
        "threads", "mode", "wall", "devices/s", "wire-cycles/s", "speedup"
    );
    let mut rows = Vec::new();
    for mode in ["scalar", "packed"] {
        runner = runner.with_packed(mode == "packed");
        for &threads in &THREAD_COUNTS {
            runner = runner.with_threads(threads);
            runner.run(spec, fleet_size).expect("priming run");
            let fleet = runner.run(spec, fleet_size).expect("fleet run");
            assert_eq!(fleet.passed, expected_passed, "yield drifted");
            let speedup = fleet.devices_per_sec() / baseline_devices_per_sec;
            println!(
                "{:>7} {:>7} {:>8.1}ms {:>13.1} {:>16.0} {:>8.1}x",
                threads,
                mode,
                fleet.wall.as_secs_f64() * 1e3,
                fleet.devices_per_sec(),
                fleet.wire_cycles_per_sec(),
                speedup
            );
            rows.push(Row {
                threads,
                mode,
                wall_ms: fleet.wall.as_secs_f64() * 1e3,
                devices_per_sec: fleet.devices_per_sec(),
                wire_cycles_per_sec: fleet.wire_cycles_per_sec(),
                speedup,
            });
        }
    }
    (runner, rows)
}

fn best_speedup(rows: &[Row], mode: &str) -> f64 {
    rows.iter()
        .filter(|r| r.mode == mode)
        .map(|r| r.speedup)
        .fold(f64::NEG_INFINITY, f64::max)
}

fn rate_at(rows: &[Row], mode: &str, threads: usize) -> f64 {
    rows.iter()
        .find(|r| r.mode == mode && r.threads == threads)
        .map(|r| r.devices_per_sec)
        .expect("row measured")
}

/// Best multi-thread devices/s over the single-thread devices/s for one
/// mode. Above 1.0: threads help. Below 1.0: cross-thread overhead eats
/// more than the parallelism returns.
fn scaling_efficiency(rows: &[Row], mode: &str) -> f64 {
    let single = rate_at(rows, mode, 1);
    let multi = rows
        .iter()
        .filter(|r| r.mode == mode && r.threads > 1)
        .map(|r| r.devices_per_sec)
        .fold(f64::NEG_INFINITY, f64::max);
    multi / single
}

/// Warns loudly when a mode's throughput shrinks as threads are added.
fn report_scaling(rows: &[Row], hardware_threads: usize) -> (f64, f64) {
    let scalar = scaling_efficiency(rows, "scalar");
    let packed = scaling_efficiency(rows, "packed");
    println!("scaling efficiency (best multi-thread / single-thread): scalar {scalar:.2}, packed {packed:.2}");
    for (mode, efficiency) in [("scalar", scalar), ("packed", packed)] {
        if efficiency < 1.0 {
            eprintln!(
                "WARNING: {mode} fleet throughput does NOT scale — adding worker threads \
                 yields {efficiency:.2}x the single-thread rate \
                 (host has {hardware_threads} hardware thread(s))"
            );
        }
    }
    (scalar, packed)
}

fn rows_json(rows: &[Row], speedup_key: &str, indent: &str) -> String {
    rows.iter()
        .map(|r| {
            format!(
                "{indent}{{\"threads\": {}, \"mode\": \"{}\", \"wall_ms\": {:.3}, \
                 \"devices_per_sec\": {:.2}, \"wire_cycles_per_sec\": {:.0}, \
                 \"{speedup_key}\": {:.2}}}",
                r.threads, r.mode, r.wall_ms, r.devices_per_sec, r.wire_cycles_per_sec, r.speedup
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

/// The second workload: every defect targets a BIST or memory core, the
/// shape that fell back to a scalar run per defective device before those
/// sessions joined the lane encoding.
fn bist_memory_soc() -> casbus_soc::SocDescription {
    SocBuilder::new("bist_memory")
        .core(CoreDescription::new(
            "bist16",
            TestMethod::Bist {
                width: 16,
                patterns: 300,
            },
        ))
        .core(CoreDescription::new(
            "dram",
            TestMethod::Memory {
                words: 64,
                data_width: 8,
            },
        ))
        .core(CoreDescription::new(
            "bist8",
            TestMethod::Bist {
                width: 8,
                patterns: 200,
            },
        ))
        .build()
        .expect("valid by construction")
}

fn main() {
    let smoke = std::env::var("CASBUS_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let require_scaling =
        std::env::var("CASBUS_BENCH_REQUIRE_SCALING").is_ok_and(|v| v != "0" && !v.is_empty());
    let hardware_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (fleet_size, baseline_runs) = if smoke { (64u64, 4usize) } else { (256, 8) };
    let soc = catalog::figure1_soc();
    let n = 8;
    let budget = SearchBudget::smoke();
    let spec = VariationSpec::new(DEFECT_SEED, DEFECT_RATE);

    println!(
        "Fleet batch serving: figure1 SoC, N={n}, fleet of {fleet_size} devices, \
         defect rate {DEFECT_RATE}, {hardware_threads} hardware thread(s){}",
        if smoke { " (smoke)" } else { "" }
    );
    println!();

    // Baseline: every device re-plans from scratch. Each iteration does
    // identical work, so the per-device rate from `baseline_runs` devices
    // is the rate a fleet-sized loop would sustain.
    let t0 = Instant::now();
    let (baseline_schedule, baseline_report) =
        run_program_searched(&soc, n, budget).expect("searched run");
    for _ in 1..baseline_runs {
        let (schedule, report) = run_program_searched(&soc, n, budget).expect("searched run");
        assert_eq!(schedule, baseline_schedule, "search must be deterministic");
        assert_eq!(report, baseline_report);
    }
    let baseline_wall = t0.elapsed();
    let baseline_per_device = baseline_wall.as_secs_f64() / baseline_runs as f64;
    let baseline_devices_per_sec = 1.0 / baseline_per_device.max(1e-9);
    println!(
        "baseline (looped run_program_searched): {:.1} ms/device, {:.2} devices/s",
        baseline_per_device * 1e3,
        baseline_devices_per_sec
    );

    // Fleet: the search, TAM build, program and route compilation happen
    // once, at construction.
    let t0 = Instant::now();
    let mut runner = FleetRunner::searched(&soc, n, budget).expect("searched runner");
    let setup = t0.elapsed();
    assert_eq!(
        runner.schedule(),
        &baseline_schedule,
        "fleet serves the same searched schedule"
    );
    println!(
        "fleet one-time setup (search + compile): {:.1} ms",
        setup.as_secs_f64() * 1e3
    );

    // Equivalence gate: the packed and scalar modes must agree bit for bit
    // on the defective fleet, and healthy dies must match the looped
    // baseline, before either mode's throughput means anything.
    runner = runner
        .with_threads(THREAD_COUNTS[THREAD_COUNTS.len() - 1])
        .with_packed(false);
    let scalar_fleet = runner.run(&spec, fleet_size).expect("scalar fleet run");
    runner = runner.with_packed(true);
    let packed_fleet = runner.run(&spec, fleet_size).expect("packed fleet run");
    assert_eq!(scalar_fleet.devices.len(), packed_fleet.devices.len());
    for (s, p) in scalar_fleet.devices.iter().zip(&packed_fleet.devices) {
        assert_eq!(s.device_id, p.device_id);
        assert_eq!(
            s.report, p.report,
            "packed report diverged from scalar on device {}",
            s.device_id
        );
        if spec.fault_for(&soc, s.device_id).is_none() {
            assert_eq!(
                s.report, baseline_report,
                "healthy device {} diverged from the looped baseline",
                s.device_id
            );
        }
    }
    println!(
        "equivalence gate: {} devices bit-identical across modes ({} defective)",
        fleet_size,
        fleet_size as usize - scalar_fleet.passed
    );
    println!();

    let (_, rows) = measure_modes(
        runner,
        &spec,
        fleet_size,
        scalar_fleet.passed,
        baseline_devices_per_sec,
    );

    let scalar_best = best_speedup(&rows, "scalar");
    let packed_best = best_speedup(&rows, "packed");
    assert!(
        scalar_best >= 5.0,
        "scalar fleet serving must beat per-device planning by >=5x at fleet {fleet_size} \
         (best observed: {scalar_best:.1}x)"
    );
    assert!(
        packed_best >= 5.0,
        "packed fleet serving must beat per-device planning by >=5x at fleet {fleet_size} \
         (best observed: {packed_best:.1}x)"
    );
    let packed_vs_scalar = packed_best / scalar_best;
    println!();
    println!("best scalar speedup vs looped run_program_searched: {scalar_best:.1}x");
    println!("best packed speedup vs looped run_program_searched: {packed_best:.1}x");
    println!("packed vs scalar (best rows): {packed_vs_scalar:.1}x");
    let (scalar_efficiency, packed_efficiency) = report_scaling(&rows, hardware_threads);

    // The hard scaling gate, opted into by CI: packed at the highest
    // thread count must not be slower than single-threaded beyond noise.
    // Meaningless on a single-core host, where it is skipped out loud.
    let max_threads = THREAD_COUNTS[THREAD_COUNTS.len() - 1];
    let packed_4_vs_1 = rate_at(&rows, "packed", max_threads) / rate_at(&rows, "packed", 1);
    if require_scaling {
        if hardware_threads < 2 {
            eprintln!(
                "NOTE: CASBUS_BENCH_REQUIRE_SCALING set, but this host has only \
                 {hardware_threads} hardware thread(s) — the {max_threads}-vs-1-thread \
                 packed gate is skipped (no thread count can help on one core)"
            );
        } else {
            assert!(
                packed_4_vs_1 >= 0.9,
                "packed fleet at {max_threads} threads is slower than single-threaded beyond \
                 noise: {packed_4_vs_1:.2}x (>= 0.90x required on this \
                 {hardware_threads}-thread host)"
            );
        }
    }

    // Workload 2: BIST + memory cores only, every die defective — the
    // all-fallback worst case before those sessions joined the lane
    // encoding. The defect placements must now ride lanes exclusively.
    let bm_soc = bist_memory_soc();
    let bm_n = bm_soc.max_ports();
    let bm_fleet = fleet_size;
    let bm_spec = VariationSpec::new(DEFECT_SEED, 1.0);
    let bm_schedule = packed_schedule(&bm_soc, bm_n).expect("schedule");
    println!();
    println!(
        "BIST/memory-defect workload: bist_memory SoC, N={bm_n}, fleet of {bm_fleet} devices, \
         defect rate 1.0"
    );
    println!();

    let mut bm_runner = FleetRunner::new(&bm_soc, bm_n, bm_schedule)
        .expect("runner")
        .with_threads(THREAD_COUNTS[THREAD_COUNTS.len() - 1])
        .with_packed(false);
    let bm_scalar = bm_runner.run(&bm_spec, bm_fleet).expect("scalar fleet run");
    bm_runner = bm_runner.with_packed(true);
    let bm_metrics = MetricsRegistry::new();
    let bm_packed = bm_runner
        .run_with_metrics(&bm_spec, bm_fleet, &bm_metrics, |_| {})
        .expect("packed fleet run");
    assert_eq!(
        bm_packed.devices, bm_scalar.devices,
        "packed BIST/memory fleet diverged from scalar"
    );
    let bm_fallbacks = bm_metrics.counter("fleet.packed.fallback.devices");
    assert_eq!(
        bm_fallbacks, 0,
        "BIST/memory defects must ride lanes, not fall back to scalar runs"
    );
    assert_eq!(
        bm_metrics.counter("fleet.packed.lane.devices"),
        bm_fleet,
        "every defective die rides a lane"
    );
    println!(
        "equivalence gate: {bm_fleet} devices bit-identical across modes, \
         {bm_fallbacks} scalar fallbacks"
    );
    println!();

    // Speedup for this workload is measured against the scalar
    // single-thread fleet rate (there is no searched-loop baseline here:
    // the schedule is the fixed packed schedule on both sides).
    bm_runner = bm_runner.with_packed(false).with_threads(1);
    bm_runner.run(&bm_spec, bm_fleet).expect("priming run");
    let bm_reference = bm_runner.run(&bm_spec, bm_fleet).expect("reference run");
    let (_, bm_rows) = measure_modes(
        bm_runner,
        &bm_spec,
        bm_fleet,
        bm_scalar.passed,
        bm_reference.devices_per_sec(),
    );
    let bm_packed_vs_scalar = best_speedup(&bm_rows, "packed") / best_speedup(&bm_rows, "scalar");
    println!();
    println!("packed vs scalar on all-defective BIST/memory fleet (best rows): {bm_packed_vs_scalar:.1}x");
    assert!(
        bm_packed_vs_scalar >= 5.0,
        "lane-encoded BIST/memory sessions must beat scalar fallback by >=5x \
         (observed: {bm_packed_vs_scalar:.1}x)"
    );
    let (bm_scalar_efficiency, bm_packed_efficiency) = report_scaling(&bm_rows, hardware_threads);

    let json = format!(
        "{{\n  \"benchmark\": \"fleet_batch_serving\",\n  \
         \"hardware_threads\": {hardware_threads},\n  \"soc\": \"figure1\",\n  \
         \"n\": {n},\n  \"fleet_size\": {fleet_size},\n  \"smoke\": {smoke},\n  \
         \"defect_rate\": {DEFECT_RATE},\n  \
         \"baseline_ms_per_device\": {:.3},\n  \"baseline_devices_per_sec\": {:.2},\n  \
         \"setup_ms\": {:.3},\n  \"packed_vs_scalar_best\": {:.2},\n  \
         \"scaling_efficiency\": {{\"scalar\": {scalar_efficiency:.2}, \
         \"packed\": {packed_efficiency:.2}}},\n  \
         \"rows\": [\n{}\n  ],\n  \
         \"bist_memory\": {{\n    \"soc\": \"bist_memory\",\n    \"n\": {bm_n},\n    \
         \"fleet_size\": {bm_fleet},\n    \"defect_rate\": 1.0,\n    \
         \"packed_fallback_devices\": {bm_fallbacks},\n    \
         \"packed_vs_scalar_best\": {bm_packed_vs_scalar:.2},\n    \
         \"scaling_efficiency\": {{\"scalar\": {bm_scalar_efficiency:.2}, \
         \"packed\": {bm_packed_efficiency:.2}}},\n    \
         \"rows\": [\n{}\n    ]\n  }}\n}}\n",
        baseline_per_device * 1e3,
        baseline_devices_per_sec,
        setup.as_secs_f64() * 1e3,
        packed_vs_scalar,
        rows_json(&rows, "speedup_vs_searched_loop", "    "),
        rows_json(&bm_rows, "speedup_vs_scalar_1thread", "      "),
    );
    let path = "BENCH_fleet.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
