//! Multi-tenant floor serving vs dedicated per-lot fleets.
//!
//! A [`casbus_sim::TestFloor`] runs heterogeneous lots concurrently on one
//! shared worker pool and one route-cache budget. The question this bench
//! answers: what does multi-tenancy cost against the obvious alternative —
//! running each lot back to back on its own dedicated
//! [`casbus_sim::FleetRunner`] with the same thread count?
//!
//! The workload is deliberately heterogeneous: lot A is the figure-1 SoC
//! at a 25% defect rate in packed cohort mode (priority 2); lot B is a
//! BIST + memory SoC at a 100% defect rate in scalar per-device mode
//! (priority 1). Different SoCs, different plans, different execution
//! modes, different priorities — the floor's weighted-fair lanes interleave
//! them on the same workers.
//!
//! Before any timing, the floor run is asserted bit-identical per lot to
//! the standalone runs (the same gate `tests/floor_differential.rs` pins),
//! so the numbers always describe equivalent work. Each timed row is
//! preceded by an untimed priming run that compiles both packed engines
//! and warms the per-worker simulator slots.
//!
//! The headline metric is `tenancy_ratio`: floor devices/s over the
//! back-to-back aggregate devices/s (total devices / summed standalone
//! walls) at the same thread count. 1.0 means multi-tenancy is free;
//! the bench requires the best row to stay within 15% of back-to-back
//! (`>= 0.85`) and hard-fails below 0.70 at any row. Results go to stdout
//! and `BENCH_floor.json` at the workspace root.
//!
//! ```text
//! cargo run --release -p casbus-bench --bin floor_throughput
//! ```
//!
//! Set `CASBUS_BENCH_SMOKE=1` for a fast CI configuration (smaller lots,
//! warn instead of fail on the 15% bound).

use std::time::Instant;

use casbus_controller::schedule::packed_schedule;
use casbus_sim::{FleetRunner, LotSpec, TestFloor, VariationSpec};
use casbus_soc::{catalog, CoreDescription, SocBuilder, SocDescription, TestMethod};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn bist_memory_soc() -> SocDescription {
    SocBuilder::new("bist_memory")
        .core(CoreDescription::new(
            "bist16",
            TestMethod::Bist {
                width: 16,
                patterns: 300,
            },
        ))
        .core(CoreDescription::new(
            "dram",
            TestMethod::Memory {
                words: 64,
                data_width: 8,
            },
        ))
        .core(CoreDescription::new(
            "bist8",
            TestMethod::Bist {
                width: 8,
                patterns: 200,
            },
        ))
        .build()
        .expect("valid by construction")
}

struct Row {
    threads: usize,
    lot_a_ms: f64,
    lot_b_ms: f64,
    back_to_back_devices_per_sec: f64,
    floor_ms: f64,
    floor_devices_per_sec: f64,
    tenancy_ratio: f64,
}

fn main() {
    let smoke = std::env::var("CASBUS_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let hardware_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (a_devices, b_devices) = if smoke { (64u64, 64u64) } else { (256, 256) };

    let fig1 = catalog::figure1_soc();
    let fig1_n = 8usize;
    let fig1_schedule = packed_schedule(&fig1, fig1_n).expect("schedule");
    let a_spec = VariationSpec::new(7, 0.25);

    let bm = bist_memory_soc();
    let bm_n = bm.max_ports();
    let bm_schedule = packed_schedule(&bm, bm_n).expect("schedule");
    let b_spec = VariationSpec::new(7, 1.0);

    let lots = || -> Vec<LotSpec> {
        vec![
            LotSpec::new(
                "fig1",
                &fig1,
                fig1_n,
                fig1_schedule.clone(),
                a_devices,
                a_spec,
            )
            .expect("lot A")
            .with_priority(2),
            LotSpec::new("bistmem", &bm, bm_n, bm_schedule.clone(), b_devices, b_spec)
                .expect("lot B")
                .with_packed(false),
        ]
    };

    println!(
        "Multi-tenant floor: lot A figure1 N={fig1_n} x{a_devices} packed (prio 2), \
         lot B bist_memory N={bm_n} x{b_devices} scalar (prio 1), \
         {hardware_threads} hardware thread(s){}",
        if smoke { " (smoke)" } else { "" }
    );
    println!();

    // Equivalence gate before any timing: the floor must hand each lot the
    // exact reports a dedicated runner produces.
    let runner_a = FleetRunner::new(&fig1, fig1_n, fig1_schedule.clone()).expect("runner A");
    let baseline_a = runner_a.run(&a_spec, a_devices).expect("standalone A");
    let runner_b = FleetRunner::new(&bm, bm_n, bm_schedule.clone())
        .expect("runner B")
        .with_packed(false);
    let baseline_b = runner_b.run(&b_spec, b_devices).expect("standalone B");
    let gate_floor = TestFloor::new();
    let gate = gate_floor.run(lots()).expect("floor run");
    assert_eq!(
        gate.lots[0].fleet.devices, baseline_a.devices,
        "floor lot A diverged from its dedicated runner"
    );
    assert_eq!(
        gate.lots[1].fleet.devices, baseline_b.devices,
        "floor lot B diverged from its dedicated runner"
    );
    println!(
        "equivalence gate: both lots bit-identical to dedicated runners \
         ({} + {} devices, {} pass)",
        a_devices,
        b_devices,
        gate.passed()
    );
    println!();

    println!(
        "{:>7} {:>10} {:>10} {:>14} {:>10} {:>13} {:>8}",
        "threads", "lot A", "lot B", "back-to-back", "floor", "floor dev/s", "ratio"
    );
    let mut rows = Vec::new();
    for &threads in &THREAD_COUNTS {
        // Dedicated fleets, back to back, each primed untimed.
        let runner_a = FleetRunner::new(&fig1, fig1_n, fig1_schedule.clone())
            .expect("runner A")
            .with_threads(threads);
        runner_a.run(&a_spec, a_devices).expect("priming A");
        let fleet_a = runner_a.run(&a_spec, a_devices).expect("timed A");
        let runner_b = FleetRunner::new(&bm, bm_n, bm_schedule.clone())
            .expect("runner B")
            .with_packed(false)
            .with_threads(threads);
        runner_b.run(&b_spec, b_devices).expect("priming B");
        let fleet_b = runner_b.run(&b_spec, b_devices).expect("timed B");
        let back_to_back_wall = fleet_a.wall + fleet_b.wall;
        let back_to_back_rate =
            (a_devices + b_devices) as f64 / back_to_back_wall.as_secs_f64().max(1e-9);

        // The floor: same lots, same thread count, one pool. Prime once so
        // the packed engine and worker slots are warm like the fleets'.
        let floor = TestFloor::new().with_threads(threads);
        floor.run(lots()).expect("priming floor");
        let t0 = Instant::now();
        let report = floor.run(lots()).expect("timed floor");
        let floor_wall = t0.elapsed();
        assert_eq!(report.completed(), a_devices + b_devices, "nothing aborted");

        let floor_rate = (a_devices + b_devices) as f64 / floor_wall.as_secs_f64().max(1e-9);
        let ratio = floor_rate / back_to_back_rate;
        println!(
            "{:>7} {:>8.1}ms {:>8.1}ms {:>12.1}/s {:>8.1}ms {:>11.1}/s {:>7.2}x",
            threads,
            fleet_a.wall.as_secs_f64() * 1e3,
            fleet_b.wall.as_secs_f64() * 1e3,
            back_to_back_rate,
            floor_wall.as_secs_f64() * 1e3,
            floor_rate,
            ratio
        );
        rows.push(Row {
            threads,
            lot_a_ms: fleet_a.wall.as_secs_f64() * 1e3,
            lot_b_ms: fleet_b.wall.as_secs_f64() * 1e3,
            back_to_back_devices_per_sec: back_to_back_rate,
            floor_ms: floor_wall.as_secs_f64() * 1e3,
            floor_devices_per_sec: floor_rate,
            tenancy_ratio: ratio,
        });
    }

    let best_ratio = rows
        .iter()
        .map(|r| r.tenancy_ratio)
        .fold(f64::NEG_INFINITY, f64::max);
    println!();
    println!("best tenancy ratio (floor / back-to-back devices/s): {best_ratio:.2}x");
    for row in &rows {
        assert!(
            row.tenancy_ratio >= 0.70,
            "floor at {} threads fell to {:.2}x of back-to-back — multi-tenancy \
             overhead is out of control",
            row.threads,
            row.tenancy_ratio
        );
    }
    if best_ratio < 0.85 {
        let message = format!(
            "floor serving is more than 15% behind dedicated back-to-back fleets \
             at every thread count (best {best_ratio:.2}x)"
        );
        // Smoke lots are small enough that fixed per-run costs (thread
        // wake-ups, admission sampling) weigh disproportionately; warn
        // there, fail on the full configuration.
        assert!(smoke, "{message}");
        eprintln!("WARNING: {message} (smoke run)");
    }

    let rows_json = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"threads\": {}, \"lot_a_ms\": {:.3}, \"lot_b_ms\": {:.3}, \
                 \"back_to_back_devices_per_sec\": {:.2}, \"floor_ms\": {:.3}, \
                 \"floor_devices_per_sec\": {:.2}, \"tenancy_ratio\": {:.3}}}",
                r.threads,
                r.lot_a_ms,
                r.lot_b_ms,
                r.back_to_back_devices_per_sec,
                r.floor_ms,
                r.floor_devices_per_sec,
                r.tenancy_ratio
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"benchmark\": \"floor_multi_tenant_serving\",\n  \
         \"hardware_threads\": {hardware_threads},\n  \"smoke\": {smoke},\n  \
         \"lot_a\": {{\"soc\": \"figure1\", \"n\": {fig1_n}, \"devices\": {a_devices}, \
         \"defect_rate\": 0.25, \"mode\": \"packed\", \"priority\": 2}},\n  \
         \"lot_b\": {{\"soc\": \"bist_memory\", \"n\": {bm_n}, \"devices\": {b_devices}, \
         \"defect_rate\": 1.0, \"mode\": \"scalar\", \"priority\": 1}},\n  \
         \"best_tenancy_ratio\": {best_ratio:.3},\n  \"rows\": [\n{rows_json}\n  ]\n}}\n"
    );
    std::fs::write("BENCH_floor.json", &json).expect("write BENCH_floor.json");
    println!();
    println!("wrote BENCH_floor.json");
}
