//! Instrumentation overhead of the observability layer on the two hot
//! paths it touches: the bit-parallel (PPSFP) fault-simulation engine and
//! the cycle-accurate SoC simulator.
//!
//! Each workload runs three ways — instrumentation disabled (the default
//! `NullSink` / no probe), with a full JSONL event trace, and (for the SoC
//! simulator) with a cycle-accurate VCD probe — and reports the best-of-N
//! wall-clock time plus the overhead relative to the disabled baseline, to
//! stdout and to `BENCH_observability.json` at the workspace root.
//!
//! The contract stated in `casbus-obs` is that the *disabled* configuration
//! costs one predictable branch per coarse event; this binary is the
//! regression check behind that claim.
//!
//! ```text
//! cargo run --release -p casbus-bench --bin observability_overhead
//! ```

use std::time::{Duration, Instant};

use casbus::{CasGeometry, Tam};
use casbus_controller::{schedule, TestProgram};
use casbus_netlist::crosspoint::synthesize_crosspoint_cas;
use casbus_netlist::fault::enumerate_faults;
use casbus_netlist::PackedEngine;
use casbus_obs::{MemorySink, VcdWriter};
use casbus_sim::{report, SocSimulator};
use casbus_soc::catalog;
use casbus_tpg::BitVec;

const COUNT: usize = 8;
const DEPTH: usize = 6;
const RUNS: usize = 7;
const BUDGET: Duration = Duration::from_secs(5);

fn sequences(inputs: usize) -> Vec<Vec<BitVec>> {
    let mut state = 0x1234_5678_9abc_def0u64;
    (0..COUNT)
        .map(|_| {
            (0..DEPTH)
                .map(|_| {
                    (0..inputs)
                        .map(|_| {
                            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                            state >> 62 & 1 == 1
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Best-of-`RUNS` wall clock within a time budget.
fn best_of<T>(mut f: impl FnMut() -> T) -> Duration {
    let started = Instant::now();
    let t0 = Instant::now();
    let mut _result = f();
    let mut best = t0.elapsed();
    for _ in 1..RUNS {
        if started.elapsed() > BUDGET {
            break;
        }
        let t0 = Instant::now();
        _result = f();
        let run = t0.elapsed();
        if run < best {
            best = run;
        }
    }
    best
}

struct Row {
    workload: &'static str,
    config: &'static str,
    best: Duration,
    overhead_pct: f64,
    events: usize,
}

fn pct(base: Duration, measured: Duration) -> f64 {
    (measured.as_secs_f64() / base.as_secs_f64().max(1e-9) - 1.0) * 100.0
}

fn ppsfp_rows(rows: &mut Vec<Row>) {
    // Table-1's N=6 P=3 crosspoint CAS: large enough that grading dominates
    // and per-event costs are visible, small enough to iterate.
    let netlist = synthesize_crosspoint_cas(CasGeometry::new(6, 3).expect("valid"));
    let seqs = sequences(netlist.inputs().len());
    let faults = enumerate_faults(&netlist).len();

    // Single-threaded engines: partitioning noise would drown a 2% signal.
    let disabled = PackedEngine::new(&netlist).expect("valid").with_threads(1);
    let base = best_of(|| disabled.fault_coverage(&seqs));
    rows.push(Row {
        workload: "ppsfp_fault_coverage",
        config: "disabled",
        best: base,
        overhead_pct: 0.0,
        events: 0,
    });

    let sink = MemorySink::new();
    let traced = PackedEngine::new(&netlist)
        .expect("valid")
        .with_threads(1)
        .with_trace(sink.clone());
    let jsonl = best_of(|| {
        sink.clear();
        traced.fault_coverage(&seqs);
        sink.jsonl().len()
    });
    rows.push(Row {
        workload: "ppsfp_fault_coverage",
        config: "jsonl",
        best: jsonl,
        overhead_pct: pct(base, jsonl),
        events: sink.len(),
    });
    println!(
        "ppsfp ({faults} faults): disabled {:.3}ms, jsonl {:.3}ms ({:+.1}%)",
        base.as_secs_f64() * 1e3,
        jsonl.as_secs_f64() * 1e3,
        pct(base, jsonl)
    );
}

fn soc_rows(rows: &mut Vec<Row>) {
    let soc = catalog::figure1_soc();
    let n = 4;
    let sched = schedule::packed_schedule(&soc, n).expect("schedulable");
    let tam = Tam::new(&soc, n).expect("valid");
    let program = TestProgram::from_schedule(&tam, &soc, &sched).expect("programmable");

    let base = best_of(|| {
        let mut sim = SocSimulator::new(&soc, n).expect("valid");
        report::run_program(&mut sim, &program).expect("runs")
    });
    rows.push(Row {
        workload: "soc_run_program",
        config: "disabled",
        best: base,
        overhead_pct: 0.0,
        events: 0,
    });

    let sink = MemorySink::new();
    let jsonl = best_of(|| {
        sink.clear();
        let mut sim = SocSimulator::new(&soc, n).expect("valid");
        sim.set_trace(sink.clone());
        report::run_program(&mut sim, &program).expect("runs");
        sink.jsonl().len()
    });
    rows.push(Row {
        workload: "soc_run_program",
        config: "jsonl",
        best: jsonl,
        overhead_pct: pct(base, jsonl),
        events: sink.len(),
    });

    let vcd = best_of(|| {
        let writer = std::rc::Rc::new(std::cell::RefCell::new(VcdWriter::new("1ns")));
        let mut sim = SocSimulator::new(&soc, n).expect("valid");
        sim.attach_probe(Box::new(std::rc::Rc::clone(&writer)));
        report::run_program(&mut sim, &program).expect("runs");
        let rendered = writer.borrow_mut().render().len();
        rendered
    });
    rows.push(Row {
        workload: "soc_run_program",
        config: "vcd",
        best: vcd,
        overhead_pct: pct(base, vcd),
        events: 0,
    });
    println!(
        "soc run_program: disabled {:.3}ms, jsonl {:.3}ms ({:+.1}%), vcd {:.3}ms ({:+.1}%)",
        base.as_secs_f64() * 1e3,
        jsonl.as_secs_f64() * 1e3,
        pct(base, jsonl),
        vcd.as_secs_f64() * 1e3,
        pct(base, vcd)
    );
}

fn main() {
    let mut rows = Vec::new();
    ppsfp_rows(&mut rows);
    soc_rows(&mut rows);

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"workload\": \"{}\", \"config\": \"{}\", \"best_ms\": {:.3}, \
                 \"overhead_pct\": {:.2}, \"events\": {}}}",
                r.workload,
                r.config,
                r.best.as_secs_f64() * 1e3,
                r.overhead_pct,
                r.events
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"observability_overhead\",\n  \"configs\": \
         [\"disabled\", \"jsonl\", \"vcd\"],\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let path = "BENCH_observability.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
