//! Instrumentation overhead of the observability layer on the hot paths it
//! touches: the bit-parallel (PPSFP) fault-simulation engine, the
//! cycle-accurate SoC simulator, and fleet batch serving under a live
//! [`FleetMonitor`].
//!
//! Each workload runs several ways — instrumentation disabled (the default
//! `NullSink` / no probe / no monitor), with a full JSONL event trace, with
//! a cycle-accurate VCD probe (SoC simulator), and with streaming health
//! snapshots or per-device flight recorders (fleet) — and reports the
//! best-of-N wall-clock time plus the overhead relative to the disabled
//! baseline, to stdout and to `BENCH_observability.json` at the workspace
//! root.
//!
//! The contract stated in `casbus-obs` is that the *disabled* configuration
//! costs one predictable branch per coarse event, and that a live monitor
//! stays within a couple of percent of the unmonitored fleet; this binary
//! is the regression check behind both claims. Set `CASBUS_BENCH_SMOKE=1`
//! for the fast CI configuration (a 64-device lot instead of 256).
//!
//! ```text
//! cargo run --release -p casbus-bench --bin observability_overhead
//! ```

use std::time::{Duration, Instant};

use casbus::{CasGeometry, Tam};
use casbus_controller::{schedule, TestProgram};
use casbus_netlist::crosspoint::synthesize_crosspoint_cas;
use casbus_netlist::fault::enumerate_faults;
use casbus_netlist::PackedEngine;
use casbus_obs::{MemorySink, VcdWriter};
use casbus_sim::{report, FleetMonitor, FleetRunner, MonitorConfig, SocSimulator, VariationSpec};
use casbus_soc::catalog;
use casbus_tpg::BitVec;

const COUNT: usize = 8;
const DEPTH: usize = 6;
const RUNS: usize = 7;
const BUDGET: Duration = Duration::from_secs(5);
const FLEET_BUDGET: Duration = Duration::from_secs(45);

fn sequences(inputs: usize) -> Vec<Vec<BitVec>> {
    let mut state = 0x1234_5678_9abc_def0u64;
    (0..COUNT)
        .map(|_| {
            (0..DEPTH)
                .map(|_| {
                    (0..inputs)
                        .map(|_| {
                            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                            state >> 62 & 1 == 1
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Best-of-`RUNS` wall clock within a time budget.
fn best_of<T>(mut f: impl FnMut() -> T) -> Duration {
    let started = Instant::now();
    let t0 = Instant::now();
    let mut _result = f();
    let mut best = t0.elapsed();
    for _ in 1..RUNS {
        if started.elapsed() > BUDGET {
            break;
        }
        let t0 = Instant::now();
        _result = f();
        let run = t0.elapsed();
        if run < best {
            best = run;
        }
    }
    best
}

struct Row {
    workload: &'static str,
    config: &'static str,
    best: Duration,
    overhead_pct: f64,
    events: usize,
}

fn pct(base: Duration, measured: Duration) -> f64 {
    (measured.as_secs_f64() / base.as_secs_f64().max(1e-9) - 1.0) * 100.0
}

fn ppsfp_rows(rows: &mut Vec<Row>) {
    // Table-1's N=6 P=3 crosspoint CAS: large enough that grading dominates
    // and per-event costs are visible, small enough to iterate.
    let netlist = synthesize_crosspoint_cas(CasGeometry::new(6, 3).expect("valid"));
    let seqs = sequences(netlist.inputs().len());
    let faults = enumerate_faults(&netlist).len();

    // Single-threaded engines: partitioning noise would drown a 2% signal.
    // Sub-millisecond runs are hostage to scheduler jitter, so the two
    // configs are interleaved over many rounds and best-of is taken per
    // config — a block of one config can land in a noisy stretch and fake
    // a 2x "overhead" otherwise.
    let disabled = PackedEngine::new(&netlist).expect("valid").with_threads(1);
    let sink = MemorySink::new();
    let traced = PackedEngine::new(&netlist)
        .expect("valid")
        .with_threads(1)
        .with_trace(sink.clone());
    let mut base = Duration::MAX;
    let mut jsonl = Duration::MAX;
    let mut render = Duration::MAX;
    let started = Instant::now();
    for round in 0..200 {
        if round > 0 && started.elapsed() > BUDGET {
            break;
        }
        let t0 = Instant::now();
        disabled.fault_coverage(&seqs);
        base = base.min(t0.elapsed());

        sink.clear();
        let t0 = Instant::now();
        traced.fault_coverage(&seqs);
        jsonl = jsonl.min(t0.elapsed());
        // JSONL rendering is a post-run export, not part of the traced
        // workload; timing it separately keeps this row an honest measure
        // of in-loop recording cost. (Earlier recordings of this workload
        // folded the render into the timed region — see EXPERIMENTS.md §P3.)
        let t0 = Instant::now();
        let _ = sink.jsonl().len();
        render = render.min(t0.elapsed());
    }
    rows.push(Row {
        workload: "ppsfp_fault_coverage",
        config: "disabled",
        best: base,
        overhead_pct: 0.0,
        events: 0,
    });
    rows.push(Row {
        workload: "ppsfp_fault_coverage",
        config: "jsonl",
        best: jsonl,
        overhead_pct: pct(base, jsonl),
        events: sink.len(),
    });
    println!(
        "ppsfp ({faults} faults): disabled {:.3}ms, jsonl {:.3}ms ({:+.1}%), export {:.3}ms",
        base.as_secs_f64() * 1e3,
        jsonl.as_secs_f64() * 1e3,
        pct(base, jsonl),
        render.as_secs_f64() * 1e3,
    );
}

fn soc_rows(rows: &mut Vec<Row>) {
    let soc = catalog::figure1_soc();
    let n = 4;
    let sched = schedule::packed_schedule(&soc, n).expect("schedulable");
    let tam = Tam::new(&soc, n).expect("valid");
    let program = TestProgram::from_schedule(&tam, &soc, &sched).expect("programmable");

    let base = best_of(|| {
        let mut sim = SocSimulator::new(&soc, n).expect("valid");
        report::run_program(&mut sim, &program).expect("runs")
    });
    rows.push(Row {
        workload: "soc_run_program",
        config: "disabled",
        best: base,
        overhead_pct: 0.0,
        events: 0,
    });

    let sink = MemorySink::new();
    let jsonl = best_of(|| {
        sink.clear();
        let mut sim = SocSimulator::new(&soc, n).expect("valid");
        sim.set_trace(sink.clone());
        report::run_program(&mut sim, &program).expect("runs");
        sink.jsonl().len()
    });
    rows.push(Row {
        workload: "soc_run_program",
        config: "jsonl",
        best: jsonl,
        overhead_pct: pct(base, jsonl),
        events: sink.len(),
    });

    let vcd = best_of(|| {
        let writer = std::rc::Rc::new(std::cell::RefCell::new(VcdWriter::new("1ns")));
        let mut sim = SocSimulator::new(&soc, n).expect("valid");
        sim.attach_probe(Box::new(std::rc::Rc::clone(&writer)));
        report::run_program(&mut sim, &program).expect("runs");
        let rendered = writer.borrow_mut().render().len();
        rendered
    });
    rows.push(Row {
        workload: "soc_run_program",
        config: "vcd",
        best: vcd,
        overhead_pct: pct(base, vcd),
        events: 0,
    });
    println!(
        "soc run_program: disabled {:.3}ms, jsonl {:.3}ms ({:+.1}%), vcd {:.3}ms ({:+.1}%)",
        base.as_secs_f64() * 1e3,
        jsonl.as_secs_f64() * 1e3,
        pct(base, jsonl),
        vcd.as_secs_f64() * 1e3,
        pct(base, vcd)
    );
}

fn fleet_rows(rows: &mut Vec<Row>) {
    let smoke = std::env::var("CASBUS_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let fleet_size: u64 = if smoke { 64 } else { 256 };

    // The example lot: Figure-1 on an 8-wire bus with a 2% defect stamp.
    // Monitoring must watch this run without slowing it down: the issue's
    // budget is 2% throughput overhead with snapshots streaming.
    let soc = catalog::figure1_soc();
    let n = 8;
    let sched = schedule::packed_schedule(&soc, n).expect("schedulable");
    let spec = VariationSpec::new(2026, 0.02);

    let baseline = FleetRunner::new(&soc, n, sched.clone()).expect("valid");
    let snap_runner = FleetRunner::new(&soc, n, sched.clone()).expect("valid");
    let rec_runner = FleetRunner::new(&soc, n, sched).expect("valid");

    // Nothing drains the channel while the lot runs (the receiver is read
    // after the fact), so size it for the whole snapshot stream — a live
    // consumer like `examples/fleet.rs --monitor` gets by with the default.
    let deep_channel = MonitorConfig {
        channel_capacity: 1024,
        ..MonitorConfig::default()
    };

    // A lot run is seconds, not microseconds, so the three configs are
    // interleaved round-robin: machine-load drift hits all of them equally
    // instead of biasing whichever config happened to run in a quiet
    // stretch. Each config keeps its runner (and warm route cache) across
    // rounds; per-config best-of is taken over the rounds.
    let mut best = [Duration::MAX; 3];
    let mut snapshots = Vec::new();
    let mut dumps = 0usize;
    let mut defective = 0usize;
    let started = Instant::now();
    for round in 0..RUNS {
        if round > 0 && started.elapsed() > FLEET_BUDGET {
            break;
        }

        let t0 = Instant::now();
        baseline.run(&spec, fleet_size).expect("runs");
        best[0] = best[0].min(t0.elapsed());

        // Snapshots on, flight recorders off: the live-dashboard state.
        let t0 = Instant::now();
        let (monitor, rx) = FleetMonitor::with_config(MonitorConfig {
            recorder_capacity: 0,
            ..deep_channel
        });
        snap_runner
            .run_monitored(&spec, fleet_size, &monitor)
            .expect("runs");
        best[1] = best[1].min(t0.elapsed());
        snapshots = rx.try_iter().collect::<Vec<_>>();

        // Snapshots plus a per-device flight recorder; every defective
        // die must leave a post-mortem dump behind.
        let t0 = Instant::now();
        let (monitor, _rx) = FleetMonitor::with_config(deep_channel);
        let fleet = rec_runner
            .run_monitored(&spec, fleet_size, &monitor)
            .expect("runs");
        best[2] = best[2].min(t0.elapsed());
        let recorded = monitor.dumps();
        for device in fleet.devices.iter().filter(|d| d.fault.is_some()) {
            assert!(
                recorded.iter().any(|x| x.device_id == device.device_id),
                "defective device {} left no flight-recorder dump",
                device.device_id
            );
        }
        dumps = recorded.len();
        defective = fleet.devices.iter().filter(|d| d.fault.is_some()).count();
    }
    let [base, snap, rec] = best;

    let last = snapshots.last().expect("final snapshot");
    assert!(last.last, "the closing snapshot is flagged");
    assert_eq!(last.completed, fleet_size, "the closing snapshot is total");
    assert!(
        last.queue_wait_us.p50 < last.queue_wait_us.p99,
        "queue-wait quantiles must spread: {}",
        last.queue_wait_us
    );
    if !smoke {
        assert!(
            snapshots.len() >= 10,
            "a full lot emits >= 10 snapshots, got {}",
            snapshots.len()
        );
    }
    assert!(defective > 0, "the 2% stamp marks at least one die");
    rows.push(Row {
        workload: "fleet_monitor",
        config: "disabled",
        best: base,
        overhead_pct: 0.0,
        events: 0,
    });
    rows.push(Row {
        workload: "fleet_monitor",
        config: "snapshots",
        best: snap,
        overhead_pct: pct(base, snap),
        events: snapshots.len(),
    });
    rows.push(Row {
        workload: "fleet_monitor",
        config: "recorder",
        best: rec,
        overhead_pct: pct(base, rec),
        events: dumps,
    });

    println!(
        "fleet_monitor ({fleet_size} devices): disabled {:.3}ms, snapshots {:.3}ms ({:+.1}%, \
         {} snapshots), recorder {:.3}ms ({:+.1}%, {dumps} dumps / {defective} defective)",
        base.as_secs_f64() * 1e3,
        snap.as_secs_f64() * 1e3,
        pct(base, snap),
        snapshots.len(),
        rec.as_secs_f64() * 1e3,
        pct(base, rec)
    );
}

fn main() {
    let mut rows = Vec::new();
    ppsfp_rows(&mut rows);
    soc_rows(&mut rows);
    fleet_rows(&mut rows);

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"workload\": \"{}\", \"config\": \"{}\", \"best_ms\": {:.3}, \
                 \"overhead_pct\": {:.2}, \"events\": {}}}",
                r.workload,
                r.config,
                r.best.as_secs_f64() * 1e3,
                r.overhead_pct,
                r.events
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"observability_overhead\",\n  \"configs\": \
         [\"disabled\", \"jsonl\", \"vcd\", \"snapshots\", \"recorder\"],\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let path = "BENCH_observability.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
