//! Experiment X4 (extension) — power-constrained test scheduling: the
//! constraint the SoC test-scheduling literature layered directly onto
//! CAS-BUS-class TAMs (scan toggling exceeds mission-mode power, so
//! concurrency must be capped even when bus wires are free).
//!
//! Sweeps the power budget over the ITC'02-like SoC and reports the
//! test-time cost of each cap.

use casbus_controller::schedule::{
    packed_schedule, peak_power, power_aware_schedule, serial_schedule,
};
use casbus_soc::catalog;

fn main() {
    let soc = catalog::itc02_like_soc();
    let n = 8;
    let serial = serial_schedule(&soc, n).expect("fits").makespan();
    let unconstrained = packed_schedule(&soc, n).expect("fits").makespan();
    println!(
        "Power-aware scheduling on {:?} ({} cores, N = {n})",
        soc.name(),
        soc.cores().len()
    );
    println!("serial baseline: {serial} cycles; unconstrained packing: {unconstrained} cycles");
    println!();
    println!(
        "{:>8} | {:>10} | {:>10} | {:>12}",
        "budget", "makespan", "peak power", "vs unconstr."
    );
    println!("{:-<9}+{:-<12}+{:-<12}+{:-<13}", "", "", "", "");
    for budget in [100u32, 150, 200, 300, 400, 600, 1000] {
        match power_aware_schedule(&soc, n, budget) {
            Ok(sched) => {
                let peak = peak_power(&soc, &sched);
                assert!(peak <= budget, "scheduler exceeded its own budget");
                println!(
                    "{:>8} | {:>10} | {:>10} | {:>11.2}x",
                    budget,
                    sched.makespan(),
                    peak,
                    sched.makespan() as f64 / unconstrained as f64
                );
            }
            Err(e) => println!("{budget:>8} | infeasible: {e}"),
        }
    }
    println!();
    println!("Reading: with one core's worth of power the schedule degrades to");
    println!("serial; each added allowance buys concurrency until the bus wires —");
    println!("not power — become the binding constraint, where the curve meets");
    println!("the unconstrained packing.");
}
