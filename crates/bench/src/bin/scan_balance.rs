//! Experiment C2 — the §4 claim that *"the test programmer can balance the
//! length of the scan chains within the test programs, in order to reduce
//! the test time"*.
//!
//! For a set of unbalanced scan cores, reports the per-core and SoC test
//! time before and after (i) balancing at fixed chain count and (ii)
//! re-partitioning to the wire count a wider CAS window grants.

use casbus_controller::{balance, time_model};
use casbus_soc::{CoreDescription, TestMethod};

fn scan_core(name: &str, chains: Vec<usize>, patterns: usize) -> CoreDescription {
    CoreDescription::new(name, TestMethod::Scan { chains, patterns })
}

fn main() {
    println!("Scan-chain balancing (paper §4)");
    println!();
    let cores = [
        scan_core("modem", vec![310, 12, 44], 150),
        scan_core("gpu", vec![512, 256], 200),
        scan_core("mcu", vec![90, 88, 91, 7], 100),
        scan_core("already_ok", vec![64, 64, 63], 80),
    ];
    println!(
        "{:<12} {:>18} {:>10} | {:>18} {:>10} | {:>8}",
        "core", "chains", "cycles", "balanced", "cycles", "saved"
    );
    println!("{:-<43}+{:-<30}+{:-<9}", "", "", "");
    let mut before_total = 0u64;
    let mut after_total = 0u64;
    for core in &cores {
        let TestMethod::Scan { chains, .. } = core.method() else {
            unreachable!("all cores are scan cores");
        };
        let balanced = balance::balance_chains(chains);
        let before = time_model::test_time(core);
        let after = time_model::scan_time_with_chains(core.method(), &balanced);
        assert!(after <= before, "balancing must never slow a core down");
        before_total += before;
        after_total += after;
        println!(
            "{:<12} {:>18} {:>10} | {:>18} {:>10} | {:>7.1}%",
            core.name(),
            format!("{chains:?}"),
            before,
            format!("{balanced:?}"),
            after,
            (before - after) as f64 / before as f64 * 100.0
        );
    }
    println!(
        "\nSoC total (serial): {before_total} -> {after_total} cycles ({:.1}% saved)",
        (before_total - after_total) as f64 / before_total as f64 * 100.0
    );

    println!("\nRe-partitioning to wider CAS windows (modem core, 366 flops, 150 patterns):");
    println!("{:>7} {:>16} {:>10}", "wires", "chains", "cycles");
    let flops: usize = 310 + 12 + 44;
    for wires in 1..=8 {
        let chains = balance::repartition_flops(flops, wires);
        let method = TestMethod::Scan {
            chains: chains.clone(),
            patterns: 150,
        };
        let cycles = time_model::scan_time_with_chains(&method, &chains);
        println!("{:>7} {:>16} {:>10}", wires, format!("{chains:?}"), cycles);
    }
    println!("\nReading: equalizing chain lengths removes the long-chain penalty,");
    println!("and granting more wires (bigger P) divides the shift depth further —");
    println!("exactly the optimization loop the paper assigns to the test programmer.");
}
