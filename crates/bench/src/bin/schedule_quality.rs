//! Experiment C1b — scheduler quality: how close does the greedy strip
//! packer get to the provably-optimal wave schedule (the execution model of
//! an actual test program, one CONFIGURATION phase per wave)?
//!
//! The paper leaves scheduling policy to the "good collaboration between the
//! test designer and the test programmer" (§4); this bench quantifies what
//! that collaboration is worth.

use casbus_controller::schedule::{packed_schedule, serial_schedule, wave_optimal_schedule};
use casbus_soc::catalog;
use rand::SeedableRng;

fn main() {
    println!("Scheduler quality: serial vs greedy-packed vs wave-optimal (cycles)");
    println!();
    let figure1 = catalog::figure1_soc();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xDA7E);
    let random10 = catalog::random_soc(&mut rng, 10, 3);
    let cases = [
        ("figure1 (6 cores)", figure1),
        ("random (10 cores)", random10),
    ];
    for (label, soc) in &cases {
        println!("{label}:");
        println!(
            "{:>4} | {:>10} {:>10} {:>12} | {:>9} {:>9}",
            "N", "serial", "packed", "wave-optimal", "pack/opt", "ser/opt"
        );
        let widths = soc.max_ports()..=(soc.max_ports() + 5);
        for n in widths {
            let serial = serial_schedule(soc, n).expect("fits").makespan();
            let packed = packed_schedule(soc, n).expect("fits").makespan();
            let optimal = wave_optimal_schedule(soc, n)
                .expect("small enough")
                .makespan();
            println!(
                "{:>4} | {:>10} {:>10} {:>12} | {:>8.3}x {:>8.3}x",
                n,
                serial,
                packed,
                optimal,
                packed as f64 / optimal as f64,
                serial as f64 / optimal as f64,
            );
        }
        println!();
    }
    println!("Reading: greedy packing stays within a few percent of the exact");
    println!("wave partition (and may even beat it, since staggered starts are");
    println!("allowed), while pure serial testing leaves 30-50% on the table at");
    println!("realistic bus widths.");
}
