//! Experiment C1b — scheduler quality: how close does the greedy strip
//! packer get to the provably-optimal wave schedule (the execution model of
//! an actual test program, one CONFIGURATION phase per wave), and how much
//! more does the annealed search recover on top?
//!
//! The paper leaves scheduling policy to the "good collaboration between the
//! test designer and the test programmer" (§4); this bench quantifies what
//! that collaboration is worth. Two sections:
//!
//! 1. the original width sweep on the Figure-1 SoC and a random 10-core
//!    SoC (serial vs packed vs wave-optimal),
//! 2. every Table-1 `(N, P)` row on the packing-heavy SoCs shared with the
//!    `schedule_search` experiment, adding the analytic annealed search
//!    ([`search_schedule`]) and bus utilisation to the comparison.

use casbus_bench::table1_schedule_cases;
use casbus_controller::schedule::{
    packed_schedule, serial_schedule, wave_optimal_schedule, Schedule,
};
use casbus_controller::search::{search_schedule, SearchBudget};
use casbus_soc::catalog;
use rand::SeedableRng;

/// Busy wire-cycles over offered wire-cycles: `Σ(Pᵢ·Tᵢ) / (N·makespan)`.
fn utilisation(sched: &Schedule) -> f64 {
    let area: u64 = sched
        .tests()
        .iter()
        .map(|t| t.wires as u64 * t.duration)
        .sum();
    let offered = sched.bus_width() as u64 * sched.makespan();
    if offered == 0 {
        0.0
    } else {
        area as f64 / offered as f64
    }
}

fn width_sweep() {
    println!("Scheduler quality: serial vs greedy-packed vs wave-optimal (cycles)");
    println!();
    let figure1 = catalog::figure1_soc();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xDA7E);
    let random10 = catalog::random_soc(&mut rng, 10, 3);
    let cases = [
        ("figure1 (6 cores)", figure1),
        ("random (10 cores)", random10),
    ];
    for (label, soc) in &cases {
        println!("{label}:");
        println!(
            "{:>4} | {:>10} {:>10} {:>12} | {:>9} {:>9}",
            "N", "serial", "packed", "wave-optimal", "pack/opt", "ser/opt"
        );
        let widths = soc.max_ports()..=(soc.max_ports() + 5);
        for n in widths {
            let serial = serial_schedule(soc, n).expect("fits").makespan();
            let packed = packed_schedule(soc, n).expect("fits").makespan();
            let optimal = wave_optimal_schedule(soc, n)
                .expect("small enough")
                .makespan();
            println!(
                "{:>4} | {:>10} {:>10} {:>12} | {:>8.3}x {:>8.3}x",
                n,
                serial,
                packed,
                optimal,
                packed as f64 / optimal as f64,
                serial as f64 / optimal as f64,
            );
        }
        println!();
    }
}

fn table1_rows(budget: SearchBudget) {
    println!("All Table-1 (N, P) rows, packing-heavy SoCs, heuristics vs search:");
    println!(
        "{:>2} {:>2} {:>5} | {:>9} {:>9} {:>9} {:>9} | {:>6} {:>5}",
        "N", "P", "cores", "serial", "packed", "wave-opt", "searched", "gain", "util"
    );
    let mut strict_wins = 0usize;
    let mut rows = 0usize;
    for case in table1_schedule_cases() {
        let serial = serial_schedule(&case.soc, case.n).expect("fits");
        let packed = packed_schedule(&case.soc, case.n).expect("fits");
        let wave = wave_optimal_schedule(&case.soc, case.n).ok();
        let searched = search_schedule(&case.soc, case.n, budget).expect("fits");
        assert!(searched.is_conflict_free(), "N={} P={}", case.n, case.p);
        assert_eq!(
            searched.tests().len(),
            case.soc.cores().len(),
            "every core scheduled (N={} P={})",
            case.n,
            case.p
        );

        let best_heuristic = serial
            .makespan()
            .min(packed.makespan())
            .min(wave.as_ref().map_or(u64::MAX, Schedule::makespan));
        assert!(
            searched.makespan() <= best_heuristic,
            "search lost to a heuristic on N={} P={}",
            case.n,
            case.p
        );
        if searched.makespan() < best_heuristic {
            strict_wins += 1;
        }
        rows += 1;
        println!(
            "{:>2} {:>2} {:>5} | {:>9} {:>9} {:>9} {:>9} | {:>5.1}% {:>4.0}%",
            case.n,
            case.p,
            case.soc.cores().len(),
            serial.makespan(),
            packed.makespan(),
            wave.as_ref()
                .map_or_else(|| "-".to_owned(), |s| s.makespan().to_string()),
            searched.makespan(),
            100.0 * (best_heuristic - searched.makespan()) as f64 / best_heuristic as f64,
            100.0 * utilisation(&searched),
        );
    }
    println!();
    println!("search strictly beat the best heuristic on {strict_wins}/{rows} rows");
}

fn main() {
    let smoke = std::env::var("CASBUS_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let budget = if smoke {
        SearchBudget::smoke()
    } else {
        SearchBudget::default()
    };
    width_sweep();
    table1_rows(budget);
    println!();
    println!("Reading: greedy packing stays within a few percent of the exact");
    println!("wave partition (and may even beat it, since staggered starts are");
    println!("allowed), while pure serial testing leaves 30-50% on the table at");
    println!("realistic bus widths. The annealed search then recovers a further");
    println!("few percent over the best heuristic on most packing-heavy rows;");
    println!("see the schedule_search experiment for the execution-validated run.");
}
