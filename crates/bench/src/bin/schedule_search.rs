//! Experiment P5 — simulation-in-the-loop schedule search: what does an
//! annealed, execution-validated makespan search buy over the one-shot
//! heuristics, and what does it cost?
//!
//! One deterministic pseudo-random SoC per Table-1 `(N, P)` row (shared
//! with `schedule_quality` via [`casbus_bench::table1_schedule_cases`]).
//! For every row the search runs end to end through
//! [`casbus_sim::run_program_searched`]: heuristic seeding, annealed local
//! moves, survivor validation on the compiled word-level engine behind a
//! shared route-table cache, and a final bit-exact gate of the winner
//! against the bit-serial reference interpreter. Per row we record the
//! heuristic and searched makespans, the search wall time, and the route
//! cache's hit rate.
//!
//! Results go to stdout and `BENCH_schedule_search.json` at the workspace
//! root. Set `CASBUS_BENCH_SMOKE=1` for the CI configuration (the small
//! fixed-seed [`SearchBudget::smoke`] budget).

use std::time::Instant;

use casbus_bench::table1_schedule_cases;
use casbus_controller::schedule::{
    packed_schedule, serial_schedule, wave_optimal_schedule, Schedule,
};
use casbus_controller::search::SearchBudget;
use casbus_obs::MetricsRegistry;
use casbus_sim::run_program_searched_with_metrics;

struct Row {
    n: usize,
    p: usize,
    cores: usize,
    serial: u64,
    packed: u64,
    wave_optimal: Option<u64>,
    searched: u64,
    utilisation: f64,
    search_ms: f64,
    cache_hits: u64,
    cache_misses: u64,
}

impl Row {
    fn best_heuristic(&self) -> u64 {
        self.serial
            .min(self.packed)
            .min(self.wave_optimal.unwrap_or(u64::MAX))
    }

    fn improvement_pct(&self) -> f64 {
        let best = self.best_heuristic();
        if best == 0 {
            0.0
        } else {
            100.0 * (best - self.searched) as f64 / best as f64
        }
    }

    fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Busy wire-cycles over offered wire-cycles: `Σ(Pᵢ·Tᵢ) / (N·makespan)`.
fn utilisation(sched: &Schedule) -> f64 {
    let area: u64 = sched
        .tests()
        .iter()
        .map(|t| t.wires as u64 * t.duration)
        .sum();
    let offered = sched.bus_width() as u64 * sched.makespan();
    if offered == 0 {
        0.0
    } else {
        area as f64 / offered as f64
    }
}

fn main() {
    let smoke = std::env::var("CASBUS_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let budget = if smoke {
        SearchBudget::smoke()
    } else {
        SearchBudget::default()
    };
    println!(
        "Schedule search vs heuristics on Table-1-row SoCs ({} rounds x {} moves, top-{}{})",
        budget.rounds,
        budget.moves_per_round,
        budget.top_k,
        if smoke { ", smoke" } else { "" }
    );
    println!();
    println!(
        "{:>2} {:>2} {:>5} | {:>9} {:>9} {:>9} {:>9} | {:>6} {:>5} | {:>9} {:>6}",
        "N",
        "P",
        "cores",
        "serial",
        "packed",
        "wave-opt",
        "searched",
        "gain",
        "util",
        "search",
        "cache"
    );
    println!("{:-<13}+{:-<41}+{:-<14}+{:-<17}", "", "", "", "");

    let mut rows = Vec::new();
    for case in table1_schedule_cases() {
        let serial = serial_schedule(&case.soc, case.n).expect("fits").makespan();
        let packed = packed_schedule(&case.soc, case.n).expect("fits").makespan();
        let wave_optimal = wave_optimal_schedule(&case.soc, case.n)
            .ok()
            .map(|s| s.makespan());

        let metrics = MetricsRegistry::new();
        let t0 = Instant::now();
        let (schedule, report) =
            run_program_searched_with_metrics(&case.soc, case.n, budget, &metrics)
                .expect("searchable and bit-exact");
        let search_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(schedule.is_conflict_free(), "N={} P={}", case.n, case.p);
        assert!(report.all_pass(), "N={} P={}", case.n, case.p);

        let row = Row {
            n: case.n,
            p: case.p,
            cores: case.soc.cores().len(),
            serial,
            packed,
            wave_optimal,
            searched: schedule.makespan(),
            utilisation: utilisation(&schedule),
            search_ms,
            cache_hits: metrics.counter("search.route_cache.hits"),
            cache_misses: metrics.counter("search.route_cache.misses"),
        };
        assert!(
            row.searched <= row.best_heuristic(),
            "search lost to a heuristic on N={} P={}",
            case.n,
            case.p
        );
        println!(
            "{:>2} {:>2} {:>5} | {:>9} {:>9} {:>9} {:>9} | {:>5.1}% {:>4.0}% | {:>7.1}ms {:>5.0}%",
            row.n,
            row.p,
            row.cores,
            row.serial,
            row.packed,
            row.wave_optimal
                .map_or_else(|| "-".to_owned(), |m| m.to_string()),
            row.searched,
            row.improvement_pct(),
            100.0 * row.utilisation,
            row.search_ms,
            100.0 * row.cache_hit_rate(),
        );
        rows.push(row);
    }

    let strict_wins = rows
        .iter()
        .filter(|r| r.searched < r.best_heuristic())
        .count();
    println!();
    println!(
        "search strictly beat the best heuristic on {strict_wins}/{} rows",
        rows.len()
    );
    assert!(
        strict_wins >= 4,
        "expected strict improvements on at least 4 of {} rows, got {strict_wins}",
        rows.len()
    );

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"n\": {}, \"p\": {}, \"cores\": {}, \"serial\": {}, \"packed\": {}, \
                 \"wave_optimal\": {}, \"best_heuristic\": {}, \"searched\": {}, \
                 \"improvement_pct\": {:.2}, \"utilisation\": {:.4}, \"search_ms\": {:.3}, \
                 \"cache_hits\": {}, \"cache_misses\": {}, \"cache_hit_rate\": {:.4}}}",
                r.n,
                r.p,
                r.cores,
                r.serial,
                r.packed,
                r.wave_optimal
                    .map_or_else(|| "null".to_owned(), |m| m.to_string()),
                r.best_heuristic(),
                r.searched,
                r.improvement_pct(),
                r.utilisation,
                r.search_ms,
                r.cache_hits,
                r.cache_misses,
                r.cache_hit_rate(),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"schedule_search\",\n  \"smoke\": {smoke},\n  \
         \"budget\": {{\"rounds\": {}, \"moves_per_round\": {}, \"top_k\": {}, \"seed\": {}}},\n  \
         \"strict_wins\": {strict_wins},\n  \"rows\": [\n{}\n  ]\n}}\n",
        budget.rounds,
        budget.moves_per_round,
        budget.top_k,
        budget.seed,
        json_rows.join(",\n")
    );
    let path = "BENCH_schedule_search.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
