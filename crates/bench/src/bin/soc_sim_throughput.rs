//! Bit-serial reference vs compiled word-level session engine throughput.
//!
//! Executes complete scheduled test programs (packed schedules — concurrent
//! waves, dynamic reconfiguration between waves) on Table-1-sized SoCs with
//! three engines:
//!
//! * the bit-serial reference interpreter
//!   ([`casbus_sim::run_program_reference`]),
//! * the compiled engine at 1 worker thread, and
//! * the compiled engine with one worker per available CPU.
//!
//! The reports from all three are asserted bit-identical before any time
//! is recorded, so the numbers below always describe *equivalent* work.
//! Results go to stdout and to `BENCH_soc_sim.json` at the workspace root
//! (machine-readable, for tracking across commits).
//!
//! ```text
//! cargo run --release -p casbus-bench --bin soc_sim_throughput
//! ```
//!
//! Set `CASBUS_BENCH_SMOKE=1` for a fast CI configuration (fewer repeat
//! runs, small SoCs only).

use std::time::{Duration, Instant};

use casbus::Tam;
use casbus_controller::{schedule, TestProgram};
use casbus_sim::{run_program_reference, CompiledEngine, SocSimulator, SocTestReport};
use casbus_soc::{catalog, SocDescription};

/// Runs `f` at least once and at most `max_runs` times or `budget` total,
/// returning the fastest observed wall-clock time.
fn best_of<T>(max_runs: usize, budget: Duration, mut f: impl FnMut() -> T) -> (Duration, T) {
    let started = Instant::now();
    let t0 = Instant::now();
    let mut result = f();
    let mut best = t0.elapsed();
    for _ in 1..max_runs {
        if started.elapsed() > budget {
            break;
        }
        let t0 = Instant::now();
        result = f();
        let run = t0.elapsed();
        if run < best {
            best = run;
        }
    }
    (best, result)
}

struct Row {
    soc: &'static str,
    n: usize,
    cores: usize,
    test_cycles: u64,
    reference: Duration,
    compiled: Duration,
    threaded: Duration,
}

impl Row {
    fn speedup_compiled(&self) -> f64 {
        self.reference.as_secs_f64() / self.compiled.as_secs_f64().max(1e-9)
    }

    fn speedup_threaded(&self) -> f64 {
        self.reference.as_secs_f64() / self.threaded.as_secs_f64().max(1e-9)
    }
}

fn program_for(soc: &SocDescription, n: usize) -> TestProgram {
    let tam = Tam::new(soc, n).expect("bus wide enough");
    let sched = schedule::packed_schedule(soc, n).expect("schedule");
    TestProgram::from_schedule(&tam, soc, &sched).expect("program")
}

fn measure(name: &'static str, soc: &SocDescription, n: usize, threads: usize, smoke: bool) -> Row {
    let program = program_for(soc, n);
    let (runs, budget) = if smoke {
        (2, Duration::from_secs(2))
    } else {
        (5, Duration::from_secs(20))
    };

    let run_reference = || -> SocTestReport {
        let mut sim = SocSimulator::new(soc, n).expect("simulator");
        run_program_reference(&mut sim, &program).expect("reference run")
    };
    let run_compiled = |threads: usize| -> SocTestReport {
        let mut sim = SocSimulator::new(soc, n).expect("simulator");
        CompiledEngine::with_threads(threads)
            .run(&mut sim, &program)
            .expect("compiled run")
    };

    let (compiled_t, compiled) = best_of(runs, budget, || run_compiled(1));
    let (threaded_t, threaded) = best_of(runs, budget, || run_compiled(threads));
    let (reference_t, reference) = best_of(runs.min(3), budget, run_reference);
    assert_eq!(compiled, reference, "compiled engine diverged on {name}");
    assert_eq!(threaded, reference, "threaded engine diverged on {name}");
    assert!(reference.all_pass(), "fault-free {name} must pass");

    Row {
        soc: name,
        n,
        cores: soc.cores().len(),
        test_cycles: reference.total_cycles,
        reference: reference_t,
        compiled: compiled_t,
        threaded: threaded_t,
    }
}

fn main() {
    let smoke = std::env::var("CASBUS_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    println!(
        "SoC session-engine comparison (packed schedules, {} worker threads{})",
        threads,
        if smoke { ", smoke" } else { "" }
    );
    println!();
    println!(
        "{:<14} {:>3} {:>5} {:>10} | {:>12} {:>12} {:>12} | {:>8} {:>8}",
        "soc", "N", "cores", "cycles", "reference", "compiled", "threaded", "x1", "xT"
    );
    println!("{:-<36}+{:-<40}+{:-<18}", "", "", "");

    let mut targets: Vec<(&'static str, SocDescription, usize)> = vec![
        ("figure1", catalog::figure1_soc(), 8),
        ("figure2d_hier", catalog::figure2d_hierarchical_soc(), 4),
    ];
    if !smoke {
        targets.push(("itc02_like", catalog::itc02_like_soc(), 16));
    }

    let mut rows = Vec::new();
    for (name, soc, n) in &targets {
        let row = measure(name, soc, *n, threads, smoke);
        println!(
            "{:<14} {:>3} {:>5} {:>10} | {:>10.2}ms {:>10.2}ms {:>10.2}ms | {:>7.1}x {:>7.1}x",
            row.soc,
            row.n,
            row.cores,
            row.test_cycles,
            row.reference.as_secs_f64() * 1e3,
            row.compiled.as_secs_f64() * 1e3,
            row.threaded.as_secs_f64() * 1e3,
            row.speedup_compiled(),
            row.speedup_threaded()
        );
        rows.push(row);
    }

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"soc\": \"{}\", \"n\": {}, \"cores\": {}, \"test_cycles\": {}, \
                 \"reference_ms\": {:.3}, \"compiled_ms\": {:.3}, \"threaded_ms\": {:.3}, \
                 \"speedup_compiled\": {:.2}, \"speedup_threaded\": {:.2}}}",
                r.soc,
                r.n,
                r.cores,
                r.test_cycles,
                r.reference.as_secs_f64() * 1e3,
                r.compiled.as_secs_f64() * 1e3,
                r.threaded.as_secs_f64() * 1e3,
                r.speedup_compiled(),
                r.speedup_threaded()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"soc_session_simulation\",\n  \"engines\": [\"reference_bit_serial\", \"compiled_word_level\", \"compiled_threaded\"],\n  \"threads\": {threads},\n  \"smoke\": {smoke},\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let path = "BENCH_soc_sim.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
