//! Experiment T1 — regenerates the paper's **Table 1** (CAS synthesis
//! results): for every (N, P) row, the combination count `m`, the
//! instruction register width `k`, and the gate count of the synthesized
//! CAS.
//!
//! `m` and `k` reproduce the paper *exactly* (they are combinatorial).
//! Gate counts come from our own structural synthesis + NAND2-equivalent
//! area model instead of the paper's Synopsys flow, so absolute values
//! differ; the shape (monotone, superlinear growth dominated by `m`) is the
//! comparison that matters.

use casbus::SchemeSet;
use casbus_bench::{ratio, PAPER_TABLE1};
use casbus_netlist::{area, synth};

fn main() {
    println!("Table 1 — CAS synthesis results (paper vs reproduction)");
    println!(
        "{:>2} {:>2} | {:>6} {:>3} {:>7} | {:>6} {:>3} {:>8} {:>9} | {:>7}",
        "N", "P", "m", "k", "gates", "m", "k", "gates", "GE", "gates/paper"
    );
    println!("{:-<5}+{:-<20}+{:-<30}+{:-<9}", "", "", "", "");
    for row in PAPER_TABLE1 {
        let geometry = row.geometry();
        let m = geometry.combination_count();
        let k = geometry.instruction_width();
        let set = SchemeSet::enumerate(geometry).expect("table rows fit the budget");
        let netlist = synth::synthesize_cas(&set);
        let gates = netlist.gate_count();
        let ge = area::gate_equivalents(&netlist);
        assert_eq!(m, row.m, "m must reproduce exactly");
        assert_eq!(k, row.k, "k must reproduce exactly");
        println!(
            "{:>2} {:>2} | {:>6} {:>3} {:>7} | {:>6} {:>3} {:>8} {:>9.1} | {:>7}",
            row.n,
            row.p,
            row.m,
            row.k,
            row.gates,
            m,
            k,
            gates,
            ge,
            ratio(ge, f64::from(row.gates)),
        );
    }
    println!();
    println!("m and k columns match the paper exactly on every row.");
    println!("Gate counts use our open synthesis + NAND2-equivalent weights;");
    println!("growth with m reproduces the paper's shape (see EXPERIMENTS.md).");
}
