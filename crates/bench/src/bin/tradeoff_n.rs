//! Experiment C1 — the paper's central trade-off (§3.2, §4): *"the larger
//! is the width of the test bus (N), the shorter is the overall test time"*,
//! against the growing CAS-BUS area overhead.
//!
//! Sweeps N over the Figure-1 SoC (and a larger random SoC), reporting the
//! scheduled SoC test time, the configuration overhead, and the total
//! CAS-BUS area under the synthesized and pass-transistor models.

use casbus::{CasGeometry, SchemeSet, Tam};
use casbus_controller::schedule;
use casbus_netlist::{area, synth, AreaModel};
use casbus_soc::SocDescription;
use rand::SeedableRng;

fn cas_bus_area(soc: &SocDescription, n: usize) -> (f64, f64) {
    // One CAS per core (plus wrapped bus); area depends on each CAS's (N, P).
    let mut geometries: Vec<CasGeometry> = soc
        .cores()
        .iter()
        .map(|c| CasGeometry::new(n, c.required_ports()).expect("P <= N checked by caller"))
        .collect();
    if soc.system_bus().is_some_and(|b| b.wrapped) {
        geometries.push(CasGeometry::new(n, 1).expect("1 <= N"));
    }
    let mut synthesized = 0.0;
    let mut pass_transistor = 0.0;
    for g in geometries {
        let set = SchemeSet::enumerate(g).expect("swept widths stay in budget");
        let netlist = synth::synthesize_cas(&set);
        synthesized += area::gate_equivalents(&netlist);
        pass_transistor += AreaModel::PassTransistor.estimate(g);
    }
    (synthesized, pass_transistor)
}

fn sweep(soc: &SocDescription, widths: impl IntoIterator<Item = usize>) {
    println!(
        "{:>3} | {:>10} {:>6} | {:>9} {:>7} | {:>12} {:>12}",
        "N", "test", "waves", "config", "total", "area synth", "area pass-tr"
    );
    println!("{:-<4}+{:-<19}+{:-<18}+{:-<26}", "", "", "", "");
    let mut last: Option<u64> = None;
    for n in widths {
        let Ok(sched) = schedule::packed_schedule(soc, n) else {
            continue;
        };
        let tam = Tam::new(soc, n).expect("fits if the schedule fits");
        let config_cycles =
            sched.configuration_waves() as u64 * (tam.configuration_clocks() as u64 + 1);
        let total = sched.makespan() + config_cycles;
        let (synth_area, pt_area) = cas_bus_area(soc, n);
        println!(
            "{:>3} | {:>10} {:>6} | {:>9} {:>7} | {:>12.0} {:>12.0}",
            n,
            sched.makespan(),
            sched.configuration_waves(),
            config_cycles,
            total,
            synth_area,
            pt_area
        );
        if let Some(prev) = last {
            if sched.makespan() > prev {
                // Greedy packing can show small anomalies; flag them.
                println!(
                    "    ^ note: greedy packing anomaly (+{} cycles)",
                    sched.makespan() - prev
                );
            }
        }
        last = Some(sched.makespan());
    }
}

fn main() {
    let figure1 = casbus_soc::catalog::figure1_soc();
    println!(
        "Trade-off: test time vs test bus width N — SoC {:?} ({} cores)",
        figure1.name(),
        figure1.cores().len()
    );
    sweep(&figure1, figure1.max_ports()..=10);

    let mut rng = rand::rngs::StdRng::seed_from_u64(0xCA5B);
    let random = casbus_soc::catalog::random_soc(&mut rng, 20, 4);
    println!(
        "\nSame sweep on a random 20-core SoC (seeded, max P = {}):",
        random.max_ports()
    );
    sweep(&random, random.max_ports()..=10);

    let itc = casbus_soc::catalog::itc02_like_soc();
    println!(
        "\nSame sweep on the ITC'02-like benchmark SoC ({} cores, {:.1}M gates):",
        itc.cores().len(),
        itc.total_gates() as f64 / 1e6
    );
    sweep(&itc, itc.max_ports()..=12);
    // The paper's §3.3 overhead argument: the CAS-BUS is negligible next to
    // the cores ("too small compared to the SoC total area ... to influence
    // the overall SoC test overhead") until N gets large.
    for n in [4usize, 8, 12] {
        let (synth_area, pt_area) = cas_bus_area(&itc, n);
        println!(
            "overhead at N={n}: synthesized {:.2}% of SoC gates, pass-transistor {:.3}%",
            synth_area / itc.total_gates() as f64 * 100.0,
            pt_area / itc.total_gates() as f64 * 100.0
        );
    }

    println!("\nReading: test time falls as N grows (the paper's claim), while");
    println!("the CAS-BUS area rises steeply for the synthesized fabric and only");
    println!("gently for the pass-transistor variant the paper proposes in §3.3.");
    println!("The knee of the curve is where the test designer should put N.");
}
