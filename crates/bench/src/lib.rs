//! Shared data and helpers for the experiment binaries and criterion
//! benches that regenerate every table and figure of the CAS-BUS paper.
//!
//! Run the experiments with, e.g.:
//!
//! ```text
//! cargo run -p casbus-bench --bin table1
//! cargo run -p casbus-bench --bin tradeoff_n
//! cargo run -p casbus-bench --bin ablation_heuristic
//! cargo bench -p casbus-bench
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use casbus::CasGeometry;

/// One row of the paper's Table 1: `(N, P, m, k, gates)` as printed in the
/// paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperRow {
    /// Test bus width.
    pub n: usize,
    /// Switched wires.
    pub p: usize,
    /// Combination count reported by the paper.
    pub m: u128,
    /// Instruction register width reported by the paper.
    pub k: u32,
    /// Synthesized gate count reported by the paper (Synopsys, unspecified
    /// library).
    pub gates: u32,
}

/// The paper's Table 1, verbatim.
pub const PAPER_TABLE1: [PaperRow; 12] = [
    PaperRow {
        n: 3,
        p: 1,
        m: 5,
        k: 3,
        gates: 16,
    },
    PaperRow {
        n: 4,
        p: 1,
        m: 6,
        k: 3,
        gates: 23,
    },
    PaperRow {
        n: 4,
        p: 2,
        m: 14,
        k: 4,
        gates: 64,
    },
    PaperRow {
        n: 4,
        p: 3,
        m: 26,
        k: 5,
        gates: 118,
    },
    PaperRow {
        n: 5,
        p: 1,
        m: 7,
        k: 3,
        gates: 28,
    },
    PaperRow {
        n: 5,
        p: 2,
        m: 22,
        k: 5,
        gates: 85,
    },
    PaperRow {
        n: 5,
        p: 3,
        m: 62,
        k: 6,
        gates: 205,
    },
    PaperRow {
        n: 6,
        p: 1,
        m: 8,
        k: 3,
        gates: 33,
    },
    PaperRow {
        n: 6,
        p: 2,
        m: 32,
        k: 5,
        gates: 134,
    },
    PaperRow {
        n: 6,
        p: 3,
        m: 122,
        k: 7,
        gates: 280,
    },
    PaperRow {
        n: 6,
        p: 5,
        m: 722,
        k: 10,
        gates: 1154,
    },
    PaperRow {
        n: 8,
        p: 4,
        m: 1682,
        k: 11,
        gates: 4400,
    },
];

impl PaperRow {
    /// The geometry of this row.
    ///
    /// # Panics
    ///
    /// Never — all table rows are valid geometries.
    pub fn geometry(&self) -> CasGeometry {
        CasGeometry::new(self.n, self.p).expect("paper rows are valid")
    }
}

/// Formats a ratio as `x.xx×`.
pub fn ratio(ours: f64, paper: f64) -> String {
    if paper == 0.0 {
        "—".to_owned()
    } else {
        format!("{:.2}x", ours / paper)
    }
}

/// One scheduling experiment instance: a deterministic pseudo-random SoC
/// tested over the bus width of one Table-1 row.
#[derive(Debug, Clone)]
pub struct ScheduleCase {
    /// Test bus width (the row's `N`).
    pub n: usize,
    /// Maximum switched wires per core (the row's `P`).
    pub p: usize,
    /// The generated SoC.
    pub soc: casbus_soc::SocDescription,
}

/// Deterministic per-row SoC instances for the scheduling experiments: one
/// pseudo-random SoC per Table-1 `(N, P)` row, every core needing at most
/// `P` wires on an `N`-wire bus. Core counts vary per row, and several rows
/// exceed the exact wave-DP's core limit on purpose, so the benches cover
/// both the regime where `wave_optimal_schedule` is available and the one
/// where only the greedy heuristics and the search can run.
///
/// Unlike [`casbus_soc::catalog::random_soc`] (whose core durations span
/// orders of magnitude, so the longest single test is the makespan and no
/// scheduler can matter), these SoCs are *packing-heavy*: external-test
/// cores with comparable pattern counts and mixed port widths, many layers
/// of rectangles deep on the bus — the regime where scheduling policy is
/// actually worth cycles.
pub fn table1_schedule_cases() -> Vec<ScheduleCase> {
    use casbus_soc::{CoreDescription, SocBuilder, TestMethod};
    use rand::{RngExt, SeedableRng};
    // Per-row core counts: mixed small (exact DP available) and large
    // (past `WAVE_OPTIMAL_CORE_LIMIT = 14`) instances.
    const CORES: [usize; 12] = [8, 10, 12, 9, 16, 12, 10, 18, 14, 12, 9, 20];
    PAPER_TABLE1
        .iter()
        .zip(CORES)
        .enumerate()
        .map(|(row, (paper, cores))| {
            let seed = 0xCA5B_0000_u64 + row as u64;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut builder = SocBuilder::new("table1_schedule");
            for i in 0..cores {
                // `External { ports, patterns }` tests for exactly
                // `patterns + 1` cycles on exactly `ports` wires: precise
                // rectangles, durations within one order of magnitude.
                let method = TestMethod::External {
                    ports: rng.random_range(1..=paper.p),
                    patterns: rng.random_range(120..=1200),
                };
                builder = builder.core(
                    CoreDescription::new(format!("ext{i}"), method)
                        .with_gate_count(rng.random_range(5_000..60_000)),
                );
            }
            ScheduleCase {
                n: paper.n,
                p: paper.p,
                soc: builder.build().expect("generated SoCs are valid"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rows_match_the_combinatorial_model() {
        for row in PAPER_TABLE1 {
            let g = row.geometry();
            assert_eq!(
                g.combination_count(),
                row.m,
                "m for N={} P={}",
                row.n,
                row.p
            );
            assert_eq!(
                g.instruction_width(),
                row.k,
                "k for N={} P={}",
                row.n,
                row.p
            );
        }
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(2.0, 1.0), "2.00x");
        assert_eq!(ratio(1.0, 0.0), "—");
    }
}
