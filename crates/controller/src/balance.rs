//! Scan-chain balancing (paper §4).
//!
//! *"In case of scanned cores, the test programmer can balance the length of
//! the scan chains within the test programs, in order to reduce the test
//! time."* — the deepest chain dictates the shift time, so moving flip-flops
//! from long chains to short ones (or re-concatenating the scan path into a
//! different number of chains via the reconfigurable CAS) shortens every
//! pattern.

/// Re-partitions the same flip-flops over the same number of chains as
/// evenly as possible: the optimal balancing when the chain count is fixed
/// by the wrapper.
///
/// Returns lengths in descending order; the total is preserved.
///
/// # Examples
///
/// ```
/// use casbus_controller::balance_chains;
///
/// assert_eq!(balance_chains(&[19, 1]), vec![10, 10]);
/// assert_eq!(balance_chains(&[7, 7, 7]), vec![7, 7, 7]);
/// ```
pub fn balance_chains(chains: &[usize]) -> Vec<usize> {
    repartition_flops(chains.iter().sum(), chains.len())
}

/// Distributes `flops` flip-flops over `chain_count` chains as evenly as
/// possible (descending lengths). With a reconfigurable CAS the test
/// programmer may also *change* the chain count to match the wires granted.
///
/// # Panics
///
/// Panics if `chain_count` is zero while `flops` is non-zero.
///
/// # Examples
///
/// ```
/// use casbus_controller::repartition_flops;
///
/// assert_eq!(repartition_flops(20, 3), vec![7, 7, 6]);
/// assert_eq!(repartition_flops(0, 2), vec![0, 0]);
/// ```
pub fn repartition_flops(flops: usize, chain_count: usize) -> Vec<usize> {
    assert!(
        chain_count > 0 || flops == 0,
        "cannot place {flops} flip-flops on zero chains"
    );
    if chain_count == 0 {
        return Vec::new();
    }
    let base = flops / chain_count;
    let extra = flops % chain_count;
    (0..chain_count)
        .map(|i| base + usize::from(i < extra))
        .collect()
}

/// The shift depth (deepest chain) a partition implies.
pub fn depth(chains: &[usize]) -> usize {
    chains.iter().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_total() {
        let before = [13, 2, 8, 40, 1];
        let after = balance_chains(&before);
        assert_eq!(after.iter().sum::<usize>(), before.iter().sum::<usize>());
        assert_eq!(after.len(), before.len());
    }

    #[test]
    fn never_increases_depth() {
        let cases: [&[usize]; 4] = [&[19, 1], &[5, 5], &[100], &[3, 9, 2, 2]];
        for chains in cases {
            assert!(
                depth(&balance_chains(chains)) <= depth(chains),
                "{chains:?}"
            );
        }
    }

    #[test]
    fn achieves_ceiling_depth() {
        let after = balance_chains(&[19, 1]);
        assert_eq!(depth(&after), 10); // ceil(20/2)
    }

    #[test]
    fn descending_order() {
        let after = repartition_flops(22, 4);
        assert_eq!(after, vec![6, 6, 5, 5]);
        assert!(after.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn single_chain_unchanged() {
        assert_eq!(balance_chains(&[42]), vec![42]);
    }

    #[test]
    fn more_chains_reduce_depth() {
        let two = repartition_flops(100, 2);
        let five = repartition_flops(100, 5);
        assert!(depth(&five) < depth(&two));
    }

    #[test]
    fn zero_flops() {
        assert_eq!(repartition_flops(0, 3), vec![0, 0, 0]);
        assert_eq!(depth(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "zero chains")]
    fn zero_chains_with_flops_panics() {
        let _ = repartition_flops(5, 0);
    }
}
