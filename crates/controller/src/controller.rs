//! The cycle-accurate controller phase sequencer.
//!
//! The central test controller alternates between two phases (paper §3.1,
//! Fig. 4): CONFIGURATION — shifting instruction bits over bus wire 0 with
//! the global `config` line asserted, closed by one `update` pulse — and
//! TEST — streaming test data for the step's duration. [`TestController`]
//! tracks which phase the SoC is in and which control signals to assert each
//! clock; the bit-level data path is driven by `casbus-sim`.

use std::fmt;
use std::sync::Arc;

use casbus::{CasControl, CasError, Tam};
use casbus_obs::{MetricsRegistry, TraceEvent, TraceSink};
use casbus_tpg::BitVec;

use crate::program::TestProgram;

/// The controller's phase at a given clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerPhase {
    /// Shifting configuration bits over test bus wire 0.
    Configuring,
    /// The single update pulse ending a configuration phase.
    Updating,
    /// Streaming test data for the current step.
    Testing {
        /// Index of the program step being executed.
        step: usize,
        /// Cycles of the step already run.
        elapsed: u64,
    },
    /// Program exhausted.
    Done,
}

impl fmt::Display for ControllerPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Configuring => f.write_str("CONFIGURATION"),
            Self::Updating => f.write_str("UPDATE"),
            Self::Testing { step, .. } => write!(f, "TEST(step {step})"),
            Self::Done => f.write_str("DONE"),
        }
    }
}

/// Sequences a [`TestProgram`] over a [`Tam`], one clock at a time.
///
/// # Examples
///
/// ```
/// use casbus::Tam;
/// use casbus_controller::{schedule, TestController, TestProgram};
/// use casbus_soc::catalog;
///
/// let soc = catalog::figure2b_bist_soc();
/// let mut tam = Tam::new(&soc, 3)?;
/// let sched = schedule::serial_schedule(&soc, 3).unwrap();
/// let program = TestProgram::from_schedule(&tam, &soc, &sched)?;
/// let mut controller = TestController::new(program);
/// let mut cycles = 0u64;
/// while controller.tick(&mut tam)? {
///     cycles += 1;
/// }
/// assert_eq!(cycles, controller.cycles_run());
/// # Ok::<(), casbus::CasError>(())
/// ```
#[derive(Clone)]
pub struct TestController {
    program: TestProgram,
    step: usize,
    /// Remaining configuration bits for the current step (None once shifted).
    config_bits: Option<(BitVec, usize)>,
    update_pending: bool,
    test_elapsed: u64,
    cycles_run: u64,
    /// Cycles spent per phase kind, for the metrics export.
    config_cycles: u64,
    update_cycles: u64,
    test_cycles: u64,
    trace: Arc<dyn TraceSink>,
    /// The phase span currently open in the trace: (name, start cycle).
    open_span: Option<(String, u64)>,
}

impl fmt::Debug for TestController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TestController")
            .field("step", &self.step)
            .field("phase", &self.phase())
            .field("cycles_run", &self.cycles_run)
            .finish_non_exhaustive()
    }
}

impl TestController {
    /// Creates a controller for a program; the first step's configuration
    /// phase begins on the first [`tick`](TestController::tick).
    pub fn new(program: TestProgram) -> Self {
        Self {
            program,
            step: 0,
            config_bits: None,
            update_pending: false,
            test_elapsed: 0,
            cycles_run: 0,
            config_cycles: 0,
            update_cycles: 0,
            test_cycles: 0,
            trace: casbus_obs::trace::null_sink(),
            open_span: None,
        }
    }

    /// Installs a trace sink; each phase occurrence (CONFIGURATION, UPDATE,
    /// every TEST step) becomes one complete span in cycle time, category
    /// `"controller"`. The default sink is disabled and costs one branch.
    #[must_use]
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = sink;
        self
    }

    /// Publishes phase cycle counters:
    /// `controller.cycles.{total,configuration,update,test}`. The invariant
    /// `total == configuration + update + test` always holds and `total`
    /// equals [`TestController::cycles_run`].
    pub fn export_metrics(&self, metrics: &MetricsRegistry) {
        metrics.set("controller.cycles.total", self.cycles_run);
        metrics.set("controller.cycles.configuration", self.config_cycles);
        metrics.set("controller.cycles.update", self.update_cycles);
        metrics.set("controller.cycles.test", self.test_cycles);
        metrics.set("controller.steps", self.step as u64);
    }

    /// Closes the currently open phase span, recording it.
    fn close_span(&mut self) {
        if let Some((name, start)) = self.open_span.take() {
            let step = self.step;
            self.trace.record(TraceEvent::span(
                "controller",
                name,
                start,
                self.cycles_run - start,
                vec![("step", step.into())],
            ));
        }
    }

    /// Notes that the upcoming tick executes phase `phase`, opening a new
    /// span on transitions. Only called when the sink is enabled.
    fn note_phase(&mut self, phase: ControllerPhase) {
        let name = phase.to_string();
        match &self.open_span {
            Some((open, _)) if *open == name => {}
            _ => {
                self.close_span();
                self.open_span = Some((name, self.cycles_run));
            }
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &TestProgram {
        &self.program
    }

    /// Clocks run so far.
    pub fn cycles_run(&self) -> u64 {
        self.cycles_run
    }

    /// The phase the *next* tick will execute.
    pub fn phase(&self) -> ControllerPhase {
        if self.step >= self.program.len() {
            return ControllerPhase::Done;
        }
        match &self.config_bits {
            // Configuration not yet staged, or bits still left to shift.
            None => ControllerPhase::Configuring,
            Some((bits, pos)) if *pos < bits.len() => ControllerPhase::Configuring,
            Some(_) if self.update_pending => ControllerPhase::Updating,
            Some(_) => ControllerPhase::Testing {
                step: self.step,
                elapsed: self.test_elapsed,
            },
        }
    }

    /// Advances one clock, driving the TAM's control (and, during
    /// configuration, data) lines. Returns `false` once the program is done.
    ///
    /// During TEST phases this drives an idle data clock — callers that
    /// stream real test data (like `casbus-sim`) use
    /// [`TestController::stage_configuration`] and
    /// [`TestController::account_test_cycles`] instead and interleave their
    /// own data clocks.
    ///
    /// # Errors
    ///
    /// Propagates TAM errors.
    pub fn tick(&mut self, tam: &mut Tam) -> Result<bool, CasError> {
        let phase = self.phase();
        if self.trace.enabled() {
            match phase {
                ControllerPhase::Done => self.close_span(),
                _ => self.note_phase(phase),
            }
        }
        match phase {
            ControllerPhase::Done => Ok(false),
            ControllerPhase::Configuring => {
                if self.config_bits.is_none() {
                    // First entry into this step: stage its configuration.
                    self.stage_configuration(tam, self.step)?;
                    return self.tick(tam);
                }
                let bit = match &mut self.config_bits {
                    Some((bits, pos)) => {
                        let bit = bits.get(*pos).expect("phase checked bounds");
                        *pos += 1;
                        bit
                    }
                    None => unreachable!("staged above"),
                };
                let mut bus = BitVec::zeros(tam.bus_width());
                bus.set(0, bit);
                let cores = idle_cores(tam);
                tam.clock(&bus, &cores, CasControl::shift_config())?;
                self.cycles_run += 1;
                self.config_cycles += 1;
                Ok(true)
            }
            ControllerPhase::Updating => {
                let bus = BitVec::zeros(tam.bus_width());
                let cores = idle_cores(tam);
                tam.clock(&bus, &cores, CasControl::update())?;
                self.update_pending = false;
                self.cycles_run += 1;
                self.update_cycles += 1;
                Ok(true)
            }
            ControllerPhase::Testing { step, .. } => {
                tam.clock_idle_cores(&BitVec::zeros(tam.bus_width()))?;
                self.test_elapsed += 1;
                self.cycles_run += 1;
                self.test_cycles += 1;
                if self.test_elapsed >= self.program.steps()[step].duration {
                    self.advance_step();
                }
                Ok(true)
            }
        }
    }

    /// Stages the configuration phase of step `step` (computes the serial
    /// stream). Exposed for simulators that drive data clocks themselves.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    pub fn stage_configuration(&mut self, tam: &Tam, step: usize) -> Result<(), CasError> {
        let config = &self.program.steps()[step].configuration;
        let stream = casbus::ConfigStream::build(tam.chain().cases(), config.instructions())?;
        self.config_bits = Some((stream.bits().clone(), 0));
        self.update_pending = true;
        Ok(())
    }

    /// Marks `cycles` test clocks of the current step as executed by an
    /// external data driver (the simulator), advancing to the next step when
    /// the duration is reached.
    pub fn account_test_cycles(&mut self, cycles: u64) {
        self.cycles_run += cycles;
        self.test_cycles += cycles;
        self.test_elapsed += cycles;
        if self.step < self.program.len()
            && self.test_elapsed >= self.program.steps()[self.step].duration
        {
            self.advance_step();
        }
    }

    fn advance_step(&mut self) {
        self.step += 1;
        self.config_bits = None;
        self.update_pending = false;
        self.test_elapsed = 0;
    }

    /// Whether the program has finished.
    pub fn is_done(&self) -> bool {
        matches!(self.phase(), ControllerPhase::Done)
    }
}

fn idle_cores(tam: &Tam) -> Vec<BitVec> {
    tam.chain()
        .cases()
        .iter()
        .map(|c| BitVec::zeros(c.geometry().switched_wires()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::serial_schedule;
    use casbus_soc::catalog;

    fn make() -> (Tam, TestController) {
        let soc = catalog::figure2b_bist_soc();
        let tam = Tam::new(&soc, 3).unwrap();
        let sched = serial_schedule(&soc, 3).unwrap();
        let program = TestProgram::from_schedule(&tam, &soc, &sched).unwrap();
        (tam, TestController::new(program))
    }

    #[test]
    fn runs_to_completion_with_exact_cycle_count() {
        let (mut tam, mut ctl) = make();
        let expected = ctl.program().total_cycles(&tam);
        let mut ticks = 0u64;
        while ctl.tick(&mut tam).unwrap() {
            ticks += 1;
            assert!(ticks < 1_000_000, "runaway controller");
        }
        assert_eq!(ticks, expected);
        assert_eq!(ctl.cycles_run(), expected);
        assert!(ctl.is_done());
    }

    #[test]
    fn configures_tam_before_testing() {
        let (mut tam, mut ctl) = make();
        // Run until the first TEST phase.
        while !matches!(ctl.phase(), ControllerPhase::Testing { .. }) {
            assert!(ctl.tick(&mut tam).unwrap());
        }
        // Exactly one CAS must now be in TEST mode (serial schedule).
        let testing = tam
            .chain()
            .cases()
            .iter()
            .filter(|c| c.instruction().is_test())
            .count();
        assert_eq!(testing, 1);
    }

    #[test]
    fn reconfigures_between_steps() {
        let (mut tam, mut ctl) = make();
        let mut seen_test_sets = Vec::new();
        let mut last_phase_was_test = false;
        while ctl.tick(&mut tam).unwrap() {
            let now_test = matches!(ctl.phase(), ControllerPhase::Testing { .. });
            if now_test && !last_phase_was_test {
                let set: Vec<usize> = tam
                    .chain()
                    .cases()
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.instruction().is_test())
                    .map(|(i, _)| i)
                    .collect();
                seen_test_sets.push(set);
            }
            last_phase_was_test = now_test;
        }
        seen_test_sets.dedup();
        assert_eq!(
            seen_test_sets.len(),
            2,
            "two serial steps, two configurations"
        );
        assert_ne!(seen_test_sets[0], seen_test_sets[1]);
    }

    #[test]
    fn phase_display() {
        assert_eq!(ControllerPhase::Updating.to_string(), "UPDATE");
        assert_eq!(
            ControllerPhase::Testing {
                step: 2,
                elapsed: 0
            }
            .to_string(),
            "TEST(step 2)"
        );
    }

    #[test]
    fn external_accounting_advances_steps() {
        let (tam, mut ctl) = make();
        let d0 = ctl.program().steps()[0].duration;
        ctl.stage_configuration(&tam, 0).unwrap();
        // Pretend the simulator shifted the configuration and ran the step.
        ctl.config_bits = Some((BitVec::new(), 0));
        ctl.update_pending = false;
        ctl.account_test_cycles(d0);
        assert_eq!(
            ctl.phase(),
            ControllerPhase::Configuring,
            "next step reconfigures"
        );
    }

    #[test]
    fn phase_spans_tile_the_run_and_metrics_balance() {
        let (mut tam, ctl) = make();
        let sink = casbus_obs::MemorySink::new();
        let mut ctl = ctl.with_trace(sink.clone());
        while ctl.tick(&mut tam).unwrap() {}
        let names: Vec<String> = sink.events().iter().map(|e| e.name.to_string()).collect();
        assert_eq!(
            names,
            [
                "CONFIGURATION",
                "UPDATE",
                "TEST(step 0)",
                "CONFIGURATION",
                "UPDATE",
                "TEST(step 1)"
            ]
        );
        let span_total: u64 = sink.events().iter().map(|e| e.dur).sum();
        assert_eq!(span_total, ctl.cycles_run(), "spans tile the run exactly");
        let metrics = casbus_obs::MetricsRegistry::new();
        ctl.export_metrics(&metrics);
        assert_eq!(metrics.counter("controller.cycles.total"), ctl.cycles_run());
        assert_eq!(
            metrics.counter("controller.cycles.total"),
            metrics.counter("controller.cycles.configuration")
                + metrics.counter("controller.cycles.update")
                + metrics.counter("controller.cycles.test"),
        );
    }

    #[test]
    fn empty_program_is_immediately_done() {
        let soc = catalog::figure2b_bist_soc();
        let mut tam = Tam::new(&soc, 3).unwrap();
        let mut ctl = TestController::new(TestProgram::new());
        assert!(ctl.is_done());
        assert!(!ctl.tick(&mut tam).unwrap());
    }
}
