//! The central SoC test controller and test-programming layer.
//!
//! Paper §2: *"All test control signals, either for the CAS or for the
//! testable cores, are connected to a central SoC test controller which is
//! in charge of synchronizing test data and control."* And §4 describes what
//! the *test programmer* does with the reconfigurable TAM: balance scan
//! chains, sequence several TAM configurations within one test program, and
//! run maintenance tests on some cores while others keep operating.
//!
//! This crate implements that layer:
//!
//! * [`time_model`] — per-core test-time formulas (cycles) for every test
//!   method of Fig. 2,
//! * [`schedule`] — wire-allocation scheduling: pack core tests onto the
//!   `N`-wire bus over time (greedy strip packing) or serially, giving the
//!   test-time-vs-`N` trade-off of §3.2/§4,
//! * [`search`] — simulation-in-the-loop makespan search: an annealed local
//!   search seeded from the heuristics, with execution-backed validation of
//!   the survivor pool,
//! * [`balance`] — the §4 scan-chain balancing optimization,
//! * [`program`] — executable test programs: a sequence of TAM
//!   configurations plus matching wrapper instructions,
//! * [`maintenance`] — §4 maintenance-test planning (test a subset while
//!   the rest runs in mission mode),
//! * [`controller`] — the cycle-accurate phase sequencer
//!   (CONFIGURATION → TEST → next configuration) used by `casbus-sim`.
//!
//! # Example
//!
//! ```
//! use casbus_controller::{schedule, time_model};
//! use casbus_soc::catalog;
//!
//! let soc = catalog::figure1_soc();
//! let wide = schedule::packed_schedule(&soc, 8)?;
//! let narrow = schedule::packed_schedule(&soc, 4)?;
//! assert!(wide.makespan() <= narrow.makespan(), "wider bus, shorter test");
//! # Ok::<(), casbus_controller::ScheduleError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod controller;
pub mod maintenance;
pub mod program;
pub mod schedule;
pub mod search;
pub mod time_model;

pub use balance::{balance_chains, repartition_flops};
pub use controller::{ControllerPhase, TestController};
pub use maintenance::MaintenancePlan;
pub use program::{CompiledProgram, TestProgram, TestStep};
pub use schedule::{partition_lpt, Schedule, ScheduleError, ScheduledTest};
pub use search::{
    search_schedule, search_schedule_with, CandidateValidator, NoValidation, SearchBudget,
};
pub use time_model::test_time;
