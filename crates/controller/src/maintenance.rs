//! Maintenance (online) test planning — paper §4.
//!
//! *"In case of maintenance test, it is possible to test some embedded cores
//! while others are in normal functioning mode. This is very useful when,
//! e.g., an embedded memory test is periodically required."*

use std::fmt;

use casbus::{CasError, Tam, TamConfiguration};
use casbus_p1500::WrapperInstruction;
use casbus_soc::{SocDescription, TestMethod};

use crate::time_model::test_time;

/// A maintenance plan: a subset of cores under test, everyone else in
/// mission (NORMAL) mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaintenancePlan {
    /// Names of the cores under test.
    under_test: Vec<String>,
    /// The TAM configuration realising the plan.
    configuration: TamConfiguration,
    /// Per-CAS wrapper instructions: INTEST flavours for tested cores,
    /// NORMAL (transparent) for everything else.
    wrapper_instructions: Vec<WrapperInstruction>,
    /// TEST-phase duration.
    duration: u64,
}

/// Errors building a maintenance plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaintenanceError {
    /// The named core is not in the SoC.
    UnknownCore(String),
    /// The requested cores need more wires than the bus provides
    /// simultaneously.
    DoesNotFit {
        /// Wires needed.
        needed: usize,
        /// Bus width.
        n: usize,
    },
    /// A TAM-level error.
    Tam(CasError),
}

impl fmt::Display for MaintenanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownCore(name) => write!(f, "unknown core {name:?}"),
            Self::DoesNotFit { needed, n } => {
                write!(f, "maintenance set needs {needed} wires, bus has {n}")
            }
            Self::Tam(e) => write!(f, "TAM error: {e}"),
        }
    }
}

impl std::error::Error for MaintenanceError {}

impl From<CasError> for MaintenanceError {
    fn from(e: CasError) -> Self {
        Self::Tam(e)
    }
}

impl MaintenancePlan {
    /// Plans a maintenance session testing `cores` (by name) concurrently,
    /// packing them onto adjacent wire windows from wire 0 up; all other
    /// cores stay in NORMAL mode (their CASes bypass, their wrappers are
    /// transparent).
    ///
    /// # Errors
    ///
    /// Returns [`MaintenanceError::UnknownCore`] for a bad name and
    /// [`MaintenanceError::DoesNotFit`] when the combined widths exceed the
    /// bus.
    pub fn plan(tam: &Tam, soc: &SocDescription, cores: &[&str]) -> Result<Self, MaintenanceError> {
        let mut configuration = TamConfiguration::all_bypass(tam.cas_count());
        let mut wrappers = vec![WrapperInstruction::Normal; tam.cas_count()];
        let mut next_wire = 0usize;
        let mut duration = 0u64;
        let mut under_test = Vec::new();
        for &name in cores {
            let (_, desc) = soc
                .core_by_name(name)
                .ok_or_else(|| MaintenanceError::UnknownCore(name.to_owned()))?;
            let cas_index = tam
                .cas_for_core(name)
                .ok_or_else(|| MaintenanceError::UnknownCore(name.to_owned()))?;
            let p = desc.required_ports();
            if next_wire + p > tam.bus_width() {
                return Err(MaintenanceError::DoesNotFit {
                    needed: next_wire + p,
                    n: tam.bus_width(),
                });
            }
            configuration.set(cas_index, tam.contiguous_test(cas_index, next_wire)?)?;
            wrappers[cas_index] = match desc.method() {
                TestMethod::Bist { .. } | TestMethod::Memory { .. } => {
                    WrapperInstruction::IntestBist
                }
                _ => WrapperInstruction::IntestScan,
            };
            next_wire += p;
            duration = duration.max(test_time(desc));
            under_test.push(name.to_owned());
        }
        Ok(Self {
            under_test,
            configuration,
            wrapper_instructions: wrappers,
            duration,
        })
    }

    /// Names of the cores under test.
    pub fn under_test(&self) -> &[String] {
        &self.under_test
    }

    /// The TAM configuration.
    pub fn configuration(&self) -> &TamConfiguration {
        &self.configuration
    }

    /// Per-CAS wrapper instructions.
    pub fn wrapper_instructions(&self) -> &[WrapperInstruction] {
        &self.wrapper_instructions
    }

    /// TEST-phase duration in cycles.
    pub fn duration(&self) -> u64 {
        self.duration
    }

    /// Whether a core keeps running in mission mode under this plan.
    pub fn is_operational(&self, core_name: &str) -> bool {
        !self.under_test.iter().any(|n| n == core_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casbus_soc::catalog;

    fn setup() -> (Tam, SocDescription) {
        let soc = catalog::maintenance_soc();
        let tam = Tam::new(&soc, 3).unwrap();
        (tam, soc)
    }

    #[test]
    fn memory_test_leaves_others_operational() {
        let (tam, soc) = setup();
        let plan = MaintenancePlan::plan(&tam, &soc, &["dram"]).unwrap();
        assert_eq!(plan.under_test(), &["dram".to_owned()]);
        assert!(plan.is_operational("app_cpu"));
        assert!(plan.is_operational("codec"));
        assert!(!plan.is_operational("dram"));
        // CPU and codec wrappers transparent, dram in BIST intest.
        let dram_cas = tam.cas_for_core("dram").unwrap();
        assert_eq!(
            plan.wrapper_instructions()[dram_cas],
            WrapperInstruction::IntestBist
        );
        let cpu_cas = tam.cas_for_core("app_cpu").unwrap();
        assert_eq!(
            plan.wrapper_instructions()[cpu_cas],
            WrapperInstruction::Normal
        );
        assert_eq!(plan.configuration().cores_under_test(), vec![dram_cas]);
        assert!(plan.duration() > 0);
    }

    #[test]
    fn concurrent_maintenance_packs_wires() {
        let (tam, soc) = setup();
        // dram (P=1) + codec (P=1) fit a 3-wire bus side by side.
        let plan = MaintenancePlan::plan(&tam, &soc, &["dram", "codec"]).unwrap();
        assert_eq!(plan.configuration().cores_under_test().len(), 2);
    }

    #[test]
    fn overflow_rejected() {
        let (tam, soc) = setup();
        // app_cpu needs 2 wires, dram and codec 1 each: 4 > 3.
        let err = MaintenancePlan::plan(&tam, &soc, &["app_cpu", "dram", "codec"]).unwrap_err();
        assert_eq!(err, MaintenanceError::DoesNotFit { needed: 4, n: 3 });
    }

    #[test]
    fn unknown_core_rejected() {
        let (tam, soc) = setup();
        assert_eq!(
            MaintenancePlan::plan(&tam, &soc, &["ghost"]),
            Err(MaintenanceError::UnknownCore("ghost".into()))
        );
    }

    #[test]
    fn error_display() {
        let e = MaintenanceError::DoesNotFit { needed: 4, n: 3 };
        assert!(e.to_string().contains("4 wires"));
    }
}
