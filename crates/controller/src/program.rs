//! Executable test programs: sequences of TAM configurations.
//!
//! Paper §5: *"Different TAM architectures can be addressed, in sequential
//! order, within the same test program, in order to optimize test
//! performances."* A [`TestProgram`] is exactly that sequence; each
//! [`TestStep`] carries the CAS configuration, the matching wrapper
//! instructions, and the step's duration.

use std::fmt;

use casbus::{CasError, Tam, TamConfiguration};
use casbus_p1500::WrapperInstruction;
use casbus_soc::{SocDescription, TestMethod};

use crate::schedule::Schedule;

/// One step of a test program: configure, then run for `duration` cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestStep {
    /// Per-CAS instructions for this step.
    pub configuration: TamConfiguration,
    /// Per-CAS wrapper instructions (aligned with the TAM's CAS order; the
    /// wrapped system bus, when present, is the last entry).
    pub wrapper_instructions: Vec<WrapperInstruction>,
    /// TEST-phase duration in cycles.
    pub duration: u64,
    /// Human-readable description (which cores run).
    pub description: String,
}

/// A complete test program for one TAM.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TestProgram {
    steps: Vec<TestStep>,
}

impl TestProgram {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a step.
    pub fn push(&mut self, step: TestStep) {
        self.steps.push(step);
    }

    /// The steps, execution order.
    pub fn steps(&self) -> &[TestStep] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the program has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Sum of TEST-phase durations.
    pub fn test_cycles(&self) -> u64 {
        self.steps.iter().map(|s| s.duration).sum()
    }

    /// Total cycles including one CONFIGURATION phase per step
    /// (`configuration_clocks + 1` update cycle each).
    pub fn total_cycles(&self, tam: &Tam) -> u64 {
        self.test_cycles() + self.steps.len() as u64 * (tam.configuration_clocks() as u64 + 1)
    }

    /// Compiles a [`Schedule`] into a program: tests starting at the same
    /// cycle form one concurrent step (wave); waves execute in start order.
    ///
    /// Each scheduled test is granted the contiguous wire window the
    /// scheduler chose; cores not under test sit in CAS BYPASS with their
    /// wrappers bypassed.
    ///
    /// # Errors
    ///
    /// Propagates [`CasError`] when a wire window cannot be expressed as a
    /// scheme (never, for windows produced by the scheduler).
    pub fn from_schedule(
        tam: &Tam,
        soc: &SocDescription,
        schedule: &Schedule,
    ) -> Result<Self, CasError> {
        let mut starts: Vec<u64> = schedule.tests().iter().map(|t| t.start).collect();
        starts.sort_unstable();
        starts.dedup();
        let mut program = TestProgram::new();
        for &wave_start in &starts {
            let wave: Vec<_> = schedule
                .tests()
                .iter()
                .filter(|t| t.start == wave_start)
                .collect();
            let mut configuration = TamConfiguration::all_bypass(tam.cas_count());
            let mut wrappers = vec![WrapperInstruction::Bypass; tam.cas_count()];
            let mut names = Vec::new();
            let mut duration = 0u64;
            for test in &wave {
                let cas_index = tam
                    .cas_for_core(&test.core_name)
                    .ok_or(CasError::UnknownCas(test.core.0))?;
                configuration.set(cas_index, tam.contiguous_test(cas_index, test.wire_start)?)?;
                wrappers[cas_index] = wrapper_mode_for(soc, &test.core_name);
                names.push(test.core_name.clone());
                duration = duration.max(test.duration);
            }
            program.push(TestStep {
                configuration,
                wrapper_instructions: wrappers,
                duration,
                description: names.join(" + "),
            });
        }
        Ok(program)
    }
}

/// A schedule compiled once, ready to be executed many times: the TAM
/// geometry, the winning [`Schedule`], and its [`TestProgram`], bundled so
/// the compilation cost is paid exactly once per design.
///
/// Manufacturing test applies one test program to every die on the line;
/// recompiling the TAM and program per device would make compile cost scale
/// with fleet size. Execution layers (e.g. a fleet runner in `casbus-sim`)
/// hold a `CompiledProgram` behind an `Arc` and hand every device the same
/// immutable plan.
///
/// # Examples
///
/// ```
/// use casbus_controller::{schedule, CompiledProgram};
/// use casbus_soc::catalog;
///
/// let soc = catalog::figure1_soc();
/// let plan = CompiledProgram::compile(&soc, 8, schedule::packed_schedule(&soc, 8)?)?;
/// assert_eq!(plan.bus_width(), 8);
/// assert_eq!(plan.program().len(), plan.schedule().configuration_waves());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    tam: Tam,
    schedule: Schedule,
    program: TestProgram,
}

impl CompiledProgram {
    /// Builds the TAM for `soc` on an `n`-wire bus and compiles `schedule`
    /// into its executable program, all in one shot.
    ///
    /// # Errors
    ///
    /// Propagates [`CasError`] when the bus cannot host the SoC or a wire
    /// window cannot be expressed as a scheme.
    pub fn compile(soc: &SocDescription, n: usize, schedule: Schedule) -> Result<Self, CasError> {
        let tam = Tam::new(soc, n)?;
        let program = TestProgram::from_schedule(&tam, soc, &schedule)?;
        Ok(Self {
            tam,
            schedule,
            program,
        })
    }

    /// The TAM the program was compiled against.
    pub fn tam(&self) -> &Tam {
        &self.tam
    }

    /// The schedule this program realises.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The executable step sequence.
    pub fn program(&self) -> &TestProgram {
        &self.program
    }

    /// Test bus width the plan was compiled for.
    pub fn bus_width(&self) -> usize {
        self.schedule.bus_width()
    }

    /// Total cycles one execution costs (TEST phases plus one
    /// CONFIGURATION phase per step).
    pub fn total_cycles(&self) -> u64 {
        self.program.total_cycles(&self.tam)
    }
}

/// The wrapper instruction a core's test method calls for.
fn wrapper_mode_for(soc: &SocDescription, core_name: &str) -> WrapperInstruction {
    match soc.core_by_name(core_name).map(|(_, c)| c.method()) {
        Some(TestMethod::Bist { .. } | TestMethod::Memory { .. }) => WrapperInstruction::IntestBist,
        Some(_) => WrapperInstruction::IntestScan,
        // The wrapped system bus has no core entry: interconnect test.
        None => WrapperInstruction::Extest,
    }
}

impl fmt::Display for TestProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "test program: {} steps, {} test cycles",
            self.len(),
            self.test_cycles()
        )?;
        for (i, step) in self.steps.iter().enumerate() {
            writeln!(
                f,
                "  step {i}: {} ({} cycles)",
                step.description, step.duration
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{packed_schedule, serial_schedule};
    use casbus_soc::catalog;

    #[test]
    fn serial_schedule_gives_one_step_per_core() {
        let soc = catalog::figure1_soc();
        let tam = Tam::new(&soc, 4).unwrap();
        let schedule = serial_schedule(&soc, 4).unwrap();
        let program = TestProgram::from_schedule(&tam, &soc, &schedule).unwrap();
        assert_eq!(program.len(), soc.cores().len());
        assert_eq!(program.test_cycles(), schedule.makespan());
    }

    #[test]
    fn packed_schedule_merges_waves() {
        let soc = catalog::figure1_soc();
        let tam = Tam::new(&soc, 8).unwrap();
        let schedule = packed_schedule(&soc, 8).unwrap();
        let program = TestProgram::from_schedule(&tam, &soc, &schedule).unwrap();
        assert!(program.len() <= soc.cores().len());
        assert_eq!(program.len(), schedule.configuration_waves());
        // Every step has at least one TEST instruction.
        for step in program.steps() {
            assert!(!step.configuration.cores_under_test().is_empty());
        }
    }

    #[test]
    fn compiled_program_bundles_tam_schedule_and_program() {
        let soc = catalog::figure1_soc();
        let schedule = packed_schedule(&soc, 8).unwrap();
        let plan = CompiledProgram::compile(&soc, 8, schedule.clone()).unwrap();
        assert_eq!(plan.bus_width(), 8);
        assert_eq!(plan.schedule(), &schedule);
        let tam = Tam::new(&soc, 8).unwrap();
        let expected = TestProgram::from_schedule(&tam, &soc, &schedule).unwrap();
        assert_eq!(plan.program(), &expected);
        assert_eq!(plan.total_cycles(), expected.total_cycles(&tam));
        assert_eq!(plan.tam().bus_width(), 8);
    }

    #[test]
    fn compiled_program_rejects_impossible_buses() {
        let soc = catalog::figure1_soc();
        let schedule = packed_schedule(&soc, 8).unwrap();
        // A 2-wire TAM cannot host figure 1's 4-port cores.
        assert!(CompiledProgram::compile(&soc, 2, schedule).is_err());
    }

    #[test]
    fn wrapper_instructions_match_methods() {
        let soc = catalog::figure1_soc();
        let tam = Tam::new(&soc, 8).unwrap();
        let schedule = serial_schedule(&soc, 8).unwrap();
        let program = TestProgram::from_schedule(&tam, &soc, &schedule).unwrap();
        for step in program.steps() {
            for idx in step.configuration.cores_under_test() {
                let label = tam.label(idx).unwrap();
                let expected = match soc.core_by_name(label).map(|(_, c)| c.method()) {
                    Some(TestMethod::Bist { .. } | TestMethod::Memory { .. }) => {
                        WrapperInstruction::IntestBist
                    }
                    _ => WrapperInstruction::IntestScan,
                };
                assert_eq!(step.wrapper_instructions[idx], expected, "core {label}");
            }
        }
    }

    #[test]
    fn total_cycles_includes_configuration() {
        let soc = catalog::figure2b_bist_soc();
        let tam = Tam::new(&soc, 3).unwrap();
        let schedule = serial_schedule(&soc, 3).unwrap();
        let program = TestProgram::from_schedule(&tam, &soc, &schedule).unwrap();
        let expected =
            program.test_cycles() + program.len() as u64 * (tam.configuration_clocks() as u64 + 1);
        assert_eq!(program.total_cycles(&tam), expected);
        assert!(program.total_cycles(&tam) > program.test_cycles());
    }

    #[test]
    fn display_lists_steps() {
        let soc = catalog::figure2a_scan_soc();
        let tam = Tam::new(&soc, 3).unwrap();
        let schedule = serial_schedule(&soc, 3).unwrap();
        let program = TestProgram::from_schedule(&tam, &soc, &schedule).unwrap();
        assert!(program.to_string().contains("step 0"));
    }

    #[test]
    fn empty_program() {
        let p = TestProgram::new();
        assert!(p.is_empty());
        assert_eq!(p.test_cycles(), 0);
    }
}
