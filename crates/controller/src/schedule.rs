//! Test scheduling: packing core tests onto the `N`-wire bus over time.
//!
//! Every core test occupies `P_i` contiguous bus wires for `T_i` cycles (a
//! rectangle), so minimizing the SoC test time is strip packing. The paper
//! leaves the policy to the test designer/programmer pair (§4); we provide
//! the two natural policies — fully serial sessions and greedy parallel
//! packing — which the trade-off benches sweep against `N`.

use std::fmt;

use casbus_soc::{CoreDescription, CoreId, SocDescription};

use crate::time_model::test_time;

/// Errors from schedule construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A core needs more wires than the bus has.
    CoreTooWide {
        /// The core.
        core: String,
        /// Wires it needs.
        needed: usize,
        /// Bus width.
        n: usize,
    },
    /// The bus width was zero.
    ZeroWidth,
    /// The exact scheduler's subset DP would exceed its budget.
    TooManyCores {
        /// Cores in the SoC.
        count: usize,
        /// Supported maximum.
        limit: usize,
    },
    /// A single core's test power exceeds the whole budget.
    PowerBudgetTooSmall {
        /// The core.
        core: String,
        /// Its test power.
        power: u32,
        /// The budget.
        budget: u32,
    },
    /// Two explicit placements overlap in both wires and time.
    Conflict {
        /// One core.
        a: String,
        /// The other core.
        b: String,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::CoreTooWide { core, needed, n } => {
                write!(f, "core {core:?} needs {needed} wires, bus has {n}")
            }
            Self::ZeroWidth => f.write_str("the test bus needs at least one wire"),
            Self::TooManyCores { count, limit } => {
                write!(
                    f,
                    "exact scheduling supports up to {limit} cores, got {count}"
                )
            }
            Self::PowerBudgetTooSmall {
                core,
                power,
                budget,
            } => write!(
                f,
                "core {core:?} alone dissipates {power} against a budget of {budget}"
            ),
            Self::Conflict { a, b } => {
                write!(
                    f,
                    "placements for {a:?} and {b:?} overlap in wires and time"
                )
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// One scheduled core test: a wire window over a time window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledTest {
    /// The core under test.
    pub core: CoreId,
    /// Core name (for reports).
    pub core_name: String,
    /// First bus wire granted.
    pub wire_start: usize,
    /// Number of wires granted (`P`).
    pub wires: usize,
    /// Start cycle.
    pub start: u64,
    /// Duration in cycles.
    pub duration: u64,
}

impl ScheduledTest {
    /// End cycle (exclusive).
    pub fn end(&self) -> u64 {
        self.start + self.duration
    }

    /// Whether two tests overlap in both time and wires (a conflict).
    pub fn conflicts_with(&self, other: &ScheduledTest) -> bool {
        let time_overlap = self.start < other.end() && other.start < self.end();
        let wire_overlap = self.wire_start < other.wire_start + other.wires
            && other.wire_start < self.wire_start + self.wires;
        time_overlap && wire_overlap
    }
}

/// A complete schedule over an `N`-wire bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    bus_width: usize,
    tests: Vec<ScheduledTest>,
}

impl Schedule {
    /// Builds a schedule from explicit placements, validating the packing
    /// invariants: every wire window lies inside the bus and no two tests
    /// conflict. Tests are canonically reordered by `(start, wire_start)`,
    /// matching what the heuristic constructors produce. This is the
    /// constructor the [`search`](crate::search) optimizer funnels its
    /// winning candidate through, so an evaluator bug can never leak an
    /// invalid schedule out of the crate.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::ZeroWidth`] on an empty bus,
    /// [`ScheduleError::CoreTooWide`] when a wire window runs off the bus,
    /// [`ScheduleError::Conflict`] when two placements overlap in both
    /// wires and time.
    pub fn from_tests(
        bus_width: usize,
        mut tests: Vec<ScheduledTest>,
    ) -> Result<Self, ScheduleError> {
        if bus_width == 0 {
            return Err(ScheduleError::ZeroWidth);
        }
        for t in &tests {
            if t.wire_start + t.wires > bus_width {
                return Err(ScheduleError::CoreTooWide {
                    core: t.core_name.clone(),
                    needed: t.wire_start + t.wires,
                    n: bus_width,
                });
            }
        }
        tests.sort_by_key(|t| (t.start, t.wire_start, t.core));
        for (i, a) in tests.iter().enumerate() {
            for b in &tests[i + 1..] {
                if a.conflicts_with(b) {
                    return Err(ScheduleError::Conflict {
                        a: a.core_name.clone(),
                        b: b.core_name.clone(),
                    });
                }
            }
        }
        Ok(Self { bus_width, tests })
    }

    /// The bus width the schedule targets.
    pub fn bus_width(&self) -> usize {
        self.bus_width
    }

    /// The scheduled tests, by start time.
    pub fn tests(&self) -> &[ScheduledTest] {
        &self.tests
    }

    /// Total test time in cycles (excluding configuration phases).
    pub fn makespan(&self) -> u64 {
        self.tests.iter().map(ScheduledTest::end).max().unwrap_or(0)
    }

    /// Number of distinct configuration "waves": times at which a new set of
    /// concurrent tests starts (each costs one CONFIGURATION phase).
    pub fn configuration_waves(&self) -> usize {
        let mut starts: Vec<u64> = self.tests.iter().map(|t| t.start).collect();
        starts.sort_unstable();
        starts.dedup();
        starts.len()
    }

    /// Checks the packing invariant: no two tests share a wire at the same
    /// time.
    pub fn is_conflict_free(&self) -> bool {
        for (i, a) in self.tests.iter().enumerate() {
            for b in &self.tests[i + 1..] {
                if a.conflicts_with(b) {
                    return false;
                }
            }
        }
        true
    }

    /// Average bus-wire utilisation over the makespan, in `[0, 1]`.
    pub fn utilisation(&self) -> f64 {
        let span = self.makespan();
        if span == 0 {
            return 0.0;
        }
        let used: u64 = self.tests.iter().map(|t| t.duration * t.wires as u64).sum();
        used as f64 / (span * self.bus_width as u64) as f64
    }

    /// Tests grouped into configuration waves, by ascending start time.
    /// Tests inside one wave occupy disjoint wire windows (the packing
    /// invariant), so a session engine may run them on concurrent workers
    /// and join at the wave boundary — exactly what
    /// `casbus_sim::CompiledEngine::with_threads` does per program step.
    pub fn waves(&self) -> Vec<Vec<&ScheduledTest>> {
        let mut starts: Vec<u64> = self.tests.iter().map(|t| t.start).collect();
        starts.sort_unstable();
        starts.dedup();
        starts
            .into_iter()
            .map(|s| self.tests.iter().filter(|t| t.start == s).collect())
            .collect()
    }

    /// Concurrent-session count of each wave, in wave order.
    pub fn wave_concurrency(&self) -> Vec<usize> {
        self.waves().iter().map(Vec::len).collect()
    }

    /// The most wire-disjoint sessions any wave runs at once: the useful
    /// upper bound on engine worker threads (more workers than this can
    /// never be busy simultaneously).
    pub fn max_parallel_lanes(&self) -> usize {
        self.wave_concurrency().into_iter().max().unwrap_or(0)
    }

    /// Splits one wave's tests across `workers` buckets,
    /// longest-processing-time first (each test goes to the currently
    /// lightest bucket), returning the [`CoreId`]s per bucket. All tests in
    /// a wave are wire-disjoint, so any split is safe; LPT keeps the
    /// per-worker cycle loads balanced.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn partition_wave(wave: &[&ScheduledTest], workers: usize) -> Vec<Vec<CoreId>> {
        let mut items: Vec<(u64, CoreId)> = wave.iter().map(|t| (t.duration, t.core)).collect();
        // `partition_lpt`'s sort is stable, so pre-ordering by core id makes
        // equal-duration ties deterministic.
        items.sort_by_key(|&(_, core)| core);
        partition_lpt(items, workers)
    }

    /// Publishes the schedule's static properties into a metrics registry:
    /// `schedule.{makespan,waves,tests,bus_width,utilisation_permille}`
    /// counters plus per-wire planned occupancy
    /// (`schedule.wire<i>.planned_cycles`) and a `schedule.test_cycles`
    /// histogram over the per-core durations.
    pub fn record_metrics(&self, metrics: &casbus_obs::MetricsRegistry) {
        metrics.set("schedule.makespan", self.makespan());
        metrics.set("schedule.waves", self.configuration_waves() as u64);
        metrics.set("schedule.tests", self.tests.len() as u64);
        metrics.set("schedule.bus_width", self.bus_width as u64);
        metrics.set(
            "schedule.utilisation_permille",
            (self.utilisation() * 1000.0).round() as u64,
        );
        let mut planned = vec![0u64; self.bus_width];
        for test in &self.tests {
            metrics.observe("schedule.test_cycles", test.duration);
            for slot in planned.iter_mut().skip(test.wire_start).take(test.wires) {
                *slot += test.duration;
            }
        }
        for (wire, cycles) in planned.iter().enumerate() {
            metrics.set(&format!("schedule.wire{wire}.planned_cycles"), *cycles);
        }
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "schedule on {} wires: makespan {} cycles, {} waves, {:.0}% utilisation",
            self.bus_width,
            self.makespan(),
            self.configuration_waves(),
            self.utilisation() * 100.0
        )?;
        for t in &self.tests {
            writeln!(
                f,
                "  [{:>8} .. {:>8}) wires {}..{} {}",
                t.start,
                t.end(),
                t.wire_start,
                t.wire_start + t.wires,
                t.core_name
            )?;
        }
        Ok(())
    }
}

/// Longest-processing-time-first partition: splits weighted `items` across
/// at most `workers` buckets, heaviest first, each item going to the
/// currently lightest bucket. Never returns an empty bucket (at most
/// `items.len()` buckets are created).
///
/// This is the one load-balancing primitive shared by
/// [`Schedule::partition_wave`] (planning worker lanes ahead of time) and
/// `casbus_sim::CompiledEngine`'s per-step lane bucketing (doing it live):
/// both slice a wire-disjoint wave across workers, so they must agree on
/// the policy. The weight sort is stable — callers control equal-weight
/// ties by pre-ordering `items`.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn partition_lpt<T>(items: Vec<(u64, T)>, workers: usize) -> Vec<Vec<T>> {
    assert!(workers > 0, "at least one worker");
    let mut order = items;
    order.sort_by_key(|&(weight, _)| std::cmp::Reverse(weight));
    let mut buckets: Vec<(u64, Vec<T>)> = Vec::new();
    buckets.resize_with(workers.min(order.len()), || (0, Vec::new()));
    for (weight, item) in order {
        let lightest = buckets
            .iter_mut()
            .min_by_key(|(load, _)| *load)
            .expect("workers > 0 and items non-empty");
        lightest.0 += weight;
        lightest.1.push(item);
    }
    buckets.into_iter().map(|(_, bucket)| bucket).collect()
}

fn check_fit(soc: &SocDescription, n: usize) -> Result<(), ScheduleError> {
    if n == 0 {
        return Err(ScheduleError::ZeroWidth);
    }
    for core in soc.cores() {
        if core.required_ports() > n {
            return Err(ScheduleError::CoreTooWide {
                core: core.name().to_owned(),
                needed: core.required_ports(),
                n,
            });
        }
    }
    Ok(())
}

fn rectangles(soc: &SocDescription) -> Vec<(CoreId, &CoreDescription, u64)> {
    soc.cores()
        .iter()
        .enumerate()
        .map(|(i, c)| (CoreId(i), c, test_time(c)))
        .collect()
}

/// The baseline policy: one core at a time, in descending-duration order.
///
/// # Errors
///
/// Returns [`ScheduleError`] when a core does not fit the bus.
pub fn serial_schedule(soc: &SocDescription, n: usize) -> Result<Schedule, ScheduleError> {
    check_fit(soc, n)?;
    let mut rects = rectangles(soc);
    rects.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
    let mut tests = Vec::new();
    let mut clock = 0u64;
    for (core, desc, duration) in rects {
        tests.push(ScheduledTest {
            core,
            core_name: desc.name().to_owned(),
            wire_start: 0,
            wires: desc.required_ports(),
            start: clock,
            duration,
        });
        clock += duration;
    }
    Ok(Schedule {
        bus_width: n,
        tests,
    })
}

/// Greedy strip packing: longest tests first, each placed at the earliest
/// time where a contiguous wire window is free.
///
/// # Errors
///
/// Returns [`ScheduleError`] when a core does not fit the bus.
pub fn packed_schedule(soc: &SocDescription, n: usize) -> Result<Schedule, ScheduleError> {
    check_fit(soc, n)?;
    let mut rects = rectangles(soc);
    rects.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
    let mut placed: Vec<ScheduledTest> = Vec::new();
    for (core, desc, duration) in rects {
        let wires = desc.required_ports();
        // Candidate start times: 0 and every end of a placed test.
        let mut candidates: Vec<u64> = std::iter::once(0)
            .chain(placed.iter().map(ScheduledTest::end))
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        let mut best: Option<(u64, usize)> = None;
        'outer: for &start in &candidates {
            // Wires occupied during [start, start+duration).
            for wire_start in 0..=(n - wires) {
                let probe = ScheduledTest {
                    core,
                    core_name: String::new(),
                    wire_start,
                    wires,
                    start,
                    duration,
                };
                if placed.iter().all(|p| !p.conflicts_with(&probe)) {
                    best = Some((start, wire_start));
                    break 'outer;
                }
            }
        }
        let (start, wire_start) = best.expect("time axis is unbounded, a slot always exists");
        placed.push(ScheduledTest {
            core,
            core_name: desc.name().to_owned(),
            wire_start,
            wires,
            start,
            duration,
        });
    }
    placed.sort_by_key(|t| (t.start, t.wire_start));
    Ok(Schedule {
        bus_width: n,
        tests: placed,
    })
}

/// Greedy strip packing under a **test-power budget**: like
/// [`packed_schedule`], but a candidate placement is also rejected when the
/// sum of [`test_power`](CoreDescription::test_power) of all
/// simultaneously-running tests would exceed `power_budget` at any instant.
///
/// This is the constraint the SoC test-scheduling literature immediately
/// layered on TAMs of the CAS-BUS generation (scan toggling can exceed
/// mission-mode power and cook an otherwise good die).
///
/// # Errors
///
/// Returns [`ScheduleError::CoreTooWide`] as usual, and treats a core whose
/// own power exceeds the budget like a core that does not fit
/// ([`ScheduleError::CoreTooWide`] with the power numbers reported in wires'
/// place would mislead, so it gets its own message via `ZeroWidth`-style
/// rejection): [`ScheduleError::PowerBudgetTooSmall`].
pub fn power_aware_schedule(
    soc: &SocDescription,
    n: usize,
    power_budget: u32,
) -> Result<Schedule, ScheduleError> {
    check_fit(soc, n)?;
    for core in soc.cores() {
        if core.test_power() > power_budget {
            return Err(ScheduleError::PowerBudgetTooSmall {
                core: core.name().to_owned(),
                power: core.test_power(),
                budget: power_budget,
            });
        }
    }
    let mut rects = rectangles(soc);
    rects.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
    let mut placed: Vec<(ScheduledTest, u32)> = Vec::new();
    for (core, desc, duration) in rects {
        let wires = desc.required_ports();
        let power = desc.test_power();
        let mut candidates: Vec<u64> = std::iter::once(0)
            .chain(placed.iter().map(|(t, _)| t.end()))
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        let mut best: Option<(u64, usize)> = None;
        'outer: for &start in &candidates {
            let probe_interval = (start, start + duration);
            // Conservative: sum the power of every placed test overlapping
            // the probe window anywhere (an upper bound on the true
            // instantaneous concurrency) — the budget is never exceeded.
            let concurrent: u32 = placed
                .iter()
                .filter(|(t, _)| t.start < probe_interval.1 && probe_interval.0 < t.end())
                .map(|(_, p)| *p)
                .sum();
            if concurrent + power > power_budget {
                continue;
            }
            for wire_start in 0..=(n - wires) {
                let probe = ScheduledTest {
                    core,
                    core_name: String::new(),
                    wire_start,
                    wires,
                    start,
                    duration,
                };
                if placed.iter().all(|(t, _)| !t.conflicts_with(&probe)) {
                    best = Some((start, wire_start));
                    break 'outer;
                }
            }
        }
        let (start, wire_start) = best.expect("serial placement always feasible");
        placed.push((
            ScheduledTest {
                core,
                core_name: desc.name().to_owned(),
                wire_start,
                wires,
                start,
                duration,
            },
            power,
        ));
    }
    let mut tests: Vec<ScheduledTest> = placed.into_iter().map(|(t, _)| t).collect();
    tests.sort_by_key(|t| (t.start, t.wire_start));
    Ok(Schedule {
        bus_width: n,
        tests,
    })
}

/// Peak concurrent test power of a schedule (checked at every test start).
pub fn peak_power(soc: &SocDescription, schedule: &Schedule) -> u32 {
    let power_of = |name: &str| {
        soc.core_by_name(name)
            .map(|(_, c)| c.test_power())
            .unwrap_or(0)
    };
    schedule
        .tests()
        .iter()
        .map(|probe| {
            schedule
                .tests()
                .iter()
                .filter(|t| t.start <= probe.start && probe.start < t.end())
                .map(|t| power_of(&t.core_name))
                .sum()
        })
        .max()
        .unwrap_or(0)
}

/// Upper bound on SoC size for [`wave_optimal_schedule`]'s `O(3^k)` DP.
pub const WAVE_OPTIMAL_CORE_LIMIT: usize = 14;

/// The provably-optimal *wave* schedule: cores are partitioned into
/// concurrent waves (each wave's widths summing to at most `N`), waves run
/// sequentially, and each wave lasts as long as its slowest member. This is
/// exactly the execution model of a [`TestProgram`](crate::program::TestProgram)
/// — one CONFIGURATION phase per wave — so it is the right optimality
/// yardstick for the greedy packer.
///
/// Solved exactly by dynamic programming over core subsets (`O(3^k)`).
///
/// # Errors
///
/// Returns [`ScheduleError::TooManyCores`] beyond
/// [`WAVE_OPTIMAL_CORE_LIMIT`] cores, plus the usual fit errors.
pub fn wave_optimal_schedule(soc: &SocDescription, n: usize) -> Result<Schedule, ScheduleError> {
    check_fit(soc, n)?;
    let rects = rectangles(soc);
    let k = rects.len();
    if k > WAVE_OPTIMAL_CORE_LIMIT {
        return Err(ScheduleError::TooManyCores {
            count: k,
            limit: WAVE_OPTIMAL_CORE_LIMIT,
        });
    }
    let widths: Vec<usize> = rects.iter().map(|(_, c, _)| c.required_ports()).collect();
    let durations: Vec<u64> = rects.iter().map(|&(_, _, d)| d).collect();
    let full = (1usize << k) - 1;

    // A wave is feasible when its widths fit the bus side by side.
    let mut wave_width = vec![0usize; full + 1];
    let mut wave_cost = vec![0u64; full + 1];
    for mask in 1..=full {
        let bit = mask.trailing_zeros() as usize;
        let rest = mask & (mask - 1);
        wave_width[mask] = wave_width[rest] + widths[bit];
        wave_cost[mask] = wave_cost[rest].max(durations[bit]);
    }

    let mut dp = vec![u64::MAX; full + 1];
    let mut choice = vec![0usize; full + 1];
    dp[0] = 0;
    for mask in 1..=full {
        // Always include the lowest set bit in the wave to halve the work.
        let low = mask & mask.wrapping_neg();
        let mut sub = mask;
        while sub != 0 {
            if sub & low != 0 && wave_width[sub] <= n && dp[mask ^ sub] != u64::MAX {
                let cand = dp[mask ^ sub] + wave_cost[sub];
                if cand < dp[mask] {
                    dp[mask] = cand;
                    choice[mask] = sub;
                }
            }
            sub = (sub - 1) & mask;
        }
    }
    debug_assert_ne!(dp[full], u64::MAX, "singleton waves always fit");

    // Reconstruct the waves and lay each out on contiguous windows.
    let mut tests = Vec::new();
    let mut clock = 0u64;
    let mut mask = full;
    while mask != 0 {
        let wave = choice[mask];
        let mut wire = 0usize;
        let mut members: Vec<usize> = (0..k).filter(|i| wave >> i & 1 == 1).collect();
        members.sort_by_key(|&i| std::cmp::Reverse(widths[i]));
        for i in members {
            let (core, desc, duration) = rects[i];
            tests.push(ScheduledTest {
                core,
                core_name: desc.name().to_owned(),
                wire_start: wire,
                wires: widths[i],
                start: clock,
                duration,
            });
            wire += widths[i];
        }
        clock += wave_cost[wave];
        mask ^= wave;
    }
    tests.sort_by_key(|t| (t.start, t.wire_start));
    Ok(Schedule {
        bus_width: n,
        tests,
    })
}

/// Sweeps `packed_schedule` over bus widths, returning `(n, makespan)` —
/// the §3.2 trade-off curve ("the larger is the width of the test bus, the
/// shorter is the overall test time").
pub fn makespan_vs_width(
    soc: &SocDescription,
    widths: impl IntoIterator<Item = usize>,
) -> Vec<(usize, u64)> {
    widths
        .into_iter()
        .filter_map(|n| packed_schedule(soc, n).ok().map(|s| (n, s.makespan())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use casbus_soc::catalog;

    #[test]
    fn serial_equals_sum_of_times() {
        let soc = catalog::figure1_soc();
        let sched = serial_schedule(&soc, 4).unwrap();
        let total: u64 = soc.cores().iter().map(test_time).sum();
        assert_eq!(sched.makespan(), total);
        assert!(sched.is_conflict_free());
        assert_eq!(sched.configuration_waves(), soc.cores().len());
    }

    #[test]
    fn recorded_metrics_match_schedule_properties() {
        let soc = catalog::figure1_soc();
        let sched = packed_schedule(&soc, 6).unwrap();
        let metrics = casbus_obs::MetricsRegistry::new();
        sched.record_metrics(&metrics);
        assert_eq!(metrics.counter("schedule.makespan"), sched.makespan());
        assert_eq!(
            metrics.counter("schedule.waves"),
            sched.configuration_waves() as u64
        );
        assert_eq!(
            metrics.counter("schedule.tests"),
            sched.tests().len() as u64
        );
        let hist = metrics.histogram("schedule.test_cycles").unwrap();
        assert_eq!(hist.count, sched.tests().len() as u64);
        // Planned per-wire occupancy sums to the total wire·cycle area.
        let area: u64 = sched
            .tests()
            .iter()
            .map(|t| t.duration * t.wires as u64)
            .sum();
        assert_eq!(metrics.counter_sum("schedule.wire"), area);
    }

    #[test]
    fn packing_never_worse_than_serial() {
        let soc = catalog::figure1_soc();
        for n in 4..=10 {
            let serial = serial_schedule(&soc, n).unwrap().makespan();
            let packed = packed_schedule(&soc, n).unwrap().makespan();
            assert!(packed <= serial, "n={n}: {packed} > {serial}");
        }
    }

    #[test]
    fn packed_is_conflict_free() {
        let soc = catalog::figure1_soc();
        for n in 4..=12 {
            let sched = packed_schedule(&soc, n).unwrap();
            assert!(sched.is_conflict_free(), "n={n}\n{sched}");
            assert_eq!(sched.tests().len(), soc.cores().len());
        }
    }

    #[test]
    fn wider_bus_never_slower() {
        let soc = catalog::figure1_soc();
        let curve = makespan_vs_width(&soc, 4..=12);
        for pair in curve.windows(2) {
            assert!(
                pair[1].1 <= pair[0].1,
                "makespan must be non-increasing in N: {curve:?}"
            );
        }
    }

    #[test]
    fn parallelism_actually_helps_somewhere() {
        let soc = catalog::figure1_soc();
        let narrow = packed_schedule(&soc, 4).unwrap().makespan();
        let wide = packed_schedule(&soc, 12).unwrap().makespan();
        assert!(wide < narrow, "a 3x wider bus must shorten this SoC's test");
    }

    #[test]
    fn too_narrow_rejected() {
        let soc = catalog::figure1_soc(); // max P = 4
        assert!(matches!(
            packed_schedule(&soc, 2),
            Err(ScheduleError::CoreTooWide { needed: 4, .. })
        ));
        assert_eq!(packed_schedule(&soc, 0), Err(ScheduleError::ZeroWidth));
    }

    #[test]
    fn utilisation_bounds() {
        let soc = catalog::figure2b_bist_soc();
        let sched = packed_schedule(&soc, 2).unwrap();
        let u = sched.utilisation();
        assert!(u > 0.0 && u <= 1.0, "{u}");
    }

    #[test]
    fn conflict_detection() {
        let a = ScheduledTest {
            core: CoreId(0),
            core_name: "a".into(),
            wire_start: 0,
            wires: 2,
            start: 0,
            duration: 10,
        };
        let mut b = a.clone();
        b.core = CoreId(1);
        b.wire_start = 2;
        assert!(!a.conflicts_with(&b), "disjoint wires");
        b.wire_start = 1;
        assert!(a.conflicts_with(&b), "overlapping wires and time");
        b.start = 10;
        assert!(!a.conflicts_with(&b), "back-to-back in time");
    }

    #[test]
    fn power_budget_is_respected() {
        use casbus_soc::{CoreDescription, SocBuilder, TestMethod};
        let soc = SocBuilder::new("hot")
            .core(
                CoreDescription::new(
                    "a",
                    TestMethod::Bist {
                        width: 8,
                        patterns: 100,
                    },
                )
                .with_test_power(60),
            )
            .core(
                CoreDescription::new(
                    "b",
                    TestMethod::Bist {
                        width: 8,
                        patterns: 100,
                    },
                )
                .with_test_power(60),
            )
            .core(
                CoreDescription::new(
                    "c",
                    TestMethod::Bist {
                        width: 8,
                        patterns: 100,
                    },
                )
                .with_test_power(30),
            )
            .build()
            .unwrap();
        // Plenty of wires, but only 100 power units: a and b can never run
        // together.
        let sched = power_aware_schedule(&soc, 4, 100).unwrap();
        assert!(sched.is_conflict_free());
        assert!(peak_power(&soc, &sched) <= 100, "{sched}");
        // With an unconstrained budget, everything runs at once and the
        // makespan shrinks.
        let free = power_aware_schedule(&soc, 4, 1000).unwrap();
        assert!(free.makespan() <= sched.makespan());
        assert_eq!(peak_power(&soc, &free), 150);
    }

    #[test]
    fn power_budget_matches_unconstrained_packing_when_loose() {
        let soc = catalog::figure1_soc();
        let packed = packed_schedule(&soc, 8).unwrap();
        let powered = power_aware_schedule(&soc, 8, u32::MAX).unwrap();
        assert_eq!(powered.makespan(), packed.makespan());
    }

    #[test]
    fn impossible_power_budget_rejected() {
        let soc = catalog::figure1_soc(); // default power 100 per core
        assert!(matches!(
            power_aware_schedule(&soc, 8, 50),
            Err(ScheduleError::PowerBudgetTooSmall {
                power: 100,
                budget: 50,
                ..
            })
        ));
    }

    #[test]
    fn tight_budget_degrades_towards_serial() {
        let soc = catalog::figure1_soc();
        let serial = serial_schedule(&soc, 8).unwrap().makespan();
        // Exactly one core's worth of power: fully serial behaviour.
        let tight = power_aware_schedule(&soc, 8, 100).unwrap();
        assert!(peak_power(&soc, &tight) <= 100);
        assert_eq!(tight.makespan(), serial);
        // Two cores' worth: in between.
        let medium = power_aware_schedule(&soc, 8, 200).unwrap();
        assert!(medium.makespan() <= serial);
        assert!(peak_power(&soc, &medium) <= 200);
    }

    #[test]
    fn wave_optimal_is_valid_and_no_worse_than_serial() {
        let soc = catalog::figure1_soc();
        for n in 4..=9 {
            let opt = wave_optimal_schedule(&soc, n).unwrap();
            assert!(opt.is_conflict_free(), "n={n}\n{opt}");
            assert_eq!(opt.tests().len(), soc.cores().len());
            let serial = serial_schedule(&soc, n).unwrap().makespan();
            assert!(opt.makespan() <= serial, "n={n}");
        }
    }

    #[test]
    fn wave_optimal_beats_or_matches_greedy_waves() {
        // The greedy packer's *wave structure* (tests grouped by start) is a
        // feasible wave partition, so the DP can only improve on its
        // sum-of-wave-maxima cost.
        let soc = catalog::figure1_soc();
        for n in 4..=9 {
            let packed = packed_schedule(&soc, n).unwrap();
            let mut starts: Vec<u64> = packed.tests().iter().map(|t| t.start).collect();
            starts.sort_unstable();
            starts.dedup();
            let greedy_wave_cost: u64 = starts
                .iter()
                .map(|&s| {
                    packed
                        .tests()
                        .iter()
                        .filter(|t| t.start == s)
                        .map(|t| t.duration)
                        .max()
                        .unwrap_or(0)
                })
                .sum();
            let opt = wave_optimal_schedule(&soc, n).unwrap();
            assert!(
                opt.makespan() <= greedy_wave_cost,
                "n={n}: optimal {} vs greedy waves {greedy_wave_cost}",
                opt.makespan()
            );
        }
    }

    #[test]
    fn wave_optimal_equals_serial_on_width_one() {
        let soc = catalog::figure2b_bist_soc();
        let opt = wave_optimal_schedule(&soc, 1).unwrap();
        let serial = serial_schedule(&soc, 1).unwrap();
        assert_eq!(opt.makespan(), serial.makespan());
    }

    #[test]
    fn wave_optimal_rejects_large_socs() {
        let mut rng = rand::rng();
        let soc = catalog::random_soc(&mut rng, 20, 2);
        assert!(matches!(
            wave_optimal_schedule(&soc, 4),
            Err(ScheduleError::TooManyCores { count: 20, .. })
        ));
    }

    #[test]
    fn wave_optimal_exploits_width() {
        // Two 1-wide cores with equal times: a 2-wide bus halves the span.
        use casbus_soc::{CoreDescription, SocBuilder, TestMethod};
        let soc = SocBuilder::new("pair")
            .core(CoreDescription::new(
                "a",
                TestMethod::Bist {
                    width: 8,
                    patterns: 100,
                },
            ))
            .core(CoreDescription::new(
                "b",
                TestMethod::Bist {
                    width: 8,
                    patterns: 100,
                },
            ))
            .build()
            .unwrap();
        let narrow = wave_optimal_schedule(&soc, 1).unwrap().makespan();
        let wide = wave_optimal_schedule(&soc, 2).unwrap().makespan();
        assert_eq!(wide * 2, narrow);
    }

    #[test]
    fn waves_group_by_start_and_cover_everything() {
        let soc = catalog::figure1_soc();
        let sched = packed_schedule(&soc, 8).unwrap();
        let waves = sched.waves();
        assert_eq!(waves.len(), sched.configuration_waves());
        let total: usize = waves.iter().map(Vec::len).sum();
        assert_eq!(total, sched.tests().len());
        // Ascending start times, and within a wave all starts agree.
        let mut last_start = None;
        for wave in &waves {
            let start = wave[0].start;
            assert!(wave.iter().all(|t| t.start == start));
            assert!(last_start.is_none_or(|s| s < start));
            last_start = Some(start);
        }
        assert_eq!(
            sched.max_parallel_lanes(),
            sched.wave_concurrency().into_iter().max().unwrap()
        );
        // Serial schedules never run two sessions at once.
        let serial = serial_schedule(&soc, 8).unwrap();
        assert_eq!(serial.max_parallel_lanes(), 1);
        assert!(sched.max_parallel_lanes() >= serial.max_parallel_lanes());
    }

    #[test]
    fn partition_wave_balances_and_covers() {
        let soc = catalog::figure1_soc();
        let sched = packed_schedule(&soc, 12).unwrap();
        let waves = sched.waves();
        let widest = waves
            .iter()
            .max_by_key(|w| w.len())
            .expect("non-empty schedule");
        for workers in 1..=4 {
            let buckets = Schedule::partition_wave(widest, workers);
            assert!(buckets.len() <= workers);
            assert!(buckets.iter().all(|b| !b.is_empty()));
            let mut cores: Vec<CoreId> = buckets.iter().flatten().copied().collect();
            cores.sort();
            let mut expected: Vec<CoreId> = widest.iter().map(|t| t.core).collect();
            expected.sort();
            assert_eq!(cores, expected, "every lane assigned exactly once");
        }
        // LPT with one worker per test gives singleton buckets.
        let buckets = Schedule::partition_wave(widest, widest.len());
        assert!(buckets.iter().all(|b| b.len() == 1));
    }

    #[test]
    fn from_tests_validates_and_canonicalises() {
        let soc = catalog::figure1_soc();
        let packed = packed_schedule(&soc, 6).unwrap();
        // Shuffled placements round-trip into the identical schedule.
        let mut shuffled = packed.tests().to_vec();
        shuffled.reverse();
        let rebuilt = Schedule::from_tests(6, shuffled).unwrap();
        assert_eq!(rebuilt, packed);
        // A window running off the bus is rejected.
        let mut off_bus = packed.tests().to_vec();
        off_bus[0].wire_start = 6;
        assert!(matches!(
            Schedule::from_tests(6, off_bus),
            Err(ScheduleError::CoreTooWide { n: 6, .. })
        ));
        // Two overlapping placements are rejected.
        let a = ScheduledTest {
            core: CoreId(0),
            core_name: "a".into(),
            wire_start: 0,
            wires: 2,
            start: 0,
            duration: 10,
        };
        let mut b = a.clone();
        b.core = CoreId(1);
        b.core_name = "b".into();
        b.wire_start = 1;
        assert!(matches!(
            Schedule::from_tests(4, vec![a.clone(), b]),
            Err(ScheduleError::Conflict { .. })
        ));
        assert_eq!(
            Schedule::from_tests(0, vec![a]),
            Err(ScheduleError::ZeroWidth)
        );
    }

    #[test]
    fn partition_lpt_balances_generic_items() {
        // Four weights onto two workers: LPT pairs 9+1 and 7+3.
        let items = vec![(9u64, "a"), (7, "b"), (3, "c"), (1, "d")];
        let buckets = partition_lpt(items, 2);
        assert_eq!(buckets, vec![vec!["a", "d"], vec!["b", "c"]]);
        // More workers than items: singleton buckets, none empty.
        let buckets = partition_lpt(vec![(5u64, 0usize), (2, 1)], 8);
        assert_eq!(buckets, vec![vec![0], vec![1]]);
        // Equal weights keep the caller's order (stable sort).
        let buckets = partition_lpt(vec![(4u64, "x"), (4, "y"), (4, "z")], 1);
        assert_eq!(buckets, vec![vec!["x", "y", "z"]]);
        assert!(partition_lpt(Vec::<(u64, ())>::new(), 3).is_empty());
    }

    #[test]
    fn display_is_informative() {
        let soc = catalog::figure2a_scan_soc();
        let sched = packed_schedule(&soc, 5).unwrap();
        let text = sched.to_string();
        assert!(text.contains("makespan"));
        assert!(text.contains("scan3"));
    }
}
