//! Simulation-in-the-loop schedule search: a seeded, annealed makespan
//! optimizer over the strip-packing schedule space.
//!
//! The policies in [`crate::schedule`] are one-shot greedy passes; the
//! wrapper/TAM co-optimization literature frames CAS-BUS scheduling as
//! rectangle packing where *search* over placements, not a single greedy
//! sweep, recovers most of the idle bus time. This module implements that
//! search:
//!
//! 1. **Seed** from every heuristic — [`serial_schedule`],
//!    [`packed_schedule`], [`wave_optimal_schedule`] when the SoC is small
//!    enough for its subset DP — plus widest-first and largest-area greedy
//!    decodes for diversity.
//! 2. **Anneal** with four local moves: shift a session to its earliest
//!    feasible slot, jump it next to an anchor session, swap two sessions'
//!    wire lanes, or rebuild greedily from a perturbed priority order.
//!    Acceptance is simulated annealing over a deterministic seeded RNG.
//! 3. **Score** every move with an incremental evaluator that maintains
//!    makespan and conflict state in `O(k)` per changed session instead of
//!    an `O(k²)` rebuild per candidate.
//! 4. **Validate** the top-K survivors after each round by actually
//!    executing them — the [`CandidateValidator`] hook. `casbus-sim` plugs
//!    its compiled word-level engine in here; the pure-analytic default is
//!    [`NoValidation`].
//!
//! Determinism: the same SoC, bus width and [`SearchBudget`] always return
//! the same schedule. Because the heuristic seeds join the survivor pool,
//! the result is never worse than the best heuristic.

use std::cmp::Reverse;

use casbus_obs::MetricsRegistry;
use casbus_soc::{CoreId, SocDescription};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::schedule::{
    packed_schedule, serial_schedule, wave_optimal_schedule, Schedule, ScheduleError, ScheduledTest,
};
use crate::time_model::test_time;

/// Resource limits and tuning knobs for [`search_schedule`].
///
/// The defaults suit Table-1-sized SoCs (up to a few tens of cores); CI
/// uses [`SearchBudget::smoke`] for a fast deterministic pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchBudget {
    /// Annealing rounds; the survivor pool is validated after each round.
    /// Clamped to at least 1 so validation always runs.
    pub rounds: usize,
    /// Local-search moves attempted per round.
    pub moves_per_round: usize,
    /// Survivor-pool size handed to the validator per round. Clamped to at
    /// least 1.
    pub top_k: usize,
    /// RNG seed: same seed (and inputs) → same schedule.
    pub seed: u64,
    /// Initial annealing temperature, as a fraction of the seed makespan.
    pub initial_temperature: f64,
    /// Per-round geometric cooling factor in `(0, 1]`.
    pub cooling: f64,
}

impl Default for SearchBudget {
    fn default() -> Self {
        Self {
            rounds: 8,
            moves_per_round: 800,
            top_k: 4,
            seed: 0xCA5B_0504,
            initial_temperature: 0.05,
            cooling: 0.65,
        }
    }
}

impl SearchBudget {
    /// A tiny deterministic budget for CI smoke runs: three rounds of 200
    /// moves with two survivors.
    pub fn smoke() -> Self {
        Self {
            rounds: 3,
            moves_per_round: 200,
            top_k: 2,
            ..Self::default()
        }
    }
}

/// Executes candidate schedules to measure — and gate — them.
///
/// The controller cannot depend on the simulator (the dependency points the
/// other way), so execution-backed validation is injected: after each round
/// the top-K pool is handed over as built [`Schedule`]s and the validator
/// returns each one's measured cost (total tester cycles for an
/// engine-backed implementation), or `None` to veto the candidate from the
/// pool. `casbus_sim` implements this on its compiled engine with a shared
/// route-table cache; [`NoValidation`] keeps the search purely analytic.
pub trait CandidateValidator {
    /// Measures each candidate, `None` vetoing it. Must return exactly one
    /// entry per candidate, in order.
    fn measure(&self, soc: &SocDescription, candidates: &[Schedule]) -> Vec<Option<u64>>;
}

/// The analytic default validator: every candidate passes, measured at its
/// own makespan.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoValidation;

impl CandidateValidator for NoValidation {
    fn measure(&self, _soc: &SocDescription, candidates: &[Schedule]) -> Vec<Option<u64>> {
        candidates.iter().map(|c| Some(c.makespan())).collect()
    }
}

/// One candidate's decision variables: per-core `(start, wire_start)`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Placement {
    starts: Vec<u64>,
    wires: Vec<usize>,
}

/// Incremental analytic scorer for one incumbent candidate.
///
/// Holds the per-core rectangles (`widths`, `durations`) and the incumbent
/// placement, and maintains the makespan and the sum of session ends under
/// single-session updates: a move touching `m` sessions costs `O(m·k)` for
/// the conflict check plus `O(1)` bookkeeping (an `O(k)` makespan recompute
/// only when the defining session shrinks) — versus `O(k²)` for a full
/// [`Schedule::is_conflict_free`] rebuild. That gap is what makes tens of
/// thousands of annealing moves affordable.
#[derive(Debug, Clone)]
struct Evaluator {
    n: usize,
    widths: Vec<usize>,
    durations: Vec<u64>,
    starts: Vec<u64>,
    wires: Vec<usize>,
    makespan: u64,
    sum_ends: u64,
    /// Tie-break weight for the sum of ends, small enough that the cost
    /// ordering of two candidates with different integer makespans can
    /// never flip.
    tie_eps: f64,
}

impl Evaluator {
    fn new(n: usize, widths: Vec<usize>, durations: Vec<u64>, placement: &Placement) -> Self {
        let total: u64 = durations.iter().sum();
        let tie_eps = 1.0 / ((widths.len() as u64 * (total + 1)) as f64 + 1.0);
        let mut eval = Self {
            n,
            widths,
            durations,
            starts: Vec::new(),
            wires: Vec::new(),
            makespan: 0,
            sum_ends: 0,
            tie_eps,
        };
        eval.load(placement);
        eval
    }

    fn k(&self) -> usize {
        self.widths.len()
    }

    fn end(&self, i: usize) -> u64 {
        self.starts[i] + self.durations[i]
    }

    fn cost(&self) -> f64 {
        self.makespan as f64 + self.sum_ends as f64 * self.tie_eps
    }

    fn cost_of(&self, placement: &Placement) -> f64 {
        let (makespan, sum_ends) = span_and_sum(&self.durations, placement);
        makespan as f64 + sum_ends as f64 * self.tie_eps
    }

    fn placement(&self) -> Placement {
        Placement {
            starts: self.starts.clone(),
            wires: self.wires.clone(),
        }
    }

    /// Replaces the whole incumbent and recomputes the aggregates.
    fn load(&mut self, placement: &Placement) {
        self.starts.clone_from(&placement.starts);
        self.wires.clone_from(&placement.wires);
        let (makespan, sum_ends) = span_and_sum(&self.durations, placement);
        self.makespan = makespan;
        self.sum_ends = sum_ends;
    }

    /// Whether re-placing the `moved` sessions (given as
    /// `(index, start, wire_start)`) keeps the candidate conflict-free and
    /// on the bus. The moved sessions' current placements are ignored.
    fn feasible(&self, moved: &[(usize, u64, usize)]) -> bool {
        for (pos, &(i, start, wire)) in moved.iter().enumerate() {
            if wire + self.widths[i] > self.n {
                return false;
            }
            let end = start + self.durations[i];
            for j in 0..self.k() {
                if moved.iter().any(|&(m, _, _)| m == j) {
                    continue;
                }
                let time = start < self.end(j) && self.starts[j] < end;
                let lane =
                    wire < self.wires[j] + self.widths[j] && self.wires[j] < wire + self.widths[i];
                if time && lane {
                    return false;
                }
            }
            for &(j, s2, w2) in &moved[pos + 1..] {
                let e2 = s2 + self.durations[j];
                let time = start < e2 && s2 < end;
                let lane = wire < w2 + self.widths[j] && w2 < wire + self.widths[i];
                if time && lane {
                    return false;
                }
            }
        }
        true
    }

    /// Re-places session `i`, updating the aggregates incrementally.
    fn place(&mut self, i: usize, start: u64, wire: usize) {
        let old_end = self.end(i);
        self.starts[i] = start;
        self.wires[i] = wire;
        let new_end = self.end(i);
        self.sum_ends = self.sum_ends - old_end + new_end;
        if new_end >= self.makespan {
            self.makespan = new_end;
        } else if old_end == self.makespan {
            // The defining end moved left: the one O(k) case.
            self.makespan = (0..self.k()).map(|j| self.end(j)).max().unwrap_or(0);
        }
    }

    /// Earliest feasible `(start, wire_start)` for session `i` against the
    /// other incumbent placements. The earliest start is always 0 or some
    /// other session's end, and the slot at the global maximum end is
    /// always free, so this never fails.
    fn earliest_for(&self, i: usize) -> (u64, usize) {
        let mut candidates: Vec<u64> = std::iter::once(0)
            .chain((0..self.k()).filter(|&j| j != i).map(|j| self.end(j)))
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        for &start in &candidates {
            for wire in 0..=(self.n - self.widths[i]) {
                if self.feasible(&[(i, start, wire)]) {
                    return (start, wire);
                }
            }
        }
        unreachable!("the slot after every other session is always free")
    }
}

/// Makespan and sum-of-ends of a placement.
fn span_and_sum(durations: &[u64], placement: &Placement) -> (u64, u64) {
    let mut makespan = 0u64;
    let mut sum_ends = 0u64;
    for (i, &start) in placement.starts.iter().enumerate() {
        let end = start + durations[i];
        makespan = makespan.max(end);
        sum_ends += end;
    }
    (makespan, sum_ends)
}

/// Greedy earliest-slot decoder: places sessions in `order`, each at the
/// earliest feasible `(start, wire)` against the already-placed prefix —
/// the same policy as [`packed_schedule`], but under an arbitrary priority
/// order, which is what the rebuild move perturbs.
fn decode_order(n: usize, widths: &[usize], durations: &[u64], order: &[usize]) -> Placement {
    let k = widths.len();
    let mut starts = vec![0u64; k];
    let mut wires = vec![0usize; k];
    let mut placed: Vec<usize> = Vec::with_capacity(k);
    for &i in order {
        let mut candidates: Vec<u64> = std::iter::once(0)
            .chain(placed.iter().map(|&j| starts[j] + durations[j]))
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        let mut slot = None;
        'outer: for &start in &candidates {
            let end = start + durations[i];
            for wire in 0..=(n - widths[i]) {
                let free = placed.iter().all(|&j| {
                    let time = start < starts[j] + durations[j] && starts[j] < end;
                    let lane = wire < wires[j] + widths[j] && wires[j] < wire + widths[i];
                    !(time && lane)
                });
                if free {
                    slot = Some((start, wire));
                    break 'outer;
                }
            }
        }
        let (start, wire) = slot.expect("the slot after every placed session is always free");
        starts[i] = start;
        wires[i] = wire;
        placed.push(i);
    }
    Placement { starts, wires }
}

/// A survivor-pool entry: a candidate plus its analytic and (once the
/// validator has seen it) measured cost.
struct PoolEntry {
    makespan: u64,
    sum_ends: u64,
    placement: Placement,
    measured: Option<u64>,
}

fn pool_insert(
    pool: &mut Vec<PoolEntry>,
    makespan: u64,
    sum_ends: u64,
    placement: Placement,
    top_k: usize,
) {
    if pool.iter().any(|e| e.placement == placement) {
        return;
    }
    if pool.len() >= top_k
        && pool
            .last()
            .is_some_and(|worst| (makespan, sum_ends) >= (worst.makespan, worst.sum_ends))
    {
        return;
    }
    pool.push(PoolEntry {
        makespan,
        sum_ends,
        placement,
        measured: None,
    });
    pool.sort_by_key(|e| (e.makespan, e.sum_ends));
    pool.truncate(top_k);
}

fn build_schedule(
    n: usize,
    names: &[String],
    widths: &[usize],
    durations: &[u64],
    placement: &Placement,
) -> Schedule {
    let tests = (0..names.len())
        .map(|i| ScheduledTest {
            core: CoreId(i),
            core_name: names[i].clone(),
            wire_start: placement.wires[i],
            wires: widths[i],
            start: placement.starts[i],
            duration: durations[i],
        })
        .collect();
    Schedule::from_tests(n, tests).expect("search moves preserve the packing invariants")
}

/// Shift move: re-place a random session at its earliest feasible slot.
/// Never worsens the cost (the current slot is itself feasible), so it is
/// always applied when it changes anything.
fn move_shift(eval: &mut Evaluator, rng: &mut StdRng) -> bool {
    let i = rng.random_range(0..eval.k());
    let (start, wire) = eval.earliest_for(i);
    if (start, wire) == (eval.starts[i], eval.wires[i]) {
        return false;
    }
    eval.place(i, start, wire);
    true
}

/// Applies `moves`, keeping them on cost improvement or with the Metropolis
/// probability `exp(-Δ/temp)`, reverting otherwise.
fn anneal_apply(
    eval: &mut Evaluator,
    rng: &mut StdRng,
    temp: f64,
    moves: &[(usize, u64, usize)],
) -> bool {
    let old_cost = eval.cost();
    let saved: Vec<(usize, u64, usize)> = moves
        .iter()
        .map(|&(i, _, _)| (i, eval.starts[i], eval.wires[i]))
        .collect();
    for &(i, start, wire) in moves {
        eval.place(i, start, wire);
    }
    let delta = eval.cost() - old_cost;
    if delta <= 0.0 || rng.random::<f64>() < (-delta / temp).exp() {
        return true;
    }
    for &(i, start, wire) in &saved {
        eval.place(i, start, wire);
    }
    false
}

/// Jump move: align a random session with an anchor session — at its start,
/// at its end, or ending where it starts — on the first feasible lane
/// scanning from a random offset. Annealed (jumps may go uphill).
fn move_jump(eval: &mut Evaluator, rng: &mut StdRng, temp: f64) -> bool {
    let k = eval.k();
    let i = rng.random_range(0..k);
    let mut anchor = rng.random_range(0..k - 1);
    if anchor >= i {
        anchor += 1;
    }
    let start = match rng.random_range(0..3u32) {
        0 => eval.starts[anchor],
        1 => eval.end(anchor),
        _ => eval.starts[anchor].saturating_sub(eval.durations[i]),
    };
    let lanes = eval.n - eval.widths[i];
    let offset = rng.random_range(0..=lanes);
    let mut target = None;
    for step in 0..=lanes {
        let wire = (offset + step) % (lanes + 1);
        if eval.feasible(&[(i, start, wire)]) {
            target = Some(wire);
            break;
        }
    }
    let Some(wire) = target else {
        return false;
    };
    if (start, wire) == (eval.starts[i], eval.wires[i]) {
        return false;
    }
    anneal_apply(eval, rng, temp, &[(i, start, wire)])
}

/// Swap move: exchange two sessions' wire lanes (clamped onto the bus).
/// Cost-neutral — ends do not change — but it reshuffles which lanes are
/// free, opening shift/jump opportunities the incumbent lane layout blocks.
fn move_swap(eval: &mut Evaluator, rng: &mut StdRng) -> bool {
    let k = eval.k();
    let i = rng.random_range(0..k);
    let mut j = rng.random_range(0..k - 1);
    if j >= i {
        j += 1;
    }
    let wire_i = eval.wires[j].min(eval.n - eval.widths[i]);
    let wire_j = eval.wires[i].min(eval.n - eval.widths[j]);
    if wire_i == eval.wires[i] && wire_j == eval.wires[j] {
        return false;
    }
    let moves = [(i, eval.starts[i], wire_i), (j, eval.starts[j], wire_j)];
    if !eval.feasible(&moves) {
        return false;
    }
    for (idx, start, wire) in moves {
        eval.place(idx, start, wire);
    }
    true
}

/// Rebuild move: take the incumbent's execution order, swap two random
/// positions, and greedily re-decode the whole candidate — the large-step
/// move that escapes local minima the session-local moves cannot.
fn move_rebuild(eval: &mut Evaluator, rng: &mut StdRng, temp: f64) -> bool {
    let k = eval.k();
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by_key(|&i| (eval.starts[i], eval.wires[i], i));
    let a = rng.random_range(0..k);
    let mut b = rng.random_range(0..k - 1);
    if b >= a {
        b += 1;
    }
    order.swap(a, b);
    let candidate = decode_order(eval.n, &eval.widths, &eval.durations, &order);
    let delta = eval.cost_of(&candidate) - eval.cost();
    if delta <= 0.0 || rng.random::<f64>() < (-delta / temp).exp() {
        eval.load(&candidate);
        true
    } else {
        false
    }
}

/// Searches for a minimum-makespan conflict-free schedule.
///
/// Seeds from [`serial_schedule`], [`packed_schedule`] and — within its
/// core limit — [`wave_optimal_schedule`], so the result is **never worse
/// than the best heuristic**; the annealed local search then exploits the
/// staggered-start freedom the wave model gives away. Deterministic for a
/// fixed `budget`.
///
/// # Errors
///
/// The same fit errors as the heuristics: [`ScheduleError::ZeroWidth`] and
/// [`ScheduleError::CoreTooWide`].
///
/// # Examples
///
/// ```
/// use casbus_controller::search::{search_schedule, SearchBudget};
/// use casbus_controller::schedule::packed_schedule;
/// use casbus_soc::catalog;
///
/// let soc = catalog::figure1_soc();
/// let searched = search_schedule(&soc, 6, SearchBudget::smoke())?;
/// let packed = packed_schedule(&soc, 6)?;
/// assert!(searched.is_conflict_free());
/// assert!(searched.makespan() <= packed.makespan());
/// # Ok::<(), casbus_controller::ScheduleError>(())
/// ```
pub fn search_schedule(
    soc: &SocDescription,
    n: usize,
    budget: SearchBudget,
) -> Result<Schedule, ScheduleError> {
    search_schedule_with(soc, n, budget, &NoValidation, &MetricsRegistry::new())
}

/// [`search_schedule`] with an execution-backed [`CandidateValidator`] and
/// a registry receiving the search telemetry: `search.seed_makespan`,
/// `search.best_makespan`, `search.candidates_evaluated`,
/// `search.moves_{accepted,rejected}`, `search.validations`,
/// `search.validation_failures` counters plus the
/// `search.best_makespan_trajectory` series (one point per improvement).
///
/// # Errors
///
/// Same as [`search_schedule`].
pub fn search_schedule_with(
    soc: &SocDescription,
    n: usize,
    budget: SearchBudget,
    validator: &dyn CandidateValidator,
    metrics: &MetricsRegistry,
) -> Result<Schedule, ScheduleError> {
    let mut pool = optimize(soc, n, budget, validator, metrics)?;
    Ok(pool.remove(0))
}

/// The final survivor pool, winner first — what [`search_schedule_with`]
/// picks its result from, exposed for benches and diagnostics.
///
/// # Errors
///
/// Same as [`search_schedule`].
pub fn search_candidates(
    soc: &SocDescription,
    n: usize,
    budget: SearchBudget,
    validator: &dyn CandidateValidator,
    metrics: &MetricsRegistry,
) -> Result<Vec<Schedule>, ScheduleError> {
    optimize(soc, n, budget, validator, metrics)
}

fn optimize(
    soc: &SocDescription,
    n: usize,
    budget: SearchBudget,
    validator: &dyn CandidateValidator,
    metrics: &MetricsRegistry,
) -> Result<Vec<Schedule>, ScheduleError> {
    let packed = packed_schedule(soc, n)?;
    let k = soc.cores().len();
    if k <= 1 {
        // A lone session (or none) is already optimally placed at cycle 0.
        metrics.set("search.seed_makespan", packed.makespan());
        metrics.set("search.best_makespan", packed.makespan());
        return Ok(vec![packed]);
    }
    let names: Vec<String> = soc.cores().iter().map(|c| c.name().to_owned()).collect();
    let widths: Vec<usize> = soc.cores().iter().map(|c| c.required_ports()).collect();
    let durations: Vec<u64> = soc.cores().iter().map(test_time).collect();

    let placement_of = |s: &Schedule| {
        let mut starts = vec![0u64; k];
        let mut wires = vec![0usize; k];
        for t in s.tests() {
            starts[t.core.0] = t.start;
            wires[t.core.0] = t.wire_start;
        }
        Placement { starts, wires }
    };

    let mut seeds = vec![
        placement_of(&packed),
        placement_of(&serial_schedule(soc, n)?),
    ];
    if let Ok(wave) = wave_optimal_schedule(soc, n) {
        seeds.push(placement_of(&wave));
    }
    // `search.seed_makespan` reports the best *heuristic* seed — the number
    // the searched makespan is benchmarked against — so record it before
    // the diversity decodes join the seed set.
    let heuristic_best = seeds
        .iter()
        .map(|p| span_and_sum(&durations, p).0)
        .min()
        .expect("at least two heuristic seeds");
    metrics.set("search.seed_makespan", heuristic_best);
    metrics.append("search.best_makespan_trajectory", heuristic_best);
    let mut widest: Vec<usize> = (0..k).collect();
    widest.sort_by_key(|&i| (Reverse(widths[i]), Reverse(durations[i]), i));
    seeds.push(decode_order(n, &widths, &durations, &widest));
    let mut by_area: Vec<usize> = (0..k).collect();
    by_area.sort_by_key(|&i| (Reverse(durations[i] * widths[i] as u64), i));
    seeds.push(decode_order(n, &widths, &durations, &by_area));

    let top_k = budget.top_k.max(1);
    let mut pool: Vec<PoolEntry> = Vec::new();
    let mut evaluated = 0u64;
    for seed in &seeds {
        evaluated += 1;
        let (makespan, sum_ends) = span_and_sum(&durations, seed);
        pool_insert(&mut pool, makespan, sum_ends, seed.clone(), top_k);
    }
    let mut best_makespan = heuristic_best;
    if pool[0].makespan < best_makespan {
        best_makespan = pool[0].makespan;
        metrics.append("search.best_makespan_trajectory", best_makespan);
    }

    let mut eval = Evaluator::new(n, widths.clone(), durations.clone(), &pool[0].placement);
    let mut rng = StdRng::seed_from_u64(budget.seed);
    let t0 = (budget.initial_temperature * best_makespan as f64).max(1.0);
    let (mut accepted, mut rejected) = (0u64, 0u64);
    let rounds = budget.rounds.max(1);

    for round in 0..rounds {
        if let Some(best) = pool.first() {
            // Elitist restart: each round resumes from the best survivor.
            if best.makespan < eval.makespan {
                eval.load(&best.placement);
            }
        }
        let temp = (t0 * budget.cooling.powi(round as i32)).max(1e-9);
        for _ in 0..budget.moves_per_round {
            evaluated += 1;
            let kind: u32 = rng.random_range(0..100u32);
            let applied = if kind < 35 {
                move_shift(&mut eval, &mut rng)
            } else if kind < 65 {
                move_jump(&mut eval, &mut rng, temp)
            } else if kind < 80 {
                move_swap(&mut eval, &mut rng)
            } else {
                move_rebuild(&mut eval, &mut rng, temp)
            };
            if applied {
                accepted += 1;
                if eval.makespan < best_makespan {
                    best_makespan = eval.makespan;
                    metrics.append("search.best_makespan_trajectory", best_makespan);
                }
                pool_insert(
                    &mut pool,
                    eval.makespan,
                    eval.sum_ends,
                    eval.placement(),
                    top_k,
                );
            } else {
                rejected += 1;
            }
        }
        // Hand the round's new survivors to the validator.
        let unmeasured: Vec<usize> = (0..pool.len())
            .filter(|&i| pool[i].measured.is_none())
            .collect();
        if !unmeasured.is_empty() {
            let schedules: Vec<Schedule> = unmeasured
                .iter()
                .map(|&i| build_schedule(n, &names, &widths, &durations, &pool[i].placement))
                .collect();
            let measured = validator.measure(soc, &schedules);
            assert_eq!(
                measured.len(),
                schedules.len(),
                "validator must measure every candidate"
            );
            metrics.inc("search.validations", measured.len() as u64);
            for (&i, m) in unmeasured.iter().zip(&measured) {
                pool[i].measured = *m;
            }
            let before = pool.len();
            pool.retain(|e| e.measured.is_some());
            metrics.inc("search.validation_failures", (before - pool.len()) as u64);
        }
    }

    if pool.is_empty() {
        // Every candidate was vetoed (a validator defect more than a search
        // outcome): fall back to the strongest heuristic seed rather than
        // failing the schedule request.
        let fallback = seeds
            .iter()
            .min_by_key(|p| span_and_sum(&durations, p))
            .expect("at least two seeds exist")
            .clone();
        let (makespan, sum_ends) = span_and_sum(&durations, &fallback);
        pool.push(PoolEntry {
            makespan,
            sum_ends,
            placement: fallback,
            measured: None,
        });
    }
    pool.sort_by_key(|e| (e.makespan, e.measured.unwrap_or(u64::MAX), e.sum_ends));
    metrics.set("search.best_makespan", pool[0].makespan);
    metrics.set("search.candidates_evaluated", evaluated);
    metrics.set("search.moves_accepted", accepted);
    metrics.set("search.moves_rejected", rejected);
    metrics.set("search.rounds", rounds as u64);
    Ok(pool
        .iter()
        .map(|e| build_schedule(n, &names, &widths, &durations, &e.placement))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use casbus_soc::{catalog, CoreDescription, SocBuilder, TestMethod};

    fn best_heuristic(soc: &SocDescription, n: usize) -> u64 {
        [
            serial_schedule(soc, n),
            packed_schedule(soc, n),
            wave_optimal_schedule(soc, n),
        ]
        .into_iter()
        .filter_map(|s| s.ok().map(|s| s.makespan()))
        .min()
        .expect("serial always succeeds")
    }

    /// Four external-test cores on a 2-wire bus where every heuristic lands
    /// on 9 cycles but the optimum (the area lower bound) is 8, reachable
    /// only by staggering a start inside another session's window.
    fn staggered_soc() -> SocDescription {
        let rect = |name: &str, ports: usize, cycles: usize| {
            CoreDescription::new(
                name,
                TestMethod::External {
                    ports,
                    patterns: cycles - 1,
                },
            )
        };
        SocBuilder::new("stagger")
            .core(rect("a", 1, 4))
            .core(rect("b", 1, 3))
            .core(rect("c", 2, 3))
            .core(rect("d", 1, 2))
            .build()
            .unwrap()
    }

    #[test]
    fn search_never_worse_than_any_heuristic() {
        let soc = catalog::figure1_soc();
        for n in 4..=9 {
            let searched = search_schedule(&soc, n, SearchBudget::smoke()).unwrap();
            assert!(searched.is_conflict_free(), "n={n}\n{searched}");
            assert_eq!(searched.tests().len(), soc.cores().len());
            assert!(
                searched.makespan() <= best_heuristic(&soc, n),
                "n={n}: searched {} vs heuristic {}",
                searched.makespan(),
                best_heuristic(&soc, n)
            );
        }
    }

    #[test]
    fn search_is_deterministic() {
        let soc = catalog::figure1_soc();
        let budget = SearchBudget::default();
        let a = search_schedule(&soc, 6, budget).unwrap();
        let b = search_schedule(&soc, 6, budget).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn search_beats_every_heuristic_on_a_staggered_instance() {
        let soc = staggered_soc();
        assert_eq!(
            best_heuristic(&soc, 2),
            9,
            "heuristics all miss the optimum"
        );
        let searched = search_schedule(&soc, 2, SearchBudget::smoke()).unwrap();
        assert!(searched.is_conflict_free(), "{searched}");
        assert_eq!(searched.makespan(), 8, "{searched}");
    }

    #[test]
    fn search_records_metrics_and_trajectory() {
        let soc = staggered_soc();
        let metrics = MetricsRegistry::new();
        let searched =
            search_schedule_with(&soc, 2, SearchBudget::smoke(), &NoValidation, &metrics).unwrap();
        assert_eq!(metrics.counter("search.best_makespan"), searched.makespan());
        assert_eq!(metrics.counter("search.seed_makespan"), 9);
        assert!(metrics.counter("search.candidates_evaluated") > 0);
        assert!(metrics.counter("search.validations") > 0);
        let trajectory = metrics.series("search.best_makespan_trajectory").unwrap();
        assert_eq!(trajectory.first(), Some(&9));
        assert_eq!(trajectory.last(), Some(&searched.makespan()));
        assert!(
            trajectory.windows(2).all(|w| w[1] <= w[0]),
            "trajectory must be non-increasing: {trajectory:?}"
        );
    }

    #[test]
    fn vetoing_validator_falls_back_to_a_heuristic_seed() {
        struct VetoAll;
        impl CandidateValidator for VetoAll {
            fn measure(&self, _soc: &SocDescription, candidates: &[Schedule]) -> Vec<Option<u64>> {
                candidates.iter().map(|_| None).collect()
            }
        }
        let soc = catalog::figure1_soc();
        let metrics = MetricsRegistry::new();
        let searched =
            search_schedule_with(&soc, 6, SearchBudget::smoke(), &VetoAll, &metrics).unwrap();
        assert!(searched.is_conflict_free());
        assert!(searched.makespan() <= best_heuristic(&soc, 6));
        assert!(metrics.counter("search.validation_failures") > 0);
    }

    #[test]
    fn search_handles_single_core_and_large_socs() {
        let single = SocBuilder::new("one")
            .core(CoreDescription::new(
                "only",
                TestMethod::Bist {
                    width: 8,
                    patterns: 64,
                },
            ))
            .build()
            .unwrap();
        let sched = search_schedule(&single, 3, SearchBudget::smoke()).unwrap();
        assert_eq!(sched.tests().len(), 1);
        assert_eq!(sched.makespan(), best_heuristic(&single, 3));

        // Past the wave-optimal DP limit the search still runs (seeded from
        // serial/packed only).
        let mut rng = StdRng::seed_from_u64(11);
        let big = catalog::random_soc(&mut rng, 20, 3);
        let searched = search_schedule(&big, 6, SearchBudget::smoke()).unwrap();
        assert!(searched.is_conflict_free());
        assert!(searched.makespan() <= best_heuristic(&big, 6));
    }

    #[test]
    fn candidate_pool_is_ranked_and_bounded() {
        let soc = catalog::figure1_soc();
        let metrics = MetricsRegistry::new();
        let budget = SearchBudget::smoke();
        let pool = search_candidates(&soc, 6, budget, &NoValidation, &metrics).unwrap();
        assert!(!pool.is_empty() && pool.len() <= budget.top_k.max(1));
        for pair in pool.windows(2) {
            assert!(pair[0].makespan() <= pair[1].makespan());
        }
        let winner = search_schedule(&soc, 6, budget).unwrap();
        assert_eq!(pool[0], winner);
    }

    #[test]
    fn fit_errors_propagate() {
        let soc = catalog::figure1_soc(); // max P = 4
        assert!(matches!(
            search_schedule(&soc, 2, SearchBudget::smoke()),
            Err(ScheduleError::CoreTooWide { .. })
        ));
        assert!(matches!(
            search_schedule(&soc, 0, SearchBudget::smoke()),
            Err(ScheduleError::ZeroWidth)
        ));
    }
}
