//! Per-core test time in test-clock cycles.

use casbus_soc::{CoreDescription, TestMethod};

/// Test time of one core in test-clock cycles, assuming its CAS grants it
/// exactly the `P` wires its method needs.
///
/// The formulas follow standard DfT accounting:
///
/// * **scan** — per pattern: shift in over the deepest chain + 1 capture;
///   responses overlap with the next stimulus, plus one final unload:
///   `patterns·(depth + 1) + depth`,
/// * **BIST** — one capture per pattern plus the serial signature unload:
///   `patterns + width`,
/// * **external** — one cycle per applied vector plus one pipeline flush,
/// * **hierarchical** — the internal bus threads the sub-cores serially, so
///   sub-core times add,
/// * **memory** — the march test runs `3·words` operations plus the 2-bit
///   status unload.
///
/// # Examples
///
/// ```
/// use casbus_controller::test_time;
/// use casbus_soc::{CoreDescription, TestMethod};
///
/// let cpu = CoreDescription::new("cpu", TestMethod::Scan {
///     chains: vec![100, 80],
///     patterns: 10,
/// });
/// assert_eq!(test_time(&cpu), 10 * 101 + 100);
/// ```
pub fn test_time(core: &CoreDescription) -> u64 {
    method_time(core.method())
}

fn method_time(method: &TestMethod) -> u64 {
    match method {
        TestMethod::Scan { chains, patterns } => {
            let depth = chains.iter().copied().max().unwrap_or(0) as u64;
            (*patterns as u64) * (depth + 1) + depth
        }
        TestMethod::Bist { width, patterns } => *patterns as u64 + u64::from(*width),
        TestMethod::External { patterns, .. } => *patterns as u64 + 1,
        TestMethod::Hierarchical { sub_cores, .. } => sub_cores.iter().map(test_time).sum(),
        TestMethod::Memory { words, .. } => 3 * (*words as u64) + 2,
    }
}

/// Test time of a scan method if its chains were re-balanced to the given
/// lengths (used by the §4 balancing optimization to compare variants).
///
/// # Panics
///
/// Panics if `method` is not scan.
pub fn scan_time_with_chains(method: &TestMethod, chains: &[usize]) -> u64 {
    match method {
        TestMethod::Scan { patterns, .. } => {
            let depth = chains.iter().copied().max().unwrap_or(0) as u64;
            (*patterns as u64) * (depth + 1) + depth
        }
        _ => panic!("scan_time_with_chains requires a scan method"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_time_formula() {
        let core = CoreDescription::new(
            "c",
            TestMethod::Scan {
                chains: vec![5, 9, 3],
                patterns: 4,
            },
        );
        // depth 9: 4·10 + 9.
        assert_eq!(test_time(&core), 49);
    }

    #[test]
    fn bist_time_formula() {
        let core = CoreDescription::new(
            "c",
            TestMethod::Bist {
                width: 16,
                patterns: 100,
            },
        );
        assert_eq!(test_time(&core), 116);
    }

    #[test]
    fn external_time_formula() {
        let core = CoreDescription::new(
            "c",
            TestMethod::External {
                ports: 3,
                patterns: 64,
            },
        );
        assert_eq!(test_time(&core), 65);
    }

    #[test]
    fn memory_time_formula() {
        let core = CoreDescription::new(
            "c",
            TestMethod::Memory {
                words: 32,
                data_width: 8,
            },
        );
        assert_eq!(test_time(&core), 98);
    }

    #[test]
    fn hierarchical_time_adds_children() {
        let subs = vec![
            CoreDescription::new(
                "a",
                TestMethod::Bist {
                    width: 8,
                    patterns: 10,
                },
            ), // 18
            CoreDescription::new(
                "b",
                TestMethod::Scan {
                    chains: vec![4],
                    patterns: 2,
                },
            ), // 14
        ];
        let core = CoreDescription::new(
            "h",
            TestMethod::Hierarchical {
                internal_bus_width: 1,
                sub_cores: subs,
            },
        );
        assert_eq!(test_time(&core), 18 + 14);
    }

    #[test]
    fn deeper_chains_cost_more() {
        let shallow = CoreDescription::new(
            "s",
            TestMethod::Scan {
                chains: vec![10, 10],
                patterns: 50,
            },
        );
        let deep = CoreDescription::new(
            "d",
            TestMethod::Scan {
                chains: vec![19, 1],
                patterns: 50,
            },
        );
        assert!(
            test_time(&deep) > test_time(&shallow),
            "same flops, worse balance"
        );
    }

    #[test]
    fn rebalanced_time() {
        let method = TestMethod::Scan {
            chains: vec![19, 1],
            patterns: 50,
        };
        let before = scan_time_with_chains(&method, &[19, 1]);
        let after = scan_time_with_chains(&method, &[10, 10]);
        assert!(after < before);
    }

    #[test]
    #[should_panic(expected = "requires a scan method")]
    fn rebalance_rejects_non_scan() {
        let method = TestMethod::Bist {
            width: 4,
            patterns: 1,
        };
        let _ = scan_time_with_chains(&method, &[1]);
    }
}
