//! Property-based tests of the scheduling layer: the power-aware packer
//! never violates its budget, and the annealed search never loses to the
//! heuristics it is seeded from — across randomly generated SoCs, bus
//! widths, and budgets.

use casbus_controller::schedule::{
    packed_schedule, power_aware_schedule, serial_schedule, ScheduleError,
};
use casbus_controller::search::{search_schedule, SearchBudget};
use casbus_controller::Schedule;
use casbus_soc::{catalog, SocDescription};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Peak instantaneous test power of a schedule. The concurrent-power sum is
/// piecewise constant and only rises when a session starts, so probing at
/// every session start finds the true maximum.
fn peak_power(soc: &SocDescription, sched: &Schedule) -> u32 {
    sched
        .tests()
        .iter()
        .map(|probe| {
            sched
                .tests()
                .iter()
                .filter(|t| t.start <= probe.start && probe.start < t.end())
                .map(|t| soc.cores()[t.core.0].test_power())
                .sum()
        })
        .max()
        .unwrap_or(0)
}

/// A bus just wide enough for the SoC's widest core, plus some slack.
fn fitting_width(soc: &SocDescription, slack: usize) -> usize {
    soc.cores()
        .iter()
        .map(|c| c.required_ports())
        .max()
        .expect("random_soc always has cores")
        + slack
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The power-aware packer schedules every core exactly once, stays
    /// conflict-free, and the summed power of simultaneously-running tests
    /// never exceeds the budget at any instant.
    #[test]
    fn power_aware_schedule_respects_budget_and_stays_conflict_free(
        seed in any::<u64>(),
        cores in 1usize..10,
        max_ports in 1usize..5,
        width_slack in 0usize..5,
        budget_slack in 0u32..20_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let soc = catalog::random_soc(&mut rng, cores, max_ports);
        let n = fitting_width(&soc, width_slack);
        let max_core_power = soc
            .cores()
            .iter()
            .map(|c| c.test_power())
            .max()
            .expect("cores exist");
        let budget = max_core_power.saturating_add(budget_slack);

        let sched = power_aware_schedule(&soc, n, budget).expect("budget fits every core");
        prop_assert!(sched.is_conflict_free());
        prop_assert_eq!(sched.tests().len(), soc.cores().len(), "every core scheduled once");
        let peak = peak_power(&soc, &sched);
        prop_assert!(
            peak <= budget,
            "instantaneous power {} exceeds budget {}",
            peak,
            budget
        );

        // Tightening the constraint can only lengthen the schedule.
        let unconstrained = power_aware_schedule(&soc, n, u32::MAX).expect("no budget");
        prop_assert!(unconstrained.makespan() <= sched.makespan());
    }

    /// A budget below the hungriest single core is rejected up front with
    /// the dedicated error, never a bogus schedule.
    #[test]
    fn power_budget_below_any_single_core_is_rejected(
        seed in any::<u64>(),
        cores in 1usize..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let soc = catalog::random_soc(&mut rng, cores, 3);
        let n = fitting_width(&soc, 2);
        let max_core_power = soc
            .cores()
            .iter()
            .map(|c| c.test_power())
            .max()
            .expect("cores exist");
        prop_assume!(max_core_power > 0);
        prop_assert!(matches!(
            power_aware_schedule(&soc, n, max_core_power - 1),
            Err(ScheduleError::PowerBudgetTooSmall { .. })
        ));
    }

    /// The searched schedule is always complete, conflict-free, and at
    /// least as short as the best seeding heuristic, on arbitrary SoCs.
    #[test]
    fn search_never_loses_to_its_seeds_on_random_socs(
        seed in any::<u64>(),
        cores in 2usize..9,
        width_slack in 0usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let soc = catalog::random_soc(&mut rng, cores, 3);
        let n = fitting_width(&soc, width_slack);
        let budget = SearchBudget {
            rounds: 2,
            moves_per_round: 80,
            ..SearchBudget::smoke()
        };
        let searched = search_schedule(&soc, n, budget).expect("bus fits every core");
        prop_assert!(searched.is_conflict_free());
        prop_assert_eq!(searched.tests().len(), soc.cores().len());
        let best_heuristic = packed_schedule(&soc, n)
            .expect("fits")
            .makespan()
            .min(serial_schedule(&soc, n).expect("fits").makespan());
        prop_assert!(searched.makespan() <= best_heuristic);
    }
}
