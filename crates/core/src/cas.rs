//! The behavioural Core Access Switch (paper §3, Fig. 3 and Fig. 4).

use std::fmt;

use casbus_tpg::BitVec;

use crate::error::CasError;
use crate::geometry::CasGeometry;
use crate::instruction::CasInstruction;
use crate::switch::{SchemeSet, SwitchScheme};

/// The functional mode a CAS is currently in (paper §3.1, Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CasMode {
    /// Fig. 4 (a): the instruction register sits in the e0→s0 serial path.
    Configuration,
    /// Fig. 4 (b): all bus wires pass straight through.
    Bypass,
    /// Fig. 4 (c): `P` wires are switched to the core, `N − P` bypass.
    Test,
}

impl fmt::Display for CasMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Configuration => "CONFIGURATION",
            Self::Bypass => "BYPASS",
            Self::Test => "TEST",
        })
    }
}

/// Per-clock CAS control signals, driven by the central SoC test controller
/// ("All test control signals … are connected to a central SoC test
/// controller", paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CasControl {
    /// Assert the global `config` line: wire 0 shifts through the
    /// instruction register this clock.
    pub config: bool,
    /// Fire the update stage: the shifted instruction becomes active.
    pub update: bool,
}

impl CasControl {
    /// Control word for one configuration shift clock.
    pub fn shift_config() -> Self {
        Self {
            config: true,
            update: false,
        }
    }

    /// Control word for the update pulse ending the configuration phase.
    pub fn update() -> Self {
        Self {
            config: false,
            update: true,
        }
    }

    /// Control word for a plain data-transport clock.
    pub fn run() -> Self {
        Self::default()
    }
}

/// The result of one CAS clock: the `N` bus outputs (`s0 … sN−1`) and, when
/// the CAS is in TEST mode, the `P` bits presented to the core test inputs
/// (`o0 … oP−1`). Outside TEST mode the `o` outputs are tri-stated
/// (paper §3: "In configuration phase, the tri-stated switcher outputs and
/// inputs are switched to high impedance"), represented as `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CasOutput {
    /// Bus outputs `s0 … sN−1`.
    pub bus_out: BitVec,
    /// Core-side outputs `o0 … oP−1`, or `None` when tri-stated.
    pub core_in: Option<BitVec>,
}

/// A behavioural Core Access Switch.
///
/// Structure (paper Fig. 3): a `k`-bit instruction register with an update
/// (shadow) stage, and an `N/P` configurable switcher. The instruction
/// register shifts on bus wire 0 while the controller asserts `config`; the
/// update pulse makes the shifted instruction active.
///
/// # Examples
///
/// ```
/// use casbus::{Cas, CasControl, CasGeometry, CasInstruction, SchemeSet};
/// use casbus_tpg::BitVec;
///
/// let set = SchemeSet::enumerate(CasGeometry::new(4, 2)?)?;
/// let mut cas = Cas::new(set);
///
/// // TEST scheme 0 routes ports (o0,o1) onto wires (0,1).
/// cas.load_instruction(&CasInstruction::Test(0));
/// let out = cas.clock(
///     &"1010".parse::<BitVec>().unwrap(),
///     &"11".parse::<BitVec>().unwrap(),
///     CasControl::run(),
/// )?;
/// assert_eq!(out.core_in.unwrap().to_string(), "10"); // e0,e1 to the core
/// assert_eq!(out.bus_out.to_string(), "1110");        // i0,i1 onto s0,s1
/// # Ok::<(), casbus::CasError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cas {
    schemes: SchemeSet,
    ir_shift: BitVec,
    active: CasInstruction,
    config_line: bool,
}

impl Cas {
    /// Builds a CAS over an enumerated scheme set. Power-on state is BYPASS
    /// with a cleared instruction register.
    pub fn new(schemes: SchemeSet) -> Self {
        let k = schemes.geometry().instruction_width() as usize;
        Self {
            schemes,
            ir_shift: BitVec::zeros(k),
            active: CasInstruction::Bypass,
            config_line: false,
        }
    }

    /// Convenience constructor enumerating the schemes for a geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::TooManySchemes`] for impractically large
    /// geometries.
    pub fn for_geometry(geometry: CasGeometry) -> Result<Self, CasError> {
        Ok(Self::new(SchemeSet::enumerate(geometry)?))
    }

    /// The geometry.
    pub fn geometry(&self) -> CasGeometry {
        self.schemes.geometry()
    }

    /// The enumerated scheme set.
    pub fn schemes(&self) -> &SchemeSet {
        &self.schemes
    }

    /// Instruction register width `k`.
    pub fn instruction_width(&self) -> u32 {
        self.geometry().instruction_width()
    }

    /// The active instruction.
    pub fn instruction(&self) -> &CasInstruction {
        &self.active
    }

    /// The active functional mode (paper Fig. 4). The `config` control line
    /// overrides the decoded instruction, as in the paper's Fig. 3 where the
    /// `config` signal steers the e0/s0 multiplexers directly.
    pub fn mode(&self) -> CasMode {
        if self.config_line {
            CasMode::Configuration
        } else {
            match self.active {
                CasInstruction::Bypass | CasInstruction::Configuration => CasMode::Bypass,
                CasInstruction::Test(_) => CasMode::Test,
            }
        }
    }

    /// The active switch scheme, when in TEST mode.
    pub fn active_scheme(&self) -> Option<&SwitchScheme> {
        match self.active {
            CasInstruction::Test(index) => self.schemes.scheme(index).ok(),
            _ => None,
        }
    }

    /// Loads an instruction directly into the active stage (a shortcut for
    /// tests and tools; hardware goes through the serial protocol).
    pub fn load_instruction(&mut self, instruction: &CasInstruction) {
        self.active = instruction.clone();
    }

    /// Shift-stage contents (for inspection).
    pub fn ir_shift_stage(&self) -> &BitVec {
        &self.ir_shift
    }

    /// One clock of the CAS.
    ///
    /// * `bus_in` — the `N` bus inputs `e0 … eN−1`,
    /// * `core_out` — the `P` core test outputs `i0 … iP−1` (captured only
    ///   in TEST mode),
    /// * `ctrl` — the controller's `config`/`update` lines.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::BadGeometry`] if `bus_in` is not `N` bits or
    /// `core_out` is not `P` bits.
    pub fn clock(
        &mut self,
        bus_in: &BitVec,
        core_out: &BitVec,
        ctrl: CasControl,
    ) -> Result<CasOutput, CasError> {
        let mut bus = bus_in.clone();
        let core_in = self.clock_in_place(&mut bus, core_out, ctrl)?;
        Ok(CasOutput {
            bus_out: bus,
            core_in,
        })
    }

    /// One clock of the CAS, transforming `bus` in place instead of
    /// allocating a fresh bus vector — the hot-path form of [`Cas::clock`]
    /// used by [`CasChain::clock`](crate::CasChain::clock), which threads a
    /// single scratch buffer through the whole chain. In-place is safe
    /// because each TEST port taps and drives the *same* wire (the scheme
    /// is injective), and the tap is read before the drive is written.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::BadGeometry`] if `bus` is not `N` bits or
    /// `core_out` is not `P` bits.
    pub fn clock_in_place(
        &mut self,
        bus: &mut BitVec,
        core_out: &BitVec,
        ctrl: CasControl,
    ) -> Result<Option<BitVec>, CasError> {
        let n = self.geometry().bus_width();
        let p = self.geometry().switched_wires();
        if bus.len() != n || core_out.len() != p {
            return Err(CasError::BadGeometry {
                n: bus.len(),
                p: core_out.len(),
            });
        }
        self.config_line = ctrl.config;
        if ctrl.config {
            // CONFIGURATION (Fig. 4 (a)): wire 0 threads the instruction
            // register; the remaining wires bypass so downstream CASes keep
            // their own configuration chains intact.
            let shifted_out = self.shift_ir(bus.get(0).expect("n >= 1"));
            bus.set(0, shifted_out);
            if ctrl.update {
                self.update_ir();
            }
            return Ok(None);
        }
        if ctrl.update {
            self.update_ir();
        }
        match self.mode() {
            CasMode::Bypass | CasMode::Configuration => Ok(None),
            CasMode::Test => {
                let scheme = self.active_scheme().expect("TEST mode has a scheme");
                let mut core_in = BitVec::zeros(p);
                for port in 0..p {
                    let wire = scheme.wire_for_port(port);
                    // Paper heuristic: e_wire -> o_port and i_port -> s_wire.
                    core_in.set(port, bus.get(wire).expect("wire < n"));
                    bus.set(wire, core_out.get(port).expect("port < p"));
                }
                Ok(Some(core_in))
            }
        }
    }

    /// Shifts one bit through the instruction register (LSB first),
    /// returning the displaced bit — the configuration daisy-chain primitive.
    pub fn shift_ir(&mut self, bit: bool) -> bool {
        let out = self.ir_shift.get(0).unwrap_or(false);
        let k = self.ir_shift.len();
        let mut next = BitVec::with_capacity(k);
        for i in 1..k {
            next.push(self.ir_shift.get(i).expect("in range"));
        }
        next.push(bit);
        self.ir_shift = next;
        out
    }

    /// Transfers the shift stage into the active instruction (the paper's
    /// update mechanism). Unassigned opcodes fall back to BYPASS.
    pub fn update_ir(&mut self) {
        self.active = CasInstruction::decode(&self.ir_shift, self.schemes.len());
    }

    /// Resets to power-on state (BYPASS, cleared register).
    pub fn reset(&mut self) {
        let k = self.ir_shift.len();
        self.ir_shift = BitVec::zeros(k);
        self.active = CasInstruction::Bypass;
        self.config_line = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cas(n: usize, p: usize) -> Cas {
        Cas::for_geometry(CasGeometry::new(n, p).unwrap()).unwrap()
    }

    #[test]
    fn powers_on_in_bypass() {
        let c = cas(4, 2);
        assert_eq!(c.mode(), CasMode::Bypass);
        assert_eq!(*c.instruction(), CasInstruction::Bypass);
    }

    #[test]
    fn bypass_passes_all_wires() {
        let mut c = cas(5, 2);
        let bus: BitVec = "10110".parse().unwrap();
        let out = c.clock(&bus, &BitVec::zeros(2), CasControl::run()).unwrap();
        assert_eq!(out.bus_out, bus);
        assert_eq!(out.core_in, None, "core side tri-stated in bypass");
    }

    #[test]
    fn test_mode_routes_selected_wires() {
        let mut c = cas(4, 2);
        // Scheme with wires [2, 0]: e2->o0, e0->o1; i0->s2, i1->s0.
        let idx = c.schemes().index_of(&[2, 0]).unwrap();
        c.load_instruction(&CasInstruction::Test(idx));
        let out = c
            .clock(
                &"1010".parse().unwrap(),
                &"11".parse().unwrap(),
                CasControl::run(),
            )
            .unwrap();
        let core_in = out.core_in.unwrap();
        assert_eq!(core_in.get(0), Some(true), "o0 = e2 = 1");
        assert_eq!(core_in.get(1), Some(true), "o1 = e0 = 1");
        // s0 = i1 = 1, s2 = i0 = 1; wires 1 and 3 bypass (e1=0, e3=0).
        assert_eq!(out.bus_out.to_string(), "1010");
    }

    #[test]
    fn unselected_wires_bypass_in_test_mode() {
        let mut c = cas(6, 2);
        let idx = c.schemes().index_of(&[4, 5]).unwrap();
        c.load_instruction(&CasInstruction::Test(idx));
        let bus: BitVec = "111100".parse().unwrap();
        let out = c
            .clock(&bus, &"00".parse().unwrap(), CasControl::run())
            .unwrap();
        // Wires 0–3 bypass unchanged; wires 4, 5 carry the core outputs (0).
        assert_eq!(out.bus_out.to_string(), "111100");
    }

    #[test]
    fn serial_configuration_protocol() {
        let mut c = cas(4, 2);
        let k = c.instruction_width();
        let target = CasInstruction::Test(5);
        let bits = target.encode(c.schemes().len(), k);
        // Shift k bits over wire 0 with config asserted.
        for bit in bits.iter() {
            let mut bus = BitVec::zeros(4);
            bus.set(0, bit);
            let out = c
                .clock(&bus, &BitVec::zeros(2), CasControl::shift_config())
                .unwrap();
            assert_eq!(out.core_in, None, "tri-stated during configuration");
        }
        assert_eq!(
            *c.instruction(),
            CasInstruction::Bypass,
            "not active before update"
        );
        c.clock(&BitVec::zeros(4), &BitVec::zeros(2), CasControl::update())
            .unwrap();
        assert_eq!(*c.instruction(), target);
        assert_eq!(c.mode(), CasMode::Test);
    }

    #[test]
    fn config_mode_threads_wire0_and_bypasses_rest() {
        let mut c = cas(4, 1);
        // Preload the IR with ones so the shifted-out bits are visible.
        for _ in 0..c.instruction_width() {
            c.shift_ir(true);
        }
        let mut bus = BitVec::zeros(4);
        bus.set(1, true);
        bus.set(3, true);
        let out = c
            .clock(&bus, &BitVec::zeros(1), CasControl::shift_config())
            .unwrap();
        assert_eq!(out.bus_out.get(0), Some(true), "IR bit shifted out on s0");
        assert_eq!(out.bus_out.get(1), Some(true), "other wires bypass");
        assert_eq!(out.bus_out.get(3), Some(true));
        assert_eq!(c.mode(), CasMode::Configuration);
    }

    #[test]
    fn all_zero_register_is_bypass() {
        let mut c = cas(4, 2);
        c.load_instruction(&CasInstruction::Test(3));
        for _ in 0..c.instruction_width() {
            c.shift_ir(false);
        }
        c.update_ir();
        assert_eq!(*c.instruction(), CasInstruction::Bypass);
    }

    #[test]
    fn every_scheme_routes_injectively() {
        let mut c = cas(4, 3);
        for idx in 0..c.schemes().len() {
            c.load_instruction(&CasInstruction::Test(idx));
            // Drive distinct bus bits; each core input must equal its wire.
            let bus: BitVec = "1011".parse().unwrap();
            let out = c.clock(&bus, &BitVec::zeros(3), CasControl::run()).unwrap();
            let scheme = c.schemes().scheme(idx).unwrap();
            let core_in = out.core_in.unwrap();
            for port in 0..3 {
                assert_eq!(
                    core_in.get(port),
                    bus.get(scheme.wire_for_port(port)),
                    "scheme {idx} port {port}"
                );
            }
        }
    }

    #[test]
    fn no_wire_lost_in_test_mode() {
        // Permutation property: with core looping its inputs back next
        // cycle, every driven bit is observable somewhere. Here we check a
        // single cycle: the multiset {bus_out wires} = {bypassed e} ∪ {i}.
        let mut c = cas(5, 2);
        let idx = c.schemes().index_of(&[1, 3]).unwrap();
        c.load_instruction(&CasInstruction::Test(idx));
        let bus: BitVec = "10101".parse().unwrap();
        let core: BitVec = "11".parse().unwrap();
        let out = c.clock(&bus, &core, CasControl::run()).unwrap();
        assert_eq!(out.bus_out.get(0), bus.get(0));
        assert_eq!(out.bus_out.get(1), core.get(0));
        assert_eq!(out.bus_out.get(2), bus.get(2));
        assert_eq!(out.bus_out.get(3), core.get(1));
        assert_eq!(out.bus_out.get(4), bus.get(4));
    }

    #[test]
    fn wrong_widths_rejected() {
        let mut c = cas(4, 2);
        assert!(c
            .clock(&BitVec::zeros(3), &BitVec::zeros(2), CasControl::run())
            .is_err());
        assert!(c
            .clock(&BitVec::zeros(4), &BitVec::zeros(1), CasControl::run())
            .is_err());
    }

    #[test]
    fn reset_restores_power_on() {
        let mut c = cas(4, 2);
        c.load_instruction(&CasInstruction::Test(1));
        c.shift_ir(true);
        c.reset();
        assert_eq!(c.mode(), CasMode::Bypass);
        assert_eq!(c.ir_shift_stage().count_ones(), 0);
    }

    #[test]
    fn reconfiguration_mid_session() {
        // The paper's dynamic aspect: switch schemes between sessions
        // without touching anything else.
        let mut c = cas(4, 2);
        c.load_instruction(&CasInstruction::Test(0));
        assert_eq!(c.active_scheme().unwrap().wires(), &[0, 1]);
        let idx = c.schemes().index_of(&[3, 2]).unwrap();
        c.load_instruction(&CasInstruction::Test(idx));
        assert_eq!(c.active_scheme().unwrap().wires(), &[3, 2]);
    }
}
