//! A chain of CASes on the shared test bus (paper Fig. 1).

use casbus_tpg::BitVec;

use crate::cas::{Cas, CasControl};
use crate::error::CasError;
use crate::instruction::CasInstruction;

/// An ordered chain of CASes threaded by the `N`-wire test bus: the bus
/// outputs of CAS *i* feed the bus inputs of CAS *i+1*, and during the
/// CONFIGURATION phase all instruction registers form one serial chain over
/// wire 0.
///
/// All CASes share the bus width `N`, but each may switch a different `P`
/// (the paper's Fig. 1 shows exactly this: CAS 1–6 with per-core widths).
///
/// # Examples
///
/// ```
/// use casbus::{Cas, CasChain, CasControl, CasGeometry, CasInstruction};
/// use casbus_tpg::BitVec;
///
/// let mut chain = CasChain::new(vec![
///     Cas::for_geometry(CasGeometry::new(4, 2)?)?,
///     Cas::for_geometry(CasGeometry::new(4, 1)?)?,
/// ])?;
/// // Both in power-on BYPASS: the bus is transparent end to end.
/// let result = chain.clock(
///     &"1011".parse::<BitVec>().unwrap(),
///     &[BitVec::zeros(2), BitVec::zeros(1)],
///     CasControl::run(),
/// )?;
/// assert_eq!(result.bus_out.to_string(), "1011");
/// # Ok::<(), casbus::CasError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CasChain {
    cases: Vec<Cas>,
    n: usize,
    /// Reusable working bus for [`CasChain::clock`], so the steady-state
    /// data path performs no per-CAS (and no per-cycle working) allocation.
    scratch: BitVec,
}

/// The result of clocking a whole chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainOutput {
    /// Bus outputs at the far end of the chain.
    pub bus_out: BitVec,
    /// Per-CAS core-side outputs (`None` where tri-stated).
    pub core_in: Vec<Option<BitVec>>,
}

impl CasChain {
    /// Builds a chain.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::BadGeometry`] if the chain is empty or the CASes
    /// disagree on the bus width.
    pub fn new(cases: Vec<Cas>) -> Result<Self, CasError> {
        let n = cases
            .first()
            .map(|c| c.geometry().bus_width())
            .ok_or(CasError::BadGeometry { n: 0, p: 0 })?;
        for cas in &cases {
            if cas.geometry().bus_width() != n {
                return Err(CasError::BadGeometry {
                    n: cas.geometry().bus_width(),
                    p: cas.geometry().switched_wires(),
                });
            }
        }
        Ok(Self {
            cases,
            n,
            scratch: BitVec::zeros(n),
        })
    }

    /// The shared bus width `N`.
    pub fn bus_width(&self) -> usize {
        self.n
    }

    /// Number of CASes on the bus.
    pub fn len(&self) -> usize {
        self.cases.len()
    }

    /// Whether the chain is empty (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.cases.is_empty()
    }

    /// The CASes, bus order.
    pub fn cases(&self) -> &[Cas] {
        &self.cases
    }

    /// Mutable access to one CAS.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::UnknownCas`] for an out-of-range index.
    pub fn cas_mut(&mut self, index: usize) -> Result<&mut Cas, CasError> {
        let len = self.cases.len();
        self.cases.get_mut(index).ok_or(CasError::UnknownCas(len))
    }

    /// Mutable access to all CASes (for simulators threading external
    /// registers — e.g. wrapper WIRs — into the configuration chain).
    pub fn cases_mut(&mut self) -> &mut [Cas] {
        &mut self.cases
    }

    /// Total configuration chain length: the sum of all instruction register
    /// widths (what one full configuration shift costs in clocks).
    pub fn config_chain_bits(&self) -> usize {
        self.cases
            .iter()
            .map(|c| c.instruction_width() as usize)
            .sum()
    }

    /// One clock of the whole chain: `bus_in` enters CAS 0, each CAS's bus
    /// output feeds the next, and `core_outs[i]` carries the `P_i` core test
    /// outputs presented to CAS `i`.
    ///
    /// # Errors
    ///
    /// Propagates width mismatches from the individual CASes and checks
    /// `core_outs.len()` equals the chain length.
    pub fn clock(
        &mut self,
        bus_in: &BitVec,
        core_outs: &[BitVec],
        ctrl: CasControl,
    ) -> Result<ChainOutput, CasError> {
        if core_outs.len() != self.cases.len() {
            return Err(CasError::ConfigurationLengthMismatch {
                got: core_outs.len(),
                expected: self.cases.len(),
            });
        }
        // One scratch buffer threads every CAS in place: the per-CAS
        // bus clones of the naive fold are gone from the steady-state path.
        self.scratch.copy_from(bus_in);
        let mut core_in = Vec::with_capacity(self.cases.len());
        for (cas, core_out) in self.cases.iter_mut().zip(core_outs) {
            core_in.push(cas.clock_in_place(&mut self.scratch, core_out, ctrl)?);
        }
        Ok(ChainOutput {
            bus_out: self.scratch.clone(),
            core_in,
        })
    }

    /// Verifies that the currently-active TEST instructions give every CAS
    /// exclusive use of its wires *relative to simultaneous users* — this is
    /// advisory: the CAS-BUS explicitly allows several CASes to share wires
    /// *in series* (data threads through each tapped core), which is how
    /// scan chains are concatenated. The check reports sharing so a test
    /// programmer can tell concatenation from accidental conflict.
    pub fn shared_wires(&self) -> Vec<(usize, Vec<usize>)> {
        let mut claims: Vec<Vec<usize>> = vec![Vec::new(); self.n];
        for (idx, cas) in self.cases.iter().enumerate() {
            if let Some(scheme) = cas.active_scheme() {
                for &wire in scheme.wires() {
                    claims[wire].push(idx);
                }
            }
        }
        claims
            .into_iter()
            .enumerate()
            .filter(|(_, users)| users.len() > 1)
            .collect()
    }

    /// Applies a full configuration through the serial protocol: asserts
    /// `config`, shifts the concatenated encodings over wire 0, then pulses
    /// `update`. This is exactly the paper's initialization phase.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::ConfigurationLengthMismatch`] when the
    /// instruction count differs from the chain length, or an encoding
    /// error from an out-of-range scheme index.
    pub fn configure(&mut self, instructions: &[CasInstruction]) -> Result<(), CasError> {
        if instructions.len() != self.cases.len() {
            return Err(CasError::ConfigurationLengthMismatch {
                got: instructions.len(),
                expected: self.cases.len(),
            });
        }
        // Validate scheme indices before touching any state.
        for (cas, instr) in self.cases.iter().zip(instructions) {
            if let CasInstruction::Test(index) = instr {
                cas.schemes().scheme(*index)?;
            }
        }
        let stream = crate::config::ConfigStream::build(&self.cases, instructions)?;
        let idle_cores: Vec<BitVec> = self
            .cases
            .iter()
            .map(|c| BitVec::zeros(c.geometry().switched_wires()))
            .collect();
        for bit in stream.bits().iter() {
            let mut bus = BitVec::zeros(self.n);
            bus.set(0, bit);
            self.clock(&bus, &idle_cores, CasControl::shift_config())?;
        }
        self.clock(&BitVec::zeros(self.n), &idle_cores, CasControl::update())?;
        Ok(())
    }

    /// Resets every CAS to power-on BYPASS.
    pub fn reset(&mut self) {
        for cas in &mut self.cases {
            cas.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CasGeometry;

    fn chain(geoms: &[(usize, usize)]) -> CasChain {
        let cases = geoms
            .iter()
            .map(|&(n, p)| Cas::for_geometry(CasGeometry::new(n, p).unwrap()).unwrap())
            .collect();
        CasChain::new(cases).unwrap()
    }

    fn idle(chain: &CasChain) -> Vec<BitVec> {
        chain
            .cases()
            .iter()
            .map(|c| BitVec::zeros(c.geometry().switched_wires()))
            .collect()
    }

    #[test]
    fn empty_chain_rejected() {
        assert!(CasChain::new(vec![]).is_err());
    }

    #[test]
    fn mismatched_bus_widths_rejected() {
        let cases = vec![
            Cas::for_geometry(CasGeometry::new(4, 1).unwrap()).unwrap(),
            Cas::for_geometry(CasGeometry::new(5, 1).unwrap()).unwrap(),
        ];
        assert!(CasChain::new(cases).is_err());
    }

    #[test]
    fn all_bypass_is_transparent() {
        let mut ch = chain(&[(4, 2), (4, 1), (4, 3)]);
        let cores = idle(&ch);
        let bus: BitVec = "1101".parse().unwrap();
        let out = ch.clock(&bus, &cores, CasControl::run()).unwrap();
        assert_eq!(out.bus_out, bus);
        assert!(out.core_in.iter().all(Option::is_none));
    }

    #[test]
    fn serial_configure_loads_every_cas() {
        let mut ch = chain(&[(4, 2), (4, 1), (4, 3)]);
        let instrs = vec![
            CasInstruction::Test(5),
            CasInstruction::Bypass,
            CasInstruction::Test(10),
        ];
        ch.configure(&instrs).unwrap();
        assert_eq!(*ch.cases()[0].instruction(), CasInstruction::Test(5));
        assert_eq!(*ch.cases()[1].instruction(), CasInstruction::Bypass);
        assert_eq!(*ch.cases()[2].instruction(), CasInstruction::Test(10));
    }

    #[test]
    fn configure_wrong_length_rejected() {
        let mut ch = chain(&[(4, 1), (4, 1)]);
        let err = ch.configure(&[CasInstruction::Bypass]).unwrap_err();
        assert_eq!(
            err,
            CasError::ConfigurationLengthMismatch {
                got: 1,
                expected: 2
            }
        );
    }

    #[test]
    fn configure_invalid_scheme_rejected_without_state_change() {
        let mut ch = chain(&[(4, 1)]);
        assert!(ch.configure(&[CasInstruction::Test(99)]).is_err());
        assert_eq!(*ch.cases()[0].instruction(), CasInstruction::Bypass);
    }

    #[test]
    fn config_chain_bits_sum() {
        let ch = chain(&[(4, 2), (4, 1), (4, 3)]);
        // k(4,2)=4, k(4,1)=3, k(4,3)=5.
        assert_eq!(ch.config_chain_bits(), 12);
    }

    #[test]
    fn test_data_threads_through_configured_cas() {
        let mut ch = chain(&[(4, 2), (4, 1)]);
        // CAS0 taps wires 0,1; CAS1 taps wire 3: disjoint.
        let i0 = ch.cases()[0].schemes().index_of(&[0, 1]).unwrap();
        let i1 = ch.cases()[1].schemes().index_of(&[3]).unwrap();
        ch.configure(&[CasInstruction::Test(i0), CasInstruction::Test(i1)])
            .unwrap();
        let bus: BitVec = "1011".parse().unwrap();
        let cores = vec!["01".parse().unwrap(), "1".parse().unwrap()];
        let out = ch.clock(&bus, &cores, CasControl::run()).unwrap();
        // CAS0 core sees e0,e1.
        assert_eq!(out.core_in[0].as_ref().unwrap().to_string(), "10");
        // CAS1 core sees e3 (untouched by CAS0's bypass of wire 3).
        assert_eq!(out.core_in[1].as_ref().unwrap().to_string(), "1");
        // Bus out: s0=i0(0), s1=i1(1), s2=e2(1), s3=CAS1's i0(1).
        assert_eq!(out.bus_out.to_string(), "0111");
    }

    #[test]
    fn serial_wire_sharing_concatenates_cores() {
        // Two CASes tapping the SAME wire put their cores in series — how
        // the CAS-BUS concatenates scan paths.
        let mut ch = chain(&[(2, 1), (2, 1)]);
        let i = ch.cases()[0].schemes().index_of(&[1]).unwrap();
        ch.configure(&[CasInstruction::Test(i), CasInstruction::Test(i)])
            .unwrap();
        assert_eq!(ch.shared_wires(), vec![(1, vec![0, 1])]);
        let bus: BitVec = "01".parse().unwrap();
        let cores = vec!["1".parse().unwrap(), "0".parse().unwrap()];
        let out = ch.clock(&bus, &cores, CasControl::run()).unwrap();
        // CAS0 core receives e1=1; CAS0 drives i=1 onto the wire, which
        // CAS1's core then receives; CAS1 drives 0 out.
        assert_eq!(out.core_in[0].as_ref().unwrap().get(0), Some(true));
        assert_eq!(out.core_in[1].as_ref().unwrap().get(0), Some(true));
        assert_eq!(out.bus_out.get(1), Some(false));
    }

    #[test]
    fn reconfigure_between_sessions() {
        let mut ch = chain(&[(3, 1), (3, 1)]);
        ch.configure(&[CasInstruction::Test(0), CasInstruction::Bypass])
            .unwrap();
        assert!(ch.cases()[0].instruction().is_test());
        // Second session: swap roles — the paper's dynamic reconfiguration.
        ch.configure(&[CasInstruction::Bypass, CasInstruction::Test(2)])
            .unwrap();
        assert_eq!(*ch.cases()[0].instruction(), CasInstruction::Bypass);
        assert_eq!(*ch.cases()[1].instruction(), CasInstruction::Test(2));
    }

    #[test]
    fn reset_clears_chain() {
        let mut ch = chain(&[(3, 1)]);
        ch.configure(&[CasInstruction::Test(1)]).unwrap();
        ch.reset();
        assert_eq!(*ch.cases()[0].instruction(), CasInstruction::Bypass);
    }

    #[test]
    fn heterogeneous_p_on_shared_bus() {
        // Fig. 1's situation: same N, very different P per core.
        let ch = chain(&[(6, 4), (6, 1), (6, 2), (6, 1), (6, 2), (6, 1)]);
        assert_eq!(ch.bus_width(), 6);
        assert_eq!(ch.len(), 6);
    }
}
