//! Serial configuration bitstreams for a CAS chain.

use casbus_tpg::BitVec;

use crate::cas::Cas;
use crate::error::CasError;
use crate::instruction::CasInstruction;

/// A serial configuration bitstream: the exact bits to shift over test bus
/// wire 0 — with the `config` line asserted — so that every CAS instruction
/// register ends up holding its target instruction.
///
/// During configuration the instruction registers of all CASes form one long
/// shift register (paper §3: "The instruction registers of all the CASes are
/// connected to each other through the first serial test bus wire (e0/s0)
/// during the initialization phase"). The earliest bits travel furthest, so
/// the stream is the concatenation of the per-CAS encodings in **reverse**
/// chain order, each encoding LSB first.
///
/// # Examples
///
/// ```
/// use casbus::{Cas, CasGeometry, CasInstruction, ConfigStream};
///
/// let cases = vec![
///     Cas::for_geometry(CasGeometry::new(4, 1)?)?, // k = 3
///     Cas::for_geometry(CasGeometry::new(4, 2)?)?, // k = 4
/// ];
/// let stream = ConfigStream::build(
///     &cases,
///     &[CasInstruction::Bypass, CasInstruction::Test(0)],
/// )?;
/// assert_eq!(stream.len(), 7);
/// # Ok::<(), casbus::CasError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigStream {
    bits: BitVec,
    per_cas_widths: Vec<u32>,
}

impl ConfigStream {
    /// Builds the stream for loading `instructions[i]` into `cases[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::ConfigurationLengthMismatch`] when the slice
    /// lengths differ, or [`CasError::SchemeIndexOutOfRange`] when a TEST
    /// instruction names a scheme the CAS does not have.
    pub fn build(cases: &[Cas], instructions: &[CasInstruction]) -> Result<Self, CasError> {
        if cases.len() != instructions.len() {
            return Err(CasError::ConfigurationLengthMismatch {
                got: instructions.len(),
                expected: cases.len(),
            });
        }
        let mut bits = BitVec::new();
        // Reverse chain order: the last CAS's encoding is shifted first.
        for (cas, instr) in cases.iter().zip(instructions).rev() {
            if let CasInstruction::Test(index) = instr {
                cas.schemes().scheme(*index)?;
            }
            let encoded = instr.encode(cas.schemes().len(), cas.instruction_width());
            bits.extend_from(&encoded);
        }
        Ok(Self {
            bits,
            per_cas_widths: cases.iter().map(Cas::instruction_width).collect(),
        })
    }

    /// The serial bits, in shift order.
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// Stream length in clocks (= the configuration phase duration).
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Instruction register width of each CAS, chain order.
    pub fn per_cas_widths(&self) -> &[u32] {
        &self.per_cas_widths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CasGeometry;

    fn cas(n: usize, p: usize) -> Cas {
        Cas::for_geometry(CasGeometry::new(n, p).unwrap()).unwrap()
    }

    #[test]
    fn stream_length_is_sum_of_widths() {
        let cases = vec![cas(4, 1), cas(4, 2), cas(4, 3)];
        let stream = ConfigStream::build(
            &cases,
            &[
                CasInstruction::Bypass,
                CasInstruction::Bypass,
                CasInstruction::Bypass,
            ],
        )
        .unwrap();
        assert_eq!(stream.len(), 3 + 4 + 5);
        assert_eq!(stream.per_cas_widths(), &[3, 4, 5]);
    }

    #[test]
    fn reverse_order_layout() {
        // Two CASes with k=3 each (N=4, P=1, m=6). Load Test(1) (opcode 2)
        // into CAS0 and Test(3) (opcode 4) into CAS1.
        let cases = vec![cas(4, 1), cas(4, 1)];
        let stream =
            ConfigStream::build(&cases, &[CasInstruction::Test(1), CasInstruction::Test(3)])
                .unwrap();
        // CAS1's encoding (opcode 4 = 001 LSB-first) comes first, then
        // CAS0's (opcode 2 = 010 LSB-first).
        assert_eq!(stream.bits().to_string(), "001010");
    }

    #[test]
    fn length_mismatch_rejected() {
        let cases = vec![cas(4, 1)];
        assert!(ConfigStream::build(&cases, &[]).is_err());
    }

    #[test]
    fn invalid_scheme_rejected() {
        let cases = vec![cas(4, 1)];
        assert!(matches!(
            ConfigStream::build(&cases, &[CasInstruction::Test(50)]),
            Err(CasError::SchemeIndexOutOfRange { .. })
        ));
    }

    #[test]
    fn loading_through_hardware_matches_direct_load() {
        // The stream, shifted through real CASes, must produce the same
        // active instructions as load_instruction.
        use crate::cas::CasControl;
        use crate::chain::CasChain;

        let instrs = vec![
            CasInstruction::Test(2),
            CasInstruction::Configuration,
            CasInstruction::Bypass,
            CasInstruction::Test(7),
        ];
        let mut ch = CasChain::new(vec![cas(5, 1), cas(5, 2), cas(5, 1), cas(5, 3)]).unwrap();
        let stream = ConfigStream::build(ch.cases(), &instrs).unwrap();
        let cores: Vec<BitVec> = ch
            .cases()
            .iter()
            .map(|c| BitVec::zeros(c.geometry().switched_wires()))
            .collect();
        for bit in stream.bits().iter() {
            let mut bus = BitVec::zeros(5);
            bus.set(0, bit);
            ch.clock(&bus, &cores, CasControl::shift_config()).unwrap();
        }
        ch.clock(&BitVec::zeros(5), &cores, CasControl::update())
            .unwrap();
        for (cas, want) in ch.cases().iter().zip(&instrs) {
            assert_eq!(cas.instruction(), want);
        }
    }

    #[test]
    fn empty_is_empty() {
        let cases = vec![cas(4, 1)];
        let stream = ConfigStream::build(&cases, &[CasInstruction::Bypass]).unwrap();
        assert!(!stream.is_empty());
    }
}
