//! Errors raised by the CAS-BUS core library.

use std::fmt;

/// Errors raised while building or operating a CAS-BUS TAM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CasError {
    /// `P` or `N` violated `1 ≤ P ≤ N`.
    BadGeometry {
        /// Requested bus width.
        n: usize,
        /// Requested switched-wire count.
        p: usize,
    },
    /// Enumerating all switch schemes for this geometry would exceed the
    /// enumeration budget (`N!/(N−P)!` schemes).
    TooManySchemes {
        /// Requested bus width.
        n: usize,
        /// Requested switched-wire count.
        p: usize,
        /// The scheme count that was refused.
        count: u128,
    },
    /// A scheme index was out of range for the geometry.
    SchemeIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of schemes available.
        available: usize,
    },
    /// A scheme mapped two ports to one wire, or used a wire ≥ N.
    InvalidScheme(String),
    /// The test bus is narrower than a core requires.
    BusTooNarrow {
        /// The core that does not fit.
        core: String,
        /// Wires the core needs.
        needed: usize,
        /// Available bus width.
        n: usize,
    },
    /// A TAM configuration named a CAS index that does not exist.
    UnknownCas(usize),
    /// A configuration supplied the wrong number of instructions.
    ConfigurationLengthMismatch {
        /// Instructions supplied.
        got: usize,
        /// CASes on the bus.
        expected: usize,
    },
    /// Two simultaneously-active TEST instructions claim the same bus wire.
    WireConflict {
        /// The contested wire.
        wire: usize,
        /// Index of the first CAS claiming it.
        first_cas: usize,
        /// Index of the second CAS claiming it.
        second_cas: usize,
    },
}

impl fmt::Display for CasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadGeometry { n, p } => {
                write!(
                    f,
                    "invalid CAS geometry: need 1 <= P <= N, got N={n}, P={p}"
                )
            }
            Self::TooManySchemes { n, p, count } => write!(
                f,
                "geometry N={n}, P={p} has {count} switch schemes, beyond the enumeration budget"
            ),
            Self::SchemeIndexOutOfRange { index, available } => {
                write!(f, "scheme index {index} out of range ({available} schemes)")
            }
            Self::InvalidScheme(msg) => write!(f, "invalid switch scheme: {msg}"),
            Self::BusTooNarrow { core, needed, n } => write!(
                f,
                "core {core:?} needs {needed} test wires but the bus is only {n} wide"
            ),
            Self::UnknownCas(idx) => write!(f, "no CAS at index {idx}"),
            Self::ConfigurationLengthMismatch { got, expected } => write!(
                f,
                "configuration has {got} instructions for {expected} CASes"
            ),
            Self::WireConflict {
                wire,
                first_cas,
                second_cas,
            } => write!(
                f,
                "bus wire {wire} claimed by both CAS {first_cas} and CAS {second_cas}"
            ),
        }
    }
}

impl std::error::Error for CasError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let cases: Vec<(CasError, &str)> = vec![
            (CasError::BadGeometry { n: 2, p: 3 }, "N=2, P=3"),
            (
                CasError::TooManySchemes {
                    n: 20,
                    p: 10,
                    count: 670442572800,
                },
                "670442572800",
            ),
            (CasError::UnknownCas(7), "index 7"),
            (
                CasError::WireConflict {
                    wire: 3,
                    first_cas: 0,
                    second_cas: 2,
                },
                "wire 3",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        let err: Box<dyn std::error::Error> = Box::new(CasError::UnknownCas(0));
        assert!(!err.to_string().is_empty());
    }
}
