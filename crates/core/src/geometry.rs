//! CAS geometry: the `(N, P)` pair and the combinatorics of Table 1.

use std::fmt;

use crate::error::CasError;

/// The geometry of one Core Access Switch: a test bus of width `N` of which
/// `P` wires are switched to the core (paper §2: `N ≥ 1`, `1 ≤ P ≤ N`).
///
/// All of the paper's Table 1 quantities derive from this pair:
///
/// * [`CasGeometry::test_scheme_count`] — the number of TEST switch schemes
///   under the paper's heuristic, `N!/(N−P)!`,
/// * [`CasGeometry::combination_count`] — `m`, the total instruction count
///   (TEST schemes + BYPASS + CONFIGURATION),
/// * [`CasGeometry::instruction_width`] — `k = ⌈log₂ m⌉`.
///
/// # Examples
///
/// ```
/// use casbus::CasGeometry;
///
/// // Every row of the paper's Table 1 is reproduced exactly:
/// let g = CasGeometry::new(6, 3)?;
/// assert_eq!(g.combination_count(), 122);
/// assert_eq!(g.instruction_width(), 7);
/// # Ok::<(), casbus::CasError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CasGeometry {
    n: usize,
    p: usize,
}

impl CasGeometry {
    /// Creates a geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::BadGeometry`] unless `1 ≤ P ≤ N`.
    pub fn new(n: usize, p: usize) -> Result<Self, CasError> {
        if p == 0 || p > n {
            return Err(CasError::BadGeometry { n, p });
        }
        Ok(Self { n, p })
    }

    /// The test bus width `N`.
    pub fn bus_width(&self) -> usize {
        self.n
    }

    /// The switched-wire count `P`.
    pub fn switched_wires(&self) -> usize {
        self.p
    }

    /// Number of TEST switch schemes under the paper's heuristic: the
    /// ordered injective assignments of `P` port pairs onto `N` wires,
    /// `N!/(N−P)! = N·(N−1)⋯(N−P+1)`.
    /// Saturates at `u128::MAX` for geometries beyond any practical bus.
    pub fn test_scheme_count(&self) -> u128 {
        let mut count: u128 = 1;
        for i in 0..self.p {
            count = count.saturating_mul((self.n - i) as u128);
        }
        count
    }

    /// The paper's `m`: TEST schemes plus the BYPASS and CONFIGURATION
    /// instructions.
    pub fn combination_count(&self) -> u128 {
        self.test_scheme_count().saturating_add(2)
    }

    /// The paper's `k = ⌈log₂ m⌉`: the CAS instruction register width.
    pub fn instruction_width(&self) -> u32 {
        ceil_log2(self.combination_count())
    }

    /// Scheme count *without* the paper's heuristic (§3.2 ablation): the
    /// forward path (`e → o`) and the return path (`i → s`) are assigned
    /// independently, squaring the count.
    pub fn unrestricted_combination_count(&self) -> u128 {
        let schemes = self.test_scheme_count();
        schemes
            .checked_mul(schemes)
            .and_then(|sq| sq.checked_add(2))
            .unwrap_or(u128::MAX)
    }

    /// Instruction register width without the heuristic.
    pub fn unrestricted_instruction_width(&self) -> u32 {
        ceil_log2(self.unrestricted_combination_count())
    }
}

impl fmt::Display for CasGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N/P = {}/{}", self.n, self.p)
    }
}

/// `⌈log₂ x⌉` for `x ≥ 1`.
fn ceil_log2(x: u128) -> u32 {
    debug_assert!(x >= 1);
    if x <= 1 {
        0
    } else {
        128 - (x - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every row of the paper's Table 1: (N, P, m, k).
    pub const TABLE1_ROWS: [(usize, usize, u128, u32); 12] = [
        (3, 1, 5, 3),
        (4, 1, 6, 3),
        (4, 2, 14, 4),
        (4, 3, 26, 5),
        (5, 1, 7, 3),
        (5, 2, 22, 5),
        (5, 3, 62, 6),
        (6, 1, 8, 3),
        (6, 2, 32, 5),
        (6, 3, 122, 7),
        (6, 5, 722, 10),
        (8, 4, 1682, 11),
    ];

    #[test]
    fn reproduces_table1_m_and_k_exactly() {
        for (n, p, m, k) in TABLE1_ROWS {
            let g = CasGeometry::new(n, p).unwrap();
            assert_eq!(g.combination_count(), m, "m for N={n}, P={p}");
            assert_eq!(g.instruction_width(), k, "k for N={n}, P={p}");
        }
    }

    #[test]
    fn invalid_geometries_rejected() {
        assert_eq!(
            CasGeometry::new(4, 0),
            Err(CasError::BadGeometry { n: 4, p: 0 })
        );
        assert_eq!(
            CasGeometry::new(3, 4),
            Err(CasError::BadGeometry { n: 3, p: 4 })
        );
        assert_eq!(
            CasGeometry::new(0, 0),
            Err(CasError::BadGeometry { n: 0, p: 0 })
        );
    }

    #[test]
    fn p_equals_n_allowed() {
        let g = CasGeometry::new(3, 3).unwrap();
        assert_eq!(g.test_scheme_count(), 6); // 3!
        assert_eq!(g.combination_count(), 8);
        assert_eq!(g.instruction_width(), 3);
    }

    #[test]
    fn n_equals_one() {
        let g = CasGeometry::new(1, 1).unwrap();
        assert_eq!(g.combination_count(), 3);
        assert_eq!(g.instruction_width(), 2);
    }

    #[test]
    fn unrestricted_blows_up() {
        let g = CasGeometry::new(8, 4).unwrap();
        assert_eq!(g.test_scheme_count(), 1680);
        assert_eq!(g.unrestricted_combination_count(), 1680 * 1680 + 2);
        assert_eq!(g.unrestricted_instruction_width(), 22);
        assert!(g.unrestricted_instruction_width() > g.instruction_width());
    }

    #[test]
    fn ceil_log2_edges() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1 << 20), 20);
        assert_eq!(ceil_log2((1 << 20) + 1), 21);
    }

    #[test]
    fn large_widths_do_not_overflow() {
        let g = CasGeometry::new(32, 16).unwrap();
        assert!(g.test_scheme_count() > 1 << 60);
        let _ = g.instruction_width();
        let _ = g.unrestricted_instruction_width();
    }

    #[test]
    fn display_format() {
        assert_eq!(CasGeometry::new(6, 3).unwrap().to_string(), "N/P = 6/3");
    }
}
