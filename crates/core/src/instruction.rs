//! CAS instructions and their binary encoding.

use std::fmt;

use casbus_tpg::BitVec;

use crate::error::CasError;
use crate::switch::{SchemeSet, SwitchScheme};

/// One CAS instruction — what the `k`-bit instruction register can hold.
///
/// The paper's §3.1 defines three functional modes; BYPASS is the all-zero
/// encoding ("When all the instruction register bits are 0, the CAS is in a
/// BYPASS mode"), every TEST scheme has its own opcode, and CONFIGURATION
/// takes the code after the last scheme. Together that is
/// `m = (scheme count) + 2` encodings, matching Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CasInstruction {
    /// All bus wires pass straight through the CAS (opcode 0).
    Bypass,
    /// The CAS connects its core according to the scheme at this
    /// lexicographic index (opcodes `1 ..= scheme_count`).
    Test(usize),
    /// The CAS routes bus wire 0 through its instruction register
    /// (opcode `scheme_count + 1`).
    Configuration,
}

impl CasInstruction {
    /// Builds a TEST instruction from an explicit scheme, resolving its
    /// opcode index within `set`.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::InvalidScheme`] when the scheme is not part of
    /// the set (wrong geometry).
    pub fn test_scheme(set: &SchemeSet, scheme: &SwitchScheme) -> Result<Self, CasError> {
        set.index_of(scheme.wires())
            .map(CasInstruction::Test)
            .ok_or_else(|| {
                CasError::InvalidScheme(format!(
                    "scheme {scheme} not in set for {}",
                    set.geometry()
                ))
            })
    }

    /// The numeric opcode within a set of `scheme_count` TEST schemes.
    pub fn opcode(&self, scheme_count: usize) -> u128 {
        match self {
            Self::Bypass => 0,
            Self::Test(index) => 1 + *index as u128,
            Self::Configuration => 1 + scheme_count as u128,
        }
    }

    /// Decodes an opcode. Codes beyond `scheme_count + 1` are unassigned.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::SchemeIndexOutOfRange`] for unassigned codes.
    pub fn from_opcode(opcode: u128, scheme_count: usize) -> Result<Self, CasError> {
        if opcode == 0 {
            Ok(Self::Bypass)
        } else if opcode <= scheme_count as u128 {
            Ok(Self::Test((opcode - 1) as usize))
        } else if opcode == 1 + scheme_count as u128 {
            Ok(Self::Configuration)
        } else {
            Err(CasError::SchemeIndexOutOfRange {
                index: opcode as usize,
                available: scheme_count + 2,
            })
        }
    }

    /// Encodes to `k` instruction-register bits, LSB first (the order they
    /// are shifted in).
    ///
    /// # Panics
    ///
    /// Panics if `k > 64` (no tabulated CAS comes close) or the opcode does
    /// not fit `k` bits.
    pub fn encode(&self, scheme_count: usize, k: u32) -> BitVec {
        let opcode = self.opcode(scheme_count);
        assert!(
            k <= 64,
            "instruction registers wider than 64 bits are unsupported"
        );
        assert!(
            k == 64 || opcode < 1u128 << k,
            "opcode {opcode} does not fit {k} bits"
        );
        BitVec::from_u64(opcode as u64, k as usize)
    }

    /// Decodes `k` instruction-register bits (LSB first). Unassigned codes
    /// fall back to [`CasInstruction::Bypass`], the safe default.
    pub fn decode(bits: &BitVec, scheme_count: usize) -> Self {
        Self::from_opcode(u128::from(bits.to_u64()), scheme_count).unwrap_or(Self::Bypass)
    }

    /// Whether this instruction connects the core to the bus.
    pub fn is_test(&self) -> bool {
        matches!(self, Self::Test(_))
    }
}

impl fmt::Display for CasInstruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Bypass => f.write_str("BYPASS"),
            Self::Test(index) => write!(f, "TEST[{index}]"),
            Self::Configuration => f.write_str("CONFIGURATION"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CasGeometry;

    fn set42() -> SchemeSet {
        SchemeSet::enumerate(CasGeometry::new(4, 2).unwrap()).unwrap()
    }

    #[test]
    fn bypass_is_all_zeros() {
        let set = set42();
        let k = set.geometry().instruction_width();
        let bits = CasInstruction::Bypass.encode(set.len(), k);
        assert_eq!(bits.count_ones(), 0);
        assert_eq!(bits.len(), 4);
    }

    #[test]
    fn opcode_roundtrip_all_codes() {
        let set = set42();
        let k = set.geometry().instruction_width();
        let mut all = vec![CasInstruction::Bypass, CasInstruction::Configuration];
        all.extend((0..set.len()).map(CasInstruction::Test));
        for instr in all {
            let bits = instr.encode(set.len(), k);
            assert_eq!(CasInstruction::decode(&bits, set.len()), instr, "{instr}");
        }
    }

    #[test]
    fn every_encoding_fits_k_bits() {
        for (n, p) in [(3usize, 1usize), (4, 3), (5, 2), (6, 5), (8, 4)] {
            let g = CasGeometry::new(n, p).unwrap();
            let set = SchemeSet::enumerate(g).unwrap();
            let k = g.instruction_width();
            // The largest opcode is CONFIGURATION = m − 1.
            let bits = CasInstruction::Configuration.encode(set.len(), k);
            assert_eq!(bits.len(), k as usize);
        }
    }

    #[test]
    fn unassigned_codes_decode_to_bypass() {
        let set = set42(); // m = 14, k = 4: codes 14, 15 unassigned
        let bits = BitVec::from_u64(15, 4);
        assert_eq!(
            CasInstruction::decode(&bits, set.len()),
            CasInstruction::Bypass
        );
    }

    #[test]
    fn from_opcode_rejects_unassigned() {
        assert!(CasInstruction::from_opcode(14, 12).is_err());
        assert_eq!(
            CasInstruction::from_opcode(13, 12),
            Ok(CasInstruction::Configuration)
        );
        assert_eq!(
            CasInstruction::from_opcode(12, 12),
            Ok(CasInstruction::Test(11))
        );
    }

    #[test]
    fn test_scheme_resolves_index() {
        let set = set42();
        let scheme = set.scheme(7).unwrap().clone();
        let instr = CasInstruction::test_scheme(&set, &scheme).unwrap();
        assert_eq!(instr, CasInstruction::Test(7));
    }

    #[test]
    fn test_scheme_wrong_geometry_rejected() {
        let set = set42();
        let other = SchemeSet::enumerate(CasGeometry::new(5, 2).unwrap()).unwrap();
        let foreign = other.scheme(19).unwrap().clone(); // uses wire 4
        assert!(CasInstruction::test_scheme(&set, &foreign).is_err());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn encode_overflow_panics() {
        let _ = CasInstruction::Configuration.encode(100, 3);
    }

    #[test]
    fn display_names() {
        assert_eq!(CasInstruction::Bypass.to_string(), "BYPASS");
        assert_eq!(CasInstruction::Test(3).to_string(), "TEST[3]");
        assert_eq!(CasInstruction::Configuration.to_string(), "CONFIGURATION");
    }

    #[test]
    fn is_test_classifier() {
        assert!(CasInstruction::Test(0).is_test());
        assert!(!CasInstruction::Bypass.is_test());
        assert!(!CasInstruction::Configuration.is_test());
    }
}
