//! # CAS-BUS: a scalable and reconfigurable test access mechanism
//!
//! This crate is the heart of the reproduction of *"CAS-BUS: A Scalable and
//! Reconfigurable Test Access Mechanism for Systems on a Chip"*
//! (M. Benabdenbi, W. Maroufi, M. Marzouki, DATE 2000).
//!
//! The CAS-BUS TAM is built from two elements (paper §2):
//!
//! * a serial **test bus** of `N` wires threading the whole SoC,
//! * one **Core Access Switch** ([`Cas`]) per wrapped core, which connects
//!   `P` of the `N` wires to the core's test terminals and lets the
//!   remaining `N − P` wires bypass it.
//!
//! Each CAS holds a `k`-bit instruction register loaded serially over bus
//! wire 0 during the CONFIGURATION phase; `k = ⌈log₂ m⌉` where `m` is the
//! number of instructions (paper §3.2). Under the paper's switching
//! heuristic — *"when an input `e_i` is switched to an output `o_j`, the
//! corresponding `i_j` CAS input is switched to the `s_i` output"* — a TEST
//! instruction is an ordered injective assignment of the `P` core port pairs
//! onto the `N` bus wires, so
//!
//! ```text
//! m = N!/(N−P)! + 2        (TEST schemes + BYPASS + CONFIGURATION)
//! ```
//!
//! which reproduces every `(m, k)` row of the paper's Table 1 exactly
//! (e.g. `N=8, P=4`: `8·7·6·5 + 2 = 1682`, `k = 11`).
//!
//! ## Quick start
//!
//! ```
//! use casbus::{CasGeometry, SchemeSet, Cas, CasInstruction};
//!
//! // The N=4, P=2 CAS of Table 1: m = 14, k = 4.
//! let geometry = CasGeometry::new(4, 2)?;
//! assert_eq!(geometry.combination_count(), 14);
//! assert_eq!(geometry.instruction_width(), 4);
//!
//! // Enumerate its switch schemes and build the behavioural switch.
//! let schemes = SchemeSet::enumerate(geometry)?;
//! let mut cas = Cas::new(schemes);
//! cas.load_instruction(&CasInstruction::Bypass);
//! # Ok::<(), casbus::CasError>(())
//! ```
//!
//! The higher layers: [`CasChain`] chains CASes on the test bus,
//! [`Tam`] assembles the whole mechanism for a
//! [`SocDescription`](casbus_soc::SocDescription), and the sibling crates
//! provide wrappers (`casbus-p1500`), gate-level synthesis
//! (`casbus-netlist`), VHDL/Verilog generation (`casbus-rtl`), scheduling
//! (`casbus-controller`) and end-to-end simulation (`casbus-sim`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cas;
pub mod chain;
pub mod config;
pub mod error;
pub mod geometry;
pub mod instruction;
pub mod route;
pub mod switch;
pub mod tam;

pub use cas::{Cas, CasControl, CasMode, CasOutput};
pub use chain::CasChain;
pub use config::ConfigStream;
pub use error::CasError;
pub use geometry::CasGeometry;
pub use instruction::CasInstruction;
pub use route::{CacheStats, RouteTable, RouteTableCache, WaveKey, WireSource};
pub use switch::{SchemeSet, SwitchScheme};
pub use tam::{Tam, TamConfiguration};
