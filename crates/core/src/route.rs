//! Compiled routing tables: flatten a configured chain into table lookups.
//!
//! Between two configuration waves every CAS keeps its mode and switch
//! scheme, so the whole chain's steady-state TEST-cycle behaviour is a
//! *fixed* routing function: each bus output wire is driven by exactly one
//! source (a chain-level bus input or one core's test output), and each
//! TEST CAS port taps exactly one source. [`RouteTable::compile`] walks the
//! chain once per wave and records those sources, so per-cycle transport
//! becomes table lookups instead of per-CAS `match` interpretation — the
//! word-level session engine in `casbus-sim` is built on top of this.
//!
//! Schedule-search workloads evaluate hundreds of candidate schedules whose
//! waves repeat the same few wire-assignment shapes, so compiling the same
//! table over and over is pure waste. [`WaveKey`] captures exactly the
//! routing-relevant part of a configured chain (bus width + per-CAS active
//! scheme wires) and [`RouteTableCache`] memoizes compilation behind it,
//! thread-safe and with hit/miss accounting for the search metrics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use casbus_tpg::BitVec;

use crate::cas::CasMode;
use crate::chain::{CasChain, ChainOutput};
use crate::error::CasError;

/// Where a routed signal originates, relative to one data clock of the
/// whole chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireSource {
    /// The chain-level bus input `e_w` (no TEST CAS drove the wire before
    /// the observation point).
    Bus(usize),
    /// Test output `i_port` of the core behind CAS `cas` (the most recent
    /// injection on the wire before the observation point).
    Core {
        /// Chain index of the injecting CAS.
        cas: usize,
        /// Core test-port index on that CAS.
        port: usize,
    },
}

/// The compiled routing program of one configured [`CasChain`], valid for
/// plain data-transport clocks ([`CasControl::run`](crate::CasControl::run))
/// until the next configuration wave.
///
/// Serial wire sharing is captured exactly: when two TEST CASes tap the
/// same wire, the downstream tap resolves to the upstream CAS's core
/// output, concatenating the cores just as the cycle-by-cycle interpreter
/// does. [`RouteTable::apply`] reproduces [`CasChain::clock`] bit for bit
/// (an equivalence test pins this), and [`RouteTable::is_independent`]
/// tells fast-path engines which CASes own their wires exclusively.
///
/// # Examples
///
/// ```
/// use casbus::{Cas, CasChain, CasGeometry, CasInstruction, RouteTable, WireSource};
///
/// let mut chain = CasChain::new(vec![
///     Cas::for_geometry(CasGeometry::new(4, 1)?)?,
/// ])?;
/// let idx = chain.cases()[0].schemes().index_of(&[2]).unwrap();
/// chain.cas_mut(0)?.load_instruction(&CasInstruction::Test(idx));
/// let routes = RouteTable::compile(&chain);
/// assert_eq!(routes.wire_source(2), WireSource::Core { cas: 0, port: 0 });
/// assert!(routes.is_independent(0));
/// # Ok::<(), casbus::CasError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RouteTable {
    n: usize,
    /// Driver of each bus wire at the chain output.
    wire_out: Vec<WireSource>,
    /// Per CAS: `Some(sources feeding ports 0..P)` when in TEST mode.
    taps: Vec<Option<Vec<WireSource>>>,
    /// Per CAS: `Some(scheme wires for ports 0..P)` when in TEST mode.
    wires: Vec<Option<Vec<usize>>>,
    /// Per CAS: core-side width `P` (for input validation in `apply`).
    core_widths: Vec<usize>,
}

impl RouteTable {
    /// Compiles the chain's *current* active instructions into a flat
    /// routing program. Walks the CASes once, tracking each wire's most
    /// recent driver: a TEST CAS's port taps the driver its scheme wire
    /// holds at that chain position, then becomes the wire's driver itself.
    pub fn compile(chain: &CasChain) -> Self {
        let n = chain.bus_width();
        let mut driver: Vec<WireSource> = (0..n).map(WireSource::Bus).collect();
        let mut taps = Vec::with_capacity(chain.len());
        let mut wires = Vec::with_capacity(chain.len());
        let mut core_widths = Vec::with_capacity(chain.len());
        for (idx, cas) in chain.cases().iter().enumerate() {
            core_widths.push(cas.geometry().switched_wires());
            let scheme = match cas.mode() {
                CasMode::Test => cas.active_scheme(),
                _ => None,
            };
            match scheme {
                Some(scheme) => {
                    let p = cas.geometry().switched_wires();
                    let mut cas_taps = Vec::with_capacity(p);
                    let mut cas_wires = Vec::with_capacity(p);
                    for port in 0..p {
                        let wire = scheme.wire_for_port(port);
                        cas_taps.push(driver[wire]);
                        driver[wire] = WireSource::Core { cas: idx, port };
                        cas_wires.push(wire);
                    }
                    taps.push(Some(cas_taps));
                    wires.push(Some(cas_wires));
                }
                None => {
                    taps.push(None);
                    wires.push(None);
                }
            }
        }
        Self {
            n,
            wire_out: driver,
            taps,
            wires,
            core_widths,
        }
    }

    /// The bus width `N`.
    pub fn bus_width(&self) -> usize {
        self.n
    }

    /// Number of CAS positions covered.
    pub fn cas_count(&self) -> usize {
        self.taps.len()
    }

    /// Driver of bus output wire `w`.
    ///
    /// # Panics
    ///
    /// Panics if `wire >= N`.
    pub fn wire_source(&self, wire: usize) -> WireSource {
        self.wire_out[wire]
    }

    /// Sources feeding the core test inputs of CAS `cas`, one per port, or
    /// `None` when that CAS is not in TEST mode.
    pub fn taps(&self, cas: usize) -> Option<&[WireSource]> {
        self.taps[cas].as_deref()
    }

    /// Scheme wires of CAS `cas` (ports in order), or `None` outside TEST.
    pub fn scheme_wires(&self, cas: usize) -> Option<&[usize]> {
        self.wires[cas].as_deref()
    }

    /// Chain indices of every TEST-mode CAS.
    pub fn test_cas_indices(&self) -> Vec<usize> {
        self.taps
            .iter()
            .enumerate()
            .filter_map(|(idx, t)| t.as_ref().map(|_| idx))
            .collect()
    }

    /// Whether TEST CAS `cas` has exclusive, straight-through use of its
    /// wires: every port taps the chain-level bus input of its own scheme
    /// wire (no upstream injection) and still drives that wire at the chain
    /// output (no downstream overwrite). Exactly the property a per-lane
    /// fast path needs; serial wire sharing makes this `false`.
    pub fn is_independent(&self, cas: usize) -> bool {
        match (&self.taps[cas], &self.wires[cas]) {
            (Some(taps), Some(wires)) => {
                taps.iter()
                    .zip(wires)
                    .enumerate()
                    .all(|(port, (tap, &wire))| {
                        *tap == WireSource::Bus(wire)
                            && self.wire_out[wire] == WireSource::Core { cas, port }
                    })
            }
            _ => false,
        }
    }

    /// Whether every TEST CAS is [independent](RouteTable::is_independent).
    pub fn all_independent(&self) -> bool {
        self.test_cas_indices()
            .into_iter()
            .all(|cas| self.is_independent(cas))
    }

    /// Evaluates the compiled routes for one data clock: the table-lookup
    /// equivalent of [`CasChain::clock`] with
    /// [`CasControl::run`](crate::CasControl::run), producing the same
    /// [`ChainOutput`].
    ///
    /// # Errors
    ///
    /// Returns [`CasError::ConfigurationLengthMismatch`] when
    /// `core_outs.len()` differs from the CAS count, and
    /// [`CasError::BadGeometry`] on a bus or core-output width mismatch —
    /// the same validation the interpreted path performs.
    pub fn apply(&self, bus_in: &BitVec, core_outs: &[BitVec]) -> Result<ChainOutput, CasError> {
        if core_outs.len() != self.taps.len() {
            return Err(CasError::ConfigurationLengthMismatch {
                got: core_outs.len(),
                expected: self.taps.len(),
            });
        }
        if bus_in.len() != self.n {
            return Err(CasError::BadGeometry {
                n: bus_in.len(),
                p: 0,
            });
        }
        for (core_out, &width) in core_outs.iter().zip(&self.core_widths) {
            if core_out.len() != width {
                return Err(CasError::BadGeometry {
                    n: self.n,
                    p: core_out.len(),
                });
            }
        }
        let resolve = |source: WireSource| -> bool {
            match source {
                WireSource::Bus(w) => bus_in.get(w).expect("wire < n"),
                WireSource::Core { cas, port } => core_outs[cas].get(port).expect("port < p"),
            }
        };
        let mut bus_out = BitVec::with_capacity(self.n);
        for &source in &self.wire_out {
            bus_out.push(resolve(source));
        }
        let core_in = self
            .taps
            .iter()
            .map(|taps| {
                taps.as_ref()
                    .map(|taps| taps.iter().map(|&s| resolve(s)).collect())
            })
            .collect();
        Ok(ChainOutput { bus_out, core_in })
    }
}

/// The routing-relevant shape of one configuration wave: bus width plus,
/// per CAS, the active TEST scheme's wire assignment (`None` outside TEST).
///
/// Two chains with equal [`WaveKey`]s compile to identical [`RouteTable`]s
/// — the table is a pure function of exactly these inputs — so the key is
/// what a compilation cache must hash.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WaveKey {
    n: usize,
    /// Per CAS: `Some(scheme wires for ports 0..P)` when in TEST mode.
    schemes: Vec<Option<Vec<usize>>>,
}

impl WaveKey {
    /// Extracts the wave key of the chain's current configuration.
    pub fn for_chain(chain: &CasChain) -> Self {
        let schemes = chain
            .cases()
            .iter()
            .map(|cas| match cas.mode() {
                CasMode::Test => cas.active_scheme().map(|scheme| scheme.wires().to_vec()),
                _ => None,
            })
            .collect();
        Self {
            n: chain.bus_width(),
            schemes,
        }
    }

    /// The bus width component of the key.
    pub fn bus_width(&self) -> usize {
        self.n
    }

    /// Number of CAS positions covered.
    pub fn cas_count(&self) -> usize {
        self.schemes.len()
    }
}

/// Cached tables plus the logical clock backing the LRU policy.
#[derive(Debug, Default)]
struct CacheState {
    /// Per wave shape: the compiled table and its last-use stamp.
    tables: HashMap<WaveKey, (Arc<RouteTable>, u64)>,
    /// Monotonic lookup clock; every hit or insert advances it.
    stamp: u64,
}

/// A memoizing, thread-safe [`RouteTable`] compilation cache keyed by
/// [`WaveKey`], with an optional capacity cap under LRU eviction.
///
/// Candidate schedules in a makespan search share wave shapes heavily (a
/// local move touches one or two sessions and leaves every other wave
/// intact), so `get_or_compile` turns the per-wave compile into a hash
/// lookup after the first encounter. Tables are handed out as
/// [`Arc`]s, so concurrent validation workers share one compiled copy.
///
/// The default cache is unbounded — right for one search over one SoC.
/// Long-lived serving workloads (a fleet runner executing one program
/// across thousands of devices, or many searches over changing designs)
/// should bound it with [`RouteTableCache::with_capacity`]: once the cap is
/// reached, inserting a new shape evicts the least-recently-used table
/// (handed-out [`Arc`]s stay valid — eviction only drops the cache's
/// reference). [`RouteTableCache::evictions`] counts the drops.
///
/// Unbounded caches serve hits under a shared read lock — after warmup
/// (every wave shape of a program seen once) concurrent fleet workers
/// never contend on a writer. Bounded caches must bump the LRU stamp per
/// hit and therefore take the write lock on every lookup.
///
/// # Examples
///
/// ```
/// use casbus::{Cas, CasChain, CasGeometry, RouteTableCache};
///
/// let chain = CasChain::new(vec![
///     Cas::for_geometry(CasGeometry::new(4, 1)?)?,
/// ])?;
/// let cache = RouteTableCache::default();
/// let first = cache.get_or_compile(&chain);
/// let again = cache.get_or_compile(&chain);
/// assert!(std::sync::Arc::ptr_eq(&first, &again));
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// # Ok::<(), casbus::CasError>(())
/// ```
#[derive(Debug)]
pub struct RouteTableCache {
    state: RwLock<CacheState>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Most tables ever resident at once — how much of the budget the
    /// workload actually used.
    high_water: AtomicU64,
}

/// A point-in-time accounting snapshot of a [`RouteTableCache`] — the
/// budget view a multi-plan serving layer exports per run.
///
/// When several compiled plans (different SoCs, different bus widths)
/// share one bounded cache, the interesting questions are budgetary: how
/// much of the capacity did the mixed workload actually need
/// ([`high_water`](Self::high_water)), and did co-tenant plans thrash each
/// other's tables out ([`evictions`](Self::evictions))? `stats()` reads
/// every counter in one call so exported metrics are mutually consistent
/// enough for operator dashboards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compile a table.
    pub misses: u64,
    /// Tables dropped to stay within the capacity budget.
    pub evictions: u64,
    /// Distinct wave shapes resident right now.
    pub len: usize,
    /// The capacity budget (`usize::MAX` when unbounded).
    pub capacity: usize,
    /// Most tables ever resident at once since the last
    /// [`clear`](RouteTableCache::clear).
    pub high_water: u64,
}

impl Default for RouteTableCache {
    fn default() -> Self {
        Self::with_capacity(usize::MAX)
    }
}

impl RouteTableCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache holding at most `capacity` tables (clamped to at
    /// least 1), evicting the least-recently-used shape beyond that.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            state: RwLock::new(CacheState::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
        }
    }

    /// The maximum number of tables kept (`usize::MAX` when unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The compiled table for the chain's current configuration, compiling
    /// and inserting it on first encounter of this wave shape. At capacity,
    /// the insert evicts the least-recently-used shape first.
    ///
    /// Unbounded caches (the default) serve hits under the shared read
    /// lock: after warmup, concurrent readers never serialize on a writer.
    pub fn get_or_compile(&self, chain: &CasChain) -> Arc<RouteTable> {
        let key = WaveKey::for_chain(chain);
        if self.capacity == usize::MAX {
            // No eviction ever happens, so hits need no last-use bump —
            // a shared read lock suffices and warmed-up fleet workers run
            // contention-free.
            {
                let state = self.state.read().expect("route cache poisoned");
                if let Some((table, _)) = state.tables.get(&key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(table);
                }
            }
            let mut state = self.state.write().expect("route cache poisoned");
            // Re-check: another thread may have compiled this shape while
            // we waited for the write lock.
            if let Some((table, _)) = state.tables.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(table);
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
            state.stamp += 1;
            let stamp = state.stamp;
            let table = Arc::new(RouteTable::compile(chain));
            state.tables.insert(key, (Arc::clone(&table), stamp));
            self.high_water
                .fetch_max(state.tables.len() as u64, Ordering::Relaxed);
            return table;
        }
        let mut state = self.state.write().expect("route cache poisoned");
        state.stamp += 1;
        let stamp = state.stamp;
        if let Some((table, last_use)) = state.tables.get_mut(&key) {
            *last_use = stamp;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(table);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if state.tables.len() >= self.capacity {
            let coldest = state
                .tables
                .iter()
                .min_by_key(|(_, (_, last_use))| *last_use)
                .map(|(key, _)| key.clone())
                .expect("cache at capacity is non-empty");
            state.tables.remove(&coldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let table = Arc::new(RouteTable::compile(chain));
        state.tables.insert(key, (Arc::clone(&table), stamp));
        self.high_water
            .fetch_max(state.tables.len() as u64, Ordering::Relaxed);
        table
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compile.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Tables dropped to stay within the capacity cap.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Most tables ever resident at once since construction (or the last
    /// [`clear`](Self::clear)) — how much of the capacity budget the
    /// workload actually needed. A high-water mark well below
    /// [`capacity`](Self::capacity) means the budget is oversized; a mark
    /// pinned at capacity alongside growing [`evictions`](Self::evictions)
    /// means co-tenant plans are thrashing each other's tables.
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Every accounting counter in one snapshot, for metric export.
    ///
    /// # Examples
    ///
    /// ```
    /// use casbus::{Cas, CasChain, CasGeometry, RouteTableCache};
    ///
    /// let chain = CasChain::new(vec![Cas::for_geometry(CasGeometry::new(4, 1)?)?])?;
    /// let cache = RouteTableCache::with_capacity(8);
    /// cache.get_or_compile(&chain);
    /// let stats = cache.stats();
    /// assert_eq!((stats.misses, stats.len, stats.high_water), (1, 1, 1));
    /// assert_eq!(stats.capacity, 8);
    /// # Ok::<(), casbus::CasError>(())
    /// ```
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits(),
            misses: self.misses(),
            evictions: self.evictions(),
            len: self.len(),
            capacity: self.capacity,
            high_water: self.high_water(),
        }
    }

    /// Distinct wave shapes currently cached (never exceeds the capacity).
    pub fn len(&self) -> usize {
        self.state
            .read()
            .expect("route cache poisoned")
            .tables
            .len()
    }

    /// Whether the cache holds no tables yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fraction of lookups served from the cache, in `[0, 1]` (0.0 before
    /// the first lookup).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits();
        let total = hits + self.misses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Drops every cached table and resets the hit/miss/evict counters.
    pub fn clear(&self) {
        let mut state = self.state.write().expect("route cache poisoned");
        state.tables.clear();
        state.stamp = 0;
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.high_water.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cas::{Cas, CasControl};
    use crate::geometry::CasGeometry;
    use crate::instruction::CasInstruction;

    fn chain(geoms: &[(usize, usize)]) -> CasChain {
        let cases = geoms
            .iter()
            .map(|&(n, p)| Cas::for_geometry(CasGeometry::new(n, p).unwrap()).unwrap())
            .collect();
        CasChain::new(cases).unwrap()
    }

    /// Drives both the interpreter and the compiled table over a sweep of
    /// stimuli and checks bit-identical outputs.
    fn assert_equivalent(mut ch: CasChain, samples: usize) {
        let routes = RouteTable::compile(&ch);
        let n = ch.bus_width();
        let widths: Vec<usize> = ch
            .cases()
            .iter()
            .map(|c| c.geometry().switched_wires())
            .collect();
        let mut stamp = 0x1357_9bdf_2468_aceeu64;
        for round in 0..samples {
            stamp = stamp.rotate_left(13).wrapping_mul(0x2545_f491_4f6c_dd1d);
            let bus_in = BitVec::from_u64(stamp, n.min(64));
            let core_outs: Vec<BitVec> = widths
                .iter()
                .enumerate()
                .map(|(i, &p)| BitVec::from_u64(stamp >> (i * 7 + round % 5), p.min(64)))
                .collect();
            let interpreted = ch.clock(&bus_in, &core_outs, CasControl::run()).unwrap();
            let compiled = routes.apply(&bus_in, &core_outs).unwrap();
            assert_eq!(compiled, interpreted, "round {round}");
        }
    }

    #[test]
    fn all_bypass_routes_bus_straight_through() {
        let ch = chain(&[(4, 2), (4, 1)]);
        let routes = RouteTable::compile(&ch);
        for w in 0..4 {
            assert_eq!(routes.wire_source(w), WireSource::Bus(w));
        }
        assert!(routes.test_cas_indices().is_empty());
        assert!(routes.all_independent());
        assert_equivalent(ch, 8);
    }

    #[test]
    fn disjoint_test_cases_compile_independent_lanes() {
        let mut ch = chain(&[(4, 2), (4, 1)]);
        let i0 = ch.cases()[0].schemes().index_of(&[0, 1]).unwrap();
        let i1 = ch.cases()[1].schemes().index_of(&[3]).unwrap();
        ch.configure(&[CasInstruction::Test(i0), CasInstruction::Test(i1)])
            .unwrap();
        let routes = RouteTable::compile(&ch);
        assert_eq!(routes.wire_source(0), WireSource::Core { cas: 0, port: 0 });
        assert_eq!(routes.wire_source(1), WireSource::Core { cas: 0, port: 1 });
        assert_eq!(routes.wire_source(2), WireSource::Bus(2));
        assert_eq!(routes.wire_source(3), WireSource::Core { cas: 1, port: 0 });
        assert_eq!(
            routes.taps(0).unwrap(),
            &[WireSource::Bus(0), WireSource::Bus(1)]
        );
        assert_eq!(routes.scheme_wires(1).unwrap(), &[3]);
        assert_eq!(routes.test_cas_indices(), vec![0, 1]);
        assert!(routes.all_independent());
        assert_equivalent(ch, 16);
    }

    #[test]
    fn serial_wire_sharing_resolves_to_upstream_core() {
        let mut ch = chain(&[(2, 1), (2, 1)]);
        let i = ch.cases()[0].schemes().index_of(&[1]).unwrap();
        ch.configure(&[CasInstruction::Test(i), CasInstruction::Test(i)])
            .unwrap();
        let routes = RouteTable::compile(&ch);
        // Downstream CAS 1 taps CAS 0's injection, not the bus input.
        assert_eq!(routes.taps(0).unwrap(), &[WireSource::Bus(1)]);
        assert_eq!(
            routes.taps(1).unwrap(),
            &[WireSource::Core { cas: 0, port: 0 }]
        );
        assert_eq!(routes.wire_source(1), WireSource::Core { cas: 1, port: 0 });
        assert!(!routes.is_independent(0), "overwritten downstream");
        assert!(!routes.is_independent(1), "taps a core, not the bus");
        assert!(!routes.all_independent());
        assert_equivalent(ch, 16);
    }

    #[test]
    fn heterogeneous_figure1_like_chain_is_equivalent() {
        // Mixed P values with a bypassed CAS in the middle.
        let mut ch = chain(&[(6, 2), (6, 1), (6, 3)]);
        let i0 = ch.cases()[0].schemes().index_of(&[0, 1]).unwrap();
        let i2 = ch.cases()[2].schemes().index_of(&[3, 4, 5]).unwrap();
        ch.configure(&[
            CasInstruction::Test(i0),
            CasInstruction::Bypass,
            CasInstruction::Test(i2),
        ])
        .unwrap();
        let routes = RouteTable::compile(&ch);
        assert_eq!(routes.taps(1), None);
        assert_eq!(routes.scheme_wires(1), None);
        assert!(routes.all_independent());
        assert_equivalent(ch, 32);
    }

    #[test]
    fn apply_validates_widths_like_the_interpreter() {
        let ch = chain(&[(4, 2)]);
        let routes = RouteTable::compile(&ch);
        assert!(matches!(
            routes.apply(&BitVec::zeros(3), &[BitVec::zeros(2)]),
            Err(CasError::BadGeometry { .. })
        ));
        assert!(matches!(
            routes.apply(&BitVec::zeros(4), &[BitVec::zeros(1)]),
            Err(CasError::BadGeometry { .. })
        ));
        assert!(matches!(
            routes.apply(&BitVec::zeros(4), &[]),
            Err(CasError::ConfigurationLengthMismatch { .. })
        ));
    }

    #[test]
    fn cache_shares_tables_across_identical_wave_shapes() {
        let cache = RouteTableCache::new();
        let mut ch = chain(&[(4, 2), (4, 1)]);
        let i0 = ch.cases()[0].schemes().index_of(&[0, 1]).unwrap();
        let i1 = ch.cases()[1].schemes().index_of(&[3]).unwrap();
        ch.configure(&[CasInstruction::Test(i0), CasInstruction::Test(i1)])
            .unwrap();
        let a = cache.get_or_compile(&ch);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 1, 1));

        // A different wave shape compiles its own table…
        ch.configure(&[CasInstruction::Bypass, CasInstruction::Test(i1)])
            .unwrap();
        let b = cache.get_or_compile(&ch);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 2, 2));
        assert_ne!(*a, *b);

        // …and reconfiguring back to the first shape is a pure hit.
        ch.configure(&[CasInstruction::Test(i0), CasInstruction::Test(i1)])
            .unwrap();
        let c = cache.get_or_compile(&ch);
        assert!(Arc::ptr_eq(&a, &c));
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 2, 2));
        assert!((cache.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(*c, RouteTable::compile(&ch), "cached table is the table");

        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        assert_eq!(cache.hit_rate(), 0.0);
    }

    #[test]
    fn bounded_cache_caps_len_and_evicts_least_recently_used() {
        // Four distinct wave shapes on a 2-CAS chain.
        let mut ch = chain(&[(4, 1), (4, 1)]);
        let shapes: [[CasInstruction; 2]; 4] = [
            [CasInstruction::Test(0), CasInstruction::Bypass],
            [CasInstruction::Bypass, CasInstruction::Test(0)],
            [CasInstruction::Test(1), CasInstruction::Bypass],
            [CasInstruction::Bypass, CasInstruction::Test(1)],
        ];
        let cache = RouteTableCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);

        // Fill to capacity: shapes 0 and 1.
        for shape in &shapes[..2] {
            ch.configure(shape).unwrap();
            cache.get_or_compile(&ch);
        }
        assert_eq!((cache.len(), cache.evictions()), (2, 0));

        // Touch shape 0 so shape 1 becomes the LRU entry, then insert
        // shape 2: the cap holds and exactly one table is evicted.
        ch.configure(&shapes[0]).unwrap();
        cache.get_or_compile(&ch);
        ch.configure(&shapes[2]).unwrap();
        cache.get_or_compile(&ch);
        assert_eq!((cache.len(), cache.evictions()), (2, 1));

        // Shape 0 was kept warm: looking it up again is a hit, not a
        // recompile; shape 1 was the eviction victim and must miss.
        let misses = cache.misses();
        ch.configure(&shapes[0]).unwrap();
        cache.get_or_compile(&ch);
        assert_eq!(cache.misses(), misses, "warm shape survived the cap");
        ch.configure(&shapes[1]).unwrap();
        cache.get_or_compile(&ch);
        assert_eq!(cache.misses(), misses + 1, "LRU shape was evicted");

        // The cap is an invariant, not a high-water mark.
        for _ in 0..3 {
            for shape in &shapes {
                ch.configure(shape).unwrap();
                cache.get_or_compile(&ch);
            }
            assert!(cache.len() <= cache.capacity());
        }
        assert!(cache.evictions() > 1);
        // The budget accounting sees the cap was fully used…
        assert_eq!(cache.high_water(), 2);
        let stats = cache.stats();
        assert_eq!(stats.capacity, 2);
        assert_eq!(stats.high_water, 2);
        assert_eq!(stats.evictions, cache.evictions());
        assert_eq!(stats.len, cache.len());

        cache.clear();
        assert_eq!((cache.len(), cache.evictions()), (0, 0));
        assert_eq!(cache.high_water(), 0, "clear resets the high-water mark");

        // Capacity 0 is clamped so the cache stays usable.
        assert_eq!(RouteTableCache::with_capacity(0).capacity(), 1);
        // The default cache never evicts.
        assert_eq!(RouteTableCache::new().capacity(), usize::MAX);
    }

    #[test]
    fn wave_key_captures_exactly_the_routing_inputs() {
        let mut ch = chain(&[(3, 1), (3, 1)]);
        let bypass = WaveKey::for_chain(&ch);
        assert_eq!(bypass.bus_width(), 3);
        assert_eq!(bypass.cas_count(), 2);
        ch.configure(&[CasInstruction::Test(0), CasInstruction::Bypass])
            .unwrap();
        let test = WaveKey::for_chain(&ch);
        assert_ne!(bypass, test, "mode change changes the key");
        // Same configuration loaded again: identical key.
        ch.configure(&[CasInstruction::Test(0), CasInstruction::Bypass])
            .unwrap();
        assert_eq!(test, WaveKey::for_chain(&ch));
    }

    #[test]
    fn reconfiguration_invalidates_nothing_silently() {
        // A table compiled before a wave keeps describing the old wave;
        // recompiling after the wave reflects the new routing.
        let mut ch = chain(&[(3, 1), (3, 1)]);
        ch.configure(&[CasInstruction::Test(0), CasInstruction::Bypass])
            .unwrap();
        let before = RouteTable::compile(&ch);
        ch.configure(&[CasInstruction::Bypass, CasInstruction::Test(2)])
            .unwrap();
        let after = RouteTable::compile(&ch);
        assert_ne!(before, after);
        assert_eq!(before.test_cas_indices(), vec![0]);
        assert_eq!(after.test_cas_indices(), vec![1]);
        assert_equivalent(ch, 8);
    }
}
