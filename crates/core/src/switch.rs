//! Switch schemes: the TEST-mode wire assignments of a CAS.

use std::fmt;

use crate::error::CasError;
use crate::geometry::CasGeometry;

/// Enumerating more schemes than this is refused — the instruction register
/// would be impractical anyway (the paper's largest CAS has 1 680 schemes).
pub const ENUMERATION_BUDGET: u128 = 1 << 20;

/// One TEST switch scheme: an ordered injective assignment of the `P` core
/// port pairs onto bus wires.
///
/// `wires()[j] = i` means bus input `e_i` is switched to core output `o_j`
/// and — by the paper's heuristic — core input `i_j` is switched back to bus
/// output `s_i`. The `N − P` unassigned wires bypass the CAS.
///
/// # Examples
///
/// ```
/// use casbus::{CasGeometry, SwitchScheme};
///
/// let g = CasGeometry::new(4, 2)?;
/// let s = SwitchScheme::new(g, vec![2, 0])?;
/// assert_eq!(s.wire_for_port(0), 2);
/// assert_eq!(s.port_for_wire(0), Some(1));
/// assert_eq!(s.port_for_wire(3), None); // wire 3 bypasses
/// # Ok::<(), casbus::CasError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SwitchScheme {
    geometry: CasGeometry,
    /// `wires[j]` = bus wire assigned to core port `j`.
    wires: Vec<usize>,
}

impl SwitchScheme {
    /// Builds a scheme from an explicit port→wire assignment.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::InvalidScheme`] if the assignment length differs
    /// from `P`, uses a wire ≥ `N`, or assigns one wire twice.
    pub fn new(geometry: CasGeometry, wires: Vec<usize>) -> Result<Self, CasError> {
        if wires.len() != geometry.switched_wires() {
            return Err(CasError::InvalidScheme(format!(
                "expected {} port assignments, got {}",
                geometry.switched_wires(),
                wires.len()
            )));
        }
        let mut seen = vec![false; geometry.bus_width()];
        for &wire in &wires {
            if wire >= geometry.bus_width() {
                return Err(CasError::InvalidScheme(format!(
                    "wire {wire} out of range for N={}",
                    geometry.bus_width()
                )));
            }
            if seen[wire] {
                return Err(CasError::InvalidScheme(format!(
                    "wire {wire} assigned twice"
                )));
            }
            seen[wire] = true;
        }
        Ok(Self { geometry, wires })
    }

    /// The identity scheme: port `j` on wire `j` (the natural power-on TEST
    /// scheme).
    pub fn identity(geometry: CasGeometry) -> Self {
        let wires = (0..geometry.switched_wires()).collect();
        Self { geometry, wires }
    }

    /// The contiguous scheme starting at `start`: port `j` on wire
    /// `start + j`.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::InvalidScheme`] when the window `start..start+P`
    /// leaves the bus.
    pub fn contiguous(geometry: CasGeometry, start: usize) -> Result<Self, CasError> {
        let wires: Vec<usize> = (start..start + geometry.switched_wires()).collect();
        Self::new(geometry, wires)
    }

    /// The geometry this scheme belongs to.
    pub fn geometry(&self) -> CasGeometry {
        self.geometry
    }

    /// The port→wire assignment.
    pub fn wires(&self) -> &[usize] {
        &self.wires
    }

    /// Bus wire assigned to core port `j`.
    ///
    /// # Panics
    ///
    /// Panics if `port ≥ P`.
    pub fn wire_for_port(&self, port: usize) -> usize {
        self.wires[port]
    }

    /// Core port assigned to bus wire `i`, or `None` when the wire bypasses.
    pub fn port_for_wire(&self, wire: usize) -> Option<usize> {
        self.wires.iter().position(|&w| w == wire)
    }

    /// Bus wires that bypass the CAS under this scheme, ascending.
    pub fn bypassed_wires(&self) -> Vec<usize> {
        (0..self.geometry.bus_width())
            .filter(|w| self.port_for_wire(*w).is_none())
            .collect()
    }

    /// Builds the scheme of lexicographic `rank` directly, without
    /// enumerating the whole set — the inverse of [`SwitchScheme::rank`].
    /// This is how a test programmer computes instruction opcodes for bus
    /// widths whose full scheme table would not fit in memory.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::SchemeIndexOutOfRange`] when
    /// `rank ≥ N!/(N−P)!`.
    ///
    /// # Examples
    ///
    /// ```
    /// use casbus::{CasGeometry, SwitchScheme};
    ///
    /// let g = CasGeometry::new(4, 2)?;
    /// let s = SwitchScheme::from_rank(g, 11)?;
    /// assert_eq!(s.wires(), &[3, 2]);
    /// assert_eq!(s.rank(), 11);
    /// # Ok::<(), casbus::CasError>(())
    /// ```
    pub fn from_rank(geometry: CasGeometry, rank: usize) -> Result<Self, CasError> {
        let total = geometry.test_scheme_count();
        if rank as u128 >= total {
            return Err(CasError::SchemeIndexOutOfRange {
                index: rank,
                available: total.min(usize::MAX as u128) as usize,
            });
        }
        let n = geometry.bus_width();
        let p = geometry.switched_wires();
        let mut radices = vec![1u128; p];
        for j in (0..p.saturating_sub(1)).rev() {
            radices[j] = radices[j + 1] * (n - (j + 1)) as u128;
        }
        let mut remaining = rank as u128;
        let mut available: Vec<usize> = (0..n).collect();
        let mut wires = Vec::with_capacity(p);
        for radix in radices {
            let choice = (remaining / radix) as usize;
            remaining %= radix;
            wires.push(available.remove(choice));
        }
        Ok(Self { geometry, wires })
    }

    /// The lexicographic rank of this scheme within its geometry's full
    /// enumeration — the inverse of [`SchemeSet::scheme`].
    pub fn rank(&self) -> usize {
        let n = self.geometry.bus_width();
        let p = self.wires.len();
        // Mixed-radix ranking over shrinking choice sets: at step j there
        // are n−j candidate wires, so the weight of step j is
        // (n−j−1)·(n−j−2)⋯(n−p+1).
        let mut radices = vec![1usize; p];
        for j in (0..p.saturating_sub(1)).rev() {
            radices[j] = radices[j + 1] * (n - (j + 1));
        }
        let mut available: Vec<usize> = (0..n).collect();
        let mut rank = 0usize;
        for (j, &wire) in self.wires.iter().enumerate() {
            let pos = available
                .iter()
                .position(|&w| w == wire)
                .expect("wire available");
            rank += pos * radices[j];
            available.remove(pos);
        }
        rank
    }
}

impl fmt::Display for SwitchScheme {
    /// Formats as `e2->o0, e0->o1 (bypass: 1,3)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (j, &wire) in self.wires.iter().enumerate() {
            if j > 0 {
                f.write_str(", ")?;
            }
            write!(f, "e{wire}->o{j}")?;
        }
        let bypassed = self.bypassed_wires();
        if !bypassed.is_empty() {
            let list: Vec<String> = bypassed.iter().map(ToString::to_string).collect();
            write!(f, " (bypass: {})", list.join(","))?;
        }
        Ok(())
    }
}

/// The complete, lexicographically-ordered set of TEST schemes for one
/// geometry — the instruction set a generated CAS decodes.
///
/// # Examples
///
/// ```
/// use casbus::{CasGeometry, SchemeSet};
///
/// let set = SchemeSet::enumerate(CasGeometry::new(4, 2)?)?;
/// assert_eq!(set.len(), 12); // 4·3 ordered pairs
/// assert_eq!(set.scheme(0)?.wires(), &[0, 1]);
/// assert_eq!(set.scheme(11)?.wires(), &[3, 2]);
/// # Ok::<(), casbus::CasError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeSet {
    geometry: CasGeometry,
    schemes: Vec<SwitchScheme>,
}

impl SchemeSet {
    /// Enumerates every TEST scheme of the geometry in lexicographic order.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::TooManySchemes`] when the count exceeds
    /// [`ENUMERATION_BUDGET`].
    pub fn enumerate(geometry: CasGeometry) -> Result<Self, CasError> {
        let count = geometry.test_scheme_count();
        if count > ENUMERATION_BUDGET {
            return Err(CasError::TooManySchemes {
                n: geometry.bus_width(),
                p: geometry.switched_wires(),
                count,
            });
        }
        let mut schemes = Vec::with_capacity(count as usize);
        let mut current = Vec::with_capacity(geometry.switched_wires());
        let mut used = vec![false; geometry.bus_width()];
        enumerate_rec(geometry, &mut current, &mut used, &mut schemes);
        Ok(Self { geometry, schemes })
    }

    /// The geometry.
    pub fn geometry(&self) -> CasGeometry {
        self.geometry
    }

    /// Number of TEST schemes (`m − 2`).
    pub fn len(&self) -> usize {
        self.schemes.len()
    }

    /// Whether the set is empty (never, for a valid geometry).
    pub fn is_empty(&self) -> bool {
        self.schemes.is_empty()
    }

    /// The scheme at lexicographic `index`.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::SchemeIndexOutOfRange`] when `index ≥ len()`.
    pub fn scheme(&self, index: usize) -> Result<&SwitchScheme, CasError> {
        self.schemes
            .get(index)
            .ok_or(CasError::SchemeIndexOutOfRange {
                index,
                available: self.schemes.len(),
            })
    }

    /// Finds the index of a scheme with the given wire assignment.
    pub fn index_of(&self, wires: &[usize]) -> Option<usize> {
        self.schemes.iter().position(|s| s.wires() == wires)
    }

    /// Iterates over the schemes in lexicographic order.
    pub fn iter(&self) -> std::slice::Iter<'_, SwitchScheme> {
        self.schemes.iter()
    }
}

impl<'a> IntoIterator for &'a SchemeSet {
    type Item = &'a SwitchScheme;
    type IntoIter = std::slice::Iter<'a, SwitchScheme>;

    fn into_iter(self) -> Self::IntoIter {
        self.schemes.iter()
    }
}

fn enumerate_rec(
    geometry: CasGeometry,
    current: &mut Vec<usize>,
    used: &mut [bool],
    out: &mut Vec<SwitchScheme>,
) {
    if current.len() == geometry.switched_wires() {
        out.push(SwitchScheme {
            geometry,
            wires: current.clone(),
        });
        return;
    }
    for wire in 0..geometry.bus_width() {
        if !used[wire] {
            used[wire] = true;
            current.push(wire);
            enumerate_rec(geometry, current, used, out);
            current.pop();
            used[wire] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(n: usize, p: usize) -> CasGeometry {
        CasGeometry::new(n, p).unwrap()
    }

    #[test]
    fn enumeration_count_matches_formula() {
        for (n, p) in [(3, 1), (4, 2), (4, 3), (5, 3), (6, 3), (8, 4)] {
            let geometry = g(n, p);
            let set = SchemeSet::enumerate(geometry).unwrap();
            assert_eq!(
                set.len() as u128,
                geometry.test_scheme_count(),
                "N={n}, P={p}"
            );
        }
    }

    #[test]
    fn enumeration_is_lexicographic_and_distinct() {
        let set = SchemeSet::enumerate(g(4, 2)).unwrap();
        let wires: Vec<&[usize]> = set.iter().map(SwitchScheme::wires).collect();
        let mut sorted = wires.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(wires, sorted, "lexicographic order, no duplicates");
    }

    #[test]
    fn all_schemes_injective() {
        let set = SchemeSet::enumerate(g(5, 3)).unwrap();
        for scheme in &set {
            let mut seen = std::collections::HashSet::new();
            for &w in scheme.wires() {
                assert!(w < 5);
                assert!(seen.insert(w), "duplicate wire in {scheme}");
            }
        }
    }

    #[test]
    fn budget_enforced() {
        let err = SchemeSet::enumerate(g(20, 10)).unwrap_err();
        assert!(matches!(err, CasError::TooManySchemes { .. }));
    }

    #[test]
    fn scheme_accessors() {
        let s = SwitchScheme::new(g(4, 2), vec![2, 0]).unwrap();
        assert_eq!(s.wire_for_port(1), 0);
        assert_eq!(s.port_for_wire(2), Some(0));
        assert_eq!(s.bypassed_wires(), vec![1, 3]);
    }

    #[test]
    fn invalid_schemes_rejected() {
        assert!(SwitchScheme::new(g(4, 2), vec![0]).is_err());
        assert!(SwitchScheme::new(g(4, 2), vec![0, 4]).is_err());
        assert!(SwitchScheme::new(g(4, 2), vec![1, 1]).is_err());
    }

    #[test]
    fn identity_and_contiguous() {
        let id = SwitchScheme::identity(g(5, 3));
        assert_eq!(id.wires(), &[0, 1, 2]);
        let c = SwitchScheme::contiguous(g(5, 3), 2).unwrap();
        assert_eq!(c.wires(), &[2, 3, 4]);
        assert!(SwitchScheme::contiguous(g(5, 3), 3).is_err());
    }

    #[test]
    fn rank_inverts_enumeration() {
        let set = SchemeSet::enumerate(g(5, 3)).unwrap();
        for (i, scheme) in set.iter().enumerate() {
            assert_eq!(scheme.rank(), i, "scheme {scheme}");
        }
    }

    #[test]
    fn from_rank_matches_enumeration() {
        for (n, p) in [(4usize, 2usize), (5, 3), (6, 1), (3, 3)] {
            let geometry = g(n, p);
            let set = SchemeSet::enumerate(geometry).unwrap();
            for (i, scheme) in set.iter().enumerate() {
                assert_eq!(
                    SwitchScheme::from_rank(geometry, i).unwrap().wires(),
                    scheme.wires(),
                    "N={n} P={p} rank {i}"
                );
            }
        }
    }

    #[test]
    fn from_rank_out_of_range_rejected() {
        let geometry = g(4, 2);
        assert!(SwitchScheme::from_rank(geometry, 12).is_err());
        assert!(SwitchScheme::from_rank(geometry, 11).is_ok());
    }

    #[test]
    fn from_rank_works_beyond_the_enumeration_budget() {
        // N = 24, P = 8: ~1.7e10 schemes — enumeration is impossible, but
        // unranking is O(N·P).
        let geometry = g(24, 8);
        assert!(SchemeSet::enumerate(geometry).is_err());
        let scheme = SwitchScheme::from_rank(geometry, 123_456_789).unwrap();
        assert_eq!(scheme.rank(), 123_456_789);
        let mut seen = std::collections::HashSet::new();
        for &w in scheme.wires() {
            assert!(w < 24);
            assert!(seen.insert(w), "injective");
        }
    }

    #[test]
    fn index_of_finds_schemes() {
        let set = SchemeSet::enumerate(g(4, 2)).unwrap();
        assert_eq!(set.index_of(&[0, 1]), Some(0));
        assert_eq!(set.index_of(&[3, 2]), Some(11));
        assert_eq!(set.index_of(&[0, 0]), None);
    }

    #[test]
    fn full_permutation_geometry() {
        let set = SchemeSet::enumerate(g(3, 3)).unwrap();
        assert_eq!(set.len(), 6);
        for scheme in &set {
            assert!(scheme.bypassed_wires().is_empty());
        }
    }

    #[test]
    fn display_shows_assignments() {
        let s = SwitchScheme::new(g(4, 2), vec![2, 0]).unwrap();
        assert_eq!(s.to_string(), "e2->o0, e0->o1 (bypass: 1,3)");
    }

    #[test]
    fn scheme_error_on_bad_index() {
        let set = SchemeSet::enumerate(g(3, 1)).unwrap();
        assert_eq!(
            set.scheme(3).unwrap_err(),
            CasError::SchemeIndexOutOfRange {
                index: 3,
                available: 3
            }
        );
    }
}
