//! The assembled Test Access Mechanism for a whole SoC.

use std::fmt;

use casbus_soc::SocDescription;
use casbus_tpg::BitVec;

use crate::cas::{Cas, CasControl};
use crate::chain::{CasChain, ChainOutput};
use crate::error::CasError;
use crate::geometry::CasGeometry;
use crate::instruction::CasInstruction;
use crate::switch::SwitchScheme;

/// One TAM configuration: an instruction per CAS, chain order. The paper's
/// "different TAM architectures can be addressed, in sequential order,
/// within the same test program" is a sequence of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TamConfiguration {
    instructions: Vec<CasInstruction>,
}

impl TamConfiguration {
    /// A configuration from explicit per-CAS instructions.
    pub fn new(instructions: Vec<CasInstruction>) -> Self {
        Self { instructions }
    }

    /// The all-BYPASS configuration for `cas_count` CASes.
    pub fn all_bypass(cas_count: usize) -> Self {
        Self {
            instructions: vec![CasInstruction::Bypass; cas_count],
        }
    }

    /// The per-CAS instructions.
    pub fn instructions(&self) -> &[CasInstruction] {
        &self.instructions
    }

    /// Replaces the instruction of one CAS.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::UnknownCas`] for an out-of-range index.
    pub fn set(&mut self, cas_index: usize, instruction: CasInstruction) -> Result<(), CasError> {
        let slot = self
            .instructions
            .get_mut(cas_index)
            .ok_or(CasError::UnknownCas(cas_index))?;
        *slot = instruction;
        Ok(())
    }

    /// CASes with an active TEST instruction.
    pub fn cores_under_test(&self) -> Vec<usize> {
        self.instructions
            .iter()
            .enumerate()
            .filter(|(_, i)| i.is_test())
            .map(|(idx, _)| idx)
            .collect()
    }
}

impl fmt::Display for TamConfiguration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, instr) in self.instructions.iter().enumerate() {
            if i > 0 {
                f.write_str(" | ")?;
            }
            write!(f, "CAS{i}:{instr}")?;
        }
        Ok(())
    }
}

/// The complete CAS-BUS TAM for one SoC: a [`CasChain`] with one CAS per
/// wrapped core (plus one for the wrapped system bus, paper Fig. 1), each
/// sized `N/P_i` from the SoC description.
///
/// # Examples
///
/// ```
/// use casbus::{Tam, TamConfiguration, CasInstruction};
/// use casbus_soc::catalog;
///
/// let soc = catalog::figure1_soc();
/// let mut tam = Tam::new(&soc, 4)?;
/// assert_eq!(tam.cas_count(), 7); // 6 cores + wrapped system bus
///
/// // Put core 0 under test on wires 0..4, everyone else in bypass.
/// let mut config = TamConfiguration::all_bypass(tam.cas_count());
/// config.set(0, tam.contiguous_test(0, 0)?)?;
/// tam.configure(&config)?;
/// # Ok::<(), casbus::CasError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Tam {
    chain: CasChain,
    labels: Vec<String>,
    soc_name: String,
}

impl Tam {
    /// Builds the TAM for `soc` over an `n`-wire test bus.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::BusTooNarrow`] when any core needs more wires
    /// than `n`, [`CasError::BadGeometry`] for `n = 0`, or
    /// [`CasError::TooManySchemes`] when an `(n, P)` pair is beyond the
    /// enumeration budget.
    pub fn new(soc: &SocDescription, n: usize) -> Result<Self, CasError> {
        let mut cases = Vec::new();
        let mut labels = Vec::new();
        for core in soc.cores() {
            let p = core.required_ports();
            if p > n {
                return Err(CasError::BusTooNarrow {
                    core: core.name().to_owned(),
                    needed: p,
                    n,
                });
            }
            cases.push(Cas::for_geometry(CasGeometry::new(n, p)?)?);
            labels.push(core.name().to_owned());
        }
        if soc.system_bus().is_some_and(|b| b.wrapped) {
            // The wrapped system bus is EXTEST-ed serially through its
            // wrapper: one wire.
            cases.push(Cas::for_geometry(CasGeometry::new(n, 1)?)?);
            labels.push("system_bus".to_owned());
        }
        Ok(Self {
            chain: CasChain::new(cases)?,
            labels,
            soc_name: soc.name().to_owned(),
        })
    }

    /// The SoC this TAM serves.
    pub fn soc_name(&self) -> &str {
        &self.soc_name
    }

    /// Test bus width `N`.
    pub fn bus_width(&self) -> usize {
        self.chain.bus_width()
    }

    /// Number of CASes (cores + wrapped system bus).
    pub fn cas_count(&self) -> usize {
        self.chain.len()
    }

    /// The underlying chain.
    pub fn chain(&self) -> &CasChain {
        &self.chain
    }

    /// Mutable access to the underlying chain.
    pub fn chain_mut(&mut self) -> &mut CasChain {
        &mut self.chain
    }

    /// Label (core name or `"system_bus"`) of a CAS.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::UnknownCas`] for an out-of-range index.
    pub fn label(&self, cas_index: usize) -> Result<&str, CasError> {
        self.labels
            .get(cas_index)
            .map(String::as_str)
            .ok_or(CasError::UnknownCas(cas_index))
    }

    /// CAS index serving the named core.
    pub fn cas_for_core(&self, name: &str) -> Option<usize> {
        self.labels.iter().position(|l| l == name)
    }

    /// Builds the TEST instruction placing CAS `cas_index`'s ports on the
    /// contiguous wires `start .. start + P`.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::UnknownCas`] or [`CasError::InvalidScheme`] when
    /// the window does not fit.
    pub fn contiguous_test(
        &self,
        cas_index: usize,
        start: usize,
    ) -> Result<CasInstruction, CasError> {
        let cas = self
            .chain
            .cases()
            .get(cas_index)
            .ok_or(CasError::UnknownCas(cas_index))?;
        let scheme = SwitchScheme::contiguous(cas.geometry(), start)?;
        CasInstruction::test_scheme(cas.schemes(), &scheme)
    }

    /// Builds a TEST instruction from an explicit port→wire assignment.
    ///
    /// # Errors
    ///
    /// Same as [`Tam::contiguous_test`], plus scheme validation errors.
    pub fn explicit_test(
        &self,
        cas_index: usize,
        wires: Vec<usize>,
    ) -> Result<CasInstruction, CasError> {
        let cas = self
            .chain
            .cases()
            .get(cas_index)
            .ok_or(CasError::UnknownCas(cas_index))?;
        let scheme = SwitchScheme::new(cas.geometry(), wires)?;
        CasInstruction::test_scheme(cas.schemes(), &scheme)
    }

    /// Checks that the TEST instructions of a configuration claim disjoint
    /// wires. Sharing a wire puts cores *in series* — a legal and useful
    /// CAS-BUS idiom for concatenating scan paths — so [`Tam::configure`]
    /// allows it; schedulers that intend exclusive windows call this first.
    ///
    /// # Errors
    ///
    /// Returns [`CasError::WireConflict`] naming the first contested wire,
    /// or propagates scheme-index errors.
    pub fn check_exclusive(&self, config: &TamConfiguration) -> Result<(), CasError> {
        let n = self.bus_width();
        let mut claimed: Vec<Option<usize>> = vec![None; n];
        for (cas_index, instr) in config.instructions().iter().enumerate() {
            let CasInstruction::Test(scheme_idx) = instr else {
                continue;
            };
            let cas = self
                .chain
                .cases()
                .get(cas_index)
                .ok_or(CasError::UnknownCas(cas_index))?;
            let scheme = cas.schemes().scheme(*scheme_idx)?;
            for &wire in scheme.wires() {
                match claimed[wire] {
                    None => claimed[wire] = Some(cas_index),
                    Some(first_cas) => {
                        return Err(CasError::WireConflict {
                            wire,
                            first_cas,
                            second_cas: cas_index,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Applies a configuration through the serial protocol (the paper's
    /// CONFIGURATION phase), costing
    /// [`configuration_clocks`](Tam::configuration_clocks)` + 1` clocks.
    ///
    /// # Errors
    ///
    /// Propagates [`CasChain::configure`] errors.
    pub fn configure(&mut self, config: &TamConfiguration) -> Result<(), CasError> {
        self.chain.configure(config.instructions())
    }

    /// Clocks the configured TAM once with test data.
    ///
    /// # Errors
    ///
    /// Propagates width mismatches.
    pub fn clock(
        &mut self,
        bus_in: &BitVec,
        core_outs: &[BitVec],
        ctrl: CasControl,
    ) -> Result<ChainOutput, CasError> {
        self.chain.clock(bus_in, core_outs, ctrl)
    }

    /// Clocks shifting all-zero core outputs (convenience for transport-only
    /// experiments).
    ///
    /// # Errors
    ///
    /// Propagates width mismatches.
    pub fn clock_idle_cores(&mut self, bus_in: &BitVec) -> Result<ChainOutput, CasError> {
        let cores: Vec<BitVec> = self
            .chain
            .cases()
            .iter()
            .map(|c| BitVec::zeros(c.geometry().switched_wires()))
            .collect();
        self.chain.clock(bus_in, &cores, CasControl::run())
    }

    /// Clocks needed to serially load one full configuration (the sum of
    /// all instruction register widths). The paper notes this cost "does not
    /// affect the test time, since the SoC test architecture configuration
    /// will only occur once at the beginning of a SoC testing session".
    pub fn configuration_clocks(&self) -> usize {
        self.chain.config_chain_bits()
    }

    /// Resets every CAS to BYPASS.
    pub fn reset(&mut self) {
        self.chain.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casbus_soc::catalog;

    #[test]
    fn figure1_tam_shape() {
        let soc = catalog::figure1_soc();
        let tam = Tam::new(&soc, 4).unwrap();
        assert_eq!(tam.cas_count(), 7);
        assert_eq!(tam.bus_width(), 4);
        assert_eq!(tam.label(6).unwrap(), "system_bus");
        assert_eq!(tam.cas_for_core("core3_sram"), Some(2));
        assert!(tam.label(7).is_err());
    }

    #[test]
    fn too_narrow_bus_rejected() {
        let soc = catalog::figure1_soc(); // max P = 4
        let err = Tam::new(&soc, 3).unwrap_err();
        assert!(matches!(
            err,
            CasError::BusTooNarrow {
                needed: 4,
                n: 3,
                ..
            }
        ));
    }

    #[test]
    fn configure_and_query() {
        let soc = catalog::figure2a_scan_soc();
        let mut tam = Tam::new(&soc, 4).unwrap();
        let mut config = TamConfiguration::all_bypass(tam.cas_count());
        config.set(0, tam.contiguous_test(0, 0).unwrap()).unwrap();
        config.set(1, tam.contiguous_test(1, 2).unwrap()).unwrap();
        assert_eq!(config.cores_under_test(), vec![0, 1]);
        tam.configure(&config).unwrap();
        assert!(tam.chain().cases()[0].instruction().is_test());
        assert!(tam.chain().cases()[1].instruction().is_test());
    }

    #[test]
    fn contiguous_window_out_of_range() {
        let soc = catalog::figure2a_scan_soc();
        let tam = Tam::new(&soc, 4).unwrap();
        // Core 0 has P=3; start=2 ends at wire 4 which does not exist.
        assert!(tam.contiguous_test(0, 2).is_err());
        assert!(tam.contiguous_test(9, 0).is_err());
    }

    #[test]
    fn explicit_test_builds_scheme() {
        let soc = catalog::figure2a_scan_soc();
        let tam = Tam::new(&soc, 4).unwrap();
        let instr = tam.explicit_test(1, vec![3, 0]).unwrap();
        assert!(instr.is_test());
        assert!(tam.explicit_test(1, vec![3, 3]).is_err());
    }

    #[test]
    fn configuration_clock_budget() {
        let soc = catalog::figure2b_bist_soc();
        let tam = Tam::new(&soc, 3).unwrap();
        // Two (3,1) CASes: m = 5, k = 3 each.
        assert_eq!(tam.configuration_clocks(), 6);
    }

    #[test]
    fn bypass_transport_end_to_end() {
        let soc = catalog::figure2b_bist_soc();
        let mut tam = Tam::new(&soc, 3).unwrap();
        let out = tam.clock_idle_cores(&"101".parse().unwrap()).unwrap();
        assert_eq!(out.bus_out.to_string(), "101");
    }

    #[test]
    fn unwrapped_bus_gets_no_cas() {
        use casbus_soc::{CoreDescription, SocBuilder, SystemBusDescription, TestMethod};
        let soc = SocBuilder::new("x")
            .core(CoreDescription::new(
                "c",
                TestMethod::Bist {
                    width: 8,
                    patterns: 1,
                },
            ))
            .system_bus(SystemBusDescription::unwrapped(16))
            .build()
            .unwrap();
        let tam = Tam::new(&soc, 2).unwrap();
        assert_eq!(tam.cas_count(), 1);
    }

    #[test]
    fn reconfiguration_is_cheap_and_repeatable() {
        let soc = catalog::maintenance_soc();
        let mut tam = Tam::new(&soc, 3).unwrap();
        for session in 0..5 {
            let mut config = TamConfiguration::all_bypass(tam.cas_count());
            let target = session % tam.cas_count();
            config
                .set(target, tam.contiguous_test(target, 0).unwrap())
                .unwrap();
            tam.configure(&config).unwrap();
            assert!(tam.chain().cases()[target].instruction().is_test());
        }
    }

    #[test]
    fn exclusive_check_flags_overlap_and_allows_disjoint() {
        let soc = catalog::figure2a_scan_soc();
        let tam = Tam::new(&soc, 5).unwrap();
        // Disjoint: core 0 on wires 0..3, core 1 on wires 3..5.
        let mut ok = TamConfiguration::all_bypass(2);
        ok.set(0, tam.contiguous_test(0, 0).unwrap()).unwrap();
        ok.set(1, tam.contiguous_test(1, 3).unwrap()).unwrap();
        assert!(tam.check_exclusive(&ok).is_ok());
        // Overlapping at wire 2.
        let mut clash = TamConfiguration::all_bypass(2);
        clash.set(0, tam.contiguous_test(0, 0).unwrap()).unwrap();
        clash.set(1, tam.contiguous_test(1, 2).unwrap()).unwrap();
        assert_eq!(
            tam.check_exclusive(&clash),
            Err(CasError::WireConflict {
                wire: 2,
                first_cas: 0,
                second_cas: 1
            })
        );
        // Bypass everywhere never conflicts.
        assert!(tam
            .check_exclusive(&TamConfiguration::all_bypass(2))
            .is_ok());
    }

    #[test]
    fn display_configuration() {
        let config = TamConfiguration::new(vec![CasInstruction::Bypass, CasInstruction::Test(2)]);
        assert_eq!(config.to_string(), "CAS0:BYPASS | CAS1:TEST[2]");
    }
}
