//! Area accounting: gate counts and the paper's alternative CAS
//! implementations (§3.3).
//!
//! The paper reports synthesized gate counts (Table 1) and sketches two
//! "future work" implementations that shrink the CAS for wide busses: a
//! hand-optimized gate-level description and a pass-transistor fabric that
//! "solve\[s\] the CAS area problem for large width test busses". We model all
//! three as [`AreaModel`] variants so the trade-off benches can sweep them.

use casbus::CasGeometry;

use crate::netlist::Netlist;

/// Total area of a netlist in NAND2 gate equivalents.
///
/// # Examples
///
/// ```
/// use casbus_netlist::{Netlist, area};
///
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let y = nl.and2(a, b); // AND2 = 1.5 GE
/// nl.mark_output("y", y);
/// assert_eq!(area::gate_equivalents(&nl), 1.5);
/// ```
pub fn gate_equivalents(netlist: &Netlist) -> f64 {
    netlist
        .gates()
        .iter()
        .map(|g| g.kind.gate_equivalents())
        .sum()
}

/// The three CAS implementation styles whose areas the paper discusses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AreaModel {
    /// Count the gates of our structurally-synthesized netlist (the
    /// reproduction of the paper's Synopsys flow).
    Synthesized,
    /// Analytic estimate of a hand-optimized gate-level CAS (the paper's
    /// first future-work variant): decoder sharing collapses the per-scheme
    /// selects into per-(wire, port) terms.
    OptimizedGateLevel,
    /// Analytic estimate of the pass-transistor CAS (the paper's second
    /// future-work variant): an N×P crosspoint of transmission gates plus a
    /// compact decoder, counted in NAND2-equivalent area (one transmission
    /// gate ≈ 0.5 GE).
    PassTransistor,
}

impl AreaModel {
    /// All models, sweep order.
    pub const ALL: [AreaModel; 3] = [
        Self::Synthesized,
        Self::OptimizedGateLevel,
        Self::PassTransistor,
    ];

    /// Short label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            Self::Synthesized => "synthesized",
            Self::OptimizedGateLevel => "optimized-gate",
            Self::PassTransistor => "pass-transistor",
        }
    }

    /// Estimated CAS area in gate equivalents for a geometry.
    ///
    /// [`AreaModel::Synthesized`] requires the actual netlist — pass it via
    /// [`AreaModel::area`]; this method covers the two analytic variants.
    ///
    /// # Panics
    ///
    /// Panics when called on [`AreaModel::Synthesized`].
    pub fn estimate(self, geometry: CasGeometry) -> f64 {
        let n = geometry.bus_width() as f64;
        let p = geometry.switched_wires() as f64;
        let k = f64::from(geometry.instruction_width());
        let m = geometry.combination_count() as f64;
        match self {
            Self::Synthesized => {
                panic!("Synthesized area needs the netlist; use AreaModel::area")
            }
            Self::OptimizedGateLevel => {
                // Registers (2k DFFs), a log-depth decoder shared down to
                // per-(wire, port) selects (≈ m AND2 terms collapsed ~3:1 by
                // sharing), and the N/P mux fabric.
                2.0 * k * 7.0 + m / 3.0 * 1.5 + n * p * 3.0 + n * 3.0
            }
            Self::PassTransistor => {
                // 2·N·P transmission gates (forward + return paths) plus a
                // compact decoder of ~2^(k/2) AND terms and the registers.
                2.0 * k * 7.0 + 2.0 * n * p * 0.5 + (k / 2.0).exp2() * 1.5
            }
        }
    }

    /// Area of a geometry under this model, using `netlist` when the model
    /// needs it.
    pub fn area(self, geometry: CasGeometry, netlist: Option<&Netlist>) -> f64 {
        match self {
            Self::Synthesized => {
                let nl = netlist.expect("Synthesized area needs the netlist");
                gate_equivalents(nl)
            }
            _ => self.estimate(geometry),
        }
    }
}

/// A per-geometry area report row (what the Table-1 bench prints).
#[derive(Debug, Clone, PartialEq)]
pub struct AreaReport {
    /// The geometry.
    pub geometry: CasGeometry,
    /// Instruction count `m`.
    pub combinations: u128,
    /// Instruction register width `k`.
    pub instruction_width: u32,
    /// Gate instances in the synthesized netlist.
    pub gate_count: usize,
    /// NAND2-equivalent area of the synthesized netlist.
    pub gate_equivalents: f64,
}

impl AreaReport {
    /// Synthesizes the CAS for `geometry` and measures it.
    ///
    /// # Errors
    ///
    /// Propagates [`casbus::CasError`] from scheme enumeration.
    pub fn for_geometry(geometry: CasGeometry) -> Result<Self, casbus::CasError> {
        let set = casbus::SchemeSet::enumerate(geometry)?;
        let netlist = crate::synth::synthesize_cas(&set);
        Ok(Self {
            geometry,
            combinations: geometry.combination_count(),
            instruction_width: geometry.instruction_width(),
            gate_count: netlist.gate_count(),
            gate_equivalents: gate_equivalents(&netlist),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(n: usize, p: usize) -> CasGeometry {
        CasGeometry::new(n, p).unwrap()
    }

    #[test]
    fn report_reproduces_table1_m_k() {
        let rows = [(3, 1, 5, 3), (4, 2, 14, 4), (5, 3, 62, 6), (6, 3, 122, 7)];
        for (n, p, m, k) in rows {
            let report = AreaReport::for_geometry(g(n, p)).unwrap();
            assert_eq!(report.combinations, m);
            assert_eq!(report.instruction_width, k);
            assert!(report.gate_count > 0);
        }
    }

    #[test]
    fn synthesized_area_monotone_in_m_at_fixed_n() {
        let a = AreaReport::for_geometry(g(6, 1)).unwrap();
        let b = AreaReport::for_geometry(g(6, 2)).unwrap();
        let c = AreaReport::for_geometry(g(6, 3)).unwrap();
        assert!(a.gate_equivalents < b.gate_equivalents);
        assert!(b.gate_equivalents < c.gate_equivalents);
    }

    #[test]
    fn pass_transistor_beats_synthesis_on_wide_busses() {
        // The paper's claim: the pass-transistor fabric solves the area
        // problem for large-width busses.
        let geometry = g(8, 4);
        let report = AreaReport::for_geometry(geometry).unwrap();
        let pt = AreaModel::PassTransistor.estimate(geometry);
        assert!(
            pt < report.gate_equivalents / 5.0,
            "pass-transistor {pt} vs synthesized {}",
            report.gate_equivalents
        );
    }

    #[test]
    fn optimized_between_the_two() {
        let geometry = g(6, 5);
        let report = AreaReport::for_geometry(geometry).unwrap();
        let opt = AreaModel::OptimizedGateLevel.estimate(geometry);
        let pt = AreaModel::PassTransistor.estimate(geometry);
        assert!(pt < opt);
        assert!(opt < report.gate_equivalents);
    }

    #[test]
    fn area_dispatch() {
        let geometry = g(4, 2);
        let set = casbus::SchemeSet::enumerate(geometry).unwrap();
        let nl = crate::synth::synthesize_cas(&set);
        let synth_area = AreaModel::Synthesized.area(geometry, Some(&nl));
        assert_eq!(synth_area, gate_equivalents(&nl));
        let opt = AreaModel::OptimizedGateLevel.area(geometry, None);
        assert!(opt > 0.0);
    }

    #[test]
    #[should_panic(expected = "needs the netlist")]
    fn synthesized_estimate_panics() {
        let _ = AreaModel::Synthesized.estimate(g(4, 2));
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            AreaModel::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), 3);
    }
}
