//! Automatic test pattern generation for the generated CASes themselves.
//!
//! The TAM is test *infrastructure* — but silicon defects do not spare it,
//! so a production flow must also test the switches. This module implements
//! the classic pragmatic recipe: pseudo-random multi-cycle sequences graded
//! by fault simulation with **fault dropping** (a sequence is kept only when
//! it detects a still-undetected fault), followed by reverse-order
//! compaction.
//!
//! Grading runs on the bit-parallel engine ([`crate::sim_packed`]):
//! candidates are batched 64 per [`PackedEngine::grade_block`] call and the
//! per-lane detection masks are then replayed in candidate order, so fault
//! dropping, the stopping conditions and the kept set are all identical to
//! grading one candidate at a time.

use casbus_tpg::BitVec;

use crate::fault::{enumerate_faults, FaultSite};
use crate::netlist::{Netlist, NetlistError};
use crate::sim_packed::{PackedEngine, LANES};

/// The outcome of a pattern-generation run.
#[derive(Debug, Clone)]
pub struct AtpgResult {
    /// Kept test sequences, application order. Each sequence is a list of
    /// per-cycle primary-input vectors (declaration order).
    pub sequences: Vec<Vec<BitVec>>,
    /// Faults detected by the kept set.
    pub detected: usize,
    /// Total faults in the collapsed list.
    pub total: usize,
    /// Faults no candidate detected.
    pub undetected: Vec<FaultSite>,
    /// Candidates examined.
    pub candidates_tried: usize,
}

impl AtpgResult {
    /// Coverage in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.detected as f64 / self.total as f64
        }
    }

    /// Total test clocks the kept set costs.
    pub fn total_cycles(&self) -> usize {
        self.sequences.iter().map(Vec::len).sum()
    }
}

/// Configuration for [`generate_patterns`].
#[derive(Debug, Clone, Copy)]
pub struct AtpgConfig {
    /// Stop once this fraction of faults is detected.
    pub target_coverage: f64,
    /// Give up after this many candidate sequences.
    pub max_candidates: usize,
    /// Cycles per candidate sequence (sequential depth exercised).
    pub sequence_depth: usize,
    /// Seed for the candidate generator.
    pub seed: u64,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        Self {
            target_coverage: 0.95,
            max_candidates: 512,
            sequence_depth: 8,
            seed: 0x0DD5_EED5,
        }
    }
}

/// Generates a compact stuck-at test set for `netlist`.
///
/// Candidates are pseudo-random multi-cycle sequences; each is kept only if
/// it detects at least one still-undetected fault (fault dropping). A final
/// reverse-order compaction pass discards sequences whose detections are
/// covered by the rest.
///
/// Candidates are fault-graded 64 at a time on the packed PPSFP engine;
/// the result (kept sequences, coverage, candidates tried) is identical to
/// grading them one by one.
///
/// # Errors
///
/// Propagates netlist validation errors.
///
/// # Examples
///
/// ```
/// use casbus_netlist::{atpg, Netlist};
///
/// let mut nl = Netlist::new("xor");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let y = nl.xor2(a, b);
/// nl.mark_output("y", y);
/// let result = atpg::generate_patterns(&nl, &atpg::AtpgConfig::default())?;
/// assert_eq!(result.coverage(), 1.0);
/// # Ok::<(), casbus_netlist::NetlistError>(())
/// ```
pub fn generate_patterns(
    netlist: &Netlist,
    config: &AtpgConfig,
) -> Result<AtpgResult, NetlistError> {
    let engine = PackedEngine::new(netlist)?;
    Ok(generate_patterns_with_engine(&engine, config))
}

/// [`generate_patterns`] over a caller-supplied engine, so an instrumented
/// engine (see [`PackedEngine::with_trace`] and [`PackedEngine::with_metrics`])
/// observes every grading pass. Semantics are identical to
/// [`generate_patterns`] on the engine's netlist.
pub fn generate_patterns_with_engine(engine: &PackedEngine<'_>, config: &AtpgConfig) -> AtpgResult {
    let netlist = engine.netlist();
    let faults = enumerate_faults(netlist);
    let total = faults.len();
    let target_detected = (config.target_coverage * total as f64) as usize;
    let inputs = netlist.inputs().len();
    let mut undetected: Vec<FaultSite> = faults;
    let mut kept: Vec<(Vec<BitVec>, Vec<FaultSite>)> = Vec::new();
    let mut state = config.seed | 1;
    let mut next_bit = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 62 & 1 == 1
    };

    let mut tried = 0usize;
    while tried < config.max_candidates
        && (total - undetected.len()) < target_detected
        && !undetected.is_empty()
    {
        // Pre-generate one lane-block of candidates and grade them all in
        // a single packed pass. Candidate `i` only depends on the stream
        // position, so over-generating past a stopping point changes
        // nothing the serial loop would have observed.
        let batch_size = (config.max_candidates - tried).min(LANES);
        let batch: Vec<Vec<BitVec>> = (0..batch_size)
            .map(|_| {
                (0..config.sequence_depth)
                    .map(|_| (0..inputs).map(|_| next_bit()).collect())
                    .collect()
            })
            .collect();
        let block = engine.build_golden(&batch);
        let masks = engine.grade_block(&block, &undetected);
        // Replay the lanes in candidate order with exact serial semantics:
        // recheck the stopping conditions before consuming each lane, and
        // drop caught faults before looking at the next lane.
        let mut remaining: Vec<(FaultSite, u64)> = undetected.drain(..).zip(masks).collect();
        for (lane, sequence) in batch.into_iter().enumerate() {
            if !(tried < config.max_candidates
                && (total - remaining.len()) < target_detected
                && !remaining.is_empty())
            {
                break;
            }
            tried += 1;
            let bit = 1u64 << lane;
            let mut caught = Vec::new();
            remaining.retain(|&(fault, mask)| {
                if mask & bit != 0 {
                    caught.push(fault);
                    false
                } else {
                    true
                }
            });
            if !caught.is_empty() {
                kept.push((sequence, caught));
            }
        }
        undetected = remaining.into_iter().map(|(fault, _)| fault).collect();
    }

    // Reverse-order compaction: drop sequences whose faults are all caught
    // by the sequences kept after them.
    let mut compacted: Vec<Vec<BitVec>> = Vec::new();
    let mut covered: std::collections::HashSet<FaultSite> = std::collections::HashSet::new();
    for (sequence, caught) in kept.iter().rev() {
        if caught.iter().any(|f| !covered.contains(f)) {
            for f in caught {
                covered.insert(*f);
            }
            compacted.push(sequence.clone());
        }
    }
    compacted.reverse();

    AtpgResult {
        detected: covered.len(),
        sequences: compacted,
        total,
        undetected,
        candidates_tried: tried,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_netlist() -> Netlist {
        let mut nl = Netlist::new("xor");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.xor2(a, b);
        nl.mark_output("y", y);
        nl
    }

    #[test]
    fn full_coverage_on_xor() {
        let nl = xor_netlist();
        let result = generate_patterns(&nl, &AtpgConfig::default()).unwrap();
        assert_eq!(
            result.coverage(),
            1.0,
            "undetected: {:?}",
            result.undetected
        );
        assert!(result.total_cycles() > 0);
    }

    #[test]
    fn compaction_keeps_coverage() {
        let nl = xor_netlist();
        let result = generate_patterns(&nl, &AtpgConfig::default()).unwrap();
        // Re-grade the compacted set from scratch: coverage must match.
        let regraded = crate::fault::fault_simulate(&nl, &result.sequences).unwrap();
        assert_eq!(regraded.detected, result.detected);
    }

    #[test]
    fn respects_candidate_budget() {
        let nl = xor_netlist();
        let config = AtpgConfig {
            max_candidates: 3,
            ..AtpgConfig::default()
        };
        let result = generate_patterns(&nl, &config).unwrap();
        assert!(result.candidates_tried <= 3);
    }

    #[test]
    fn cas_netlist_reaches_high_coverage() {
        use casbus::{CasGeometry, SchemeSet};
        let set = SchemeSet::enumerate(CasGeometry::new(3, 1).unwrap()).unwrap();
        let nl = crate::synth::synthesize_cas(&set);
        let config = AtpgConfig {
            target_coverage: 0.9,
            max_candidates: 200,
            sequence_depth: 10,
            seed: 42,
        };
        let result = generate_patterns(&nl, &config).unwrap();
        assert!(
            result.coverage() > 0.85,
            "CAS coverage only {:.1}% after {} candidates",
            result.coverage() * 100.0,
            result.candidates_tried
        );
        // Compaction makes the set much smaller than the candidate count.
        assert!(result.sequences.len() < result.candidates_tried);
    }

    /// The pre-batching algorithm: one candidate at a time, graded with
    /// the serial engine. Used to pin the packed/batched path's semantics.
    fn reference_patterns(netlist: &Netlist, config: &AtpgConfig) -> AtpgResult {
        let faults = enumerate_faults(netlist);
        let total = faults.len();
        let inputs = netlist.inputs().len();
        let mut undetected = faults;
        let mut kept: Vec<(Vec<BitVec>, Vec<FaultSite>)> = Vec::new();
        let mut state = config.seed | 1;
        let mut next_bit = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 62 & 1 == 1
        };
        let mut tried = 0usize;
        while tried < config.max_candidates
            && (total - undetected.len()) < (config.target_coverage * total as f64) as usize
            && !undetected.is_empty()
        {
            tried += 1;
            let sequence: Vec<BitVec> = (0..config.sequence_depth)
                .map(|_| (0..inputs).map(|_| next_bit()).collect())
                .collect();
            let graded =
                crate::fault::fault_simulate_serial(netlist, std::slice::from_ref(&sequence))
                    .unwrap();
            let missed: std::collections::HashSet<FaultSite> =
                graded.undetected.iter().copied().collect();
            let mut caught = Vec::new();
            let mut still = Vec::with_capacity(undetected.len());
            for fault in undetected {
                if missed.contains(&fault) {
                    still.push(fault);
                } else {
                    caught.push(fault);
                }
            }
            undetected = still;
            if !caught.is_empty() {
                kept.push((sequence, caught));
            }
        }
        let mut compacted: Vec<Vec<BitVec>> = Vec::new();
        let mut covered: std::collections::HashSet<FaultSite> = std::collections::HashSet::new();
        for (sequence, caught) in kept.iter().rev() {
            if caught.iter().any(|f| !covered.contains(f)) {
                for f in caught {
                    covered.insert(*f);
                }
                compacted.push(sequence.clone());
            }
        }
        compacted.reverse();
        AtpgResult {
            detected: covered.len(),
            sequences: compacted,
            total,
            undetected,
            candidates_tried: tried,
        }
    }

    #[test]
    fn batched_grading_matches_one_at_a_time() {
        use casbus::{CasGeometry, SchemeSet};
        let set = SchemeSet::enumerate(CasGeometry::new(3, 1).unwrap()).unwrap();
        let cas = crate::synth::synthesize_cas(&set);
        let configs = [
            AtpgConfig::default(),
            AtpgConfig {
                max_candidates: 3,
                ..AtpgConfig::default()
            },
            AtpgConfig {
                target_coverage: 0.9,
                max_candidates: 40,
                sequence_depth: 6,
                seed: 7,
            },
        ];
        for nl in [&xor_netlist(), &cas] {
            for config in &configs {
                let batched = generate_patterns(nl, config).unwrap();
                let reference = reference_patterns(nl, config);
                assert_eq!(batched.sequences, reference.sequences);
                assert_eq!(batched.detected, reference.detected);
                assert_eq!(batched.undetected, reference.undetected);
                assert_eq!(batched.candidates_tried, reference.candidates_tried);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let nl = xor_netlist();
        let a = generate_patterns(&nl, &AtpgConfig::default()).unwrap();
        let b = generate_patterns(&nl, &AtpgConfig::default()).unwrap();
        assert_eq!(a.sequences, b.sequences);
    }
}
