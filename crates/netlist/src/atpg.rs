//! Automatic test pattern generation for the generated CASes themselves.
//!
//! The TAM is test *infrastructure* — but silicon defects do not spare it,
//! so a production flow must also test the switches. This module implements
//! the classic pragmatic recipe: pseudo-random multi-cycle sequences graded
//! by fault simulation with **fault dropping** (a sequence is kept only when
//! it detects a still-undetected fault), followed by reverse-order
//! compaction.

use casbus_tpg::BitVec;

use crate::fault::{enumerate_faults, FaultSite};
use crate::netlist::{Netlist, NetlistError};
use crate::sim::{Simulator, Value};

/// The outcome of a pattern-generation run.
#[derive(Debug, Clone)]
pub struct AtpgResult {
    /// Kept test sequences, application order. Each sequence is a list of
    /// per-cycle primary-input vectors (declaration order).
    pub sequences: Vec<Vec<BitVec>>,
    /// Faults detected by the kept set.
    pub detected: usize,
    /// Total faults in the collapsed list.
    pub total: usize,
    /// Faults no candidate detected.
    pub undetected: Vec<FaultSite>,
    /// Candidates examined.
    pub candidates_tried: usize,
}

impl AtpgResult {
    /// Coverage in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.detected as f64 / self.total as f64
        }
    }

    /// Total test clocks the kept set costs.
    pub fn total_cycles(&self) -> usize {
        self.sequences.iter().map(Vec::len).sum()
    }
}

/// Configuration for [`generate_patterns`].
#[derive(Debug, Clone, Copy)]
pub struct AtpgConfig {
    /// Stop once this fraction of faults is detected.
    pub target_coverage: f64,
    /// Give up after this many candidate sequences.
    pub max_candidates: usize,
    /// Cycles per candidate sequence (sequential depth exercised).
    pub sequence_depth: usize,
    /// Seed for the candidate generator.
    pub seed: u64,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        Self {
            target_coverage: 0.95,
            max_candidates: 512,
            sequence_depth: 8,
            seed: 0x0DD5_EED5,
        }
    }
}

/// Fault-free responses of a sequence.
fn golden_responses(
    netlist: &Netlist,
    sequence: &[BitVec],
) -> Result<Vec<Vec<Value>>, NetlistError> {
    let mut sim = Simulator::new(netlist)?;
    Ok(sequence
        .iter()
        .map(|v| {
            let bits: Vec<bool> = v.iter().collect();
            sim.step(&bits).into_iter().map(|(_, val)| val).collect()
        })
        .collect())
}

/// Whether `fault` is detected by `sequence` (golden responses supplied).
fn detects(
    netlist: &Netlist,
    fault: FaultSite,
    sequence: &[BitVec],
    golden: &[Vec<Value>],
) -> Result<bool, NetlistError> {
    let mut sim = Simulator::new(netlist)?;
    sim.force_net(fault.net, match fault.stuck {
        crate::fault::StuckAt::Zero => Value::Zero,
        crate::fault::StuckAt::One => Value::One,
    });
    for (vector, good) in sequence.iter().zip(golden) {
        let bits: Vec<bool> = vector.iter().collect();
        let outs = sim.step(&bits);
        for ((_, observed), expected) in outs.iter().zip(good) {
            let differs = match (observed.to_bool(), expected.to_bool()) {
                (Some(a), Some(b)) => a != b,
                (None, Some(_)) | (Some(_), None) => true,
                (None, None) => false,
            };
            if differs {
                return Ok(true);
            }
        }
    }
    Ok(false)
}

/// Generates a compact stuck-at test set for `netlist`.
///
/// Candidates are pseudo-random multi-cycle sequences; each is kept only if
/// it detects at least one still-undetected fault (fault dropping). A final
/// reverse-order compaction pass discards sequences whose detections are
/// covered by the rest.
///
/// # Errors
///
/// Propagates netlist validation errors.
///
/// # Examples
///
/// ```
/// use casbus_netlist::{atpg, Netlist};
///
/// let mut nl = Netlist::new("xor");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let y = nl.xor2(a, b);
/// nl.mark_output("y", y);
/// let result = atpg::generate_patterns(&nl, &atpg::AtpgConfig::default())?;
/// assert_eq!(result.coverage(), 1.0);
/// # Ok::<(), casbus_netlist::NetlistError>(())
/// ```
pub fn generate_patterns(
    netlist: &Netlist,
    config: &AtpgConfig,
) -> Result<AtpgResult, NetlistError> {
    netlist.validate()?;
    let faults = enumerate_faults(netlist);
    let total = faults.len();
    let inputs = netlist.inputs().len();
    let mut undetected: Vec<FaultSite> = faults;
    let mut kept: Vec<(Vec<BitVec>, Vec<FaultSite>)> = Vec::new();
    let mut state = config.seed | 1;
    let mut next_bit = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 62 & 1 == 1
    };

    let mut tried = 0usize;
    while tried < config.max_candidates
        && (total - undetected.len()) < (config.target_coverage * total as f64) as usize
        && !undetected.is_empty()
    {
        tried += 1;
        let sequence: Vec<BitVec> = (0..config.sequence_depth)
            .map(|_| (0..inputs).map(|_| next_bit()).collect())
            .collect();
        let golden = golden_responses(netlist, &sequence)?;
        let mut caught = Vec::new();
        let mut still = Vec::with_capacity(undetected.len());
        for fault in undetected {
            if detects(netlist, fault, &sequence, &golden)? {
                caught.push(fault);
            } else {
                still.push(fault);
            }
        }
        undetected = still;
        if !caught.is_empty() {
            kept.push((sequence, caught));
        }
    }

    // Reverse-order compaction: drop sequences whose faults are all caught
    // by the sequences kept after them.
    let mut compacted: Vec<Vec<BitVec>> = Vec::new();
    let mut covered: std::collections::HashSet<FaultSite> = std::collections::HashSet::new();
    for (sequence, caught) in kept.iter().rev() {
        if caught.iter().any(|f| !covered.contains(f)) {
            for f in caught {
                covered.insert(*f);
            }
            compacted.push(sequence.clone());
        }
    }
    compacted.reverse();

    Ok(AtpgResult {
        detected: covered.len(),
        sequences: compacted,
        total,
        undetected,
        candidates_tried: tried,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_netlist() -> Netlist {
        let mut nl = Netlist::new("xor");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.xor2(a, b);
        nl.mark_output("y", y);
        nl
    }

    #[test]
    fn full_coverage_on_xor() {
        let nl = xor_netlist();
        let result = generate_patterns(&nl, &AtpgConfig::default()).unwrap();
        assert_eq!(result.coverage(), 1.0, "undetected: {:?}", result.undetected);
        assert!(result.total_cycles() > 0);
    }

    #[test]
    fn compaction_keeps_coverage() {
        let nl = xor_netlist();
        let result = generate_patterns(&nl, &AtpgConfig::default()).unwrap();
        // Re-grade the compacted set from scratch: coverage must match.
        let regraded = crate::fault::fault_simulate(&nl, &result.sequences).unwrap();
        assert_eq!(regraded.detected, result.detected);
    }

    #[test]
    fn respects_candidate_budget() {
        let nl = xor_netlist();
        let config = AtpgConfig { max_candidates: 3, ..AtpgConfig::default() };
        let result = generate_patterns(&nl, &config).unwrap();
        assert!(result.candidates_tried <= 3);
    }

    #[test]
    fn cas_netlist_reaches_high_coverage() {
        use casbus::{CasGeometry, SchemeSet};
        let set = SchemeSet::enumerate(CasGeometry::new(3, 1).unwrap()).unwrap();
        let nl = crate::synth::synthesize_cas(&set);
        let config = AtpgConfig {
            target_coverage: 0.9,
            max_candidates: 200,
            sequence_depth: 10,
            seed: 42,
        };
        let result = generate_patterns(&nl, &config).unwrap();
        assert!(
            result.coverage() > 0.85,
            "CAS coverage only {:.1}% after {} candidates",
            result.coverage() * 100.0,
            result.candidates_tried
        );
        // Compaction makes the set much smaller than the candidate count.
        assert!(result.sequences.len() < result.candidates_tried);
    }

    #[test]
    fn deterministic_given_seed() {
        let nl = xor_netlist();
        let a = generate_patterns(&nl, &AtpgConfig::default()).unwrap();
        let b = generate_patterns(&nl, &AtpgConfig::default()).unwrap();
        assert_eq!(a.sequences, b.sequences);
    }
}
