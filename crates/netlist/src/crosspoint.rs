//! The pass-transistor CAS — the paper's second §3.3 future-work variant,
//! built as a real netlist rather than an analytic estimate.
//!
//! *"The second one, which is much more optimized, considers a hardware
//! architecture based on the use of pass transistors. … first experiments
//! have shown that they solve the CAS area problem for large width test
//! busses, even without restricting heuristics."*
//!
//! Instead of densely encoding one of `m = N!/(N−P)! + 2` instructions and
//! decoding them all, the crosspoint CAS gives **each port its own wire-
//! select field** of `⌈log₂(N+1)⌉` bits (value `N` = port parked). The
//! switch fabric is a crosspoint of transmission gates — modelled at logic
//! level by tri-state buffers — of size `2·N·P` (forward + return paths),
//! plus one small per-port decoder. Register width grows linearly in `P`
//! instead of with `log₂(N!/(N−P)!)`, and the fabric in `N·P` instead of
//! `m` — which is exactly why it beats the dense design for wide busses,
//! *without* the paper's restricting heuristic (any port↔wire pairing is
//! expressible, including non-injective ones the dense design forbids).

use casbus::{CasGeometry, SwitchScheme};

use crate::netlist::{NetId, Netlist};

/// Select-field width per port: wires `0..N` plus the "parked" code `N`.
pub fn select_bits(n: usize) -> usize {
    usize::BITS as usize - n.leading_zeros() as usize
}

/// Instruction register width of the crosspoint CAS: one select field per
/// port (compare [`CasGeometry::instruction_width`] for the dense design).
pub fn crosspoint_register_width(geometry: CasGeometry) -> usize {
    geometry.switched_wires() * select_bits(geometry.bus_width())
}

/// Synthesizes the crosspoint (pass-transistor) CAS for a geometry.
///
/// Ports, in declaration order: `config`, `update`, `e0..eN−1`, `i0..iP−1`
/// in; `s0..sN−1`, `o0..oP−1` out — the same interface as
/// [`synthesize_cas`](crate::synth::synthesize_cas), so the two designs are
/// drop-in comparable. The instruction register shifts on `e0` while
/// `config` is asserted (LSB of port 0's field first) and the shifted-out
/// bit leaves on `s0`, exactly like the dense design.
///
/// Routing semantics per port `j` with select value `v`:
///
/// * `v < N` — transmission gates connect `e_v → o_j` and `i_j → s_v`,
/// * `v ≥ N` — the port is parked (both gates off).
///
/// Bus wires claimed by no port fall back to bypass (`s_w = e_w`) through a
/// bypass transmission gate.
pub fn synthesize_crosspoint_cas(geometry: CasGeometry) -> Netlist {
    let n = geometry.bus_width();
    let p = geometry.switched_wires();
    let bits = select_bits(n);
    let k = p * bits;

    let mut nl = Netlist::new(format!("cas_xp_n{n}_p{p}"));
    let config = nl.add_input("config");
    let update = nl.add_input("update");
    let e: Vec<NetId> = (0..n).map(|w| nl.add_input(format!("e{w}"))).collect();
    let i: Vec<NetId> = (0..p).map(|j| nl.add_input(format!("i{j}"))).collect();

    // Shift + shadow registers, same discipline as the dense CAS.
    let mut ir_q = vec![NetId(usize::MAX); k];
    for idx in (0..k).rev() {
        let d = if idx == k - 1 { e[0] } else { ir_q[idx + 1] };
        ir_q[idx] = nl.dff_e(d, config);
    }
    let shadow: Vec<NetId> = ir_q.iter().map(|&q| nl.dff_e(q, update)).collect();
    let shadow_n: Vec<NetId> = shadow.iter().map(|&q| nl.not(q)).collect();
    let not_config = nl.not(config);

    // Per-port one-hot wire selects from each port's private field.
    // sel[j][w] = (field_j == w) AND not_config.
    let mut sel = vec![vec![NetId(usize::MAX); n]; p];
    for (j, sel_row) in sel.iter_mut().enumerate() {
        let field = &shadow[j * bits..(j + 1) * bits];
        let field_n = &shadow_n[j * bits..(j + 1) * bits];
        for (w, slot) in sel_row.iter_mut().enumerate() {
            let literals: Vec<NetId> = (0..bits)
                .map(|b| {
                    if w >> b & 1 == 1 {
                        field[b]
                    } else {
                        field_n[b]
                    }
                })
                .collect();
            let hot = nl.and_tree(&literals);
            *slot = nl.and2(hot, not_config);
        }
    }

    // Core-side outputs: a column of transmission gates per port.
    for (j, sel_row) in sel.iter().enumerate() {
        let o_bus = nl.new_net();
        for w in 0..n {
            nl.add_tribuf_onto(o_bus, sel_row[w], e[w]);
        }
        nl.mark_output(format!("o{j}"), o_bus);
    }

    // Bus-side outputs: return gates per (port, wire) plus a bypass gate
    // active when no port claims the wire (and a config-mode path on s0).
    for w in 0..n {
        let s_bus = nl.new_net();
        let mut claims = Vec::with_capacity(p);
        for (j, sel_row) in sel.iter().enumerate() {
            nl.add_tribuf_onto(s_bus, sel_row[w], i[j]);
            claims.push(sel_row[w]);
        }
        let any_claim = nl.or_tree(&claims);
        let unclaimed_raw = nl.not(any_claim);
        let bypass_en = nl.and2(unclaimed_raw, not_config);
        nl.add_tribuf_onto(s_bus, bypass_en, e[w]);
        if w == 0 {
            nl.add_tribuf_onto(s_bus, config, ir_q[0]);
        } else {
            // In CONFIGURATION the other wires bypass unconditionally.
            nl.add_tribuf_onto(s_bus, config, e[w]);
        }
        nl.mark_output(format!("s{w}"), s_bus);
    }
    nl
}

/// Encodes a dense-design [`SwitchScheme`] as crosspoint select fields
/// (LSB of port 0's field first) — letting the two implementations be
/// configured identically in equivalence tests.
pub fn encode_scheme(scheme: &SwitchScheme) -> casbus_tpg::BitVec {
    let n = scheme.geometry().bus_width();
    let bits = select_bits(n);
    let mut out = casbus_tpg::BitVec::new();
    for port in 0..scheme.geometry().switched_wires() {
        let v = scheme.wire_for_port(port) as u64;
        for b in 0..bits {
            out.push(v >> b & 1 == 1);
        }
    }
    out
}

/// Encodes the all-parked (bypass) configuration.
pub fn encode_bypass(geometry: CasGeometry) -> casbus_tpg::BitVec {
    let n = geometry.bus_width();
    let bits = select_bits(n);
    let mut out = casbus_tpg::BitVec::new();
    for _ in 0..geometry.switched_wires() {
        let v = n as u64; // parked
        for b in 0..bits {
            out.push(v >> b & 1 == 1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::area::gate_equivalents;
    use crate::sim::{Simulator, Value};
    use crate::synth::expected_routing;
    use casbus::SchemeSet;
    use casbus_tpg::BitVec;

    fn g(n: usize, p: usize) -> CasGeometry {
        CasGeometry::new(n, p).unwrap()
    }

    fn load(sim: &mut Simulator<'_>, geometry: CasGeometry, stream: &BitVec) {
        let n = geometry.bus_width();
        let p = geometry.switched_wires();
        for bit in stream.iter() {
            let mut inputs = vec![false; 2 + n + p];
            inputs[0] = true;
            inputs[2] = bit;
            sim.step(&inputs);
        }
        let mut inputs = vec![false; 2 + n + p];
        inputs[1] = true;
        sim.step(&inputs);
    }

    fn cycle(
        sim: &mut Simulator<'_>,
        n: usize,
        p: usize,
        e: &[bool],
        i: &[bool],
    ) -> (Vec<Value>, Vec<Value>) {
        let mut inputs = vec![false; 2 + n + p];
        inputs[2..2 + n].copy_from_slice(e);
        inputs[2 + n..].copy_from_slice(i);
        sim.set_inputs(&inputs);
        sim.eval();
        let s = (0..n)
            .map(|w| sim.output(&format!("s{w}")).unwrap())
            .collect();
        let o = (0..p)
            .map(|j| sim.output(&format!("o{j}")).unwrap())
            .collect();
        sim.clock();
        (s, o)
    }

    #[test]
    fn register_width_is_linear_in_p() {
        assert_eq!(select_bits(4), 3); // values 0..=4 need 3 bits
        assert_eq!(select_bits(8), 4);
        assert_eq!(crosspoint_register_width(g(8, 4)), 16);
        // Dense design needs k = 11 for (8,4) but the crosspoint pays a
        // linear price that WINS as P grows relative to log2(m).
        assert_eq!(crosspoint_register_width(g(24, 2)), 10);
    }

    #[test]
    fn netlist_is_well_formed() {
        for (n, p) in [(3usize, 1usize), (4, 2), (6, 3), (8, 4)] {
            let nl = synthesize_crosspoint_cas(g(n, p));
            nl.validate().unwrap_or_else(|e| panic!("N={n} P={p}: {e}"));
        }
    }

    #[test]
    fn beats_dense_design_on_wide_busses() {
        // The paper's claim, measured on real netlists.
        for (n, p) in [(6usize, 5usize), (8, 4)] {
            let dense = crate::synth::synthesize_cas(&SchemeSet::enumerate(g(n, p)).unwrap());
            let crosspoint = synthesize_crosspoint_cas(g(n, p));
            let dense_area = gate_equivalents(&dense);
            let xp_area = gate_equivalents(&crosspoint);
            assert!(
                xp_area < dense_area / 4.0,
                "N={n} P={p}: crosspoint {xp_area} vs dense {dense_area}"
            );
        }
    }

    #[test]
    fn parked_configuration_bypasses() {
        let geometry = g(4, 2);
        let nl = synthesize_crosspoint_cas(geometry);
        let mut sim = Simulator::new(&nl).unwrap();
        load(&mut sim, geometry, &encode_bypass(geometry));
        let (s, o) = cycle(&mut sim, 4, 2, &[true, false, true, true], &[true, true]);
        assert_eq!(
            s.iter().map(|v| v.to_bool().unwrap()).collect::<Vec<_>>(),
            vec![true, false, true, true]
        );
        assert!(o.iter().all(|v| *v == Value::Z));
    }

    #[test]
    fn routes_every_dense_scheme_identically() {
        let geometry = g(4, 2);
        let set = SchemeSet::enumerate(geometry).unwrap();
        let nl = synthesize_crosspoint_cas(geometry);
        let mut sim = Simulator::new(&nl).unwrap();
        for scheme in &set {
            sim.reset();
            load(&mut sim, geometry, &encode_scheme(scheme));
            let e = [true, false, true, false];
            let i = [true, false];
            let (s, o) = cycle(&mut sim, 4, 2, &e, &i);
            let (want_s, want_o) = expected_routing(scheme, &e, &i);
            for w in 0..4 {
                assert_eq!(s[w].to_bool(), Some(want_s[w]), "{scheme} s{w}");
            }
            for j in 0..2 {
                assert_eq!(o[j].to_bool(), Some(want_o[j]), "{scheme} o{j}");
            }
        }
    }

    #[test]
    fn expresses_non_injective_routing_the_dense_design_cannot() {
        // Both ports listening to wire 2 — broadcast, forbidden by the
        // dense design's injective schemes ("without restricting
        // heuristics" per the paper).
        let geometry = g(4, 2);
        let nl = synthesize_crosspoint_cas(geometry);
        let mut sim = Simulator::new(&nl).unwrap();
        let bits = select_bits(4);
        let mut stream = BitVec::new();
        for _ in 0..2 {
            for b in 0..bits {
                stream.push(2u64 >> b & 1 == 1);
            }
        }
        load(&mut sim, geometry, &stream);
        let (s, o) = cycle(&mut sim, 4, 2, &[false, false, true, false], &[true, true]);
        assert_eq!(o[0], Value::One, "port 0 hears wire 2");
        assert_eq!(o[1], Value::One, "port 1 hears wire 2");
        // Both return gates drive s2 with the same value: resolves cleanly.
        assert_eq!(s[2], Value::One);
    }

    #[test]
    fn config_mode_threads_wire0() {
        let geometry = g(3, 1);
        let nl = synthesize_crosspoint_cas(geometry);
        let mut sim = Simulator::new(&nl).unwrap();
        let k = crosspoint_register_width(geometry);
        let mut seen = Vec::new();
        for step in 0..2 * k {
            let mut inputs = vec![false; 2 + 3 + 1];
            inputs[0] = true;
            inputs[2] = step < k;
            sim.set_inputs(&inputs);
            sim.eval();
            seen.push(sim.output("s0").unwrap());
            sim.clock();
        }
        assert_eq!(&seen[..k], vec![Value::Zero; k].as_slice());
        assert_eq!(&seen[k..], vec![Value::One; k].as_slice());
    }
}
