//! Single-stuck-at fault model and fault simulation.
//!
//! Generated CASes become part of the SoC's test infrastructure, so they
//! must themselves be testable. This module grades pattern sets against the
//! classic single-stuck-at fault model: every gate output and primary input
//! can be stuck at 0 or 1; a fault is *detected* by a pattern whose primary
//! outputs differ from the fault-free response.
//!
//! [`fault_simulate`] routes through the bit-parallel PPSFP engine
//! ([`crate::sim_packed`]): 64 pattern sequences per machine word, per-fault
//! fanout-cone propagation, faults partitioned across OS threads. The
//! straightforward one-fault-at-a-time implementation is kept as
//! [`fault_simulate_serial`]; both produce identical [`FaultCoverage`]
//! values (same `detected` count *and* the same `undetected` list).

use std::fmt;

use casbus_tpg::BitVec;

use crate::netlist::{NetId, Netlist, NetlistError};
use crate::sim::{Simulator, Value};

/// The polarity of a stuck-at fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StuckAt {
    /// Node stuck at logic 0.
    Zero,
    /// Node stuck at logic 1.
    One,
}

impl StuckAt {
    fn value(self) -> Value {
        match self {
            Self::Zero => Value::Zero,
            Self::One => Value::One,
        }
    }
}

impl fmt::Display for StuckAt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Zero => "SA0",
            Self::One => "SA1",
        })
    }
}

/// One fault site: a net forced to a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSite {
    /// The faulty net.
    pub net: NetId,
    /// The stuck polarity.
    pub stuck: StuckAt,
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.stuck, self.net)
    }
}

/// Enumerates the collapsed fault list: both polarities on every primary
/// input and every gate output net.
pub fn enumerate_faults(netlist: &Netlist) -> Vec<FaultSite> {
    let mut nets: Vec<NetId> = netlist.inputs().iter().map(|&(_, n)| n).collect();
    nets.extend(netlist.gates().iter().map(|g| g.output));
    nets.sort();
    nets.dedup();
    nets.iter()
        .flat_map(|&net| {
            [
                FaultSite {
                    net,
                    stuck: StuckAt::Zero,
                },
                FaultSite {
                    net,
                    stuck: StuckAt::One,
                },
            ]
        })
        .collect()
}

/// Fault-simulation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCoverage {
    /// Total faults simulated.
    pub total: usize,
    /// Faults detected by at least one pattern.
    pub detected: usize,
    /// The undetected fault sites.
    pub undetected: Vec<FaultSite>,
}

impl FaultCoverage {
    /// Coverage as a fraction in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.detected as f64 / self.total as f64
        }
    }
}

impl fmt::Display for FaultCoverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} faults detected ({:.1}%)",
            self.detected,
            self.total,
            self.coverage() * 100.0
        )
    }
}

/// Builds a simulator with the given fault permanently injected.
fn faulty_simulator(netlist: &Netlist, fault: FaultSite) -> Result<Simulator<'_>, NetlistError> {
    let mut sim = Simulator::new(netlist)?;
    sim.force_net(fault.net, fault.stuck.value());
    Ok(sim)
}

/// Grades `sequences` (multi-cycle primary-input vector sequences, each
/// starting from the power-on state) against the full single-stuck-at fault
/// list of `netlist`.
///
/// This is the bit-parallel (PPSFP) path: sequences are packed 64 per
/// machine word, each fault only re-simulates its fanout cone against the
/// shared fault-free response, and the fault list is partitioned across OS
/// threads. The result is bit-identical to [`fault_simulate_serial`].
///
/// # Errors
///
/// Propagates netlist validation errors.
pub fn fault_simulate(
    netlist: &Netlist,
    sequences: &[Vec<BitVec>],
) -> Result<FaultCoverage, NetlistError> {
    let engine = crate::sim_packed::PackedEngine::new(netlist)?;
    Ok(engine.fault_coverage(sequences))
}

/// The one-fault-at-a-time reference implementation of [`fault_simulate`].
///
/// Kept for differential testing of the packed engine and as executable
/// documentation of the detection semantics. Input vectors are unpacked
/// from [`BitVec`] to `Vec<bool>` once up front, outside the per-fault
/// loop.
///
/// # Errors
///
/// Propagates netlist validation errors.
pub fn fault_simulate_serial(
    netlist: &Netlist,
    sequences: &[Vec<BitVec>],
) -> Result<FaultCoverage, NetlistError> {
    // Unpack every vector once; the per-fault inner loop reuses the slices.
    let unpacked: Vec<Vec<Vec<bool>>> = sequences
        .iter()
        .map(|seq| seq.iter().map(|vector| vector.iter().collect()).collect())
        .collect();
    // Golden responses per sequence.
    let mut golden: Vec<Vec<Vec<Value>>> = Vec::with_capacity(sequences.len());
    for seq in &unpacked {
        let mut sim = Simulator::new(netlist)?;
        let mut responses = Vec::with_capacity(seq.len());
        for bits in seq {
            let outs = sim.step(bits);
            responses.push(outs.into_iter().map(|(_, v)| v).collect());
        }
        golden.push(responses);
    }

    let faults = enumerate_faults(netlist);
    let mut detected = 0usize;
    let mut undetected = Vec::new();
    for &fault in &faults {
        let mut caught = false;
        'seqs: for (seq, gold) in unpacked.iter().zip(&golden) {
            let mut faulty = faulty_simulator(netlist, fault)?;
            for (bits, good) in seq.iter().zip(gold) {
                let outs: Vec<Value> = faulty.step(bits).into_iter().map(|(_, v)| v).collect();
                let differs = outs.iter().zip(good).any(|(f, g)| {
                    match (f.to_bool(), g.to_bool()) {
                        (Some(a), Some(b)) => a != b,
                        // Z vs driven (or X) counts as a potential detect.
                        (None, Some(_)) | (Some(_), None) => true,
                        (None, None) => false,
                    }
                });
                if differs {
                    caught = true;
                    break 'seqs;
                }
            }
        }
        if caught {
            detected += 1;
        } else {
            undetected.push(fault);
        }
    }
    Ok(FaultCoverage {
        total: faults.len(),
        detected,
        undetected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_netlist() -> Netlist {
        let mut nl = Netlist::new("x");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.xor2(a, b);
        nl.mark_output("y", y);
        nl
    }

    fn vectors(patterns: &[&str]) -> Vec<Vec<BitVec>> {
        patterns
            .iter()
            .map(|p| vec![p.parse::<BitVec>().unwrap()])
            .collect()
    }

    #[test]
    fn fault_list_covers_all_nets() {
        let nl = xor_netlist();
        let faults = enumerate_faults(&nl);
        // 2 inputs + 1 gate output, 2 polarities each.
        assert_eq!(faults.len(), 6);
    }

    #[test]
    fn exhaustive_patterns_reach_full_coverage_on_xor() {
        let nl = xor_netlist();
        let cov = fault_simulate(&nl, &vectors(&["00", "10", "01", "11"])).unwrap();
        assert_eq!(cov.detected, cov.total, "undetected: {:?}", cov.undetected);
        assert_eq!(cov.coverage(), 1.0);
    }

    #[test]
    fn single_pattern_catches_fewer_faults() {
        let nl = xor_netlist();
        let one = fault_simulate(&nl, &vectors(&["10"])).unwrap();
        let all = fault_simulate(&nl, &vectors(&["00", "10", "01", "11"])).unwrap();
        assert!(one.detected < all.detected);
        assert!(!one.undetected.is_empty());
    }

    #[test]
    fn redundant_logic_has_undetectable_faults() {
        // y = a AND (a OR b): the OR is partially redundant.
        let mut nl = Netlist::new("red");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let o = nl.or2(a, b);
        let y = nl.and2(a, o);
        nl.mark_output("y", y);
        let cov = fault_simulate(&nl, &vectors(&["00", "10", "01", "11"])).unwrap();
        assert!(cov.detected < cov.total, "redundancy masks some faults");
    }

    #[test]
    fn sequential_fault_needs_multi_cycle_sequence() {
        // d -> DFF -> y: a stuck D is only visible one clock later.
        let mut nl = Netlist::new("seq");
        let d = nl.add_input("d");
        let en = nl.const1();
        let q = nl.dff_e(d, en);
        nl.mark_output("y", q);
        // One-cycle sequences never observe the captured value.
        let short = fault_simulate(&nl, &vectors(&["1", "0"])).unwrap();
        // Two-cycle sequences do.
        let long = fault_simulate(
            &nl,
            &[
                vec!["1".parse().unwrap(), "0".parse().unwrap()],
                vec!["0".parse().unwrap(), "1".parse().unwrap()],
            ],
        )
        .unwrap();
        assert!(long.detected > short.detected);
    }

    #[test]
    fn coverage_display() {
        let cov = FaultCoverage {
            total: 10,
            detected: 9,
            undetected: vec![],
        };
        assert!(cov.to_string().contains("90.0%"));
        assert_eq!(
            FaultCoverage {
                total: 0,
                detected: 0,
                undetected: vec![]
            }
            .coverage(),
            1.0
        );
    }

    #[test]
    fn fault_site_display() {
        let nl = xor_netlist();
        let f = enumerate_faults(&nl)[0];
        assert!(f.to_string().starts_with("SA0@n"));
    }
}
