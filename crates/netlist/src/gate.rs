//! Gate primitives and their area weights.

use std::fmt;

/// The cell library: every primitive the synthesizer may instantiate.
///
/// Area weights ([`GateKind::gate_equivalents`]) are in NAND2 equivalents,
/// the unit commercial reports (and the paper's Table 1 "# of gates" column)
/// customarily use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Constant driver (0 or 1).
    Const(bool),
    /// Non-inverting buffer.
    Buf,
    /// Inverter.
    Not,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2-to-1 multiplexer; inputs `[sel, a, b]`, output `sel ? b : a`.
    Mux2,
    /// Enabled D flip-flop; inputs `[d, en]`, output Q. Holds when `en` is 0.
    DffE,
    /// Tri-state buffer; inputs `[en, a]`; drives `a` when `en` is 1,
    /// high-impedance otherwise.
    TriBuf,
}

impl GateKind {
    /// Number of input pins.
    pub fn arity(self) -> usize {
        match self {
            Self::Const(_) => 0,
            Self::Buf | Self::Not => 1,
            Self::And2
            | Self::Or2
            | Self::Nand2
            | Self::Nor2
            | Self::Xor2
            | Self::Xnor2
            | Self::DffE
            | Self::TriBuf => 2,
            Self::Mux2 => 3,
        }
    }

    /// Area in NAND2 gate equivalents (typical standard-cell weights).
    pub fn gate_equivalents(self) -> f64 {
        match self {
            Self::Const(_) => 0.0,
            Self::Buf => 0.75,
            Self::Not => 0.5,
            Self::Nand2 | Self::Nor2 => 1.0,
            Self::And2 | Self::Or2 => 1.5,
            Self::Xor2 | Self::Xnor2 => 2.5,
            Self::Mux2 => 3.0,
            Self::DffE => 7.0,
            Self::TriBuf => 1.5,
        }
    }

    /// Whether this cell holds state across clocks.
    pub fn is_sequential(self) -> bool {
        matches!(self, Self::DffE)
    }

    /// Whether this cell may release its output (high impedance).
    pub fn is_tristate(self) -> bool {
        matches!(self, Self::TriBuf)
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Self::Const(false) => "CONST0",
            Self::Const(true) => "CONST1",
            Self::Buf => "BUF",
            Self::Not => "NOT",
            Self::And2 => "AND2",
            Self::Or2 => "OR2",
            Self::Nand2 => "NAND2",
            Self::Nor2 => "NOR2",
            Self::Xor2 => "XOR2",
            Self::Xnor2 => "XNOR2",
            Self::Mux2 => "MUX2",
            Self::DffE => "DFFE",
            Self::TriBuf => "TRIBUF",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [GateKind; 13] = [
        GateKind::Const(false),
        GateKind::Const(true),
        GateKind::Buf,
        GateKind::Not,
        GateKind::And2,
        GateKind::Or2,
        GateKind::Nand2,
        GateKind::Nor2,
        GateKind::Xor2,
        GateKind::Xnor2,
        GateKind::Mux2,
        GateKind::DffE,
        GateKind::TriBuf,
    ];

    #[test]
    fn arities_match_semantics() {
        assert_eq!(GateKind::Const(true).arity(), 0);
        assert_eq!(GateKind::Not.arity(), 1);
        assert_eq!(GateKind::And2.arity(), 2);
        assert_eq!(GateKind::Mux2.arity(), 3);
        assert_eq!(GateKind::DffE.arity(), 2);
    }

    #[test]
    fn nand2_is_the_unit() {
        assert_eq!(GateKind::Nand2.gate_equivalents(), 1.0);
        for kind in ALL {
            assert!(kind.gate_equivalents() >= 0.0);
        }
    }

    #[test]
    fn classification() {
        assert!(GateKind::DffE.is_sequential());
        assert!(!GateKind::And2.is_sequential());
        assert!(GateKind::TriBuf.is_tristate());
        assert!(!GateKind::Buf.is_tristate());
    }

    #[test]
    fn display_names_unique() {
        let names: std::collections::HashSet<String> =
            ALL.iter().map(ToString::to_string).collect();
        assert_eq!(names.len(), ALL.len());
    }
}
