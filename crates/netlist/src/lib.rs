//! Gate-level substrate for the CAS-BUS reproduction.
//!
//! The paper's §3.3 synthesizes generated CAS descriptions with a commercial
//! tool (Synopsys Design Analyzer) and reports gate counts (Table 1). This
//! crate replaces that proprietary flow with an auditable one:
//!
//! * [`Netlist`] — a gate-level IR (2-input gates, muxes, enabled flip-flops,
//!   tri-state buffers) with named ports,
//! * [`synth`] — structural synthesis of a CAS from its enumerated
//!   [`SchemeSet`](casbus::SchemeSet): instruction register, update stage,
//!   shared-prefix instruction decoder and N/P switch fabric (paper Fig. 3),
//! * [`Simulator`] — a levelized 4-value structural simulator (with
//!   tri-state resolution), used to prove the synthesized netlist equivalent
//!   to the behavioural [`Cas`](casbus::Cas),
//! * [`area`] — gate counting and area models, including the two §3.3
//!   "future work" variants (optimized gate-level and pass-transistor
//!   estimates),
//! * [`fault`] — a single-stuck-at fault model plus fault simulation,
//!   giving fault-coverage numbers for generated CASes,
//! * [`sim_packed`] — the bit-parallel (PPSFP) fault-simulation engine:
//!   64 patterns per machine word, per-fault fanout-cone propagation and
//!   threaded fault partitioning. [`fault::fault_simulate`] uses it by
//!   default; the serial reference remains as
//!   [`fault::fault_simulate_serial`].
//!
//! # Example
//!
//! ```
//! use casbus::{CasGeometry, SchemeSet};
//! use casbus_netlist::{synth, area};
//!
//! let set = SchemeSet::enumerate(CasGeometry::new(4, 2)?)?;
//! let netlist = synth::synthesize_cas(&set);
//! let gates = netlist.gate_count();
//! assert!(gates > 0);
//! let ge = area::gate_equivalents(&netlist);
//! assert!(ge > gates as f64 * 0.3);
//! # Ok::<(), casbus::CasError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod atpg;
pub mod crosspoint;
pub mod fault;
pub mod gate;
pub mod netlist;
pub mod opt;
pub mod sim;
pub mod sim_packed;
pub mod synth;

pub use crate::netlist::{Gate, NetId, Netlist, NetlistError};
pub use area::{AreaModel, AreaReport};
pub use fault::{FaultCoverage, FaultSite, StuckAt};
pub use gate::GateKind;
pub use sim::{Simulator, Value};
pub use sim_packed::{GoldenBlock, PackedEngine, PackedWord, LANES};
