//! The gate-level netlist IR and its builder API.

use std::collections::BTreeMap;
use std::fmt;

use crate::gate::GateKind;

/// Identifier of a net (a wire) within one netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) usize);

impl NetId {
    /// The net's numeric index within its netlist (stable, dense from 0).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One instantiated gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// The cell.
    pub kind: GateKind,
    /// Input nets, in pin order (see [`GateKind`] docs).
    pub inputs: Vec<NetId>,
    /// Output net.
    pub output: NetId,
}

/// Errors detected while building or validating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A net is driven by two non-tri-state gates (or a gate and an input).
    MultipleDrivers(NetId),
    /// A net has no driver and is not a primary input.
    NoDriver(NetId),
    /// The combinational logic contains a cycle not broken by a flip-flop.
    CombinationalCycle,
    /// A port name was used twice.
    DuplicatePort(String),
    /// A named port does not exist.
    UnknownPort(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MultipleDrivers(n) => write!(f, "net {n} has multiple non-tri-state drivers"),
            Self::NoDriver(n) => write!(f, "net {n} has no driver"),
            Self::CombinationalCycle => f.write_str("combinational cycle detected"),
            Self::DuplicatePort(p) => write!(f, "duplicate port name {p:?}"),
            Self::UnknownPort(p) => write!(f, "unknown port {p:?}"),
        }
    }
}

impl std::error::Error for NetlistError {}

/// A flat gate-level netlist with named primary inputs and outputs.
///
/// Nets are single-driver except for groups of [`GateKind::TriBuf`] drivers
/// sharing a bus net; validation ([`Netlist::validate`]) enforces this.
///
/// # Examples
///
/// ```
/// use casbus_netlist::{Netlist, GateKind};
///
/// let mut nl = Netlist::new("half_adder");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let sum = nl.xor2(a, b);
/// let carry = nl.and2(a, b);
/// nl.mark_output("sum", sum);
/// nl.mark_output("carry", carry);
/// assert_eq!(nl.gate_count(), 2);
/// nl.validate().expect("well-formed");
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    net_count: usize,
    gates: Vec<Gate>,
    inputs: Vec<(String, NetId)>,
    outputs: Vec<(String, NetId)>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            net_count: 0,
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Allocates a fresh net.
    pub fn new_net(&mut self) -> NetId {
        let id = NetId(self.net_count);
        self.net_count += 1;
        id
    }

    /// Declares a primary input and returns its net.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate port name.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let name = name.into();
        assert!(!self.port_exists(&name), "duplicate port name {name:?}");
        let net = self.new_net();
        self.inputs.push((name, net));
        net
    }

    /// Declares a primary output fed by `net`.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate port name.
    pub fn mark_output(&mut self, name: impl Into<String>, net: NetId) {
        let name = name.into();
        assert!(!self.port_exists(&name), "duplicate port name {name:?}");
        self.outputs.push((name, net));
    }

    fn port_exists(&self, name: &str) -> bool {
        self.inputs.iter().any(|(n, _)| n == name) || self.outputs.iter().any(|(n, _)| n == name)
    }

    /// Instantiates a gate and returns its output net.
    ///
    /// # Panics
    ///
    /// Panics if the input count does not match the cell's arity.
    pub fn add_gate(&mut self, kind: GateKind, inputs: Vec<NetId>) -> NetId {
        assert_eq!(
            inputs.len(),
            kind.arity(),
            "{kind} expects {} inputs, got {}",
            kind.arity(),
            inputs.len()
        );
        let output = self.new_net();
        self.gates.push(Gate {
            kind,
            inputs,
            output,
        });
        output
    }

    /// Instantiates a tri-state buffer driving an *existing* bus net.
    pub fn add_tribuf_onto(&mut self, bus: NetId, enable: NetId, data: NetId) {
        self.gates.push(Gate {
            kind: GateKind::TriBuf,
            inputs: vec![enable, data],
            output: bus,
        });
    }

    /// Instantiates an enabled flip-flop whose Q drives a *pre-allocated*
    /// net — the mechanism for registered feedback loops and for netlist
    /// rewriters that need forward references.
    pub fn add_dff_onto(&mut self, q: NetId, d: NetId, en: NetId) {
        self.gates.push(Gate {
            kind: GateKind::DffE,
            inputs: vec![d, en],
            output: q,
        });
    }

    /// Constant-0 driver.
    pub fn const0(&mut self) -> NetId {
        self.add_gate(GateKind::Const(false), vec![])
    }

    /// Constant-1 driver.
    pub fn const1(&mut self) -> NetId {
        self.add_gate(GateKind::Const(true), vec![])
    }

    /// Inverter.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.add_gate(GateKind::Not, vec![a])
    }

    /// 2-input AND.
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.add_gate(GateKind::And2, vec![a, b])
    }

    /// 2-input OR.
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        self.add_gate(GateKind::Or2, vec![a, b])
    }

    /// 2-input XOR.
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.add_gate(GateKind::Xor2, vec![a, b])
    }

    /// 2-to-1 mux: `sel ? b : a`.
    pub fn mux2(&mut self, sel: NetId, a: NetId, b: NetId) -> NetId {
        self.add_gate(GateKind::Mux2, vec![sel, a, b])
    }

    /// Enabled D flip-flop; returns the Q net.
    pub fn dff_e(&mut self, d: NetId, en: NetId) -> NetId {
        self.add_gate(GateKind::DffE, vec![d, en])
    }

    /// Balanced AND reduction of an arbitrary fan-in.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn and_tree(&mut self, nets: &[NetId]) -> NetId {
        self.reduce_tree(nets, GateKind::And2)
    }

    /// Balanced OR reduction of an arbitrary fan-in.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn or_tree(&mut self, nets: &[NetId]) -> NetId {
        self.reduce_tree(nets, GateKind::Or2)
    }

    fn reduce_tree(&mut self, nets: &[NetId], kind: GateKind) -> NetId {
        assert!(!nets.is_empty(), "cannot reduce an empty set of nets");
        let mut level: Vec<NetId> = nets.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                next.push(if pair.len() == 2 {
                    self.add_gate(kind, vec![pair[0], pair[1]])
                } else {
                    pair[0]
                });
            }
            level = next;
        }
        level[0]
    }

    /// The gates, in insertion order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of nets allocated.
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// Number of gate instances (constants excluded — they are free wiring).
    pub fn gate_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| !matches!(g.kind, GateKind::Const(_)))
            .count()
    }

    /// Gate instances per cell kind.
    pub fn gate_histogram(&self) -> BTreeMap<String, usize> {
        let mut hist = BTreeMap::new();
        for gate in &self.gates {
            *hist.entry(gate.kind.to_string()).or_insert(0) += 1;
        }
        hist
    }

    /// Primary inputs, declaration order.
    pub fn inputs(&self) -> &[(String, NetId)] {
        &self.inputs
    }

    /// Primary outputs, declaration order.
    pub fn outputs(&self) -> &[(String, NetId)] {
        &self.outputs
    }

    /// Net of a named input.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownPort`] when absent.
    pub fn input_net(&self, name: &str) -> Result<NetId, NetlistError> {
        self.inputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, id)| id)
            .ok_or_else(|| NetlistError::UnknownPort(name.to_owned()))
    }

    /// Net of a named output.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownPort`] when absent.
    pub fn output_net(&self, name: &str) -> Result<NetId, NetlistError> {
        self.outputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, id)| id)
            .ok_or_else(|| NetlistError::UnknownPort(name.to_owned()))
    }

    /// Validates structural sanity: single drivers (tri-state groups
    /// excepted), no floating nets, no combinational cycles.
    ///
    /// # Errors
    ///
    /// The first violated [`NetlistError`].
    pub fn validate(&self) -> Result<(), NetlistError> {
        let mut driver_kind: Vec<Option<bool /* tristate */>> = vec![None; self.net_count];
        for (_, net) in &self.inputs {
            driver_kind[net.0] = Some(false);
        }
        for gate in &self.gates {
            let slot = &mut driver_kind[gate.output.0];
            match (&slot, gate.kind.is_tristate()) {
                (None, t) => *slot = Some(t),
                (Some(true), true) => {} // tri-state group: fine
                _ => return Err(NetlistError::MultipleDrivers(gate.output)),
            }
        }
        // Every net referenced as a gate input or primary output needs a
        // driver.
        for gate in &self.gates {
            for input in &gate.inputs {
                if driver_kind[input.0].is_none() {
                    return Err(NetlistError::NoDriver(*input));
                }
            }
        }
        for (_, net) in &self.outputs {
            if driver_kind[net.0].is_none() {
                return Err(NetlistError::NoDriver(*net));
            }
        }
        // Cycle check via Kahn levelization over combinational gates.
        crate::sim::levelize(self).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_counts() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.and2(a, b);
        let y = nl.or2(x, a);
        nl.mark_output("y", y);
        assert_eq!(nl.gate_count(), 2);
        assert_eq!(nl.net_count(), 4);
        assert_eq!(nl.gate_histogram().get("AND2"), Some(&1));
        nl.validate().unwrap();
    }

    #[test]
    fn constants_do_not_count_as_gates() {
        let mut nl = Netlist::new("t");
        let c = nl.const1();
        nl.mark_output("o", c);
        assert_eq!(nl.gate_count(), 0);
        nl.validate().unwrap();
    }

    #[test]
    fn duplicate_port_panics() {
        let mut nl = Netlist::new("t");
        nl.add_input("a");
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            nl.add_input("a");
        }));
        assert!(r.is_err());
    }

    #[test]
    fn multiple_drivers_detected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let x = nl.not(a);
        // Illegally drive x again with a non-tri-state gate.
        nl.gates.push(Gate {
            kind: GateKind::Buf,
            inputs: vec![a],
            output: x,
        });
        assert_eq!(nl.validate(), Err(NetlistError::MultipleDrivers(x)));
    }

    #[test]
    fn tristate_group_is_legal() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let en1 = nl.add_input("en1");
        let en2 = nl.add_input("en2");
        let bus = nl.new_net();
        nl.add_tribuf_onto(bus, en1, a);
        nl.add_tribuf_onto(bus, en2, a);
        nl.mark_output("bus", bus);
        nl.validate().unwrap();
    }

    #[test]
    fn floating_net_detected() {
        let mut nl = Netlist::new("t");
        let ghost = nl.new_net();
        nl.mark_output("o", ghost);
        assert_eq!(nl.validate(), Err(NetlistError::NoDriver(ghost)));
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let x = nl.new_net();
        let y = nl.and2(a, x);
        // Close the loop: x driven by a gate reading y.
        nl.gates.push(Gate {
            kind: GateKind::Buf,
            inputs: vec![y],
            output: x,
        });
        assert_eq!(nl.validate(), Err(NetlistError::CombinationalCycle));
    }

    #[test]
    fn dff_breaks_cycles() {
        let mut nl = Netlist::new("counter_bit");
        let en = nl.add_input("en");
        // q feeds its own d through an inverter: legal (registered loop).
        let q_placeholder = nl.new_net();
        let d = nl.not(q_placeholder);
        let q = nl.dff_e(d, en);
        // Rewire: replace placeholder by aliasing with a Buf.
        nl.gates.push(Gate {
            kind: GateKind::Buf,
            inputs: vec![q],
            output: q_placeholder,
        });
        nl.mark_output("q", q);
        nl.validate().unwrap();
    }

    #[test]
    fn reduction_trees() {
        let mut nl = Netlist::new("t");
        let nets: Vec<NetId> = (0..5).map(|i| nl.add_input(format!("i{i}"))).collect();
        let all = nl.and_tree(&nets);
        let any = nl.or_tree(&nets);
        nl.mark_output("all", all);
        nl.mark_output("any", any);
        // 5-input tree = 4 two-input gates.
        assert_eq!(nl.gate_count(), 8);
        nl.validate().unwrap();
    }

    #[test]
    fn single_net_tree_is_identity() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        assert_eq!(nl.and_tree(&[a]), a);
        assert_eq!(nl.gate_count(), 0);
    }

    #[test]
    fn port_lookup() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        nl.mark_output("o", a);
        assert_eq!(nl.input_net("a"), Ok(a));
        assert_eq!(nl.output_net("o"), Ok(a));
        assert!(nl.input_net("zz").is_err());
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn arity_mismatch_panics() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        nl.add_gate(GateKind::And2, vec![a]);
    }
}
