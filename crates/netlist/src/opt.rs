//! Logic optimization: the missing piece between our structural synthesis
//! and the paper's commercial flow.
//!
//! The paper's gate counts come out of Synopsys Design Analyzer, which
//! shares and simplifies logic; our raw synthesis does not. This module
//! implements the classic local passes — constant folding, double-negation
//! and buffer collapsing, common-subexpression elimination, and dead-logic
//! sweeping — so that the Table-1 bench can report an *optimized* gate
//! count produced by a real algorithm.

use std::collections::HashMap;

use crate::gate::GateKind;
use crate::netlist::{NetId, Netlist, NetlistError};
use crate::sim::levelize;

/// A resolved value during rewriting: either a net of the new netlist or a
/// known constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Ref {
    Net(NetId),
    Const(bool),
}

struct Rewriter {
    out: Netlist,
    /// CSE table: (kind, normalized inputs) → existing output.
    cse: HashMap<(GateKind, Vec<Ref>), NetId>,
    /// Inverter pairs for double-negation removal.
    inverse: HashMap<NetId, NetId>,
    /// Materialized constant drivers.
    consts: [Option<NetId>; 2],
}

impl Rewriter {
    fn new(name: &str) -> Self {
        Self {
            out: Netlist::new(name.to_owned()),
            cse: HashMap::new(),
            inverse: HashMap::new(),
            consts: [None, None],
        }
    }

    fn materialize(&mut self, r: Ref) -> NetId {
        match r {
            Ref::Net(n) => n,
            Ref::Const(b) => {
                if let Some(net) = self.consts[usize::from(b)] {
                    net
                } else {
                    let net = self.out.add_gate(GateKind::Const(b), vec![]);
                    self.consts[usize::from(b)] = Some(net);
                    net
                }
            }
        }
    }

    fn not(&mut self, r: Ref) -> Ref {
        match r {
            Ref::Const(b) => Ref::Const(!b),
            Ref::Net(n) => {
                if let Some(&inv) = self.inverse.get(&n) {
                    return Ref::Net(inv);
                }
                let out = self.emit(GateKind::Not, vec![Ref::Net(n)]);
                if let Ref::Net(o) = out {
                    self.inverse.insert(n, o);
                    self.inverse.insert(o, n);
                }
                out
            }
        }
    }

    /// Emits a gate with CSE; inputs already folded.
    fn emit(&mut self, kind: GateKind, mut inputs: Vec<Ref>) -> Ref {
        if commutative(kind) {
            inputs.sort_by_key(|r| match r {
                Ref::Const(b) => (0usize, usize::from(*b)),
                Ref::Net(n) => (1, n.index()),
            });
        }
        let key = (kind, inputs.clone());
        if let Some(&net) = self.cse.get(&key) {
            return Ref::Net(net);
        }
        let nets: Vec<NetId> = inputs.iter().map(|&r| self.materialize(r)).collect();
        let net = self.out.add_gate(kind, nets);
        self.cse.insert(key, net);
        Ref::Net(net)
    }

    /// Folds one gate given resolved inputs; returns its value.
    fn rewrite(&mut self, kind: GateKind, ins: Vec<Ref>) -> Ref {
        use GateKind::*;
        use Ref::Const as C;
        match kind {
            Const(b) => C(b),
            Buf => ins[0],
            Not => self.not(ins[0]),
            And2 => match (ins[0], ins[1]) {
                (C(false), _) | (_, C(false)) => C(false),
                (C(true), x) | (x, C(true)) => x,
                (a, b) if a == b => a,
                (a, b) if self.are_inverse(a, b) => C(false),
                (a, b) => self.emit(And2, vec![a, b]),
            },
            Or2 => match (ins[0], ins[1]) {
                (C(true), _) | (_, C(true)) => C(true),
                (C(false), x) | (x, C(false)) => x,
                (a, b) if a == b => a,
                (a, b) if self.are_inverse(a, b) => C(true),
                (a, b) => self.emit(Or2, vec![a, b]),
            },
            Nand2 => match (ins[0], ins[1]) {
                (C(false), _) | (_, C(false)) => C(true),
                (C(true), x) | (x, C(true)) => self.not(x),
                (a, b) if a == b => self.not(a),
                (a, b) if self.are_inverse(a, b) => C(true),
                (a, b) => self.emit(Nand2, vec![a, b]),
            },
            Nor2 => match (ins[0], ins[1]) {
                (C(true), _) | (_, C(true)) => C(false),
                (C(false), x) | (x, C(false)) => self.not(x),
                (a, b) if a == b => self.not(a),
                (a, b) if self.are_inverse(a, b) => C(false),
                (a, b) => self.emit(Nor2, vec![a, b]),
            },
            Xor2 => match (ins[0], ins[1]) {
                (C(false), x) | (x, C(false)) => x,
                (C(true), x) | (x, C(true)) => self.not(x),
                (a, b) if a == b => C(false),
                (a, b) if self.are_inverse(a, b) => C(true),
                (a, b) => self.emit(Xor2, vec![a, b]),
            },
            Xnor2 => match (ins[0], ins[1]) {
                (C(true), x) | (x, C(true)) => x,
                (C(false), x) | (x, C(false)) => self.not(x),
                (a, b) if a == b => C(true),
                (a, b) if self.are_inverse(a, b) => C(false),
                (a, b) => self.emit(Xnor2, vec![a, b]),
            },
            Mux2 => match (ins[0], ins[1], ins[2]) {
                (C(false), a, _) => a,
                (C(true), _, b) => b,
                (_, a, b) if a == b => a,
                (s, C(false), C(true)) => s,
                (s, C(true), C(false)) => self.not(s),
                (s, a, b) => self.emit(Mux2, vec![s, a, b]),
            },
            DffE | TriBuf => unreachable!("handled by the driver loop"),
        }
    }

    fn are_inverse(&self, a: Ref, b: Ref) -> bool {
        match (a, b) {
            (Ref::Net(x), Ref::Net(y)) => self.inverse.get(&x) == Some(&y),
            (Ref::Const(x), Ref::Const(y)) => x != y,
            _ => false,
        }
    }
}

fn commutative(kind: GateKind) -> bool {
    matches!(
        kind,
        GateKind::And2
            | GateKind::Or2
            | GateKind::Nand2
            | GateKind::Nor2
            | GateKind::Xor2
            | GateKind::Xnor2
    )
}

/// Optimizes a netlist: constant folding, buffer/double-negation collapsing,
/// common-subexpression elimination, and removal of logic that feeds neither
/// a primary output, a live flip-flop, nor a tri-state driver.
///
/// The result computes the same function cycle-for-cycle (flip-flop count
/// and reset state are preserved for live registers).
///
/// # Errors
///
/// Propagates validation errors from malformed input netlists.
///
/// # Examples
///
/// ```
/// use casbus_netlist::{Netlist, opt};
///
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let zero = nl.const0();
/// let dead = nl.and2(a, zero);  // folds to constant 0
/// let live = nl.or2(a, dead);   // folds to a
/// nl.mark_output("y", live);
/// let optimized = opt::optimize(&nl)?;
/// assert_eq!(optimized.gate_count(), 0, "y is just a wire to a");
/// # Ok::<(), casbus_netlist::NetlistError>(())
/// ```
pub fn optimize(netlist: &Netlist) -> Result<Netlist, NetlistError> {
    // Folding can orphan gates that were emitted before a later shortcut
    // was discovered; iterate the pass to a fixpoint (bounded — the gate
    // count strictly decreases).
    let mut current = rewrite_pass(netlist)?;
    loop {
        let next = rewrite_pass(&current)?;
        if next.gate_count() >= current.gate_count() {
            return Ok(current);
        }
        current = next;
    }
}

fn rewrite_pass(netlist: &Netlist) -> Result<Netlist, NetlistError> {
    netlist.validate()?;
    let order = levelize(netlist)?;
    let live = liveness(netlist);

    let mut rw = Rewriter::new(netlist.name());
    let mut map: Vec<Option<Ref>> = vec![None; netlist.net_count()];

    for (name, net) in netlist.inputs() {
        let new = rw.out.add_input(name.clone());
        map[net.index()] = Some(Ref::Net(new));
    }
    // Live flip-flop outputs become forward references.
    let mut dff_gates: Vec<(usize, NetId)> = Vec::new();
    for (idx, gate) in netlist.gates().iter().enumerate() {
        if gate.kind.is_sequential() && live[idx] {
            let q = rw.out.new_net();
            map[gate.output.index()] = Some(Ref::Net(q));
            dff_gates.push((idx, q));
        }
    }
    // Pre-create bus nets for live tri-state groups.
    let mut bus_map: HashMap<usize, NetId> = HashMap::new();
    for (idx, gate) in netlist.gates().iter().enumerate() {
        if gate.kind.is_tristate() && live[idx] {
            let bus = *bus_map
                .entry(gate.output.index())
                .or_insert_with(|| rw.out.new_net());
            map[gate.output.index()] = Some(Ref::Net(bus));
        }
    }

    // Combinational rewriting in topological order.
    for &idx in &order {
        if !live[idx] {
            continue;
        }
        let gate = &netlist.gates()[idx];
        let ins: Vec<Ref> = gate
            .inputs
            .iter()
            .map(|n| map[n.index()].expect("topological order resolves inputs"))
            .collect();
        if gate.kind.is_tristate() {
            let bus = bus_map[&gate.output.index()];
            let en = rw.materialize(ins[0]);
            let data = rw.materialize(ins[1]);
            rw.out.add_tribuf_onto(bus, en, data);
            continue;
        }
        let value = rw.rewrite(gate.kind, ins);
        map[gate.output.index()] = Some(value);
    }

    // Live flip-flops, wired through the map.
    for (idx, q) in dff_gates {
        let gate = &netlist.gates()[idx];
        let d_ref = map[gate.inputs[0].index()].expect("D resolved");
        let en_ref = map[gate.inputs[1].index()].expect("EN resolved");
        let d = rw.materialize(d_ref);
        let en = rw.materialize(en_ref);
        rw.out.add_dff_onto(q, d, en);
    }

    for (name, net) in netlist.outputs() {
        let r = map[net.index()].expect("outputs are live by construction");
        let materialized = rw.materialize(r);
        rw.out.mark_output(name.clone(), materialized);
    }
    rw.out.validate()?;
    Ok(rw.out)
}

/// Backwards liveness over the gate graph: a gate is live when its output
/// transitively reaches a primary output (through combinational gates,
/// tri-state drivers sharing a read bus, and flip-flops).
fn liveness(netlist: &Netlist) -> Vec<bool> {
    // drivers[net] = gates driving it (tri-state groups have several).
    let mut drivers: Vec<Vec<usize>> = vec![Vec::new(); netlist.net_count()];
    for (idx, gate) in netlist.gates().iter().enumerate() {
        drivers[gate.output.index()].push(idx);
    }
    let mut live = vec![false; netlist.gates().len()];
    let mut live_nets = vec![false; netlist.net_count()];
    let mut work: Vec<NetId> = netlist.outputs().iter().map(|&(_, n)| n).collect();
    while let Some(net) = work.pop() {
        if live_nets[net.index()] {
            continue;
        }
        live_nets[net.index()] = true;
        for &idx in &drivers[net.index()] {
            if !live[idx] {
                live[idx] = true;
                for input in &netlist.gates()[idx].inputs {
                    work.push(*input);
                }
            }
        }
    }
    live
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::area::gate_equivalents;
    use crate::sim::{Simulator, Value};

    #[test]
    fn folds_constants() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let one = nl.const1();
        let x = nl.and2(a, one); // = a
        let zero = nl.const0();
        let y = nl.or2(x, zero); // = a
        nl.mark_output("y", y);
        let opt = optimize(&nl).unwrap();
        assert_eq!(opt.gate_count(), 0);
    }

    #[test]
    fn shares_common_subexpressions() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x1 = nl.and2(a, b);
        let x2 = nl.and2(b, a); // same term, swapped
        let y = nl.or2(x1, x2); // = x1
        nl.mark_output("y", y);
        let opt = optimize(&nl).unwrap();
        assert_eq!(opt.gate_count(), 1, "one AND remains");
    }

    #[test]
    fn removes_double_negation() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let n1 = nl.not(a);
        let n2 = nl.not(n1);
        nl.mark_output("y", n2);
        let opt = optimize(&nl).unwrap();
        assert_eq!(opt.gate_count(), 0);
    }

    #[test]
    fn sweeps_dead_logic() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let _dead = nl.xor2(a, b);
        let live = nl.and2(a, b);
        nl.mark_output("y", live);
        let opt = optimize(&nl).unwrap();
        assert_eq!(opt.gate_count(), 1);
    }

    #[test]
    fn x_and_not_x_folds() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let na = nl.not(a);
        let and = nl.and2(a, na); // 0
        let or = nl.or2(a, na); // 1
        nl.mark_output("zero", and);
        nl.mark_output("one", or);
        let opt = optimize(&nl).unwrap();
        assert_eq!(opt.gate_count(), 0, "both outputs fold to constants");
        let mut sim = Simulator::new(&opt).unwrap();
        for v in [false, true] {
            sim.set_inputs(&[v]);
            sim.eval();
            assert_eq!(sim.output("zero").unwrap(), Value::Zero);
            assert_eq!(sim.output("one").unwrap(), Value::One);
        }
    }

    #[test]
    fn preserves_sequential_behaviour() {
        // 2-bit shift register with a redundant mux.
        let mut nl = Netlist::new("t");
        let d = nl.add_input("d");
        let en = nl.add_input("en");
        let one = nl.const1();
        let gated = nl.and2(d, one); // = d
        let q0 = nl.dff_e(gated, en);
        let q1 = nl.dff_e(q0, en);
        nl.mark_output("q", q1);
        let opt = optimize(&nl).unwrap();
        assert_eq!(opt.gate_histogram().get("DFFE"), Some(&2));

        let mut a = Simulator::new(&nl).unwrap();
        let mut b = Simulator::new(&opt).unwrap();
        for t in 0..12u32 {
            let inputs = [t % 3 == 0, t % 2 == 0];
            let out_a = a.step(&inputs);
            let out_b = b.step(&inputs);
            assert_eq!(out_a[0].1, out_b[0].1, "cycle {t}");
        }
    }

    #[test]
    fn drops_dead_flip_flops() {
        let mut nl = Netlist::new("t");
        let d = nl.add_input("d");
        let en = nl.add_input("en");
        let _dead_q = nl.dff_e(d, en);
        nl.mark_output("y", d);
        let opt = optimize(&nl).unwrap();
        assert_eq!(opt.gate_count(), 0);
    }

    #[test]
    fn preserves_tristate_groups() {
        let mut nl = Netlist::new("t");
        let en1 = nl.add_input("en1");
        let en2 = nl.add_input("en2");
        let d = nl.add_input("d");
        let bus = nl.new_net();
        nl.add_tribuf_onto(bus, en1, d);
        nl.add_tribuf_onto(bus, en2, d);
        nl.mark_output("bus", bus);
        let opt = optimize(&nl).unwrap();
        assert_eq!(opt.gate_histogram().get("TRIBUF"), Some(&2));
        let mut sim = Simulator::new(&opt).unwrap();
        sim.set_inputs(&[false, false, true]);
        sim.eval();
        assert_eq!(sim.output("bus").unwrap(), Value::Z);
    }

    #[test]
    fn cas_netlists_shrink_but_stay_equivalent() {
        use casbus::{CasGeometry, CasInstruction, SchemeSet};
        let set = SchemeSet::enumerate(CasGeometry::new(4, 2).unwrap()).unwrap();
        let raw = crate::synth::synthesize_cas(&set);
        let opt = optimize(&raw).unwrap();
        assert!(
            gate_equivalents(&opt) < gate_equivalents(&raw),
            "optimizer must save area: {} vs {}",
            gate_equivalents(&opt),
            gate_equivalents(&raw)
        );

        // Equivalence on a configuration + routing sequence.
        let drive = |nl: &Netlist| -> Vec<String> {
            let mut sim = Simulator::new(nl).unwrap();
            let mut trace = Vec::new();
            let instr = CasInstruction::Test(7);
            for bit in instr.encode(set.len(), 4).iter() {
                let mut inputs = vec![false; 8];
                inputs[0] = true;
                inputs[2] = bit;
                sim.step(&inputs);
            }
            let mut inputs = vec![false; 8];
            inputs[1] = true;
            sim.step(&inputs);
            for t in 0..6u32 {
                let mut inputs = vec![false; 8];
                for w in 0..4 {
                    inputs[2 + w] = (t as usize + w).is_multiple_of(2);
                }
                inputs[6] = t % 3 == 0;
                inputs[7] = t % 2 == 1;
                let outs = sim.step(&inputs);
                trace.push(
                    outs.iter()
                        .map(|(n, v)| format!("{n}={v}"))
                        .collect::<Vec<_>>()
                        .join(","),
                );
            }
            trace
        };
        assert_eq!(drive(&raw), drive(&opt));
    }
}
