//! Levelized 4-value structural simulation with tri-state resolution.

use std::fmt;

use crate::gate::GateKind;
use crate::netlist::{Netlist, NetlistError};

/// A 4-value logic level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Value {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// High impedance (undriven bus).
    #[default]
    Z,
    /// Unknown / conflict.
    X,
}

impl Value {
    /// Converts from a plain bool.
    pub fn from_bool(b: bool) -> Self {
        if b {
            Self::One
        } else {
            Self::Zero
        }
    }

    /// The bool value, if driven and known.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Self::Zero => Some(false),
            Self::One => Some(true),
            Self::Z | Self::X => None,
        }
    }

    /// Whether the level is a defined 0 or 1.
    pub fn is_known(self) -> bool {
        matches!(self, Self::Zero | Self::One)
    }

    fn as_logic(self) -> Self {
        // A floating input reads as unknown at a gate pin.
        if self == Self::Z {
            Self::X
        } else {
            self
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Zero => "0",
            Self::One => "1",
            Self::Z => "Z",
            Self::X => "X",
        })
    }
}

/// Computes a combinational evaluation order (gate indices), treating
/// flip-flop outputs as sources. Used both by the simulator and by
/// [`Netlist::validate`] for cycle detection.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] when no such order exists.
pub fn levelize(netlist: &Netlist) -> Result<Vec<usize>, NetlistError> {
    let nets = netlist.net_count();
    let gates = netlist.gates();
    // pending[net] = number of *combinational* drivers not yet evaluated. A
    // net is resolved once every such driver is scheduled; nets driven only
    // by flip-flops or primary inputs are resolved from the start.
    let mut pending = vec![0usize; nets];
    let mut comb_total = 0usize;
    for gate in gates {
        if !gate.kind.is_sequential() {
            pending[gate.output.0] += 1;
            comb_total += 1;
        }
    }
    // readers[net] = combinational gates with that net on an input pin
    // (counted once per pin, so a gate reading a net twice waits twice).
    let mut readers: Vec<Vec<usize>> = vec![Vec::new(); nets];
    // waiting[gate] = input pins still connected to unresolved nets.
    let mut waiting = vec![0usize; gates.len()];
    for (idx, gate) in gates.iter().enumerate() {
        if gate.kind.is_sequential() {
            continue;
        }
        for input in &gate.inputs {
            if pending[input.0] > 0 {
                readers[input.0].push(idx);
                waiting[idx] += 1;
            }
        }
    }
    // Kahn's algorithm over the net-resolution dependency graph: O(V+E).
    // The FIFO is seeded in gate-index order, keeping the order
    // deterministic for a given netlist.
    let mut order = Vec::with_capacity(comb_total);
    let mut queue = std::collections::VecDeque::new();
    for (idx, gate) in gates.iter().enumerate() {
        if !gate.kind.is_sequential() && waiting[idx] == 0 {
            queue.push_back(idx);
        }
    }
    while let Some(idx) = queue.pop_front() {
        order.push(idx);
        let output = gates[idx].output.0;
        pending[output] -= 1;
        if pending[output] == 0 {
            for &reader in &readers[output] {
                waiting[reader] -= 1;
                if waiting[reader] == 0 {
                    queue.push_back(reader);
                }
            }
        }
    }
    if order.len() == comb_total {
        Ok(order)
    } else {
        Err(NetlistError::CombinationalCycle)
    }
}

/// A structural simulator over a [`Netlist`].
///
/// Flip-flops power up at 0. One [`Simulator::step`] evaluates the
/// combinational logic with the current register states and input vector,
/// then fires the clock edge.
///
/// # Examples
///
/// ```
/// use casbus_netlist::{Netlist, Simulator, Value};
///
/// let mut nl = Netlist::new("andgate");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let y = nl.and2(a, b);
/// nl.mark_output("y", y);
///
/// let mut sim = Simulator::new(&nl)?;
/// sim.set_input("a", true)?;
/// sim.set_input("b", true)?;
/// sim.eval();
/// assert_eq!(sim.output("y")?, Value::One);
/// # Ok::<(), casbus_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    order: Vec<usize>,
    nets: Vec<Value>,
    dff_state: Vec<Value>,
    /// Indices of sequential gates, aligned with `dff_state`.
    dff_gates: Vec<usize>,
    /// Nets with at least one tri-state driver (need Z-reset every eval).
    bus_nets: Vec<usize>,
    /// A net forced to a fixed value (stuck-at fault injection).
    forced: Option<(usize, Value)>,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator; fails on malformed netlists.
    ///
    /// # Errors
    ///
    /// Propagates [`Netlist::validate`] errors.
    pub fn new(netlist: &'a Netlist) -> Result<Self, NetlistError> {
        netlist.validate()?;
        let order = levelize(netlist)?;
        let dff_gates: Vec<usize> = netlist
            .gates()
            .iter()
            .enumerate()
            .filter(|(_, g)| g.kind.is_sequential())
            .map(|(i, _)| i)
            .collect();
        let bus_nets: Vec<usize> = netlist
            .gates()
            .iter()
            .filter(|g| g.kind.is_tristate())
            .map(|g| g.output.0)
            .collect();
        Ok(Self {
            netlist,
            order,
            nets: vec![Value::Z; netlist.net_count()],
            dff_state: vec![Value::Zero; dff_gates.len()],
            dff_gates,
            bus_nets,
            forced: None,
        })
    }

    /// Forces a net to a fixed value on every evaluation (stuck-at fault
    /// injection). Cleared with [`Simulator::clear_force`].
    pub fn force_net(&mut self, net: crate::netlist::NetId, value: Value) {
        self.forced = Some((net.0, value));
    }

    /// Removes any injected fault.
    pub fn clear_force(&mut self) {
        self.forced = None;
    }

    fn apply_force(&mut self, net: usize) {
        if let Some((forced_net, value)) = self.forced {
            if forced_net == net {
                self.nets[net] = value;
            }
        }
    }

    /// Sets one primary input for the next evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownPort`] for a bad name.
    pub fn set_input(&mut self, name: &str, value: bool) -> Result<(), NetlistError> {
        let net = self.netlist.input_net(name)?;
        self.nets[net.0] = Value::from_bool(value);
        Ok(())
    }

    /// Sets all primary inputs at once, declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the input count.
    pub fn set_inputs(&mut self, values: &[bool]) {
        assert_eq!(
            values.len(),
            self.netlist.inputs().len(),
            "input vector length mismatch"
        );
        for (&(_, net), &v) in self.netlist.inputs().iter().zip(values) {
            self.nets[net.0] = Value::from_bool(v);
        }
    }

    /// Evaluates the combinational logic with the current inputs and
    /// register states (no clock edge).
    pub fn eval(&mut self) {
        // An injected fault may sit on a primary-input net.
        if let Some((net, _)) = self.forced {
            self.apply_force(net);
        }
        // Register outputs drive their nets.
        for idx in 0..self.dff_gates.len() {
            let out = self.netlist.gates()[self.dff_gates[idx]].output;
            self.nets[out.0] = self.dff_state[idx];
            self.apply_force(out.0);
        }
        // Bus nets float until a tri-state driver claims them.
        for idx in 0..self.bus_nets.len() {
            let net = self.bus_nets[idx];
            self.nets[net] = Value::Z;
        }
        for order_idx in 0..self.order.len() {
            let gate_idx = self.order[order_idx];
            let gate = &self.netlist.gates()[gate_idx];
            let output = gate.output.0;
            let tristate = gate.kind.is_tristate();
            let value = self.eval_gate(gate_idx);
            if tristate {
                // Resolve against whatever already drives the bus.
                self.nets[output] = resolve_bus(self.nets[output], value);
            } else {
                self.nets[output] = value;
            }
            self.apply_force(output);
        }
    }

    fn eval_gate(&self, gate_idx: usize) -> Value {
        use Value::{One, Zero, X, Z};
        let gate = &self.netlist.gates()[gate_idx];
        let input = |pin: usize| self.nets[gate.inputs[pin].0].as_logic();
        match gate.kind {
            GateKind::Const(b) => Value::from_bool(b),
            GateKind::Buf => input(0),
            GateKind::Not => match input(0) {
                Zero => One,
                One => Zero,
                _ => X,
            },
            GateKind::And2 => and(input(0), input(1)),
            GateKind::Nand2 => invert(and(input(0), input(1))),
            GateKind::Or2 => or(input(0), input(1)),
            GateKind::Nor2 => invert(or(input(0), input(1))),
            GateKind::Xor2 => xor(input(0), input(1)),
            GateKind::Xnor2 => invert(xor(input(0), input(1))),
            GateKind::Mux2 => match input(0) {
                Zero => input(1),
                One => input(2),
                _ => {
                    if input(1) == input(2) && input(1).is_known() {
                        input(1)
                    } else {
                        X
                    }
                }
            },
            GateKind::TriBuf => match input(0) {
                Zero => Z,
                One => input(1),
                _ => X,
            },
            GateKind::DffE => unreachable!("sequential gates are not levelized"),
        }
    }

    /// Fires the clock edge: every enabled flip-flop captures its D input.
    /// Call after [`Simulator::eval`].
    pub fn clock(&mut self) {
        let mut next = self.dff_state.clone();
        for (slot, &gate_idx) in next.iter_mut().zip(&self.dff_gates) {
            let gate = &self.netlist.gates()[gate_idx];
            let d = self.nets[gate.inputs[0].0].as_logic();
            let en = self.nets[gate.inputs[1].0].as_logic();
            *slot = match en {
                Value::One => d,
                Value::Zero => *slot,
                _ => Value::X,
            };
        }
        self.dff_state = next;
    }

    /// Convenience: set inputs, evaluate, read all outputs, then clock.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the input count.
    pub fn step(&mut self, values: &[bool]) -> Vec<(String, Value)> {
        self.set_inputs(values);
        self.eval();
        let outs = self.outputs();
        self.clock();
        outs
    }

    /// Reads one primary output (after [`Simulator::eval`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownPort`] for a bad name.
    pub fn output(&self, name: &str) -> Result<Value, NetlistError> {
        Ok(self.nets[self.netlist.output_net(name)?.0])
    }

    /// Reads all primary outputs, declaration order.
    pub fn outputs(&self) -> Vec<(String, Value)> {
        self.netlist
            .outputs()
            .iter()
            .map(|(name, net)| (name.clone(), self.nets[net.0]))
            .collect()
    }

    /// Current register states, in sequential-gate order.
    pub fn register_states(&self) -> &[Value] {
        &self.dff_state
    }

    /// Resets every register to 0.
    pub fn reset(&mut self) {
        for slot in &mut self.dff_state {
            *slot = Value::Zero;
        }
    }
}

fn and(a: Value, b: Value) -> Value {
    use Value::{One, Zero, X};
    match (a, b) {
        (Zero, _) | (_, Zero) => Zero,
        (One, One) => One,
        _ => X,
    }
}

fn or(a: Value, b: Value) -> Value {
    use Value::{One, Zero, X};
    match (a, b) {
        (One, _) | (_, One) => One,
        (Zero, Zero) => Zero,
        _ => X,
    }
}

fn xor(a: Value, b: Value) -> Value {
    match (a.to_bool(), b.to_bool()) {
        (Some(x), Some(y)) => Value::from_bool(x ^ y),
        _ => Value::X,
    }
}

fn invert(a: Value) -> Value {
    match a {
        Value::Zero => Value::One,
        Value::One => Value::Zero,
        _ => Value::X,
    }
}

/// Wired-bus resolution between the current bus level and one more driver.
fn resolve_bus(current: Value, driven: Value) -> Value {
    use Value::{X, Z};
    match (current, driven) {
        (Z, v) => v,
        (v, Z) => v,
        (a, b) if a == b => a,
        _ => X,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinational_gates_truth_tables() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let and_o = nl.and2(a, b);
        let or_o = nl.or2(a, b);
        let xor_o = nl.xor2(a, b);
        let not_o = nl.not(a);
        nl.mark_output("and", and_o);
        nl.mark_output("or", or_o);
        nl.mark_output("xor", xor_o);
        nl.mark_output("not", not_o);
        let mut sim = Simulator::new(&nl).unwrap();
        for (a_v, b_v) in [(false, false), (false, true), (true, false), (true, true)] {
            sim.set_inputs(&[a_v, b_v]);
            sim.eval();
            assert_eq!(sim.output("and").unwrap(), Value::from_bool(a_v && b_v));
            assert_eq!(sim.output("or").unwrap(), Value::from_bool(a_v || b_v));
            assert_eq!(sim.output("xor").unwrap(), Value::from_bool(a_v ^ b_v));
            assert_eq!(sim.output("not").unwrap(), Value::from_bool(!a_v));
        }
    }

    #[test]
    fn mux_selects() {
        let mut nl = Netlist::new("t");
        let s = nl.add_input("s");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.mux2(s, a, b);
        nl.mark_output("y", y);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_inputs(&[false, true, false]);
        sim.eval();
        assert_eq!(sim.output("y").unwrap(), Value::One, "sel=0 picks a");
        sim.set_inputs(&[true, true, false]);
        sim.eval();
        assert_eq!(sim.output("y").unwrap(), Value::Zero, "sel=1 picks b");
    }

    #[test]
    fn dff_shifts_on_clock() {
        let mut nl = Netlist::new("t");
        let d = nl.add_input("d");
        let en = nl.add_input("en");
        let q = nl.dff_e(d, en);
        nl.mark_output("q", q);
        let mut sim = Simulator::new(&nl).unwrap();
        // Power-on: q = 0.
        sim.set_inputs(&[true, true]);
        sim.eval();
        assert_eq!(sim.output("q").unwrap(), Value::Zero);
        sim.clock();
        sim.eval();
        assert_eq!(sim.output("q").unwrap(), Value::One);
        // Disabled: holds.
        sim.set_inputs(&[false, false]);
        sim.eval();
        sim.clock();
        sim.eval();
        assert_eq!(sim.output("q").unwrap(), Value::One);
    }

    #[test]
    fn tristate_bus_resolution() {
        let mut nl = Netlist::new("t");
        let en1 = nl.add_input("en1");
        let en2 = nl.add_input("en2");
        let d1 = nl.add_input("d1");
        let d2 = nl.add_input("d2");
        let bus = nl.new_net();
        nl.add_tribuf_onto(bus, en1, d1);
        nl.add_tribuf_onto(bus, en2, d2);
        nl.mark_output("bus", bus);
        let mut sim = Simulator::new(&nl).unwrap();
        // Nobody drives: Z.
        sim.set_inputs(&[false, false, true, false]);
        sim.eval();
        assert_eq!(sim.output("bus").unwrap(), Value::Z);
        // One driver.
        sim.set_inputs(&[true, false, true, false]);
        sim.eval();
        assert_eq!(sim.output("bus").unwrap(), Value::One);
        // Two agreeing drivers.
        sim.set_inputs(&[true, true, true, true]);
        sim.eval();
        assert_eq!(sim.output("bus").unwrap(), Value::One);
        // Conflict.
        sim.set_inputs(&[true, true, true, false]);
        sim.eval();
        assert_eq!(sim.output("bus").unwrap(), Value::X);
    }

    #[test]
    fn shift_register_through_steps() {
        // 3-bit enabled shift register.
        let mut nl = Netlist::new("t");
        let d = nl.add_input("d");
        let en = nl.add_input("en");
        let q0 = nl.dff_e(d, en);
        let q1 = nl.dff_e(q0, en);
        let q2 = nl.dff_e(q1, en);
        nl.mark_output("q2", q2);
        let mut sim = Simulator::new(&nl).unwrap();
        let stream = [true, false, true, true, false, false];
        let mut seen = Vec::new();
        for &bit in &stream {
            let outs = sim.step(&[bit, true]);
            seen.push(outs[0].1);
        }
        // Output is the input delayed by 3 clocks.
        assert_eq!(seen[3..], [Value::One, Value::Zero, Value::One][..],);
    }

    #[test]
    fn x_propagates_through_logic() {
        let mut nl = Netlist::new("t");
        let en = nl.add_input("en");
        let d = nl.add_input("d");
        let bus = nl.new_net();
        nl.add_tribuf_onto(bus, en, d);
        let y = nl.not(bus);
        nl.mark_output("y", y);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_inputs(&[false, true]); // bus floats -> X at the inverter
        sim.eval();
        assert_eq!(sim.output("y").unwrap(), Value::X);
    }

    #[test]
    fn and_short_circuits_zero_with_x() {
        let mut nl = Netlist::new("t");
        let en = nl.add_input("en");
        let d = nl.add_input("d");
        let zero = nl.const0();
        let bus = nl.new_net();
        nl.add_tribuf_onto(bus, en, d);
        let y = nl.and2(bus, zero);
        nl.mark_output("y", y);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_inputs(&[false, false]);
        sim.eval();
        assert_eq!(sim.output("y").unwrap(), Value::Zero, "0 AND X = 0");
    }

    #[test]
    fn value_display_and_conversion() {
        assert_eq!(Value::Zero.to_string(), "0");
        assert_eq!(Value::X.to_string(), "X");
        assert_eq!(Value::from_bool(true), Value::One);
        assert_eq!(Value::One.to_bool(), Some(true));
        assert_eq!(Value::Z.to_bool(), None);
        assert!(!Value::X.is_known());
    }

    #[test]
    fn reset_clears_registers() {
        let mut nl = Netlist::new("t");
        let d = nl.add_input("d");
        let en = nl.add_input("en");
        let q = nl.dff_e(d, en);
        nl.mark_output("q", q);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.step(&[true, true]);
        sim.reset();
        sim.eval();
        assert_eq!(sim.output("q").unwrap(), Value::Zero);
    }
}
