//! Bit-parallel (PPSFP) packed 4-value simulation and fault grading.
//!
//! The serial fault simulator rebuilds a full [`Simulator`](crate::Simulator)
//! per fault and re-evaluates every gate for every pattern:
//! O(faults × patterns × gates). This module is the industrial answer —
//! *pattern-parallel single-fault propagation*:
//!
//! * **Packed values** — every net carries 64 simulation lanes per
//!   [`PackedWord`]; one lane is one test *sequence* (its own power-on
//!   register state). Gates evaluate all 64 lanes with a handful of bitwise
//!   ops. The encoding is three disjoint planes (`one`/`zero`/`z`, with X as
//!   "none set"), which represents the full 4-value algebra of
//!   [`Value`](crate::Value) *exactly* — no conservative fallback to the
//!   serial engine is ever needed, and results are bit-identical to it.
//! * **Golden once, cones per fault** — the fault-free response of every net
//!   at every cycle is computed once per 64-lane block. Each fault then only
//!   re-evaluates its static fanout cone (levelized, closed over tri-state
//!   bus driver groups and flip-flop boundaries), reading clean nets from
//!   the golden snapshot, and stops at the first cycle whose output word
//!   differs.
//! * **Threaded fault partitioning** — the fault list is split across OS
//!   threads with `std::thread::scope`; golden blocks are shared immutably,
//!   each thread owns its scratch overlay. Results are merged in enumeration
//!   order, so the outcome is deterministic and thread-count independent.

use std::sync::Arc;
use std::time::Instant;

use casbus_obs::{trace::CAT_SCHED, MetricsRegistry, TraceEvent, TraceSink};
use casbus_tpg::BitVec;

use crate::fault::{enumerate_faults, FaultCoverage, FaultSite, StuckAt};
use crate::gate::GateKind;
use crate::netlist::{Netlist, NetlistError};
use crate::sim::levelize;

/// A deterministic, thread-count-independent logical timestamp for one
/// fault's trace event (net id with the stuck-at polarity in the low bit).
fn fault_ts(fault: FaultSite) -> u64 {
    (fault.net.0 as u64) << 1 | u64::from(fault.stuck == StuckAt::One)
}

/// Lanes per packed word.
pub const LANES: usize = 64;

/// 64 lanes of 4-value logic, one bit per lane in each plane.
///
/// Exactly one plane bit is set for a lane at 0, 1 or Z; a lane with no
/// plane bit set is X. The planes are kept disjoint by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PackedWord {
    /// Lanes at logic 1.
    pub one: u64,
    /// Lanes at logic 0.
    pub zero: u64,
    /// Lanes at high impedance.
    pub z: u64,
}

impl PackedWord {
    /// All lanes at logic 0.
    pub const ZERO: Self = Self {
        one: 0,
        zero: u64::MAX,
        z: 0,
    };
    /// All lanes at high impedance.
    pub const Z: Self = Self {
        one: 0,
        zero: 0,
        z: u64::MAX,
    };

    /// A word with `mask` lanes at 1 and the remaining lanes at 0.
    pub fn from_ones(mask: u64) -> Self {
        Self {
            one: mask,
            zero: !mask,
            z: 0,
        }
    }

    /// Lanes holding a driven, known 0 or 1.
    pub fn known(self) -> u64 {
        self.one | self.zero
    }

    /// Lanes where this word and `golden` would be told apart by a tester:
    /// both known with different values, or exactly one of the two known
    /// (a driven-vs-floating discrepancy). Mirrors the serial detector.
    pub fn detect(self, golden: Self) -> u64 {
        let fk = self.known();
        let gk = golden.known();
        (fk & gk & (self.one ^ golden.one)) | (fk ^ gk)
    }
}

/// `NOT` over a packed word (X and Z both yield X, as at a gate pin).
fn not(a: PackedWord) -> PackedWord {
    PackedWord {
        one: a.zero,
        zero: a.one,
        z: 0,
    }
}

/// `AND2` over packed words.
fn and(a: PackedWord, b: PackedWord) -> PackedWord {
    PackedWord {
        one: a.one & b.one,
        zero: a.zero | b.zero,
        z: 0,
    }
}

/// `OR2` over packed words.
fn or(a: PackedWord, b: PackedWord) -> PackedWord {
    PackedWord {
        one: a.one | b.one,
        zero: a.zero & b.zero,
        z: 0,
    }
}

/// `XOR2` over packed words (X wherever either side is unknown).
fn xor(a: PackedWord, b: PackedWord) -> PackedWord {
    let known = a.known() & b.known();
    let v = a.one ^ b.one;
    PackedWord {
        one: known & v,
        zero: known & !v,
        z: 0,
    }
}

/// `MUX2` (`sel ? b : a`), including the X-select "both sides agree" rule.
fn mux(sel: PackedWord, a: PackedWord, b: PackedWord) -> PackedWord {
    let sx = !(sel.one | sel.zero);
    PackedWord {
        one: (sel.zero & a.one) | (sel.one & b.one) | (sx & a.one & b.one),
        zero: (sel.zero & a.zero) | (sel.one & b.zero) | (sx & a.zero & b.zero),
        z: 0,
    }
}

/// Tri-state buffer: drives `data` when `en` is 1, Z when 0, X otherwise.
fn tribuf(en: PackedWord, data: PackedWord) -> PackedWord {
    PackedWord {
        one: en.one & data.one,
        zero: en.one & data.zero,
        z: en.zero,
    }
}

/// Wired-bus resolution of one more driver against the current bus word.
fn resolve_bus(current: PackedWord, driven: PackedWord) -> PackedWord {
    PackedWord {
        one: (current.z & driven.one) | (driven.z & current.one) | (current.one & driven.one),
        zero: (current.z & driven.zero) | (driven.z & current.zero) | (current.zero & driven.zero),
        z: current.z & driven.z,
    }
}

/// Enabled flip-flop next-state: captures `d` where `en` is 1, holds where
/// `en` is 0, and goes X where `en` is unknown.
fn clock_dff(q: PackedWord, d: PackedWord, en: PackedWord) -> PackedWord {
    PackedWord {
        one: (en.one & d.one) | (en.zero & q.one),
        zero: (en.one & d.zero) | (en.zero & q.zero),
        z: 0,
    }
}

/// The fault-free response of one ≤64-lane block: a post-evaluation
/// snapshot of every net at every cycle, plus the per-cycle active-lane
/// masks (lanes whose sequence is still supplying vectors).
#[derive(Debug, Clone)]
pub struct GoldenBlock {
    cycles: usize,
    net_count: usize,
    /// `nets[cycle * net_count + net]`, values after combinational eval.
    nets: Vec<PackedWord>,
    /// Per cycle: lanes whose sequence length exceeds the cycle index.
    active: Vec<u64>,
    /// Union of all active lanes.
    all_lanes: u64,
}

impl GoldenBlock {
    /// Mask of every lane carried by this block.
    pub fn lane_mask(&self) -> u64 {
        self.all_lanes
    }

    fn cycle(&self, t: usize) -> &[PackedWord] {
        &self.nets[t * self.net_count..(t + 1) * self.net_count]
    }
}

/// Per-worker trace events buffered before one batched push to the sink.
const TRACE_FLUSH_EVENTS: usize = 1024;

/// Per-thread mutable state for fault propagation. Reused across faults;
/// stale entries are invalidated by epoch stamps rather than clearing.
#[derive(Debug)]
struct Scratch {
    /// Faulty net values, valid where `net_stamp` matches the fault epoch.
    overlay: Vec<PackedWord>,
    /// Fault epoch per net: marks the static dirty set of the current cone.
    net_stamp: Vec<u64>,
    /// Fault epoch per gate: marks cone membership during the BFS.
    gate_stamp: Vec<u64>,
    /// Cycle token per net: marks bus nets already Z-reset this cycle.
    bus_stamp: Vec<u64>,
    /// Faulty register state per flip-flop slot (cone slots only).
    faulty_state: Vec<PackedWord>,
    epoch: u64,
    cycle_token: u64,
    /// Combinational cone gates, levelized order.
    cone_gates: Vec<usize>,
    /// Sequential gates inside the cone.
    cone_dffs: Vec<usize>,
    /// Primary-output nets inside the dirty set.
    dirty_outputs: Vec<usize>,
    /// BFS worklist of dirty nets.
    queue: Vec<usize>,
    /// Buffered per-fault trace events, flushed once per partition so the
    /// sink's lock is taken per chunk rather than per fault.
    events: Vec<TraceEvent>,
}

impl Scratch {
    fn new(engine: &PackedEngine<'_>) -> Self {
        let nets = engine.netlist.net_count();
        let gates = engine.netlist.gates().len();
        Self {
            overlay: vec![PackedWord::Z; nets],
            net_stamp: vec![0; nets],
            gate_stamp: vec![0; gates],
            bus_stamp: vec![0; nets],
            faulty_state: vec![PackedWord::ZERO; engine.dff_gates.len()],
            epoch: 0,
            cycle_token: 0,
            cone_gates: Vec::new(),
            cone_dffs: Vec::new(),
            dirty_outputs: Vec::new(),
            queue: Vec::new(),
            events: Vec::new(),
        }
    }
}

/// A reusable pattern-parallel single-fault-propagation engine over one
/// netlist. Construction levelizes the circuit and prebuilds fanout and
/// bus-driver indices; the engine can then grade any number of pattern
/// blocks and fault lists without touching the netlist again.
pub struct PackedEngine<'a> {
    netlist: &'a Netlist,
    /// Combinational gates in evaluation order.
    order: Vec<usize>,
    /// Evaluation-order position per gate (combinational gates only).
    pos: Vec<usize>,
    /// Per net: gates reading it on at least one pin.
    readers: Vec<Vec<usize>>,
    /// Per net: tri-state gates driving it (non-empty only for bus nets).
    bus_drivers: Vec<Vec<usize>>,
    /// Nets with at least one tri-state driver.
    bus_nets: Vec<usize>,
    /// Sequential gate indices; slot order matches the serial simulator.
    dff_gates: Vec<usize>,
    /// Per gate: its flip-flop slot, or `usize::MAX`.
    dff_slot: Vec<usize>,
    input_nets: Vec<usize>,
    output_nets: Vec<usize>,
    /// Worker-thread override; `None` means one per available core.
    threads: Option<usize>,
    /// Event sink; the default [`casbus_obs::NullSink`] is disabled and
    /// costs one branch per emission site on the grading path.
    trace: Arc<dyn TraceSink>,
    /// Optional aggregate-metrics registry (throughput, fault totals).
    metrics: Option<Arc<MetricsRegistry>>,
}

impl std::fmt::Debug for PackedEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedEngine")
            .field("netlist", &self.netlist.name())
            .field("gates", &self.netlist.gates().len())
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl<'a> PackedEngine<'a> {
    /// Builds the engine; fails on malformed netlists.
    ///
    /// # Errors
    ///
    /// Propagates [`Netlist::validate`] errors.
    pub fn new(netlist: &'a Netlist) -> Result<Self, NetlistError> {
        netlist.validate()?;
        let order = levelize(netlist)?;
        let gates = netlist.gates();
        let mut pos = vec![usize::MAX; gates.len()];
        for (p, &g) in order.iter().enumerate() {
            pos[g] = p;
        }
        let mut readers: Vec<Vec<usize>> = vec![Vec::new(); netlist.net_count()];
        for (idx, gate) in gates.iter().enumerate() {
            for input in &gate.inputs {
                if readers[input.0].last() != Some(&idx) {
                    readers[input.0].push(idx);
                }
            }
        }
        let mut bus_drivers: Vec<Vec<usize>> = vec![Vec::new(); netlist.net_count()];
        for (idx, gate) in gates.iter().enumerate() {
            if gate.kind.is_tristate() {
                bus_drivers[gate.output.0].push(idx);
            }
        }
        let bus_nets: Vec<usize> = (0..netlist.net_count())
            .filter(|&n| !bus_drivers[n].is_empty())
            .collect();
        let dff_gates: Vec<usize> = gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.kind.is_sequential())
            .map(|(i, _)| i)
            .collect();
        let mut dff_slot = vec![usize::MAX; gates.len()];
        for (slot, &g) in dff_gates.iter().enumerate() {
            dff_slot[g] = slot;
        }
        Ok(Self {
            order,
            pos,
            readers,
            bus_drivers,
            bus_nets,
            dff_gates,
            dff_slot,
            input_nets: netlist.inputs().iter().map(|&(_, n)| n.0).collect(),
            output_nets: netlist.outputs().iter().map(|&(_, n)| n.0).collect(),
            netlist,
            threads: None,
            trace: casbus_obs::trace::null_sink(),
            metrics: None,
        })
    }

    /// Overrides the worker-thread count (clamped to at least 1). The
    /// default is one worker per available core. Results are identical for
    /// any thread count; this knob exists for scaling experiments and for
    /// deterministic testing of the partitioned path.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Installs a trace sink. Per-fault grading results are recorded as
    /// `"ppsfp"` instants with deterministic logical timestamps (identical
    /// for any thread count); partition work items are recorded as
    /// [`CAT_SCHED`] spans (worker id, faults graded, wall-clock µs), the
    /// one category the canonical trace export excludes.
    #[must_use]
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = sink;
        self
    }

    /// Installs a metrics registry; [`PackedEngine::fault_coverage`] then
    /// publishes `ppsfp.{faults.total,faults.detected,patterns,elapsed_us,
    /// faults_per_sec,patterns_per_sec}` and
    /// [`PackedEngine::grade_block`] counts `ppsfp.{blocks,faults}_graded`.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// Evaluates one combinational gate from packed input words.
    fn eval_gate(&self, gate_idx: usize, read: &impl Fn(usize) -> PackedWord) -> PackedWord {
        let gate = &self.netlist.gates()[gate_idx];
        let input = |pin: usize| read(gate.inputs[pin].0);
        match gate.kind {
            GateKind::Const(b) => {
                if b {
                    PackedWord::from_ones(u64::MAX)
                } else {
                    PackedWord::ZERO
                }
            }
            GateKind::Buf => not(not(input(0))),
            GateKind::Not => not(input(0)),
            GateKind::And2 => and(input(0), input(1)),
            GateKind::Nand2 => not(and(input(0), input(1))),
            GateKind::Or2 => or(input(0), input(1)),
            GateKind::Nor2 => not(or(input(0), input(1))),
            GateKind::Xor2 => xor(input(0), input(1)),
            GateKind::Xnor2 => not(xor(input(0), input(1))),
            GateKind::Mux2 => mux(input(0), input(1), input(2)),
            GateKind::TriBuf => tribuf(input(0), input(1)),
            GateKind::DffE => unreachable!("sequential gates are not levelized"),
        }
    }

    /// Simulates the fault-free circuit over up to [`LANES`] sequences
    /// (lane `l` runs `sequences[l]` from power-on) and snapshots every
    /// net at every cycle.
    ///
    /// # Panics
    ///
    /// Panics when more than [`LANES`] sequences are supplied or a vector's
    /// width differs from the primary-input count.
    pub fn build_golden(&self, sequences: &[Vec<BitVec>]) -> GoldenBlock {
        assert!(
            sequences.len() <= LANES,
            "a block holds at most {LANES} lanes"
        );
        let net_count = self.netlist.net_count();
        let cycles = sequences.iter().map(Vec::len).max().unwrap_or(0);
        let mut active = Vec::with_capacity(cycles);
        for t in 0..cycles {
            let mut mask = 0u64;
            for (lane, seq) in sequences.iter().enumerate() {
                if t < seq.len() {
                    mask |= 1 << lane;
                }
            }
            active.push(mask);
        }
        let all_lanes = active.iter().fold(0, |a, &m| a | m);

        let gates = self.netlist.gates();
        let mut nets = vec![PackedWord::Z; net_count];
        let mut state = vec![PackedWord::ZERO; self.dff_gates.len()];
        let mut snapshot = Vec::with_capacity(cycles * net_count);
        for t in 0..cycles {
            // Primary inputs, packed lane-wise via word-level BitVec access.
            for (i, &net) in self.input_nets.iter().enumerate() {
                let mut word = 0u64;
                for (lane, seq) in sequences.iter().enumerate() {
                    if t < seq.len() {
                        let vector = &seq[t];
                        assert_eq!(
                            vector.len(),
                            self.input_nets.len(),
                            "input vector length mismatch"
                        );
                        word |= (vector.word(i / 64) >> (i % 64) & 1) << lane;
                    }
                }
                nets[net] = PackedWord::from_ones(word);
            }
            // Register outputs drive their nets.
            for (slot, &g) in self.dff_gates.iter().enumerate() {
                nets[gates[g].output.0] = state[slot];
            }
            // Bus nets float until a driver claims them.
            for &b in &self.bus_nets {
                nets[b] = PackedWord::Z;
            }
            for &g in &self.order {
                let out = gates[g].output.0;
                let value = self.eval_gate(g, &|n| nets[n]);
                nets[out] = if gates[g].kind.is_tristate() {
                    resolve_bus(nets[out], value)
                } else {
                    value
                };
            }
            snapshot.extend_from_slice(&nets);
            // Clock edge.
            for (slot, &g) in self.dff_gates.iter().enumerate() {
                let gate = &gates[g];
                state[slot] =
                    clock_dff(state[slot], nets[gate.inputs[0].0], nets[gate.inputs[1].0]);
            }
        }
        GoldenBlock {
            cycles,
            net_count,
            nets: snapshot,
            active,
            all_lanes,
        }
    }

    /// Computes the static fanout cone of `fault_net`: every net the fault
    /// can reach (through gates, tri-state groups and flip-flops), the
    /// combinational gates to re-evaluate (levelized), the flip-flops whose
    /// state may diverge, and the primary outputs worth comparing.
    fn build_cone(&self, scratch: &mut Scratch, fault_net: usize) {
        scratch.epoch += 1;
        let epoch = scratch.epoch;
        scratch.cone_gates.clear();
        scratch.cone_dffs.clear();
        scratch.dirty_outputs.clear();
        scratch.queue.clear();
        scratch.net_stamp[fault_net] = epoch;
        scratch.queue.push(fault_net);
        let gates = self.netlist.gates();
        while let Some(net) = scratch.queue.pop() {
            for &g in &self.readers[net] {
                if scratch.gate_stamp[g] == epoch {
                    continue;
                }
                scratch.gate_stamp[g] = epoch;
                let out = gates[g].output.0;
                if gates[g].kind.is_sequential() {
                    scratch.cone_dffs.push(g);
                } else {
                    scratch.cone_gates.push(g);
                    // A dirty bus must be re-resolved from scratch, which
                    // requires every driver of the group — even clean ones.
                    if !self.bus_drivers[out].is_empty() && out != fault_net {
                        for &driver in &self.bus_drivers[out] {
                            if scratch.gate_stamp[driver] != epoch {
                                scratch.gate_stamp[driver] = epoch;
                                scratch.cone_gates.push(driver);
                            }
                        }
                    }
                }
                if scratch.net_stamp[out] != epoch {
                    scratch.net_stamp[out] = epoch;
                    scratch.queue.push(out);
                }
            }
        }
        scratch.cone_gates.sort_unstable_by_key(|&g| self.pos[g]);
        for (idx, &net) in self.output_nets.iter().enumerate() {
            if scratch.net_stamp[net] == epoch {
                scratch.dirty_outputs.push(idx);
            }
        }
    }

    /// Propagates one fault through one golden block, returning the lanes
    /// that detect it. With `stop_any`, returns as soon as any lane
    /// detects (coverage grading); otherwise runs until every `target`
    /// lane has detected or the block ends (per-lane mask grading).
    fn propagate_block(
        &self,
        block: &GoldenBlock,
        scratch: &mut Scratch,
        fault_net: usize,
        forced: PackedWord,
        target: u64,
        stop_any: bool,
    ) -> u64 {
        let epoch = scratch.epoch;
        let gates = self.netlist.gates();
        // Lanes power on with cleared registers in every block.
        for &g in &scratch.cone_dffs {
            scratch.faulty_state[self.dff_slot[g]] = PackedWord::ZERO;
        }
        scratch.overlay[fault_net] = forced;
        let mut mask = 0u64;
        for t in 0..block.cycles {
            scratch.cycle_token += 1;
            let golden = block.cycle(t);
            for &g in &scratch.cone_dffs {
                let out = gates[g].output.0;
                if out != fault_net {
                    scratch.overlay[out] = scratch.faulty_state[self.dff_slot[g]];
                }
            }
            for i in 0..scratch.cone_gates.len() {
                let g = scratch.cone_gates[i];
                let value = {
                    let overlay = &scratch.overlay;
                    let net_stamp = &scratch.net_stamp;
                    self.eval_gate(g, &|n| {
                        if net_stamp[n] == epoch {
                            overlay[n]
                        } else {
                            golden[n]
                        }
                    })
                };
                let out = gates[g].output.0;
                if out == fault_net {
                    continue; // The injected fault overrides any driver.
                }
                if gates[g].kind.is_tristate() {
                    if scratch.bus_stamp[out] != scratch.cycle_token {
                        scratch.bus_stamp[out] = scratch.cycle_token;
                        scratch.overlay[out] = PackedWord::Z;
                    }
                    scratch.overlay[out] = resolve_bus(scratch.overlay[out], value);
                } else {
                    scratch.overlay[out] = value;
                }
            }
            let active = block.active[t];
            for &oi in &scratch.dirty_outputs {
                let net = self.output_nets[oi];
                mask |= scratch.overlay[net].detect(golden[net]) & active;
            }
            if if stop_any {
                mask != 0
            } else {
                mask & target == target
            } {
                break;
            }
            for &g in &scratch.cone_dffs {
                let gate = &gates[g];
                let read = |n: usize| {
                    if scratch.net_stamp[n] == epoch {
                        scratch.overlay[n]
                    } else {
                        golden[n]
                    }
                };
                let slot = self.dff_slot[g];
                scratch.faulty_state[slot] = clock_dff(
                    scratch.faulty_state[slot],
                    read(gate.inputs[0].0),
                    read(gate.inputs[1].0),
                );
            }
        }
        mask & target
    }

    fn forced_word(fault: FaultSite) -> PackedWord {
        match fault.stuck {
            StuckAt::Zero => PackedWord::ZERO,
            StuckAt::One => PackedWord::from_ones(u64::MAX),
        }
    }

    /// Whether any lane of any block detects `fault`.
    fn detects_any(&self, blocks: &[GoldenBlock], fault: FaultSite, scratch: &mut Scratch) -> bool {
        self.build_cone(scratch, fault.net.0);
        if scratch.dirty_outputs.is_empty() {
            return false; // No primary output in the fanout cone.
        }
        let forced = Self::forced_word(fault);
        blocks.iter().any(|block| {
            block.all_lanes != 0
                && self.propagate_block(block, scratch, fault.net.0, forced, block.all_lanes, true)
                    != 0
        })
    }

    /// Per-fault lane masks against one block: bit `l` of entry `i` is set
    /// when lane `l`'s sequence detects `faults[i]`. The fault list is
    /// partitioned across OS threads; output order matches `faults`.
    pub fn grade_block(&self, block: &GoldenBlock, faults: &[FaultSite]) -> Vec<u64> {
        let masks = self.partitioned(faults, |engine, fault, scratch| {
            engine.build_cone(scratch, fault.net.0);
            let mask = if scratch.dirty_outputs.is_empty() || block.all_lanes == 0 {
                0
            } else {
                let forced = Self::forced_word(fault);
                engine.propagate_block(block, scratch, fault.net.0, forced, block.all_lanes, false)
            };
            if engine.trace.enabled() {
                scratch.events.push(TraceEvent::instant(
                    "ppsfp",
                    "grade",
                    fault_ts(fault),
                    vec![
                        ("net", fault.net.0.into()),
                        ("stuck_one", (fault.stuck == StuckAt::One).into()),
                        ("lanes", u64::from(mask.count_ones()).into()),
                    ],
                ));
            }
            mask
        });
        if let Some(metrics) = &self.metrics {
            metrics.inc("ppsfp.blocks_graded", 1);
            metrics.inc("ppsfp.faults_graded", faults.len() as u64);
        }
        masks
    }

    /// Grades `sequences` against the full collapsed stuck-at fault list,
    /// producing the same [`FaultCoverage`] as the serial reference engine,
    /// bit for bit. Sequences are packed 64 lanes per block; faults are
    /// partitioned across OS threads.
    pub fn fault_coverage(&self, sequences: &[Vec<BitVec>]) -> FaultCoverage {
        let started = Instant::now();
        let faults = enumerate_faults(self.netlist);
        let blocks: Vec<GoldenBlock> = sequences
            .chunks(LANES)
            .map(|chunk| self.build_golden(chunk))
            .collect();
        let detected_flags = self.partitioned(&faults, |engine, fault, scratch| {
            let hit = engine.detects_any(&blocks, fault, scratch);
            if engine.trace.enabled() {
                scratch.events.push(TraceEvent::instant(
                    "ppsfp",
                    "fault",
                    fault_ts(fault),
                    vec![
                        ("net", fault.net.0.into()),
                        ("stuck_one", (fault.stuck == StuckAt::One).into()),
                        ("detected", hit.into()),
                    ],
                ));
            }
            hit
        });
        let mut detected = 0usize;
        let mut undetected = Vec::new();
        for (&fault, &hit) in faults.iter().zip(&detected_flags) {
            if hit {
                detected += 1;
            } else {
                undetected.push(fault);
            }
        }
        if let Some(metrics) = &self.metrics {
            let elapsed = started.elapsed();
            metrics.set("ppsfp.faults.total", faults.len() as u64);
            metrics.set("ppsfp.faults.detected", detected as u64);
            metrics.set("ppsfp.patterns", sequences.len() as u64);
            metrics.set("ppsfp.elapsed_us", elapsed.as_micros() as u64);
            let secs = elapsed.as_secs_f64();
            if secs > 0.0 {
                metrics.set("ppsfp.faults_per_sec", (faults.len() as f64 / secs) as u64);
                metrics.set(
                    "ppsfp.patterns_per_sec",
                    (sequences.len() as f64 / secs) as u64,
                );
            }
        }
        FaultCoverage {
            total: faults.len(),
            detected,
            undetected,
        }
    }

    /// Runs `work` over every fault, splitting the list across OS threads
    /// when it is large enough to amortize spawning. Results keep the input
    /// order regardless of thread count.
    fn partitioned<T, F>(&self, faults: &[FaultSite], work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Self, FaultSite, &mut Scratch) -> T + Sync,
    {
        let threads = self
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        // Below ~4 faults per prospective thread, scratch setup dominates.
        let threads = threads.min(faults.len() / 4).max(1);
        if threads <= 1 {
            let started = Instant::now();
            let mut scratch = Scratch::new(self);
            let out: Vec<T> = faults
                .iter()
                .map(|&f| {
                    let r = work(self, f, &mut scratch);
                    self.flush_events(&mut scratch, false);
                    r
                })
                .collect();
            self.flush_events(&mut scratch, true);
            self.record_partition_span(0, faults.len(), started);
            return out;
        }
        let chunk_len = faults.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = faults
                .chunks(chunk_len)
                .enumerate()
                .map(|(index, chunk)| {
                    let work = &work;
                    scope.spawn(move || {
                        let started = Instant::now();
                        let mut scratch = Scratch::new(self);
                        let out = chunk
                            .iter()
                            .map(|&f| {
                                let r = work(self, f, &mut scratch);
                                self.flush_events(&mut scratch, false);
                                r
                            })
                            .collect::<Vec<T>>();
                        self.flush_events(&mut scratch, true);
                        self.record_partition_span(index, chunk.len(), started);
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("fault-simulation worker panicked"))
                .collect()
        })
    }

    /// Pushes buffered per-fault events to the sink in one batch. `force`
    /// drains unconditionally (end of a partition); otherwise only a full
    /// buffer flushes, so the sink's lock is taken once per
    /// [`TRACE_FLUSH_EVENTS`] faults instead of once per fault.
    fn flush_events(&self, scratch: &mut Scratch, force: bool) {
        if scratch.events.is_empty() || (!force && scratch.events.len() < TRACE_FLUSH_EVENTS) {
            return;
        }
        self.trace.record_batch(std::mem::take(&mut scratch.events));
    }

    /// Records a scheduling-category span for one fault partition. These
    /// events carry wall-clock timestamps and a thread id, so they live in
    /// [`CAT_SCHED`] and are dropped by the canonical (determinism-checked)
    /// trace export.
    fn record_partition_span(&self, index: usize, faults: usize, started: Instant) {
        if !self.trace.enabled() {
            return;
        }
        let dur = started.elapsed().as_micros() as u64;
        self.trace.record(
            TraceEvent::span(
                CAT_SCHED,
                "partition",
                0,
                dur,
                vec![("faults", (faults as u64).into())],
            )
            .on_thread(index as u64),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::fault_simulate_serial;
    use crate::netlist::Netlist;

    fn vectors(patterns: &[&str]) -> Vec<Vec<BitVec>> {
        patterns
            .iter()
            .map(|p| vec![p.parse::<BitVec>().unwrap()])
            .collect()
    }

    fn assert_matches_serial(netlist: &Netlist, sequences: &[Vec<BitVec>]) {
        let serial = fault_simulate_serial(netlist, sequences).unwrap();
        let engine = PackedEngine::new(netlist).unwrap();
        let packed = engine.fault_coverage(sequences);
        assert_eq!(packed, serial);
    }

    #[test]
    fn xor_matches_serial_exactly() {
        let mut nl = Netlist::new("x");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.xor2(a, b);
        nl.mark_output("y", y);
        assert_matches_serial(&nl, &vectors(&["00", "10", "01", "11"]));
        assert_matches_serial(&nl, &vectors(&["10"]));
    }

    #[test]
    fn tristate_bus_matches_serial() {
        let mut nl = Netlist::new("bus");
        let en1 = nl.add_input("en1");
        let en2 = nl.add_input("en2");
        let d1 = nl.add_input("d1");
        let d2 = nl.add_input("d2");
        let bus = nl.new_net();
        nl.add_tribuf_onto(bus, en1, d1);
        nl.add_tribuf_onto(bus, en2, d2);
        let y = nl.not(bus);
        nl.mark_output("bus", bus);
        nl.mark_output("y", y);
        let patterns: Vec<&str> = vec![
            "0000", "1010", "0101", "1111", "1110", "0111", "1000", "0010",
        ];
        assert_matches_serial(&nl, &vectors(&patterns));
    }

    #[test]
    fn sequential_faults_match_serial() {
        let mut nl = Netlist::new("seq");
        let d = nl.add_input("d");
        let en = nl.add_input("en");
        let q0 = nl.dff_e(d, en);
        let q1 = nl.dff_e(q0, en);
        let y = nl.xor2(q1, d);
        nl.mark_output("y", y);
        let sequences: Vec<Vec<BitVec>> = vec![
            vec![
                "11".parse().unwrap(),
                "01".parse().unwrap(),
                "11".parse().unwrap(),
            ],
            vec!["10".parse().unwrap(), "11".parse().unwrap()],
            vec!["01".parse().unwrap()],
        ];
        assert_matches_serial(&nl, &sequences);
    }

    #[test]
    fn threaded_partitioning_is_deterministic() {
        use casbus::{CasGeometry, SchemeSet};
        let set = SchemeSet::enumerate(CasGeometry::new(4, 2).unwrap()).unwrap();
        let nl = crate::synth::synthesize_cas(&set);
        let inputs = nl.inputs().len();
        let sequences: Vec<Vec<BitVec>> = (0..6)
            .map(|s: u64| {
                (0..4)
                    .map(|t| BitVec::from_u64(s.wrapping_mul(0x9E37_79B9).rotate_left(t), inputs))
                    .collect()
            })
            .collect();
        let serial = fault_simulate_serial(&nl, &sequences).unwrap();
        for threads in [1, 2, 4, 7] {
            let engine = PackedEngine::new(&nl).unwrap().with_threads(threads);
            assert_eq!(
                engine.fault_coverage(&sequences),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn more_than_64_sequences_split_into_blocks() {
        let mut nl = Netlist::new("wide");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.and2(a, b);
        nl.mark_output("y", y);
        // 70 one-cycle sequences cycling through the four input patterns.
        let sequences: Vec<Vec<BitVec>> = (0..70u64)
            .map(|i| vec![BitVec::from_u64(i % 4, 2)])
            .collect();
        assert_matches_serial(&nl, &sequences);
    }

    #[test]
    fn cas_netlist_matches_serial() {
        use casbus::{CasGeometry, SchemeSet};
        let set = SchemeSet::enumerate(CasGeometry::new(3, 1).unwrap()).unwrap();
        let nl = crate::synth::synthesize_cas(&set);
        let inputs = nl.inputs().len();
        let mut state = 0xBEEF_CAFE_1234_5678u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 62 & 1 == 1
        };
        let sequences: Vec<Vec<BitVec>> = (0..12)
            .map(|_| {
                (0..5)
                    .map(|_| (0..inputs).map(|_| next()).collect())
                    .collect()
            })
            .collect();
        assert_matches_serial(&nl, &sequences);
    }

    #[test]
    fn grade_block_reports_per_lane_detection() {
        let mut nl = Netlist::new("x");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.xor2(a, b);
        nl.mark_output("y", y);
        let engine = PackedEngine::new(&nl).unwrap();
        let sequences = vectors(&["00", "10", "01", "11"]);
        let block = engine.build_golden(&sequences);
        let faults = enumerate_faults(&nl);
        let masks = engine.grade_block(&block, &faults);
        assert_eq!(masks.len(), faults.len());
        // Every fault of the XOR cone is caught by at least one lane.
        assert!(masks.iter().all(|&m| m != 0));
        // And each mask agrees with a serial single-sequence check.
        for (fault, mask) in faults.iter().zip(&masks) {
            for (lane, seq) in sequences.iter().enumerate() {
                let serial = fault_simulate_serial(&nl, std::slice::from_ref(seq)).unwrap();
                let hit = !serial.undetected.contains(fault);
                assert_eq!(mask >> lane & 1 == 1, hit, "fault {fault} lane {lane}");
            }
        }
    }

    #[test]
    fn empty_pattern_set_detects_nothing() {
        let mut nl = Netlist::new("x");
        let a = nl.add_input("a");
        let y = nl.not(a);
        nl.mark_output("y", y);
        let engine = PackedEngine::new(&nl).unwrap();
        let cov = engine.fault_coverage(&[]);
        assert_eq!(cov.detected, 0);
        assert_eq!(cov.total, 4);
    }
}
