//! Structural synthesis of a Core Access Switch (paper Fig. 3).
//!
//! The generated netlist implements exactly the behavioural contract of
//! [`casbus::Cas`]:
//!
//! * a `k`-bit instruction **shift register** clocked while `config` is
//!   asserted, threaded between `e0` and `s0`,
//! * a `k`-bit **update (shadow) register** loaded on `update`,
//! * a shared-prefix **instruction decoder** producing one select line per
//!   TEST scheme,
//! * the **N/P switch fabric**: per-wire AND-OR selection networks plus the
//!   bypass muxes, and tri-state buffers on the core-side outputs (high
//!   impedance outside TEST mode, as the paper specifies).
//!
//! Port convention: inputs `config`, `update`, `e0..e{N−1}`, `i0..i{P−1}`;
//! outputs `s0..s{N−1}`, `o0..o{P−1}`. The clock is implicit in
//! [`Simulator::clock`](crate::sim::Simulator::clock).

use casbus::{SchemeSet, SwitchScheme};

use crate::netlist::{NetId, Netlist};

/// Synthesizes the gate-level CAS for an enumerated scheme set.
///
/// The update register takes effect at the clock edge, so an instruction
/// shifted in becomes active on the cycle *after* the `update` pulse — one
/// cycle later than the behavioural model's immediate
/// [`load_instruction`](casbus::Cas::load_instruction); the serial protocol
/// in [`casbus::CasChain::configure`] already accounts for this.
///
/// # Examples
///
/// ```
/// use casbus::{CasGeometry, SchemeSet};
/// use casbus_netlist::synth::synthesize_cas;
///
/// let set = SchemeSet::enumerate(CasGeometry::new(3, 1)?)?;
/// let nl = synthesize_cas(&set);
/// assert_eq!(nl.inputs().len(), 2 + 3 + 1);   // config, update, e*, i*
/// assert_eq!(nl.outputs().len(), 3 + 1);      // s*, o*
/// nl.validate()?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn synthesize_cas(set: &SchemeSet) -> Netlist {
    let geometry = set.geometry();
    let n = geometry.bus_width();
    let p = geometry.switched_wires();
    let k = geometry.instruction_width() as usize;
    let m_schemes = set.len();

    let mut nl = Netlist::new(format!("cas_n{n}_p{p}"));
    let config = nl.add_input("config");
    let update = nl.add_input("update");
    let e: Vec<NetId> = (0..n).map(|w| nl.add_input(format!("e{w}"))).collect();
    let i: Vec<NetId> = (0..p).map(|j| nl.add_input(format!("i{j}"))).collect();

    // Instruction shift register: bits enter at index k−1 from e0 and exit
    // at index 0 towards s0 (LSB-first opcodes, like the behavioural model).
    let mut ir_q = vec![NetId(usize::MAX); k];
    for j in (0..k).rev() {
        let d = if j == k - 1 { e[0] } else { ir_q[j + 1] };
        ir_q[j] = nl.dff_e(d, config);
    }

    // Update (shadow) register holding the active instruction.
    let shadow: Vec<NetId> = ir_q.iter().map(|&q| nl.dff_e(q, update)).collect();
    let shadow_n: Vec<NetId> = shadow.iter().map(|&q| nl.not(q)).collect();

    // Shared-prefix decoder: full sub-decoders over the two halves of the
    // opcode, combined only for the opcodes that exist.
    let (lo_bits, hi_bits) = shadow.split_at(k / 2);
    let (lo_neg, hi_neg) = shadow_n.split_at(k / 2);
    let lo = decode_full(&mut nl, lo_bits, lo_neg);
    let hi = decode_full(&mut nl, hi_bits, hi_neg);
    let lo_width = lo_bits.len();
    let scheme_sel: Vec<NetId> = (0..m_schemes)
        .map(|idx| {
            let opcode = idx + 1; // TEST opcodes start after BYPASS (0)
            let lo_part = opcode & ((1 << lo_width) - 1);
            let hi_part = opcode >> lo_width;
            if hi.len() == 1 {
                lo[lo_part]
            } else {
                nl.and2(lo[lo_part], hi[hi_part])
            }
        })
        .collect();

    // TEST-mode detector: 1 ≤ opcode ≤ m_schemes, and not configuring.
    let nonzero = nl.or_tree(&shadow);
    let le_max = compare_le_const(&mut nl, &shadow, &shadow_n, m_schemes as u64);
    let not_config = nl.not(config);
    let in_range = nl.and2(nonzero, le_max);
    let test_active = nl.and2(in_range, not_config);

    // Per-(port, wire) select lines: OR of the schemes assigning that wire
    // to that port.
    let mut sel = vec![vec![None::<NetId>; n]; p];
    for (idx, scheme) in set.iter().enumerate() {
        for (port, row) in sel.iter_mut().enumerate() {
            let wire = scheme.wire_for_port(port);
            row[wire] = Some(match row[wire] {
                None => scheme_sel[idx],
                Some(existing) => nl.or2(existing, scheme_sel[idx]),
            });
        }
    }

    // Core-side outputs o_j: tri-stated AND-OR over candidate wires.
    for (port, row) in sel.iter().enumerate() {
        let terms: Vec<NetId> = (0..n)
            .filter_map(|wire| row[wire].map(|s| (wire, s)))
            .map(|(wire, s)| nl.and2(s, e[wire]))
            .collect();
        let data = nl.or_tree(&terms);
        let bus = nl.new_net();
        nl.add_tribuf_onto(bus, test_active, data);
        nl.mark_output(format!("o{port}"), bus);
    }

    // Bus-side outputs s_w: bypass e_w unless a scheme claims the wire (then
    // carry the paired core return i_j); wire 0 additionally carries the
    // instruction register during configuration.
    for wire in 0..n {
        let claims: Vec<NetId> = (0..p).filter_map(|port| sel[port][wire]).collect();
        let routed = if claims.is_empty() {
            e[wire]
        } else {
            let claimed_raw = nl.or_tree(&claims);
            let claimed = nl.and2(claimed_raw, test_active);
            let returns: Vec<NetId> = (0..p)
                .filter_map(|port| sel[port][wire].map(|s| (port, s)))
                .map(|(port, s)| nl.and2(s, i[port]))
                .collect();
            let ret = nl.or_tree(&returns);
            nl.mux2(claimed, e[wire], ret)
        };
        let s_net = if wire == 0 {
            nl.mux2(config, routed, ir_q[0])
        } else {
            routed
        };
        nl.mark_output(format!("s{wire}"), s_net);
    }

    nl
}

/// Full decoder over `bits` (LSB first): returns `2^len` one-hot nets,
/// index = opcode value. Recursion shares every prefix term.
fn decode_full(nl: &mut Netlist, bits: &[NetId], negs: &[NetId]) -> Vec<NetId> {
    match bits.len() {
        0 => vec![],
        1 => vec![negs[0], bits[0]],
        _ => {
            let half = bits.len() / 2;
            let lo = decode_full(nl, &bits[..half], &negs[..half]);
            let hi = decode_full(nl, &bits[half..], &negs[half..]);
            let mut out = Vec::with_capacity(lo.len() * hi.len());
            for &h in &hi {
                for &l in &lo {
                    out.push(nl.and2(l, h));
                }
            }
            out
        }
    }
}

/// Builds `value(bits) <= limit` as a ripple comparator from the MSB down.
fn compare_le_const(nl: &mut Netlist, bits: &[NetId], negs: &[NetId], limit: u64) -> NetId {
    // le = NOT gt, where gt is accumulated MSB-first:
    //   gt' = gt OR (eq AND bit AND NOT limit_bit)
    //   eq' = eq AND (bit == limit_bit)
    let mut gt = nl.const0();
    let mut eq = nl.const1();
    for j in (0..bits.len()).rev() {
        let limit_bit = limit >> j & 1 == 1;
        if limit_bit {
            // gt unchanged when the limit bit is 1 (this bit cannot exceed).
            eq = nl.and2(eq, bits[j]);
        } else {
            let exceeds = nl.and2(eq, bits[j]);
            gt = nl.or2(gt, exceeds);
            eq = nl.and2(eq, negs[j]);
        }
    }
    nl.not(gt)
}

/// Reference routing oracle: what the switch fabric must produce for a given
/// scheme and inputs (used by the equivalence tests).
pub fn expected_routing(
    scheme: &SwitchScheme,
    e: &[bool],
    i: &[bool],
) -> (Vec<bool> /* s */, Vec<bool> /* o */) {
    let n = scheme.geometry().bus_width();
    let p = scheme.geometry().switched_wires();
    let mut s: Vec<bool> = e.to_vec();
    let mut o = vec![false; p];
    for port in 0..p {
        let wire = scheme.wire_for_port(port);
        o[port] = e[wire];
        s[wire] = i[port];
    }
    let _ = n;
    (s, o)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Simulator, Value};
    use casbus::{CasGeometry, CasInstruction};

    fn set(n: usize, p: usize) -> SchemeSet {
        SchemeSet::enumerate(CasGeometry::new(n, p).unwrap()).unwrap()
    }

    /// Drives the netlist through the serial configuration protocol.
    fn load_instruction(sim: &mut Simulator<'_>, set: &SchemeSet, instr: &CasInstruction) {
        let k = set.geometry().instruction_width();
        let n = set.geometry().bus_width();
        let p = set.geometry().switched_wires();
        let bits = instr.encode(set.len(), k);
        for bit in bits.iter() {
            let mut inputs = vec![false; 2 + n + p];
            inputs[0] = true; // config
            inputs[2] = bit; // e0
            sim.step(&inputs);
        }
        let mut inputs = vec![false; 2 + n + p];
        inputs[1] = true; // update
        sim.step(&inputs);
    }

    fn run_cycle(
        sim: &mut Simulator<'_>,
        n: usize,
        p: usize,
        e: &[bool],
        i: &[bool],
    ) -> (Vec<Value>, Vec<Value>) {
        let mut inputs = vec![false; 2 + n + p];
        inputs[2..2 + n].copy_from_slice(e);
        inputs[2 + n..].copy_from_slice(i);
        sim.set_inputs(&inputs);
        sim.eval();
        let s: Vec<Value> = (0..n)
            .map(|w| sim.output(&format!("s{w}")).unwrap())
            .collect();
        let o: Vec<Value> = (0..p)
            .map(|j| sim.output(&format!("o{j}")).unwrap())
            .collect();
        sim.clock();
        (s, o)
    }

    #[test]
    fn netlist_is_well_formed_for_table1_geometries() {
        for (n, p) in [(3, 1), (4, 1), (4, 2), (4, 3), (5, 2), (6, 3)] {
            let nl = synthesize_cas(&set(n, p));
            nl.validate().unwrap_or_else(|e| panic!("N={n} P={p}: {e}"));
            assert!(nl.gate_count() > 0);
        }
    }

    #[test]
    fn powers_on_bypassing() {
        let s = set(4, 2);
        let nl = synthesize_cas(&s);
        let mut sim = Simulator::new(&nl).unwrap();
        let (s_out, o_out) = run_cycle(&mut sim, 4, 2, &[true, false, true, true], &[false, false]);
        assert_eq!(
            s_out,
            vec![Value::One, Value::Zero, Value::One, Value::One],
            "bypass passes the bus through"
        );
        assert!(o_out.iter().all(|v| *v == Value::Z), "core side tri-stated");
    }

    #[test]
    fn configured_scheme_routes_like_the_oracle() {
        let s = set(4, 2);
        let nl = synthesize_cas(&s);
        let mut sim = Simulator::new(&nl).unwrap();
        for idx in [0usize, 3, 7, 11] {
            sim.reset();
            load_instruction(&mut sim, &s, &CasInstruction::Test(idx));
            let e = [true, false, true, false];
            let i = [true, true];
            let (s_out, o_out) = run_cycle(&mut sim, 4, 2, &e, &i);
            let (want_s, want_o) = expected_routing(s.scheme(idx).unwrap(), &e, &i);
            for w in 0..4 {
                assert_eq!(s_out[w].to_bool(), Some(want_s[w]), "scheme {idx} s{w}");
            }
            for j in 0..2 {
                assert_eq!(o_out[j].to_bool(), Some(want_o[j]), "scheme {idx} o{j}");
            }
        }
    }

    #[test]
    fn configuration_mode_threads_ir_on_wire0() {
        let s = set(3, 1);
        let nl = synthesize_cas(&s);
        let mut sim = Simulator::new(&nl).unwrap();
        let k = s.geometry().instruction_width() as usize;
        // Shift k ones in; after k more shifts they emerge on s0.
        let mut seen = Vec::new();
        for step in 0..2 * k {
            let bit = step < k;
            let mut inputs = vec![false; 2 + 3 + 1];
            inputs[0] = true;
            inputs[2] = bit;
            sim.set_inputs(&inputs);
            sim.eval();
            seen.push(sim.output("s0").unwrap());
            sim.clock();
        }
        assert_eq!(&seen[..k], vec![Value::Zero; k].as_slice());
        assert_eq!(&seen[k..], vec![Value::One; k].as_slice());
    }

    #[test]
    fn bypass_instruction_after_test_releases_core() {
        let s = set(4, 2);
        let nl = synthesize_cas(&s);
        let mut sim = Simulator::new(&nl).unwrap();
        load_instruction(&mut sim, &s, &CasInstruction::Test(0));
        let (_, o_test) = run_cycle(&mut sim, 4, 2, &[true; 4], &[false; 2]);
        assert!(o_test[0].is_known());
        load_instruction(&mut sim, &s, &CasInstruction::Bypass);
        let (_, o_bypass) = run_cycle(&mut sim, 4, 2, &[true; 4], &[false; 2]);
        assert_eq!(o_bypass[0], Value::Z);
    }

    #[test]
    fn unassigned_opcode_behaves_as_bypass() {
        // N=4, P=2: m = 14, k = 4 → codes 14 and 15 unassigned.
        let s = set(4, 2);
        let nl = synthesize_cas(&s);
        let mut sim = Simulator::new(&nl).unwrap();
        // Shift in opcode 15 manually.
        for _ in 0..4 {
            let mut inputs = vec![false; 2 + 4 + 2];
            inputs[0] = true;
            inputs[2] = true;
            sim.step(&inputs);
        }
        let mut inputs = vec![false; 2 + 4 + 2];
        inputs[1] = true;
        sim.step(&inputs);
        let (s_out, o_out) = run_cycle(&mut sim, 4, 2, &[true, true, false, false], &[true, true]);
        assert_eq!(
            s_out
                .iter()
                .map(|v| v.to_bool().unwrap())
                .collect::<Vec<_>>(),
            vec![true, true, false, false]
        );
        assert_eq!(o_out[0], Value::Z);
    }

    #[test]
    fn gate_count_grows_with_m() {
        let small = synthesize_cas(&set(4, 1)).gate_count();
        let mid = synthesize_cas(&set(4, 2)).gate_count();
        let big = synthesize_cas(&set(4, 3)).gate_count();
        assert!(small < mid && mid < big, "{small} < {mid} < {big}");
    }

    #[test]
    fn oracle_matches_behavioural_cas() {
        use casbus::{Cas, CasControl};
        use casbus_tpg::BitVec;
        let s = set(5, 3);
        let mut cas = Cas::new(s.clone());
        for idx in [0usize, 10, 30, 59] {
            cas.load_instruction(&CasInstruction::Test(idx));
            let e: Vec<bool> = (0..5).map(|w| (w * 7 + idx) % 3 == 0).collect();
            let i: Vec<bool> = (0..3).map(|j| (j + idx) % 2 == 0).collect();
            let out = cas
                .clock(
                    &e.iter().copied().collect::<BitVec>(),
                    &i.iter().copied().collect::<BitVec>(),
                    CasControl::run(),
                )
                .unwrap();
            let (want_s, want_o) = expected_routing(s.scheme(idx).unwrap(), &e, &i);
            assert_eq!(out.bus_out.iter().collect::<Vec<_>>(), want_s);
            assert_eq!(out.core_in.unwrap().iter().collect::<Vec<_>>(), want_o);
        }
    }
}
