//! Property-based validation of the logic optimizer: on randomly generated
//! netlists, `opt::optimize` must preserve the computed function exactly
//! while never increasing area.

use casbus_netlist::{area, opt, GateKind, NetId, Netlist, Simulator};
use proptest::prelude::*;

/// Recipe for one random gate: kind selector + input pick seeds.
type GateRecipe = (u8, u64, u64, u64);

/// Builds a random combinational-plus-registers netlist from a recipe.
/// Inputs: `n_inputs` primaries; every gate draws its operands from the
/// already-created nets, so the graph is a DAG by construction.
fn build(n_inputs: usize, recipe: &[GateRecipe], n_outputs: usize) -> Netlist {
    let mut nl = Netlist::new("random");
    let mut nets: Vec<NetId> = (0..n_inputs)
        .map(|i| nl.add_input(format!("in{i}")))
        .collect();
    let en = nl.const1();
    for &(kind_sel, a_seed, b_seed, c_seed) in recipe {
        let pick = |seed: u64, nets: &[NetId]| nets[(seed % nets.len() as u64) as usize];
        let a = pick(a_seed, &nets);
        let b = pick(b_seed, &nets);
        let c = pick(c_seed, &nets);
        let out = match kind_sel % 10 {
            0 => nl.add_gate(GateKind::And2, vec![a, b]),
            1 => nl.add_gate(GateKind::Or2, vec![a, b]),
            2 => nl.add_gate(GateKind::Xor2, vec![a, b]),
            3 => nl.add_gate(GateKind::Nand2, vec![a, b]),
            4 => nl.add_gate(GateKind::Nor2, vec![a, b]),
            5 => nl.add_gate(GateKind::Xnor2, vec![a, b]),
            6 => nl.not(a),
            7 => nl.mux2(a, b, c),
            8 => nl.add_gate(GateKind::Buf, vec![a]),
            _ => nl.dff_e(a, en),
        };
        nets.push(out);
    }
    for o in 0..n_outputs {
        let pick = nets[nets.len() - 1 - (o % nets.len())];
        nl.mark_output(format!("out{o}"), pick);
    }
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimize_preserves_function_and_shrinks(
        recipe in proptest::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u64>(), any::<u64>()),
            1..40,
        ),
        vectors in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 4),
            1..12,
        ),
    ) {
        let nl = build(4, &recipe, 3);
        nl.validate().expect("random netlists are DAGs by construction");
        let optimized = opt::optimize(&nl).expect("optimizer accepts valid netlists");
        optimized.validate().expect("optimizer output is well-formed");
        prop_assert!(
            area::gate_equivalents(&optimized) <= area::gate_equivalents(&nl),
            "optimization must never grow area"
        );

        // Cycle-for-cycle equivalence on the random vector sequence
        // (registers exercised too — the sequence replays in order).
        let mut sim_a = Simulator::new(&nl).expect("valid");
        let mut sim_b = Simulator::new(&optimized).expect("valid");
        for vector in &vectors {
            let out_a = sim_a.step(vector);
            let out_b = sim_b.step(vector);
            for ((name_a, val_a), (name_b, val_b)) in out_a.iter().zip(&out_b) {
                prop_assert_eq!(name_a, name_b);
                prop_assert_eq!(
                    val_a.to_bool(),
                    val_b.to_bool(),
                    "output {} diverged",
                    name_a
                );
            }
        }
    }

    #[test]
    fn optimize_is_idempotent(
        recipe in proptest::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u64>(), any::<u64>()),
            1..25,
        ),
    ) {
        let nl = build(3, &recipe, 2);
        let once = opt::optimize(&nl).expect("valid");
        let twice = opt::optimize(&once).expect("valid");
        prop_assert_eq!(once.gate_count(), twice.gate_count());
    }
}
