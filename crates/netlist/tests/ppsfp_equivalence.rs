//! Property-based equivalence of the packed (PPSFP) fault-simulation
//! engine against the serial reference: on randomly generated netlists —
//! including tri-state buses (the X/Z stress case) and registers — both
//! engines must report *exactly* the same [`FaultCoverage`]: the same
//! detected count and the same undetected fault list, in the same order.

use casbus_netlist::fault::{fault_simulate, fault_simulate_serial};
use casbus_netlist::{GateKind, NetId, Netlist, PackedEngine};
use casbus_tpg::BitVec;
use proptest::prelude::*;

/// Recipe for one random construction step: kind selector + pick seeds.
type GateRecipe = (u8, u64, u64, u64);

const N_INPUTS: usize = 4;

/// Builds a random netlist from a recipe. Every gate draws operands from
/// already-created nets, so the graph is a DAG by construction. Selector
/// values 10–11 instantiate a two-driver tri-state bus, making floating
/// nets, driver conflicts and X propagation reachable.
fn build(recipe: &[GateRecipe]) -> Netlist {
    let mut nl = Netlist::new("random");
    let mut nets: Vec<NetId> = (0..N_INPUTS)
        .map(|i| nl.add_input(format!("in{i}")))
        .collect();
    for &(kind_sel, a_seed, b_seed, c_seed) in recipe {
        let pick = |seed: u64, nets: &[NetId]| nets[(seed % nets.len() as u64) as usize];
        let a = pick(a_seed, &nets);
        let b = pick(b_seed, &nets);
        let c = pick(c_seed, &nets);
        let out = match kind_sel % 12 {
            0 => nl.add_gate(GateKind::And2, vec![a, b]),
            1 => nl.add_gate(GateKind::Or2, vec![a, b]),
            2 => nl.add_gate(GateKind::Xor2, vec![a, b]),
            3 => nl.add_gate(GateKind::Nand2, vec![a, b]),
            4 => nl.add_gate(GateKind::Nor2, vec![a, b]),
            5 => nl.add_gate(GateKind::Xnor2, vec![a, b]),
            6 => nl.not(a),
            7 => nl.mux2(a, b, c),
            8 => nl.add_gate(GateKind::Buf, vec![a]),
            9 => nl.dff_e(a, c),
            _ => {
                // A shared bus with two tri-state drivers; depending on the
                // picked enables it floats, drives, or conflicts (X).
                let bus = nl.new_net();
                nl.add_tribuf_onto(bus, a, b);
                nl.add_tribuf_onto(bus, c, pick(a_seed ^ c_seed.rotate_left(17), &nets));
                bus
            }
        };
        nets.push(out);
    }
    for o in 0..3 {
        nl.mark_output(format!("out{o}"), nets[nets.len() - 1 - (o % nets.len())]);
    }
    nl
}

fn to_sequences(raw: &[Vec<Vec<bool>>]) -> Vec<Vec<BitVec>> {
    raw.iter()
        .map(|seq| {
            seq.iter()
                .map(|bits| bits.iter().copied().collect())
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn packed_matches_serial_exactly(
        recipe in proptest::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u64>(), any::<u64>()),
            1..30,
        ),
        raw in proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec(any::<bool>(), N_INPUTS),
                1..5,
            ),
            1..8,
        ),
    ) {
        let nl = build(&recipe);
        nl.validate().expect("random netlists are DAGs by construction");
        let sequences = to_sequences(&raw);
        let serial = fault_simulate_serial(&nl, &sequences).expect("valid");
        let packed = fault_simulate(&nl, &sequences).expect("valid");
        prop_assert_eq!(&packed.undetected, &serial.undetected);
        prop_assert_eq!(packed.detected, serial.detected);
        prop_assert_eq!(packed.total, serial.total);
    }

    #[test]
    fn thread_partitioning_does_not_change_results(
        recipe in proptest::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u64>(), any::<u64>()),
            1..20,
        ),
        raw in proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec(any::<bool>(), N_INPUTS),
                1..4,
            ),
            1..5,
        ),
        threads in 1usize..6,
    ) {
        let nl = build(&recipe);
        let sequences = to_sequences(&raw);
        let reference = fault_simulate_serial(&nl, &sequences).expect("valid");
        let engine = PackedEngine::new(&nl).expect("valid").with_threads(threads);
        prop_assert_eq!(engine.fault_coverage(&sequences), reference);
    }
}
