//! Trace-determinism contract of the instrumented PPSFP engine: the
//! canonical trace export (scheduling category dropped, thread ids
//! normalized, lines sorted) must be byte-identical no matter how the
//! fault list is partitioned across OS threads, and a disabled sink must
//! never see a single `record` call on the grading hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use casbus_netlist::{GateKind, Netlist, PackedEngine};
use casbus_obs::{MemorySink, TraceEvent, TraceSink};
use casbus_tpg::BitVec;

/// A fixed combinational netlist big enough that every thread count under
/// test actually partitions the fault list (threads are capped at
/// `faults / 4`).
fn fixture() -> Netlist {
    let mut nl = Netlist::new("trace_fixture");
    let inputs: Vec<_> = (0..6).map(|i| nl.add_input(format!("in{i}"))).collect();
    let mut nets = inputs.clone();
    for layer in 0..4 {
        let mut next = Vec::new();
        for (i, pair) in nets.chunks(2).enumerate() {
            let a = pair[0];
            let b = pair[pair.len() - 1];
            let g = match (layer + i) % 4 {
                0 => nl.add_gate(GateKind::And2, vec![a, b]),
                1 => nl.add_gate(GateKind::Xor2, vec![a, b]),
                2 => nl.add_gate(GateKind::Nor2, vec![a, b]),
                _ => nl.add_gate(GateKind::Or2, vec![a, b]),
            };
            next.push(g);
        }
        next.extend_from_slice(&nets[..2]);
        nets = next;
    }
    for (o, &net) in nets.iter().take(3).enumerate() {
        nl.mark_output(format!("out{o}"), net);
    }
    nl.validate().expect("fixture is a DAG");
    nl
}

fn patterns(inputs: usize) -> Vec<Vec<BitVec>> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    (0..12)
        .map(|_| {
            vec![(0..inputs)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    state >> 62 & 1 == 1
                })
                .collect::<BitVec>()]
        })
        .collect()
}

#[test]
fn canonical_trace_is_identical_across_thread_counts() {
    let nl = fixture();
    let sequences = patterns(nl.inputs().len());
    let mut exports = Vec::new();
    let mut coverages = Vec::new();
    for threads in [1usize, 2, 4, 7] {
        let sink = MemorySink::new();
        let engine = PackedEngine::new(&nl)
            .expect("valid")
            .with_threads(threads)
            .with_trace(sink.clone());
        coverages.push(engine.fault_coverage(&sequences));
        assert!(
            !sink.is_empty(),
            "traced run with {threads} thread(s) must emit events"
        );
        exports.push((threads, sink.canonical_jsonl()));
    }
    let (_, reference) = &exports[0];
    assert!(
        reference.lines().count() > 0,
        "canonical export must keep the per-fault events"
    );
    for (threads, export) in &exports[1..] {
        assert_eq!(
            export, reference,
            "canonical trace diverged at {threads} threads"
        );
    }
    for coverage in &coverages[1..] {
        assert_eq!(coverage, &coverages[0]);
    }
}

/// A sink that reports itself disabled but counts any `record` call that
/// reaches it anyway: the zero-cost-when-disabled contract says the hot
/// path must check `enabled()` *before* building an event.
#[derive(Debug, Default)]
struct DisabledCountingSink {
    calls: AtomicU64,
}

impl TraceSink for DisabledCountingSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: TraceEvent) {
        self.calls.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn disabled_sink_sees_zero_events() {
    let nl = fixture();
    let sequences = patterns(nl.inputs().len());
    let sink = Arc::new(DisabledCountingSink::default());
    let engine = PackedEngine::new(&nl)
        .expect("valid")
        .with_threads(4)
        .with_trace(sink.clone());
    let coverage = engine.fault_coverage(&sequences);
    assert!(coverage.total > 0);
    assert_eq!(
        sink.calls.load(Ordering::Relaxed),
        0,
        "disabled sink must never be handed an event"
    );
}
