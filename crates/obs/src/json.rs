//! Minimal JSON serialization helpers shared by the trace and metrics
//! exporters. The observability layer is std-only, so the handful of JSON
//! shapes it emits (strings, integers, floats, flat objects) are written by
//! hand here rather than pulled from a serializer crate.

use std::fmt::Write;

/// Appends `s` to `out` as a JSON string literal (quoted, escaped).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a `"key":` member prefix (with a leading comma when `first` is
/// false), returning the new `first` flag.
pub fn write_key(out: &mut String, key: &str, first: bool) -> bool {
    if !first {
        out.push(',');
    }
    write_escaped(out, key);
    out.push(':');
    false
}

/// Formats an `f64` the way JSON expects (no NaN/inf; finite shortest-ish).
pub fn write_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        let _ = write!(out, "{value}");
    } else {
        out.push_str("null");
    }
}

/// Appends a `u64` in decimal without the intermediate `String` that
/// `to_string` allocates — hot exporters write many numbers per event.
pub fn write_u64(out: &mut String, value: u64) {
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    let mut v = value;
    loop {
        i -= 1;
        digits[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&digits[i..]).expect("ascii digits"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        write_escaped(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn integers_round_trip() {
        for v in [0u64, 1, 9, 10, 1234567890, u64::MAX] {
            let mut s = String::new();
            write_u64(&mut s, v);
            assert_eq!(s, v.to_string());
        }
    }

    #[test]
    fn keys_and_floats() {
        let mut s = String::new();
        let first = write_key(&mut s, "x", true);
        write_f64(&mut s, 1.5);
        write_key(&mut s, "y", first);
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "\"x\":1.5,\"y\":null");
    }
}
