//! Observability for the CAS-BUS reproduction: waveforms, traces, metrics.
//!
//! The CAS-BUS protocol is defined by what happens on wires over clocks
//! (Fig. 4's CONFIGURATION / UPDATE / TEST phases, serial instruction shifts
//! on bus wire 0), so a failing run must be inspectable at exactly that
//! granularity. This crate is the cross-cutting layer every simulator,
//! controller and fault-simulation crate reports into. Three pillars:
//!
//! * [`vcd`] — a standard **Value Change Dump** writer (viewable in GTKWave)
//!   with hierarchical scopes and full 4-value (`0`/`1`/`X`/`Z`) support,
//!   driven through the [`Probe`] trait so instrumented code
//!   never depends on the output format. [`vcd_check`] parses VCD files back
//!   for golden tests and CI self-checks without external tools.
//! * [`trace`] — structured event tracing behind the zero-cost-when-disabled
//!   [`TraceSink`] trait, exportable as JSON Lines or as a
//!   Chrome-trace (`chrome://tracing` / Perfetto) file.
//! * [`metrics`] — a thread-safe registry of counters and log-bucketed
//!   quantile histograms (cycles per phase, bus utilisation per wire,
//!   shift/capture/idle cycles per core, faults/sec; p50/p90/p99/max in
//!   fixed memory, exactly mergeable) with `Display`, JSON and
//!   Prometheus-style text export.
//! * [`ring`] — the [`FlightRecorder`], a
//!   fixed-capacity ring buffer of recent trace events dumped on failure
//!   for focused post-mortems at fleet scale.
//!
//! # Overhead contract
//!
//! Instrumented hot paths hold an `Arc<dyn TraceSink>` (default
//! [`NullSink`]) and an `Option`al probe/metrics handle.
//! Every emission site is gated on [`TraceSink::enabled`](trace::TraceSink)
//! or `Option::is_some` *before* any argument is allocated, so the disabled
//! configuration costs one predictable branch per coarse-grained event —
//! nothing per simulated gate or lane.
//!
//! # Example
//!
//! ```
//! use casbus_obs::probe::Probe;
//! use casbus_obs::vcd::{VcdWriter, Wire4};
//!
//! let mut vcd = VcdWriter::new("1ns");
//! vcd.push_scope("bus");
//! let w0 = vcd.add_wire("wire0", 1);
//! vcd.pop_scope();
//! vcd.set_time(0);
//! vcd.change(w0, &[Wire4::V1]);
//! vcd.set_time(5);
//! vcd.change(w0, &[Wire4::V0]);
//! let text = vcd.render();
//! assert!(text.contains("$enddefinitions"));
//! let doc = casbus_obs::vcd_check::parse(&text).unwrap();
//! assert_eq!(doc.change_count(), 2 + 1); // initial X dump + two edges
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod probe;
pub mod ring;
pub mod trace;
pub mod vcd;
pub mod vcd_check;

pub use metrics::{Histogram, HistogramSummary, MetricsRegistry};
pub use probe::{Probe, SignalId};
pub use ring::{FlightDump, FlightRecorder};
pub use trace::{MemorySink, NullSink, TraceEvent, TraceSink};
pub use vcd::{VcdWriter, Wire4};
