//! A run-metrics registry: named counters and histograms, thread-safe,
//! with `Display` and JSON export.
//!
//! Instrumented crates record coarse-grained aggregates here — cycles per
//! controller phase, per-core shift/capture/idle cycles, per-wire bus busy
//! cycles, faults and patterns per second from the PPSFP engine. Names are
//! dotted paths (`sim.cycles.total`, `core.cpu.shift_cycles`); the registry
//! keeps them sorted so `Display` and JSON output are deterministic.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::json;

/// Sub-buckets per power of two: 3 bits of mantissa below the leading one.
const SUB_BUCKETS: usize = 8;
/// Bucket count for the full `u64` range at 8 sub-buckets per octave:
/// values `0..8` get exact buckets, every higher octave gets 8.
const NUM_BUCKETS: usize = SUB_BUCKETS + (64 - 3) * SUB_BUCKETS;

/// The bucket a value lands in: exact below 8, log-linear above (leading
/// bit picks the octave, the next 3 bits the sub-bucket), so the relative
/// quantile error is bounded by 12.5% with fixed memory for any `u64`.
fn bucket_index(value: u64) -> usize {
    if value < 8 {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros();
        ((msb - 3) as usize) * SUB_BUCKETS + (value >> (msb - 3)) as usize
    }
}

/// Largest value contained in bucket `index` (inverse of [`bucket_index`]).
fn bucket_upper(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        index as u64
    } else {
        let octave = index / SUB_BUCKETS - 1;
        let mantissa = (SUB_BUCKETS + index % SUB_BUCKETS) as u64;
        // The topmost bucket's exclusive upper bound is 2^64, which wraps
        // to 0; the wrapping subtraction then lands on u64::MAX as intended.
        ((mantissa + 1) << octave).wrapping_sub(1)
    }
}

/// A mergeable quantile histogram over `u64` observations.
///
/// Log-bucketed with 8 sub-buckets per power of two: fixed memory
/// (`NUM_BUCKETS` counters) for the full `u64` range, exact `count`, `sum`,
/// `min` and `max`, and quantiles with a bounded 12.5% relative error.
/// Merging two histograms bucket-wise ([`Histogram::merge`]) produces
/// exactly the histogram of the concatenated observations, so per-worker
/// histograms can be folded into fleet-level ones without losing the tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    buckets: [u64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; NUM_BUCKETS],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        self.buckets[bucket_index(value)] += 1;
    }

    /// Folds `other` into `self` bucket-wise: the result is exactly the
    /// histogram of the concatenated observation streams (same quantiles,
    /// same extremes), independent of merge order.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        for (slot, add) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *slot += add;
        }
    }

    /// Mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The nearest-rank `q`-quantile (`q` in `[0, 1]`): the upper bound of
    /// the bucket holding the rank-`ceil(q·count)` observation, clamped to
    /// the exact `[min, max]` envelope. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= rank {
                return bucket_upper(index).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (see [`Histogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// A flat, copyable digest (count/extremes/mean/p50/p90/p99) for
    /// embedding in streamed snapshots without dragging the buckets along.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            min: self.min,
            max: self.max,
            mean: self.mean(),
            p50: self.p50(),
            p90: self.p90(),
            p99: self.p99(),
        }
    }
}

/// The flat digest of a [`Histogram`] at one point in time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Mean of the observations (0.0 when empty).
    pub mean: f64,
    /// Median (nearest-rank, log-bucket resolution).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl HistogramSummary {
    /// Appends this summary as a JSON object to `out`.
    pub fn write_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"count\":{},\"min\":{},\"max\":{},\"mean\":",
            self.count, self.min, self.max
        ));
        json::write_f64(out, self.mean);
        out.push_str(&format!(
            ",\"p50\":{},\"p90\":{},\"p99\":{}}}",
            self.p50, self.p90, self.p99
        ));
    }
}

impl fmt::Display for HistogramSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} p50={} p90={} p99={} max={}",
            self.count, self.p50, self.p90, self.p99, self.max
        )
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, Vec<u64>>,
}

/// The registry. Shared as `Arc<MetricsRegistry>`; all methods take `&self`.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// A fresh shareable registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Adds `delta` to counter `name` (created at zero on first use).
    pub fn inc(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        match inner.counters.get_mut(name) {
            Some(slot) => *slot += delta,
            None => {
                inner.counters.insert(name.to_owned(), delta);
            }
        }
    }

    /// Sets counter `name` to `value` (last write wins).
    pub fn set(&self, name: &str, value: u64) {
        self.inner
            .lock()
            .expect("metrics poisoned")
            .counters
            .insert(name.to_owned(), value);
    }

    /// Records one observation into histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        match inner.histograms.get_mut(name) {
            Some(h) => h.observe(value),
            None => {
                let mut h = Histogram::default();
                h.observe(value);
                inner.histograms.insert(name.to_owned(), h);
            }
        }
    }

    /// Appends one point to series `name` (created empty on first use).
    ///
    /// A series is an append-only ordered list of values — the right shape
    /// for trajectories such as "best makespan after each accepted search
    /// move", where a counter would lose the history and a histogram the
    /// order.
    pub fn append(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        match inner.series.get_mut(name) {
            Some(points) => points.push(value),
            None => {
                inner.series.insert(name.to_owned(), vec![value]);
            }
        }
    }

    /// Snapshot of series `name`, in append order.
    pub fn series(&self, name: &str) -> Option<Vec<u64>> {
        self.inner
            .lock()
            .expect("metrics poisoned")
            .series
            .get(name)
            .cloned()
    }

    /// Current value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .expect("metrics poisoned")
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Snapshot of histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner
            .lock()
            .expect("metrics poisoned")
            .histograms
            .get(name)
            .cloned()
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.inner
            .lock()
            .expect("metrics poisoned")
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> Vec<(String, Histogram)> {
        self.inner
            .lock()
            .expect("metrics poisoned")
            .histograms
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Sum of every counter whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.inner
            .lock()
            .expect("metrics poisoned")
            .counters
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Folds another registry into this one: counters are summed,
    /// histograms combined observation-wise, and series appended in order.
    ///
    /// Batch-serving layers use this to aggregate per-unit registries (one
    /// per device in a fleet run) into one fleet-level registry; merging in
    /// a fixed unit order keeps the result identical across worker-thread
    /// counts, since counter addition is commutative and the caller controls
    /// series order.
    pub fn merge_from(&self, other: &MetricsRegistry) {
        if std::ptr::eq(self, other) {
            return;
        }
        let (counters, histograms, series) = {
            let theirs = other.inner.lock().expect("metrics poisoned");
            (
                theirs.counters.clone(),
                theirs.histograms.clone(),
                theirs.series.clone(),
            )
        };
        let mut inner = self.inner.lock().expect("metrics poisoned");
        for (name, value) in counters {
            *inner.counters.entry(name).or_insert(0) += value;
        }
        for (name, h) in histograms {
            // Bucket-wise: merged quantiles equal the quantiles of the
            // concatenated observation streams.
            inner.histograms.entry(name).or_default().merge(&h);
        }
        for (name, points) in series {
            inner.series.entry(name).or_default().extend(points);
        }
    }

    /// [`merge_from`](Self::merge_from) with every incoming name prefixed
    /// by `prefix` (use a trailing separator, e.g. `"floor.lot.hot."`).
    ///
    /// Multi-tenant serving layers use this to land each tenant's private
    /// registry (its `fleet.*` counters and histograms) inside one merged
    /// registry without tenants colliding: lot *hot*'s `fleet.passed`
    /// becomes `floor.lot.hot.fleet.passed`, queryable next to the
    /// floor-wide `floor.*` aggregates.
    ///
    /// # Examples
    ///
    /// ```
    /// use casbus_obs::MetricsRegistry;
    ///
    /// let lot = MetricsRegistry::new();
    /// lot.set("fleet.passed", 7);
    /// lot.observe("fleet.device.cycles", 100);
    /// let floor = MetricsRegistry::new();
    /// floor.merge_from_prefixed(&lot, "floor.lot.hot.");
    /// assert_eq!(floor.counter("floor.lot.hot.fleet.passed"), 7);
    /// assert!(floor.histogram("floor.lot.hot.fleet.device.cycles").is_some());
    /// ```
    pub fn merge_from_prefixed(&self, other: &MetricsRegistry, prefix: &str) {
        if std::ptr::eq(self, other) && prefix.is_empty() {
            return;
        }
        let (counters, histograms, series) = {
            let theirs = other.inner.lock().expect("metrics poisoned");
            (
                theirs.counters.clone(),
                theirs.histograms.clone(),
                theirs.series.clone(),
            )
        };
        let mut inner = self.inner.lock().expect("metrics poisoned");
        for (name, value) in counters {
            *inner.counters.entry(format!("{prefix}{name}")).or_insert(0) += value;
        }
        for (name, h) in histograms {
            inner
                .histograms
                .entry(format!("{prefix}{name}"))
                .or_default()
                .merge(&h);
        }
        for (name, points) in series {
            inner
                .series
                .entry(format!("{prefix}{name}"))
                .or_default()
                .extend(points);
        }
    }

    /// Drops every counter, histogram and series.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        inner.counters.clear();
        inner.histograms.clear();
        inner.series.clear();
    }

    /// JSON export:
    /// `{"counters":{…},"histograms":{name:{count,sum,min,max,mean,p50,p90,p99}},"series":{name:[…]}}`.
    pub fn to_json(&self) -> String {
        let inner = self.inner.lock().expect("metrics poisoned");
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (name, value) in &inner.counters {
            first = json::write_key(&mut out, name, first);
            out.push_str(&value.to_string());
        }
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (name, h) in &inner.histograms {
            first = json::write_key(&mut out, name, first);
            out.push_str(&format!(
                "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":",
                h.count, h.sum, h.min, h.max
            ));
            json::write_f64(&mut out, h.mean());
            out.push_str(&format!(
                ",\"p50\":{},\"p90\":{},\"p99\":{}",
                h.p50(),
                h.p90(),
                h.p99()
            ));
            out.push('}');
        }
        out.push_str("},\"series\":{");
        let mut first = true;
        for (name, points) in &inner.series {
            first = json::write_key(&mut out, name, first);
            out.push('[');
            for (i, point) in points.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&point.to_string());
            }
            out.push(']');
        }
        out.push_str("}}");
        out
    }

    /// Prometheus text exposition (v0.0.4): counters become gauges,
    /// histograms become summaries with `quantile` labels plus `_sum` and
    /// `_count`. Dotted metric names are rewritten to underscores
    /// (`fleet.devices` → `fleet_devices`); output is sorted by name.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        }
        let inner = self.inner.lock().expect("metrics poisoned");
        let mut out = String::new();
        for (name, value) in &inner.counters {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, h) in &inner.histograms {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (label, value) in [
                ("0.5", h.p50()),
                ("0.9", h.p90()),
                ("0.99", h.p99()),
                ("1", h.max),
            ] {
                out.push_str(&format!("{name}{{quantile=\"{label}\"}} {value}\n"));
            }
            out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
        }
        out
    }
}

impl fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock().expect("metrics poisoned");
        writeln!(
            f,
            "metrics: {} counters, {} histograms, {} series",
            inner.counters.len(),
            inner.histograms.len(),
            inner.series.len()
        )?;
        for (name, value) in &inner.counters {
            writeln!(f, "  {name:<44} {value}")?;
        }
        for (name, h) in &inner.histograms {
            writeln!(
                f,
                "  {name:<44} n={} mean={:.1} p50={} p99={} min={} max={}",
                h.count,
                h.mean(),
                h.p50(),
                h.p99(),
                h.min,
                h.max
            )?;
        }
        for (name, points) in &inner.series {
            let last = points.last().copied().unwrap_or(0);
            writeln!(f, "  {name:<44} {} points, last {last}", points.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.inc("a.x", 3);
        m.inc("a.x", 2);
        m.inc("a.y", 1);
        m.set("b", 9);
        assert_eq!(m.counter("a.x"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.counter_sum("a."), 6);
        assert_eq!(m.counters().len(), 3);
    }

    #[test]
    fn histograms_track_extremes() {
        let m = MetricsRegistry::new();
        for v in [5u64, 1, 9] {
            m.observe("h", v);
        }
        let h = m.histogram("h").unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (3, 15, 1, 9));
        assert!((h.mean() - 5.0).abs() < 1e-9);
        assert!(m.histogram("none").is_none());
    }

    #[test]
    fn bucket_layout_round_trips() {
        // Every bucket's upper bound must land back in that bucket, and
        // bucket indices must be monotone in the value.
        for index in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_upper(index)), index, "index {index}");
        }
        let mut last = 0usize;
        for value in (0u64..4096).chain([u64::MAX / 2, u64::MAX - 1, u64::MAX]) {
            let index = bucket_index(value);
            assert!(index >= last, "non-monotone at {value}");
            assert!(index < NUM_BUCKETS);
            assert!(bucket_upper(index) >= value, "upper bound below {value}");
            last = index;
        }
        // Small values are exact.
        for value in 0u64..8 {
            assert_eq!(bucket_upper(bucket_index(value)), value);
        }
    }

    #[test]
    fn quantiles_are_exact_for_small_values_and_bounded_above() {
        let mut h = Histogram::new();
        for v in 1u64..=100 {
            h.observe(v);
        }
        // Log-bucket resolution: a quantile is never below the true value
        // and within 12.5% above it.
        for (q, exact) in [(0.5, 50u64), (0.9, 90), (0.99, 99), (1.0, 100)] {
            let got = h.quantile(q);
            assert!(got >= exact, "q{q}: {got} < exact {exact}");
            assert!(got as f64 <= exact as f64 * 1.125 + 1.0, "q{q}: {got}");
        }
        assert!(h.p50() < h.p99(), "spread data has non-trivial quantiles");
        assert_eq!(h.quantile(0.0), 1, "q0 clamps to min");
        assert_eq!(h.quantile(1.0), 100, "q1 is the exact max");
        assert_eq!(Histogram::new().quantile(0.5), 0, "empty histogram");

        // A constant stream has degenerate quantiles at exactly the value.
        let mut flat = Histogram::new();
        for _ in 0..1000 {
            flat.observe(4096);
        }
        assert_eq!((flat.p50(), flat.p99()), (4096, 4096), "clamped to max");
    }

    #[test]
    fn merged_quantiles_equal_concatenated_observations() {
        // Two disjoint populations (fast path vs slow tail), observed into
        // separate histograms and merged, must yield exactly the quantiles
        // of one histogram fed the concatenated stream.
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut concatenated = Histogram::new();
        for i in 0u64..900 {
            let v = 100 + i % 50;
            a.observe(v);
            concatenated.observe(v);
        }
        for i in 0u64..100 {
            let v = 10_000 + i * 37;
            b.observe(v);
            concatenated.observe(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, concatenated, "bucket-wise merge is exact");
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(merged.quantile(q), concatenated.quantile(q), "q={q}");
        }
        assert_eq!(merged.summary(), concatenated.summary());
        // The tail lives in b; the merge must not lose it.
        assert!(merged.p99() >= 10_000, "p99 {}", merged.p99());
        assert!(merged.p50() < merged.p99());

        // Merge order does not matter, and empty merges are no-ops.
        let mut reversed = b.clone();
        reversed.merge(&a);
        assert_eq!(reversed, merged);
        merged.merge(&Histogram::new());
        assert_eq!(merged, concatenated);
        let mut empty = Histogram::new();
        empty.merge(&concatenated);
        assert_eq!(empty, concatenated);
    }

    #[test]
    fn display_and_json_are_sorted_and_complete() {
        let m = MetricsRegistry::new();
        m.inc("z.last", 1);
        m.inc("a.first", 2);
        m.observe("lat", 7);
        let text = m.to_string();
        assert!(text.find("a.first").unwrap() < text.find("z.last").unwrap());
        let json = m.to_json();
        assert!(json.contains("\"a.first\":2"));
        assert!(json.contains(
            "\"lat\":{\"count\":1,\"sum\":7,\"min\":7,\"max\":7,\"mean\":7,\
             \"p50\":7,\"p90\":7,\"p99\":7}"
        ));
    }

    #[test]
    fn prometheus_exposition_is_scrapeable() {
        let m = MetricsRegistry::new();
        m.inc("fleet.devices", 256);
        for v in [1u64, 2, 3] {
            m.observe("fleet.device.cycles", v);
        }
        let text = m.to_prometheus();
        assert!(text.contains("# TYPE fleet_devices gauge\nfleet_devices 256\n"));
        assert!(text.contains("# TYPE fleet_device_cycles summary\n"));
        assert!(text.contains("fleet_device_cycles{quantile=\"0.5\"} 2\n"));
        assert!(text.contains("fleet_device_cycles{quantile=\"1\"} 3\n"));
        assert!(text.contains("fleet_device_cycles_sum 6\n"));
        assert!(text.contains("fleet_device_cycles_count 3\n"));
        assert!(
            !text.contains("fleet.devices") && !text.contains("fleet.device.cycles"),
            "metric names are sanitized"
        );
    }

    #[test]
    fn series_preserve_append_order() {
        let m = MetricsRegistry::new();
        for v in [9u64, 7, 7, 3] {
            m.append("search.best", v);
        }
        assert_eq!(m.series("search.best").unwrap(), vec![9, 7, 7, 3]);
        assert!(m.series("missing").is_none());
        let json = m.to_json();
        assert!(json.contains("\"series\":{\"search.best\":[9,7,7,3]}"));
        assert!(m.to_string().contains("4 points, last 3"));
    }

    #[test]
    fn merge_from_sums_counters_and_combines_histograms() {
        let a = MetricsRegistry::new();
        a.inc("fleet.devices", 2);
        a.observe("cycles", 10);
        a.append("trend", 1);
        let b = MetricsRegistry::new();
        b.inc("fleet.devices", 3);
        b.inc("fleet.failed", 1);
        b.observe("cycles", 4);
        b.observe("lat", 7);
        b.append("trend", 2);

        a.merge_from(&b);
        assert_eq!(a.counter("fleet.devices"), 5);
        assert_eq!(a.counter("fleet.failed"), 1);
        let h = a.histogram("cycles").unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 14, 4, 10));
        assert_eq!(a.histogram("lat").unwrap().count, 1);
        assert_eq!(a.series("trend").unwrap(), vec![1, 2]);
        // The source registry is untouched.
        assert_eq!(b.counter("fleet.devices"), 3);

        // Self-merge is a no-op, not a deadlock or a double-count.
        a.merge_from(&a);
        assert_eq!(a.counter("fleet.devices"), 5);
    }

    #[test]
    fn clear_resets_everything() {
        let m = MetricsRegistry::new();
        m.inc("c", 1);
        m.observe("h", 1);
        m.append("s", 1);
        m.clear();
        assert_eq!(m.counters().len(), 0);
        assert!(m.histogram("h").is_none());
        assert!(m.series("s").is_none());
    }

    #[test]
    fn shared_across_threads() {
        let m = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                scope.spawn(move || {
                    for _ in 0..100 {
                        m.inc("n", 1);
                    }
                });
            }
        });
        assert_eq!(m.counter("n"), 400);
    }
}
