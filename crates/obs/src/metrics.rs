//! A run-metrics registry: named counters and histograms, thread-safe,
//! with `Display` and JSON export.
//!
//! Instrumented crates record coarse-grained aggregates here — cycles per
//! controller phase, per-core shift/capture/idle cycles, per-wire bus busy
//! cycles, faults and patterns per second from the PPSFP engine. Names are
//! dotted paths (`sim.cycles.total`, `core.cpu.shift_cycles`); the registry
//! keeps them sorted so `Display` and JSON output are deterministic.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::json;

/// Summary statistics of observed values (a lightweight histogram).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
}

impl Histogram {
    fn observe(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, Vec<u64>>,
}

/// The registry. Shared as `Arc<MetricsRegistry>`; all methods take `&self`.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// A fresh shareable registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Adds `delta` to counter `name` (created at zero on first use).
    pub fn inc(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        match inner.counters.get_mut(name) {
            Some(slot) => *slot += delta,
            None => {
                inner.counters.insert(name.to_owned(), delta);
            }
        }
    }

    /// Sets counter `name` to `value` (last write wins).
    pub fn set(&self, name: &str, value: u64) {
        self.inner
            .lock()
            .expect("metrics poisoned")
            .counters
            .insert(name.to_owned(), value);
    }

    /// Records one observation into histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        match inner.histograms.get_mut(name) {
            Some(h) => h.observe(value),
            None => {
                let mut h = Histogram::default();
                h.observe(value);
                inner.histograms.insert(name.to_owned(), h);
            }
        }
    }

    /// Appends one point to series `name` (created empty on first use).
    ///
    /// A series is an append-only ordered list of values — the right shape
    /// for trajectories such as "best makespan after each accepted search
    /// move", where a counter would lose the history and a histogram the
    /// order.
    pub fn append(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        match inner.series.get_mut(name) {
            Some(points) => points.push(value),
            None => {
                inner.series.insert(name.to_owned(), vec![value]);
            }
        }
    }

    /// Snapshot of series `name`, in append order.
    pub fn series(&self, name: &str) -> Option<Vec<u64>> {
        self.inner
            .lock()
            .expect("metrics poisoned")
            .series
            .get(name)
            .cloned()
    }

    /// Current value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .expect("metrics poisoned")
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Snapshot of histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner
            .lock()
            .expect("metrics poisoned")
            .histograms
            .get(name)
            .copied()
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.inner
            .lock()
            .expect("metrics poisoned")
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Sum of every counter whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.inner
            .lock()
            .expect("metrics poisoned")
            .counters
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Folds another registry into this one: counters are summed,
    /// histograms combined observation-wise, and series appended in order.
    ///
    /// Batch-serving layers use this to aggregate per-unit registries (one
    /// per device in a fleet run) into one fleet-level registry; merging in
    /// a fixed unit order keeps the result identical across worker-thread
    /// counts, since counter addition is commutative and the caller controls
    /// series order.
    pub fn merge_from(&self, other: &MetricsRegistry) {
        if std::ptr::eq(self, other) {
            return;
        }
        let (counters, histograms, series) = {
            let theirs = other.inner.lock().expect("metrics poisoned");
            (
                theirs.counters.clone(),
                theirs.histograms.clone(),
                theirs.series.clone(),
            )
        };
        let mut inner = self.inner.lock().expect("metrics poisoned");
        for (name, value) in counters {
            *inner.counters.entry(name).or_insert(0) += value;
        }
        for (name, h) in histograms {
            let slot = inner.histograms.entry(name).or_default();
            if slot.count == 0 {
                *slot = h;
            } else if h.count > 0 {
                slot.count += h.count;
                slot.sum += h.sum;
                slot.min = slot.min.min(h.min);
                slot.max = slot.max.max(h.max);
            }
        }
        for (name, points) in series {
            inner.series.entry(name).or_default().extend(points);
        }
    }

    /// Drops every counter, histogram and series.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        inner.counters.clear();
        inner.histograms.clear();
        inner.series.clear();
    }

    /// JSON export:
    /// `{"counters":{…},"histograms":{name:{count,sum,min,max,mean}},"series":{name:[…]}}`.
    pub fn to_json(&self) -> String {
        let inner = self.inner.lock().expect("metrics poisoned");
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (name, value) in &inner.counters {
            first = json::write_key(&mut out, name, first);
            out.push_str(&value.to_string());
        }
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (name, h) in &inner.histograms {
            first = json::write_key(&mut out, name, first);
            out.push_str(&format!(
                "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":",
                h.count, h.sum, h.min, h.max
            ));
            json::write_f64(&mut out, h.mean());
            out.push('}');
        }
        out.push_str("},\"series\":{");
        let mut first = true;
        for (name, points) in &inner.series {
            first = json::write_key(&mut out, name, first);
            out.push('[');
            for (i, point) in points.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&point.to_string());
            }
            out.push(']');
        }
        out.push_str("}}");
        out
    }
}

impl fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock().expect("metrics poisoned");
        writeln!(
            f,
            "metrics: {} counters, {} histograms, {} series",
            inner.counters.len(),
            inner.histograms.len(),
            inner.series.len()
        )?;
        for (name, value) in &inner.counters {
            writeln!(f, "  {name:<44} {value}")?;
        }
        for (name, h) in &inner.histograms {
            writeln!(
                f,
                "  {name:<44} n={} mean={:.1} min={} max={}",
                h.count,
                h.mean(),
                h.min,
                h.max
            )?;
        }
        for (name, points) in &inner.series {
            let last = points.last().copied().unwrap_or(0);
            writeln!(f, "  {name:<44} {} points, last {last}", points.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.inc("a.x", 3);
        m.inc("a.x", 2);
        m.inc("a.y", 1);
        m.set("b", 9);
        assert_eq!(m.counter("a.x"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.counter_sum("a."), 6);
        assert_eq!(m.counters().len(), 3);
    }

    #[test]
    fn histograms_track_extremes() {
        let m = MetricsRegistry::new();
        for v in [5u64, 1, 9] {
            m.observe("h", v);
        }
        let h = m.histogram("h").unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (3, 15, 1, 9));
        assert!((h.mean() - 5.0).abs() < 1e-9);
        assert!(m.histogram("none").is_none());
    }

    #[test]
    fn display_and_json_are_sorted_and_complete() {
        let m = MetricsRegistry::new();
        m.inc("z.last", 1);
        m.inc("a.first", 2);
        m.observe("lat", 7);
        let text = m.to_string();
        assert!(text.find("a.first").unwrap() < text.find("z.last").unwrap());
        let json = m.to_json();
        assert!(json.contains("\"a.first\":2"));
        assert!(json.contains("\"lat\":{\"count\":1,\"sum\":7,\"min\":7,\"max\":7,\"mean\":7}"));
    }

    #[test]
    fn series_preserve_append_order() {
        let m = MetricsRegistry::new();
        for v in [9u64, 7, 7, 3] {
            m.append("search.best", v);
        }
        assert_eq!(m.series("search.best").unwrap(), vec![9, 7, 7, 3]);
        assert!(m.series("missing").is_none());
        let json = m.to_json();
        assert!(json.contains("\"series\":{\"search.best\":[9,7,7,3]}"));
        assert!(m.to_string().contains("4 points, last 3"));
    }

    #[test]
    fn merge_from_sums_counters_and_combines_histograms() {
        let a = MetricsRegistry::new();
        a.inc("fleet.devices", 2);
        a.observe("cycles", 10);
        a.append("trend", 1);
        let b = MetricsRegistry::new();
        b.inc("fleet.devices", 3);
        b.inc("fleet.failed", 1);
        b.observe("cycles", 4);
        b.observe("lat", 7);
        b.append("trend", 2);

        a.merge_from(&b);
        assert_eq!(a.counter("fleet.devices"), 5);
        assert_eq!(a.counter("fleet.failed"), 1);
        let h = a.histogram("cycles").unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 14, 4, 10));
        assert_eq!(a.histogram("lat").unwrap().count, 1);
        assert_eq!(a.series("trend").unwrap(), vec![1, 2]);
        // The source registry is untouched.
        assert_eq!(b.counter("fleet.devices"), 3);

        // Self-merge is a no-op, not a deadlock or a double-count.
        a.merge_from(&a);
        assert_eq!(a.counter("fleet.devices"), 5);
    }

    #[test]
    fn clear_resets_everything() {
        let m = MetricsRegistry::new();
        m.inc("c", 1);
        m.observe("h", 1);
        m.append("s", 1);
        m.clear();
        assert_eq!(m.counters().len(), 0);
        assert!(m.histogram("h").is_none());
        assert!(m.series("s").is_none());
    }

    #[test]
    fn shared_across_threads() {
        let m = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                scope.spawn(move || {
                    for _ in 0..100 {
                        m.inc("n", 1);
                    }
                });
            }
        });
        assert_eq!(m.counter("n"), 400);
    }
}
