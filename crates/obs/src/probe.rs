//! The [`Probe`] trait: how instrumented components publish cycle-accurate
//! signal activity without knowing what consumes it.
//!
//! A component (the SoC simulator, the controller) first *declares* its
//! signal hierarchy — scopes and wires — receiving one opaque [`SignalId`]
//! per wire, then repeatedly advances time and reports values. The two
//! standard consumers are [`VcdWriter`](crate::vcd::VcdWriter) (real
//! waveforms) and [`NullProbe`] (discards everything); tests plug in their
//! own recorders.

use crate::vcd::Wire4;

/// Opaque handle for one declared signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalId(pub(crate) usize);

impl SignalId {
    /// The raw declaration index (stable, declaration order).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A consumer of declared signals and their per-cycle values.
///
/// Contract: all declarations happen before the first [`Probe::set_time`];
/// time is monotonically non-decreasing; [`Probe::change`] passes exactly
/// `width` values, most-significant first (index 0 of the slice is the
/// highest bit, matching VCD vector notation).
pub trait Probe {
    /// Opens a named hierarchical scope. Scopes nest.
    fn push_scope(&mut self, name: &str);

    /// Closes the innermost open scope.
    fn pop_scope(&mut self);

    /// Declares a wire of `width` bits in the current scope.
    fn add_wire(&mut self, name: &str, width: usize) -> SignalId;

    /// Advances simulation time (same unit for all signals; the CAS-BUS
    /// instrumentation uses test-clock cycles).
    fn set_time(&mut self, t: u64);

    /// Reports the current value of a signal. Consumers deduplicate: a
    /// value equal to the last reported one produces no output.
    fn change(&mut self, id: SignalId, value: &[Wire4]);

    /// Reports a multi-bit value from the low bits of `bits`.
    fn change_u64(&mut self, id: SignalId, bits: u64, width: usize) {
        let mut values = [Wire4::V0; 64];
        let width = width.min(64);
        for (i, slot) in values[..width].iter_mut().enumerate() {
            // Slice index 0 is the MSB.
            *slot = if bits >> (width - 1 - i) & 1 == 1 {
                Wire4::V1
            } else {
                Wire4::V0
            };
        }
        self.change(id, &values[..width]);
    }

    /// Reports a single-bit value.
    fn change_bit(&mut self, id: SignalId, bit: bool) {
        self.change(id, &[if bit { Wire4::V1 } else { Wire4::V0 }]);
    }
}

impl<P: Probe + ?Sized> Probe for Box<P> {
    fn push_scope(&mut self, name: &str) {
        (**self).push_scope(name);
    }
    fn pop_scope(&mut self) {
        (**self).pop_scope();
    }
    fn add_wire(&mut self, name: &str, width: usize) -> SignalId {
        (**self).add_wire(name, width)
    }
    fn set_time(&mut self, t: u64) {
        (**self).set_time(t);
    }
    fn change(&mut self, id: SignalId, value: &[Wire4]) {
        (**self).change(id, value);
    }
}

/// Shared-ownership probe: the instrumented component holds one handle, the
/// caller keeps another to render the dump afterwards.
impl<P: Probe> Probe for std::rc::Rc<std::cell::RefCell<P>> {
    fn push_scope(&mut self, name: &str) {
        self.borrow_mut().push_scope(name);
    }
    fn pop_scope(&mut self) {
        self.borrow_mut().pop_scope();
    }
    fn add_wire(&mut self, name: &str, width: usize) -> SignalId {
        self.borrow_mut().add_wire(name, width)
    }
    fn set_time(&mut self, t: u64) {
        self.borrow_mut().set_time(t);
    }
    fn change(&mut self, id: SignalId, value: &[Wire4]) {
        self.borrow_mut().change(id, value);
    }
}

/// A probe that discards everything (useful as an explicit placeholder; the
/// instrumented crates prefer `Option<Box<dyn Probe>> = None`, which skips
/// even the virtual calls).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullProbe;

impl Probe for NullProbe {
    fn push_scope(&mut self, _name: &str) {}
    fn pop_scope(&mut self) {}
    fn add_wire(&mut self, _name: &str, _width: usize) -> SignalId {
        SignalId(0)
    }
    fn set_time(&mut self, _t: u64) {}
    fn change(&mut self, _id: SignalId, _value: &[Wire4]) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A recording probe used to pin the default-method bit order.
    #[derive(Default)]
    struct Recorder {
        last: Vec<Wire4>,
    }

    impl Probe for Recorder {
        fn push_scope(&mut self, _name: &str) {}
        fn pop_scope(&mut self) {}
        fn add_wire(&mut self, _name: &str, _width: usize) -> SignalId {
            SignalId(0)
        }
        fn set_time(&mut self, _t: u64) {}
        fn change(&mut self, _id: SignalId, value: &[Wire4]) {
            self.last = value.to_vec();
        }
    }

    #[test]
    fn change_u64_is_msb_first() {
        let mut r = Recorder::default();
        r.change_u64(SignalId(0), 0b110, 3);
        assert_eq!(r.last, vec![Wire4::V1, Wire4::V1, Wire4::V0]);
    }

    #[test]
    fn null_probe_accepts_everything() {
        let mut p = NullProbe;
        p.push_scope("s");
        let id = p.add_wire("w", 4);
        p.set_time(3);
        p.change_bit(id, true);
        p.pop_scope();
    }
}
