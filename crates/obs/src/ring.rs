//! A flight recorder: a fixed-capacity ring buffer of recent trace events.
//!
//! Post-mortem debugging at fleet scale cannot afford a full trace of every
//! device — a healthy 10k-die lot would bury the one interesting failure
//! under gigabytes of passing history. The [`FlightRecorder`] is the
//! aircraft-style answer: every unit of work records into its own small,
//! fixed-capacity ring (old events overwritten, memory bounded by
//! construction), and only when the unit *fails* is the ring dumped. A bad
//! die yields a focused log of its last moments; good dies cost a bounded
//! ring that is simply dropped.
//!
//! The recorder implements [`TraceSink`], so any instrumented component
//! (the compiled session engine's per-step spans, controller phases, …)
//! can record into it unchanged. It is designed for the one-writer case —
//! each fleet worker drives one device at a time, so its mutex is
//! uncontended and a record costs a push plus, at capacity, a pop.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::trace::{TraceEvent, TraceSink};

/// What a [`FlightRecorder`] held when it was dumped: the retained events
/// in emission order, plus how many older events the ring had discarded.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// The retained events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events overwritten before the dump (0 while under capacity).
    pub overwritten: u64,
}

impl FlightDump {
    /// JSON Lines rendering of the retained events (one object per line),
    /// prefixed by nothing — callers add their own framing.
    pub fn jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 128);
        for event in &self.events {
            out.push_str(&event.to_json(false));
            out.push('\n');
        }
        out
    }
}

struct RingState {
    events: VecDeque<TraceEvent>,
    overwritten: u64,
}

/// A fixed-capacity ring-buffer [`TraceSink`] holding the most recent
/// events. See the [module docs](self) for the post-mortem workflow.
///
/// # Examples
///
/// ```
/// use casbus_obs::{FlightRecorder, TraceEvent, TraceSink};
///
/// let recorder = FlightRecorder::new(2);
/// for i in 0..5u64 {
///     recorder.record(TraceEvent::instant("engine", format!("step{i}"), i, vec![]));
/// }
/// let dump = recorder.dump();
/// assert_eq!(dump.events.len(), 2, "ring keeps only the newest events");
/// assert_eq!(dump.events[0].name, "step3");
/// assert_eq!(dump.overwritten, 3);
/// ```
pub struct FlightRecorder {
    capacity: usize,
    state: Mutex<RingState>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().expect("flight recorder poisoned");
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("len", &state.events.len())
            .field("overwritten", &state.overwritten)
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` events (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            state: Mutex::new(RingState {
                events: VecDeque::with_capacity(capacity),
                overwritten: 0,
            }),
        }
    }

    /// The fixed event capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("flight recorder poisoned")
            .events
            .len()
    }

    /// Whether nothing has been recorded (or everything cleared).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the ring: retained events oldest-first plus the
    /// overwrite count. The ring keeps recording afterwards.
    pub fn dump(&self) -> FlightDump {
        let state = self.state.lock().expect("flight recorder poisoned");
        FlightDump {
            events: state.events.iter().cloned().collect(),
            overwritten: state.overwritten,
        }
    }

    /// Empties the ring and resets the overwrite counter (e.g. between
    /// devices when a worker reuses one recorder).
    pub fn clear(&self) {
        let mut state = self.state.lock().expect("flight recorder poisoned");
        state.events.clear();
        state.overwritten = 0;
    }
}

impl TraceSink for FlightRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: TraceEvent) {
        let mut state = self.state.lock().expect("flight recorder poisoned");
        if state.events.len() == self.capacity {
            state.events.pop_front();
            state.overwritten += 1;
        }
        state.events.push_back(event);
    }

    fn record_batch(&self, events: Vec<TraceEvent>) {
        let mut state = self.state.lock().expect("flight recorder poisoned");
        for event in events {
            if state.events.len() == self.capacity {
                state.events.pop_front();
                state.overwritten += 1;
            }
            state.events.push_back(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(i: u64) -> TraceEvent {
        TraceEvent::instant("t", format!("e{i}"), i, vec![])
    }

    #[test]
    fn under_capacity_keeps_everything_in_order() {
        let recorder = FlightRecorder::new(8);
        for i in 0..5 {
            recorder.record(event(i));
        }
        let dump = recorder.dump();
        assert_eq!(dump.overwritten, 0);
        let names: Vec<&str> = dump.events.iter().map(|e| e.name.as_ref()).collect();
        assert_eq!(names, ["e0", "e1", "e2", "e3", "e4"]);
        assert_eq!(recorder.len(), 5);
        assert!(!recorder.is_empty());
    }

    #[test]
    fn over_capacity_retains_newest_and_counts_overwrites() {
        let recorder = FlightRecorder::new(3);
        for i in 0..10 {
            recorder.record(event(i));
        }
        let dump = recorder.dump();
        assert_eq!(dump.overwritten, 7);
        let names: Vec<&str> = dump.events.iter().map(|e| e.name.as_ref()).collect();
        assert_eq!(names, ["e7", "e8", "e9"]);
        // Dumping does not stop the ring.
        recorder.record(event(10));
        assert_eq!(recorder.dump().events.last().unwrap().name, "e10");
    }

    #[test]
    fn batch_recording_matches_one_by_one() {
        let singles = FlightRecorder::new(4);
        let batched = FlightRecorder::new(4);
        let events: Vec<TraceEvent> = (0..9).map(event).collect();
        for e in events.clone() {
            singles.record(e);
        }
        batched.record_batch(events);
        assert_eq!(singles.dump(), batched.dump());
        assert_eq!(singles.dump().overwritten, 5);
    }

    #[test]
    fn clear_resets_ring_and_counter() {
        let recorder = FlightRecorder::new(2);
        for i in 0..5 {
            recorder.record(event(i));
        }
        recorder.clear();
        assert!(recorder.is_empty());
        assert_eq!(recorder.dump().overwritten, 0);
        recorder.record(event(9));
        assert_eq!(recorder.dump().events[0].name, "e9");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let recorder = FlightRecorder::new(0);
        assert_eq!(recorder.capacity(), 1);
        recorder.record(event(0));
        recorder.record(event(1));
        assert_eq!(recorder.dump().events.len(), 1);
    }

    #[test]
    fn dump_jsonl_is_one_object_per_line() {
        let recorder = FlightRecorder::new(4);
        recorder.record(event(0));
        recorder.record(event(1));
        let jsonl = recorder.dump().jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
    }
}
