//! Structured event tracing: spans and instants, exportable as JSON Lines
//! or as a Chrome-trace file (`chrome://tracing` / Perfetto).
//!
//! Instrumented code holds an `Arc<dyn TraceSink>` and guards every
//! emission on [`TraceSink::enabled`] *before* building the event, so the
//! default [`NullSink`] costs one branch and zero allocations. Timestamps
//! are logical (test-bus cycles, fault indices) wherever determinism
//! matters; wall-clock durations appear only in scheduling events, which
//! the canonical export excludes.

use std::fmt;
use std::sync::{Arc, Mutex};

use crate::json;

/// Event category for thread-scheduling observations (which worker ran
/// which partition, wall-clock durations). These are the only events whose
/// content legitimately varies run to run, so
/// [`MemorySink::canonical_jsonl`] excludes exactly this category.
pub const CAT_SCHED: &str = "sched";

/// The event kind, mirroring the Chrome-trace phase letters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TracePhase {
    /// A complete span with a duration (`ph: "X"`).
    Complete,
    /// A point event (`ph: "i"`).
    Instant,
}

impl TracePhase {
    fn chrome_code(self) -> &'static str {
        match self {
            Self::Complete => "X",
            Self::Instant => "i",
        }
    }
}

/// One argument value attached to an event.
#[derive(Debug, Clone, PartialEq, PartialOrd)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl ArgValue {
    fn write_json(&self, out: &mut String) {
        match self {
            Self::U64(v) => json::write_u64(out, *v),
            Self::F64(v) => json::write_f64(out, *v),
            Self::Str(s) => json::write_escaped(out, s),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        Self::U64(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        Self::Str(v.to_owned())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}

/// One trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Category (`"controller"`, `"session"`, `"ppsfp"`, [`CAT_SCHED`], …).
    pub cat: &'static str,
    /// Event name. `Cow` so the common case — a static name like
    /// `"fault"` emitted once per graded fault — costs no allocation,
    /// while formatted names (`format!("step{i}")`) still fit.
    pub name: std::borrow::Cow<'static, str>,
    /// Kind.
    pub phase: TracePhase,
    /// Start timestamp (logical units — cycles or indices — except for
    /// [`CAT_SCHED`] events, which may use wall-clock microseconds).
    pub ts: u64,
    /// Duration for [`TracePhase::Complete`] events, else 0.
    pub dur: u64,
    /// Logical thread / worker id (0 for single-threaded emitters).
    pub tid: u64,
    /// Named arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// A complete span.
    pub fn span(
        cat: &'static str,
        name: impl Into<std::borrow::Cow<'static, str>>,
        ts: u64,
        dur: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) -> Self {
        Self {
            cat,
            name: name.into(),
            phase: TracePhase::Complete,
            ts,
            dur,
            tid: 0,
            args,
        }
    }

    /// A point event.
    pub fn instant(
        cat: &'static str,
        name: impl Into<std::borrow::Cow<'static, str>>,
        ts: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) -> Self {
        Self {
            cat,
            name: name.into(),
            phase: TracePhase::Instant,
            ts,
            dur: 0,
            tid: 0,
            args,
        }
    }

    /// Sets the worker id.
    #[must_use]
    pub fn on_thread(mut self, tid: u64) -> Self {
        self.tid = tid;
        self
    }

    /// One JSON object describing this event (no trailing newline). With
    /// `normalize_tid`, the tid is written as 0 — the canonical form, since
    /// which OS worker processed a partition is scheduling noise.
    pub fn to_json(&self, normalize_tid: bool) -> String {
        let mut out = String::with_capacity(96);
        self.write_json(&mut out, normalize_tid);
        out
    }

    /// Appends the [`to_json`](Self::to_json) object to `out` — the
    /// allocation-free form bulk exporters use.
    pub fn write_json(&self, out: &mut String, normalize_tid: bool) {
        out.push('{');
        let mut first = true;
        first = json::write_key(out, "cat", first);
        json::write_escaped(out, self.cat);
        first = json::write_key(out, "name", first);
        json::write_escaped(out, &self.name);
        first = json::write_key(out, "ph", first);
        json::write_escaped(out, self.phase.chrome_code());
        first = json::write_key(out, "ts", first);
        json::write_u64(out, self.ts);
        if self.phase == TracePhase::Complete {
            first = json::write_key(out, "dur", first);
            json::write_u64(out, self.dur);
        }
        first = json::write_key(out, "tid", first);
        if normalize_tid {
            out.push('0');
        } else {
            json::write_u64(out, self.tid);
        }
        json::write_key(out, "args", first);
        out.push('{');
        let mut afirst = true;
        for (key, value) in &self.args {
            afirst = json::write_key(out, key, afirst);
            value.write_json(out);
        }
        let _ = afirst;
        out.push('}');
        out.push('}');
    }
}

/// A consumer of trace events. Implementations must be shareable across the
/// fault-simulation worker threads.
pub trait TraceSink: Send + Sync {
    /// Whether events are consumed. Emitters check this before building an
    /// event, so a disabled sink costs one branch.
    fn enabled(&self) -> bool;

    /// Records one event.
    fn record(&self, event: TraceEvent);

    /// Records a batch of events, preserving their order. Hot paths that
    /// emit one event per item (e.g. per graded fault) buffer locally and
    /// flush per work chunk through this, so a shared sink pays one
    /// synchronization per chunk instead of one per event. The default
    /// forwards to [`TraceSink::record`] event by event.
    fn record_batch(&self, events: Vec<TraceEvent>) {
        for event in events {
            self.record(event);
        }
    }
}

/// The default sink: disabled, drops everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&self, _event: TraceEvent) {}
}

/// A shareable handle to the default disabled sink.
pub fn null_sink() -> Arc<dyn TraceSink> {
    Arc::new(NullSink)
}

/// An in-memory sink; export as JSONL or a Chrome-trace file afterwards.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// An empty, enabled sink.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Snapshot of all recorded events, emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace sink poisoned").clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace sink poisoned").len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards every recorded event (e.g. between benchmark iterations).
    pub fn clear(&self) {
        self.events.lock().expect("trace sink poisoned").clear();
    }

    /// JSON Lines export: one event object per line, emission order.
    pub fn jsonl(&self) -> String {
        let events = self.events.lock().expect("trace sink poisoned");
        let mut out = String::with_capacity(events.len() * 128);
        for event in events.iter() {
            event.write_json(&mut out, false);
            out.push('\n');
        }
        out
    }

    /// The canonical, scheduling-independent JSONL view: [`CAT_SCHED`]
    /// events are dropped, worker ids are normalized to 0, and lines are
    /// sorted lexicographically. Two runs of the same workload are
    /// byte-identical in this form regardless of thread count.
    pub fn canonical_jsonl(&self) -> String {
        let mut lines: Vec<String> = self
            .events
            .lock()
            .expect("trace sink poisoned")
            .iter()
            .filter(|e| e.cat != CAT_SCHED)
            .map(|e| e.to_json(true))
            .collect();
        lines.sort_unstable();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Chrome-trace export: a JSON object with a `traceEvents` array, ready
    /// for `chrome://tracing` or Perfetto.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let events = self.events.lock().expect("trace sink poisoned");
        for (i, event) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Chrome requires a pid; everything here is one process.
            let json = event.to_json(false);
            out.push_str(&json[..json.len() - 1]);
            out.push_str(",\"pid\":1}");
        }
        out.push_str("],\"displayTimeUnit\":\"ns\"}");
        out
    }
}

impl TraceSink for MemorySink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: TraceEvent) {
        self.events.lock().expect("trace sink poisoned").push(event);
    }

    fn record_batch(&self, events: Vec<TraceEvent>) {
        // One lock per chunk, not per event.
        self.events
            .lock()
            .expect("trace sink poisoned")
            .extend(events);
    }
}

impl fmt::Display for MemorySink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MemorySink({} events)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        let sink = NullSink;
        assert!(!sink.enabled());
        sink.record(TraceEvent::instant("x", "e", 0, vec![]));
    }

    #[test]
    fn jsonl_shape() {
        let sink = MemorySink::new();
        sink.record(TraceEvent::span(
            "controller",
            "CONFIGURATION",
            10,
            25,
            vec![("step", 0usize.into()), ("bits", 24usize.into())],
        ));
        sink.record(
            TraceEvent::instant("ppsfp", "fault", 3, vec![("detected", true.into())]).on_thread(2),
        );
        let jsonl = sink.jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"cat\":\"controller\",\"name\":\"CONFIGURATION\",\"ph\":\"X\",\
             \"ts\":10,\"dur\":25,\"tid\":0,\"args\":{\"step\":0,\"bits\":24}}"
        );
        assert!(lines[1].contains("\"tid\":2"));
        assert!(lines[1].contains("\"detected\":true"));
    }

    #[test]
    fn canonical_drops_sched_and_normalizes_tid() {
        let sink = MemorySink::new();
        sink.record(TraceEvent::span(CAT_SCHED, "partition", 0, 99, vec![]).on_thread(1));
        sink.record(TraceEvent::instant("ppsfp", "b", 2, vec![]).on_thread(7));
        sink.record(TraceEvent::instant("ppsfp", "a", 1, vec![]).on_thread(3));
        let canon = sink.canonical_jsonl();
        assert!(!canon.contains("partition"));
        assert!(!canon.contains("\"tid\":7"));
        let lines: Vec<&str> = canon.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0] < lines[1], "sorted");
    }

    #[test]
    fn chrome_trace_is_wrapped_and_has_pids() {
        let sink = MemorySink::new();
        sink.record(TraceEvent::instant("c", "e1", 0, vec![]));
        sink.record(TraceEvent::instant("c", "e2", 1, vec![]));
        let chrome = sink.chrome_trace();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.ends_with("\"displayTimeUnit\":\"ns\"}"));
        assert_eq!(chrome.matches("\"pid\":1").count(), 2);
    }

    #[test]
    fn record_batch_preserves_order_and_matches_record() {
        let one_by_one = MemorySink::new();
        let batched = MemorySink::new();
        let events: Vec<TraceEvent> = (0..10u64)
            .map(|i| TraceEvent::instant("x", format!("e{i}"), i, vec![]))
            .collect();
        for event in events.clone() {
            one_by_one.record(event);
        }
        batched.record_batch(events);
        assert_eq!(one_by_one.events(), batched.events());
        assert_eq!(one_by_one.jsonl(), batched.jsonl());
    }

    #[test]
    fn sink_is_shareable_across_threads() {
        let sink: Arc<MemorySink> = MemorySink::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let sink = Arc::clone(&sink);
                scope.spawn(move || {
                    sink.record(TraceEvent::instant("x", "e", t, vec![]).on_thread(t));
                });
            }
        });
        assert_eq!(sink.len(), 4);
    }
}
