//! A standard Value Change Dump (IEEE 1364 §18) writer.
//!
//! Produces files GTKWave and other waveform viewers open directly:
//! hierarchical `$scope module … $upscope` declarations, one printable
//! short identifier per variable, an initial `$dumpvars` block (all X, the
//! power-on value), then `#time` stamps with deduplicated value changes.
//! Output is deterministic — the header carries no wall-clock date — so
//! dumps are byte-stable and golden-testable.

use std::fmt;

use crate::probe::{Probe, SignalId};

/// One 4-state logic value, the full algebra of a test bus wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Wire4 {
    /// Driven logic 0.
    V0,
    /// Driven logic 1.
    V1,
    /// Unknown.
    X,
    /// High impedance (an undriven bus wire).
    Z,
}

impl Wire4 {
    /// The VCD value character.
    pub fn as_char(self) -> char {
        match self {
            Self::V0 => '0',
            Self::V1 => '1',
            Self::X => 'x',
            Self::Z => 'z',
        }
    }

    /// Parses a VCD value character (either case for x/z).
    pub fn from_char(c: char) -> Option<Self> {
        match c {
            '0' => Some(Self::V0),
            '1' => Some(Self::V1),
            'x' | 'X' => Some(Self::X),
            'z' | 'Z' => Some(Self::Z),
            _ => None,
        }
    }
}

impl fmt::Display for Wire4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_char())
    }
}

/// Renders the short printable VCD identifier for declaration index `n`
/// (base-94 over ASCII `!`..`~`).
fn id_code(mut n: usize) -> String {
    let mut code = String::new();
    loop {
        code.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    code
}

#[derive(Debug)]
struct Signal {
    code: String,
    width: usize,
    /// Last emitted value; signals start at all-X (power-on).
    last: Vec<Wire4>,
}

/// A streaming VCD writer; also implements [`Probe`] so instrumented
/// components can drive it without naming the concrete type.
#[derive(Debug)]
pub struct VcdWriter {
    header: String,
    body: String,
    signals: Vec<Signal>,
    open_scopes: usize,
    header_closed: bool,
    time: u64,
    time_stamped: bool,
}

impl VcdWriter {
    /// Creates a writer with the given `$timescale` (e.g. `"1ns"`). One
    /// time unit corresponds to one test clock in the CAS-BUS dumps.
    pub fn new(timescale: &str) -> Self {
        let mut header = String::new();
        header.push_str("$date\n    (deterministic build)\n$end\n");
        header.push_str("$version\n    casbus-obs VCD writer\n$end\n");
        header.push_str(&format!("$timescale {timescale} $end\n"));
        Self {
            header,
            body: String::new(),
            signals: Vec::new(),
            open_scopes: 0,
            header_closed: false,
            time: 0,
            time_stamped: false,
        }
    }

    /// Number of declared signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Closes the declaration section: pops any open scopes, emits
    /// `$enddefinitions` and the initial all-X `$dumpvars` block. Called
    /// implicitly by the first [`VcdWriter::set_time`].
    pub fn close_header(&mut self) {
        if self.header_closed {
            return;
        }
        while self.open_scopes > 0 {
            self.header.push_str("$upscope $end\n");
            self.open_scopes -= 1;
        }
        self.header.push_str("$enddefinitions $end\n");
        self.header.push_str("$dumpvars\n");
        for signal in &self.signals {
            Self::emit_value(&mut self.header, &signal.last, &signal.code);
        }
        self.header.push_str("$end\n");
        self.header_closed = true;
    }

    fn emit_value(out: &mut String, value: &[Wire4], code: &str) {
        if value.len() == 1 {
            out.push(value[0].as_char());
            out.push_str(code);
        } else {
            out.push('b');
            for v in value {
                out.push(v.as_char());
            }
            out.push(' ');
            out.push_str(code);
        }
        out.push('\n');
    }

    /// The complete VCD file contents. Idempotent; the writer stays usable
    /// (callers behind an `Rc<RefCell<_>>` render without reclaiming it).
    pub fn render(&mut self) -> String {
        self.close_header();
        let mut out = self.header.clone();
        out.push_str(&self.body);
        out
    }

    /// Writes the rendered VCD to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&mut self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

impl Probe for VcdWriter {
    fn push_scope(&mut self, name: &str) {
        assert!(!self.header_closed, "declare scopes before the first time");
        self.header
            .push_str(&format!("$scope module {name} $end\n"));
        self.open_scopes += 1;
    }

    fn pop_scope(&mut self) {
        assert!(self.open_scopes > 0, "no open scope to pop");
        self.header.push_str("$upscope $end\n");
        self.open_scopes -= 1;
    }

    fn add_wire(&mut self, name: &str, width: usize) -> SignalId {
        assert!(!self.header_closed, "declare wires before the first time");
        assert!(width >= 1, "zero-width wire {name:?}");
        let code = id_code(self.signals.len());
        let range = if width == 1 {
            String::new()
        } else {
            format!(" [{}:0]", width - 1)
        };
        self.header
            .push_str(&format!("$var wire {width} {code} {name}{range} $end\n"));
        self.signals.push(Signal {
            code,
            width,
            last: vec![Wire4::X; width],
        });
        SignalId(self.signals.len() - 1)
    }

    fn set_time(&mut self, t: u64) {
        self.close_header();
        assert!(t >= self.time, "VCD time must be monotone: {t} < current");
        if t != self.time {
            self.time = t;
            self.time_stamped = false;
        }
    }

    fn change(&mut self, id: SignalId, value: &[Wire4]) {
        let signal = &mut self.signals[id.0];
        assert_eq!(value.len(), signal.width, "value width mismatch");
        if signal.last == value {
            return; // Only actual changes reach the dump.
        }
        signal.last.copy_from_slice(value);
        if !self.time_stamped {
            self.body.push_str(&format!("#{}\n", self.time));
            self.time_stamped = true;
        }
        Self::emit_value(&mut self.body, value, &signal.code);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_codes_are_printable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..500 {
            let code = id_code(n);
            assert!(code.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(code), "duplicate at {n}");
        }
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(94), "!\"");
    }

    #[test]
    fn header_has_scopes_and_vars() {
        let mut vcd = VcdWriter::new("1ns");
        vcd.push_scope("top");
        vcd.push_scope("bus");
        let _w = vcd.add_wire("wire0", 1);
        vcd.pop_scope();
        let _v = vcd.add_wire("mode", 2);
        let text = vcd.render();
        assert!(text.contains("$scope module top $end"));
        assert!(text.contains("$scope module bus $end"));
        assert!(text.contains("$var wire 1 ! wire0 $end"));
        assert!(text.contains("$var wire 2 \" mode [1:0] $end"));
        // Both scopes closed even though only one was popped explicitly.
        assert_eq!(text.matches("$upscope $end").count(), 2);
        assert!(text.contains("$enddefinitions $end"));
    }

    #[test]
    fn initial_dump_is_all_x() {
        let mut vcd = VcdWriter::new("1ns");
        let _a = vcd.add_wire("a", 1);
        let _b = vcd.add_wire("b", 3);
        let text = vcd.render();
        assert!(text.contains("$dumpvars\nx!\nbxxx \"\n$end\n"));
    }

    #[test]
    fn changes_are_deduplicated_and_time_lazy() {
        let mut vcd = VcdWriter::new("1ns");
        let a = vcd.add_wire("a", 1);
        vcd.set_time(0);
        vcd.change(a, &[Wire4::V1]);
        vcd.set_time(1);
        vcd.change(a, &[Wire4::V1]); // no change: no #1 stamp, no record
        vcd.set_time(2);
        vcd.change(a, &[Wire4::V0]);
        let text = vcd.render();
        assert!(text.contains("#0\n1!\n#2\n0!\n"));
        assert!(!text.contains("#1\n"));
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn time_cannot_go_backwards() {
        let mut vcd = VcdWriter::new("1ns");
        let _a = vcd.add_wire("a", 1);
        vcd.set_time(5);
        vcd.set_time(4);
    }

    #[test]
    fn wire4_roundtrip() {
        for v in [Wire4::V0, Wire4::V1, Wire4::X, Wire4::Z] {
            assert_eq!(Wire4::from_char(v.as_char()), Some(v));
        }
        assert_eq!(Wire4::from_char('q'), None);
    }
}
