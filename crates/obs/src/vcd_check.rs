//! A minimal VCD reader for structural self-checks.
//!
//! This is not a general waveform loader — it parses exactly the subset the
//! [`VcdWriter`](crate::vcd::VcdWriter) emits (which is also the common
//! subset every EDA tool emits): `$scope`/`$upscope`/`$var` declarations,
//! `$enddefinitions`, `$dumpvars`, `#time` stamps and scalar/vector value
//! changes. Golden-file tests and the CI self-check binary use it to verify
//! dumps without external tools.

use std::collections::BTreeMap;
use std::fmt;

use crate::vcd::Wire4;

/// A parse or structural error in a VCD file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcdCheckError(String);

impl fmt::Display for VcdCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VCD check: {}", self.0)
    }
}

impl std::error::Error for VcdCheckError {}

fn err<T>(msg: impl Into<String>) -> Result<T, VcdCheckError> {
    Err(VcdCheckError(msg.into()))
}

/// One declared variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcdVar {
    /// Short identifier code.
    pub code: String,
    /// Declared bit width.
    pub width: usize,
    /// Reference name (without the `[msb:0]` range suffix).
    pub name: String,
    /// Full hierarchical scope path, e.g. `["soc", "bus"]`.
    pub scope: Vec<String>,
}

impl VcdVar {
    /// The dotted full path, e.g. `soc.bus.wire0`.
    pub fn path(&self) -> String {
        let mut p = self.scope.join(".");
        if !p.is_empty() {
            p.push('.');
        }
        p.push_str(&self.name);
        p
    }
}

/// One timestamped value change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcdChange {
    /// Time of the change.
    pub time: u64,
    /// Identifier code of the variable.
    pub code: String,
    /// New value, MSB first.
    pub value: Vec<Wire4>,
}

/// A parsed VCD document.
#[derive(Debug, Clone)]
pub struct VcdDocument {
    /// Declared variables, declaration order.
    pub vars: Vec<VcdVar>,
    /// Initial `$dumpvars` values by identifier code.
    pub initial: BTreeMap<String, Vec<Wire4>>,
    /// Value changes after the initial dump, file order.
    pub changes: Vec<VcdChange>,
}

impl VcdDocument {
    /// Variables whose full dotted path equals `path`.
    pub fn var_by_path(&self, path: &str) -> Option<&VcdVar> {
        self.vars.iter().find(|v| v.path() == path)
    }

    /// All distinct scope paths, dotted, sorted.
    pub fn scope_paths(&self) -> Vec<String> {
        let mut paths: Vec<String> = self.vars.iter().map(|v| v.scope.join(".")).collect();
        paths.sort();
        paths.dedup();
        paths
    }

    /// Changes recorded for one variable (by dotted path), time order.
    pub fn changes_of(&self, path: &str) -> Vec<&VcdChange> {
        match self.var_by_path(path) {
            None => Vec::new(),
            Some(var) => self.changes.iter().filter(|c| c.code == var.code).collect(),
        }
    }

    /// Total recorded changes, counting the initial dump as one.
    pub fn change_count(&self) -> usize {
        self.changes.len() + usize::from(!self.initial.is_empty())
    }

    /// The value of variable `path` at time `t` (last change at or before
    /// `t`, falling back to the initial dump).
    pub fn value_at(&self, path: &str, t: u64) -> Option<Vec<Wire4>> {
        let var = self.var_by_path(path)?;
        let mut value = self.initial.get(&var.code).cloned();
        for change in &self.changes {
            if change.time > t {
                break;
            }
            if change.code == var.code {
                value = Some(change.value.clone());
            }
        }
        value
    }

    /// Structural invariants every well-formed dump satisfies: timestamps
    /// monotone, every change references a declared variable at its declared
    /// width, and consecutive changes of one variable actually differ.
    ///
    /// # Errors
    ///
    /// Describes the first violated invariant.
    pub fn check_well_formed(&self) -> Result<(), VcdCheckError> {
        let widths: BTreeMap<&str, usize> = self
            .vars
            .iter()
            .map(|v| (v.code.as_str(), v.width))
            .collect();
        let mut last_time = 0u64;
        let mut last_value: BTreeMap<&str, &[Wire4]> = self
            .initial
            .iter()
            .map(|(code, v)| (code.as_str(), v.as_slice()))
            .collect();
        for (i, change) in self.changes.iter().enumerate() {
            if change.time < last_time {
                return err(format!(
                    "change {i}: time {} after {last_time}",
                    change.time
                ));
            }
            last_time = change.time;
            match widths.get(change.code.as_str()) {
                None => return err(format!("change {i}: undeclared code {:?}", change.code)),
                Some(&w) if w != change.value.len() => {
                    return err(format!(
                        "change {i}: width {} declared {w}",
                        change.value.len()
                    ));
                }
                Some(_) => {}
            }
            if last_value.get(change.code.as_str()) == Some(&change.value.as_slice()) {
                return err(format!(
                    "change {i}: {:?} did not change value",
                    change.code
                ));
            }
            last_value.insert(&change.code, &change.value);
        }
        Ok(())
    }
}

/// Parses a VCD file.
///
/// # Errors
///
/// Reports malformed declarations, value records or timestamps.
pub fn parse(text: &str) -> Result<VcdDocument, VcdCheckError> {
    let mut vars = Vec::new();
    let mut scope_stack: Vec<String> = Vec::new();
    let mut initial = BTreeMap::new();
    let mut changes = Vec::new();
    let mut in_definitions = true;
    let mut in_dumpvars = false;
    let mut time: Option<u64> = None;

    let mut tokens = text.split_whitespace().peekable();
    while let Some(tok) = tokens.next() {
        match tok {
            "$date" | "$version" | "$comment" | "$timescale" => {
                for t in tokens.by_ref() {
                    if t == "$end" {
                        break;
                    }
                }
            }
            "$scope" => {
                let _kind = tokens.next();
                let name = tokens.next().map_or_else(String::new, str::to_owned);
                if tokens.next() != Some("$end") {
                    return err("$scope not closed by $end");
                }
                scope_stack.push(name);
            }
            "$upscope" => {
                if scope_stack.pop().is_none() {
                    return err("$upscope without open scope");
                }
                if tokens.next() != Some("$end") {
                    return err("$upscope not closed by $end");
                }
            }
            "$var" => {
                let _kind = tokens.next();
                let width: usize = tokens
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| VcdCheckError("bad $var width".into()))?;
                let code = tokens
                    .next()
                    .ok_or_else(|| VcdCheckError("missing $var code".into()))?
                    .to_owned();
                let name = tokens
                    .next()
                    .ok_or_else(|| VcdCheckError("missing $var name".into()))?
                    .to_owned();
                // Optional `[msb:0]` range token before $end.
                loop {
                    match tokens.next() {
                        Some("$end") => break,
                        Some(_) => {}
                        None => return err("$var not closed by $end"),
                    }
                }
                vars.push(VcdVar {
                    code,
                    width,
                    name,
                    scope: scope_stack.clone(),
                });
            }
            "$enddefinitions" => {
                if tokens.next() != Some("$end") {
                    return err("$enddefinitions not closed by $end");
                }
                in_definitions = false;
            }
            "$dumpvars" => {
                in_dumpvars = true;
            }
            "$end" if in_dumpvars => {
                in_dumpvars = false;
            }
            t if t.starts_with('#') => {
                let stamp: u64 = t[1..]
                    .parse()
                    .map_err(|_| VcdCheckError(format!("bad timestamp {t:?}")))?;
                time = Some(stamp);
            }
            t if !in_definitions => {
                let (value, code) = parse_value(t, &mut tokens)?;
                if in_dumpvars {
                    initial.insert(code, value);
                } else {
                    let time =
                        time.ok_or_else(|| VcdCheckError("value change before #time".into()))?;
                    changes.push(VcdChange { time, code, value });
                }
            }
            t => return err(format!("unexpected token {t:?} in declarations")),
        }
    }
    if !scope_stack.is_empty() {
        return err("unclosed $scope at end of file");
    }
    Ok(VcdDocument {
        vars,
        initial,
        changes,
    })
}

fn parse_value<'a>(
    tok: &'a str,
    tokens: &mut impl Iterator<Item = &'a str>,
) -> Result<(Vec<Wire4>, String), VcdCheckError> {
    if let Some(rest) = tok.strip_prefix(['b', 'B']) {
        let value: Option<Vec<Wire4>> = rest.chars().map(Wire4::from_char).collect();
        let value = value.ok_or_else(|| VcdCheckError(format!("bad vector {tok:?}")))?;
        let code = tokens
            .next()
            .ok_or_else(|| VcdCheckError("vector value without code".into()))?;
        Ok((value, code.to_owned()))
    } else {
        let mut chars = tok.chars();
        let v = chars
            .next()
            .and_then(Wire4::from_char)
            .ok_or_else(|| VcdCheckError(format!("bad scalar {tok:?}")))?;
        let code: String = chars.collect();
        if code.is_empty() {
            return err(format!("scalar {tok:?} without code"));
        }
        Ok((vec![v], code))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::Probe;
    use crate::vcd::VcdWriter;

    fn sample_doc() -> VcdDocument {
        let mut vcd = VcdWriter::new("1ns");
        vcd.push_scope("soc");
        vcd.push_scope("bus");
        let w0 = vcd.add_wire("wire0", 1);
        vcd.pop_scope();
        let mode = vcd.add_wire("mode", 2);
        vcd.pop_scope();
        vcd.set_time(0);
        vcd.change_bit(w0, true);
        vcd.change_u64(mode, 0b10, 2);
        vcd.set_time(7);
        vcd.change_bit(w0, false);
        parse(&vcd.render()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let doc = sample_doc();
        assert_eq!(doc.vars.len(), 2);
        assert_eq!(doc.vars[0].path(), "soc.bus.wire0");
        assert_eq!(doc.vars[1].path(), "soc.mode");
        assert_eq!(doc.scope_paths(), vec!["soc".to_owned(), "soc.bus".into()]);
        assert_eq!(doc.initial.len(), 2);
        assert_eq!(doc.changes.len(), 3);
        doc.check_well_formed().unwrap();
    }

    #[test]
    fn value_at_follows_time() {
        let doc = sample_doc();
        assert_eq!(doc.value_at("soc.bus.wire0", 0), Some(vec![Wire4::V1]));
        assert_eq!(doc.value_at("soc.bus.wire0", 6), Some(vec![Wire4::V1]));
        assert_eq!(doc.value_at("soc.bus.wire0", 7), Some(vec![Wire4::V0]));
        assert_eq!(
            doc.value_at("soc.mode", 100),
            Some(vec![Wire4::V1, Wire4::V0])
        );
        assert_eq!(doc.value_at("nope", 0), None);
    }

    #[test]
    fn detects_non_monotone_time() {
        let text = "$var wire 1 ! a $end $enddefinitions $end #5\n1!\n#3\n0!\n";
        let doc = parse(text).unwrap();
        let e = doc.check_well_formed().unwrap_err();
        assert!(e.to_string().contains("after"), "{e}");
    }

    #[test]
    fn detects_no_op_change() {
        let text = "$var wire 1 ! a $end $enddefinitions $end #1\n1!\n#2\n1!\n";
        let doc = parse(text).unwrap();
        assert!(doc.check_well_formed().is_err());
    }

    #[test]
    fn detects_undeclared_code_and_bad_width() {
        let undeclared = "$var wire 1 ! a $end $enddefinitions $end #1\n1?\n";
        assert!(parse(undeclared)
            .unwrap()
            .check_well_formed()
            .unwrap_err()
            .to_string()
            .contains("undeclared"));
        let wide = "$var wire 2 ! a $end $enddefinitions $end #1\nb101 !\n";
        assert!(parse(wide).unwrap().check_well_formed().is_err());
    }

    #[test]
    fn rejects_malformed_files() {
        assert!(parse("$scope module x $end").is_err()); // unclosed scope
        assert!(parse("$upscope $end").is_err());
        assert!(parse("$enddefinitions $end\n1!\n").is_err()); // change before #time
    }
}
