//! Property tests of the VCD writer against its own parser: for *any*
//! sequence of timestamped value changes, the rendered dump must parse
//! back well-formed (monotone timestamps, declared widths respected,
//! change-only-on-change after dedup) and replay to exactly the values
//! that were written.

use casbus_obs::probe::Probe;
use casbus_obs::vcd::{VcdWriter, Wire4};
use casbus_obs::vcd_check;
use proptest::prelude::*;

/// One scripted change: wire selector, time increment, raw lane values.
type ChangeRecipe = (u8, u8, u64);

/// Per-wire list of `(time, value)` pairs written to the dump.
type WrittenLog = Vec<Vec<(u64, Vec<Wire4>)>>;

const WIDTHS: [usize; 4] = [1, 2, 3, 8];

fn wire4_from(seed: u64, lane: usize) -> Wire4 {
    match (seed >> (2 * lane)) & 3 {
        0 => Wire4::V0,
        1 => Wire4::V1,
        2 => Wire4::X,
        _ => Wire4::Z,
    }
}

/// Drives a writer from the recipe and returns, per wire, the full list of
/// `(time, value)` pairs that were *written* (including duplicates the
/// writer is expected to dedup).
fn drive(recipe: &[ChangeRecipe]) -> (String, WrittenLog) {
    let mut vcd = VcdWriter::new("1ns");
    vcd.push_scope("dut");
    let wires: Vec<_> = WIDTHS
        .iter()
        .enumerate()
        .map(|(i, &w)| vcd.add_wire(&format!("sig{i}"), w))
        .collect();
    vcd.pop_scope();

    let mut time = 0u64;
    vcd.set_time(time);
    let mut written: WrittenLog = vec![Vec::new(); wires.len()];
    for &(wire_sel, dt, seed) in recipe {
        let idx = wire_sel as usize % wires.len();
        time += u64::from(dt);
        vcd.set_time(time);
        let value: Vec<Wire4> = (0..WIDTHS[idx])
            .map(|lane| wire4_from(seed, lane))
            .collect();
        vcd.change(wires[idx], &value);
        written[idx].push((time, value));
    }
    (vcd.render(), written)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rendered_dump_parses_back_well_formed(
        recipe in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u64>()),
            0..40,
        ),
    ) {
        let (text, written) = drive(&recipe);
        let doc = vcd_check::parse(&text).expect("writer output must parse");
        // Monotone timestamps and change-only-on-change are invariants the
        // parser checks structurally.
        doc.check_well_formed().expect("writer output must be well-formed");

        // Every declared wire is present at its declared width and starts
        // from the all-X initial dump.
        for (i, &w) in WIDTHS.iter().enumerate() {
            let path = format!("dut.sig{i}");
            let var = doc.var_by_path(&path).expect("declared wire");
            prop_assert_eq!(var.width, w);
            let initial = doc.initial.get(&var.code).expect("initial dump");
            prop_assert_eq!(initial, &vec![Wire4::X; w]);
        }

        // Replaying the parsed changes gives back exactly the last value
        // written at or before each written timestamp.
        for (i, writes) in written.iter().enumerate() {
            let path = format!("dut.sig{i}");
            let mut last_at: std::collections::BTreeMap<u64, &Vec<Wire4>> =
                std::collections::BTreeMap::new();
            for (t, v) in writes {
                last_at.insert(*t, v);
            }
            for (&t, &expected) in &last_at {
                prop_assert_eq!(
                    doc.value_at(&path, t).expect("value after first write"),
                    expected.clone(),
                    "wire {} at time {}", i, t
                );
            }
        }

        // Dedup: the number of recorded changes never exceeds the writes.
        let total_writes: usize = written.iter().map(Vec::len).sum();
        prop_assert!(doc.changes.len() <= total_writes);
    }
}
