//! Wrapper boundary register cells.

use casbus_tpg::BitVec;

/// Which functional terminal a boundary cell sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Cell on a core input terminal: captures the value arriving from the
    /// interconnect, drives the core in INTEST isolation.
    Input,
    /// Cell on a core output terminal: captures the core's response, drives
    /// the interconnect in EXTEST.
    Output,
}

/// One wrapper boundary cell: a shift flip-flop plus an update (hold) stage,
/// the standard two-stage P1500 WBR cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WrapperCell {
    kind_is_output: bool,
    shift_ff: bool,
    update_ff: bool,
}

impl WrapperCell {
    /// Creates a cleared cell of the given kind.
    pub fn new(kind: CellKind) -> Self {
        Self {
            kind_is_output: kind == CellKind::Output,
            shift_ff: false,
            update_ff: false,
        }
    }

    /// The terminal kind.
    pub fn kind(&self) -> CellKind {
        if self.kind_is_output {
            CellKind::Output
        } else {
            CellKind::Input
        }
    }

    /// Shift operation: takes the previous cell's output, returns this cell's
    /// old shift value.
    pub fn shift(&mut self, serial_in: bool) -> bool {
        let out = self.shift_ff;
        self.shift_ff = serial_in;
        out
    }

    /// Capture operation: loads the functional value into the shift stage.
    pub fn capture(&mut self, functional_value: bool) {
        self.shift_ff = functional_value;
    }

    /// Update operation: transfers the shift stage to the hold stage that
    /// drives the terminal in test modes.
    pub fn update(&mut self) {
        self.update_ff = self.shift_ff;
    }

    /// The value the cell drives onto its terminal in test modes.
    pub fn driven_value(&self) -> bool {
        self.update_ff
    }

    /// Current shift-stage content.
    pub fn shift_value(&self) -> bool {
        self.shift_ff
    }
}

/// The wrapper boundary register: input cells first, then output cells,
/// forming one serial shift path (WBR).
///
/// # Examples
///
/// ```
/// use casbus_p1500::BoundaryRegister;
/// use casbus_tpg::BitVec;
///
/// let mut wbr = BoundaryRegister::new(2, 2);
/// assert_eq!(wbr.len(), 4);
/// // After 4 shifts the first-pushed bit sits in the LAST cell.
/// wbr.shift_in(&"1010".parse::<BitVec>().unwrap());
/// wbr.update();
/// assert_eq!(wbr.driven_values().to_string(), "0101");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundaryRegister {
    cells: Vec<WrapperCell>,
    inputs: usize,
}

impl BoundaryRegister {
    /// Creates a WBR with `inputs` input cells followed by `outputs` output
    /// cells.
    pub fn new(inputs: usize, outputs: usize) -> Self {
        let mut cells = Vec::with_capacity(inputs + outputs);
        cells.extend((0..inputs).map(|_| WrapperCell::new(CellKind::Input)));
        cells.extend((0..outputs).map(|_| WrapperCell::new(CellKind::Output)));
        Self { cells, inputs }
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the register has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Number of input cells.
    pub fn input_count(&self) -> usize {
        self.inputs
    }

    /// Number of output cells.
    pub fn output_count(&self) -> usize {
        self.cells.len() - self.inputs
    }

    /// Shifts one bit through the whole register (cell 0 receives
    /// `serial_in`; the last cell's old value comes out).
    pub fn shift(&mut self, serial_in: bool) -> bool {
        let mut carry = serial_in;
        for cell in &mut self.cells {
            carry = cell.shift(carry);
        }
        carry
    }

    /// Shifts a whole vector in, bit 0 first, returning the displaced bits.
    pub fn shift_in(&mut self, bits: &BitVec) -> BitVec {
        bits.iter().map(|b| self.shift(b)).collect()
    }

    /// Captures functional terminal values into the shift stages.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.len()`.
    pub fn capture(&mut self, values: &BitVec) {
        assert_eq!(values.len(), self.cells.len(), "capture width mismatch");
        for (cell, value) in self.cells.iter_mut().zip(values.iter()) {
            cell.capture(value);
        }
    }

    /// Updates all hold stages from the shift stages.
    pub fn update(&mut self) {
        for cell in &mut self.cells {
            cell.update();
        }
    }

    /// Values currently driven on all terminals (inputs first).
    pub fn driven_values(&self) -> BitVec {
        self.cells.iter().map(WrapperCell::driven_value).collect()
    }

    /// Shift-stage contents (inputs first), as would shift out next.
    pub fn shift_values(&self) -> BitVec {
        self.cells.iter().map(WrapperCell::shift_value).collect()
    }

    /// Values driven on the *output* terminals only (towards the
    /// interconnect, EXTEST).
    pub fn driven_outputs(&self) -> BitVec {
        self.cells[self.inputs..]
            .iter()
            .map(WrapperCell::driven_value)
            .collect()
    }

    /// Values driven on the *input* terminals only (towards the core,
    /// INTEST isolation).
    pub fn driven_inputs(&self) -> BitVec {
        self.cells[..self.inputs]
            .iter()
            .map(WrapperCell::driven_value)
            .collect()
    }

    /// The cells, inputs first.
    pub fn cells(&self) -> &[WrapperCell] {
        &self.cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_shift_capture_update() {
        let mut cell = WrapperCell::new(CellKind::Input);
        assert_eq!(cell.kind(), CellKind::Input);
        assert!(!cell.shift(true));
        assert!(cell.shift_value());
        assert!(!cell.driven_value());
        cell.update();
        assert!(cell.driven_value());
        cell.capture(false);
        assert!(!cell.shift_value());
        assert!(cell.driven_value(), "capture must not disturb hold stage");
    }

    #[test]
    fn register_layout() {
        let wbr = BoundaryRegister::new(3, 2);
        assert_eq!(wbr.len(), 5);
        assert_eq!(wbr.input_count(), 3);
        assert_eq!(wbr.output_count(), 2);
        assert!(!wbr.is_empty());
        assert_eq!(wbr.cells()[0].kind(), CellKind::Input);
        assert_eq!(wbr.cells()[4].kind(), CellKind::Output);
    }

    #[test]
    fn shift_through_register_fifo_order() {
        let mut wbr = BoundaryRegister::new(1, 2);
        let out = wbr.shift_in(&"101101".parse().unwrap());
        // First three shifted-out bits are the initial zeros.
        assert_eq!(out.slice(0, 3).to_string(), "000");
        // Then the first bits we pushed emerge in order.
        assert_eq!(out.slice(3, 3).to_string(), "101");
    }

    #[test]
    fn capture_then_shift_out_reads_terminals() {
        let mut wbr = BoundaryRegister::new(2, 2);
        wbr.capture(&"1101".parse().unwrap());
        assert_eq!(wbr.shift_values().to_string(), "1101");
        // The last cell exits first: the captured word comes out reversed.
        let out = wbr.shift_in(&BitVec::zeros(4));
        assert_eq!(out.to_string(), "1011");
    }

    #[test]
    #[should_panic(expected = "capture width mismatch")]
    fn capture_wrong_width_panics() {
        let mut wbr = BoundaryRegister::new(2, 2);
        wbr.capture(&BitVec::zeros(3));
    }

    #[test]
    fn update_freezes_driven_values() {
        let mut wbr = BoundaryRegister::new(1, 1);
        wbr.shift_in(&"11".parse().unwrap());
        wbr.update();
        wbr.shift_in(&"00".parse().unwrap());
        assert_eq!(wbr.driven_values().to_string(), "11");
        assert_eq!(wbr.shift_values().to_string(), "00");
    }

    #[test]
    fn driven_split_views() {
        // After 5 shifts the first-pushed bit sits in the last cell, so the
        // register holds the pushed word reversed: "01101".
        let mut wbr = BoundaryRegister::new(2, 3);
        wbr.shift_in(&"10110".parse().unwrap());
        wbr.update();
        assert_eq!(wbr.driven_inputs().to_string(), "01");
        assert_eq!(wbr.driven_outputs().to_string(), "101");
    }

    #[test]
    fn empty_register() {
        let mut wbr = BoundaryRegister::new(0, 0);
        assert!(wbr.is_empty());
        // Shifting through an empty register is the identity.
        assert!(wbr.shift(true));
    }
}
