//! The interface a wrapped core exposes to its P1500 wrapper.

use casbus_tpg::BitVec;

/// Behavioural interface of an embedded core as seen from its test wrapper.
///
/// The CAS-BUS transports serial test data; what the data *means* depends on
/// the core's test method (paper Fig. 2):
///
/// * a scannable core exposes `P` scan chains, one per test port,
/// * a BISTed core exposes one port carrying start/seed bits in and
///   signature bits out,
/// * a memory or logic core under external test exposes ports matching its
///   source/sink arrangement.
///
/// Implementations live in `casbus-soc` (behavioural models) so that this
/// crate stays a pure wrapper library.
///
/// `Send` is a supertrait so that disjoint per-core test sessions can run
/// on worker threads; every model is plain owned data, so this costs
/// implementations nothing.
pub trait TestableCore: Send {
    /// The core's instance name.
    fn name(&self) -> &str;

    /// Number of parallel test ports (the `P` of the CAS that will serve
    /// this core). At least 1.
    fn test_ports(&self) -> usize;

    /// Advances one *test* clock: `inputs` carries one bit per test port
    /// into the core (scan-in, BIST control, …) and the returned vector
    /// carries one bit per port out (scan-out, signature bits, …).
    ///
    /// # Panics
    ///
    /// Implementations may panic when `inputs.len() != self.test_ports()`.
    fn test_clock(&mut self, inputs: &BitVec) -> BitVec;

    /// Advances one *functional* clock while under test: captures the
    /// combinational response into the scan elements (scan capture cycle) or
    /// advances the BIST engine's functional phase.
    fn capture_clock(&mut self);

    /// Total number of test clocks needed to shift one full pattern through
    /// the longest internal chain (the per-pattern serial depth).
    fn scan_depth(&self) -> usize;

    /// Puts the core back into its power-on state.
    fn reset(&mut self);

    /// Advances up to 64 *test* clocks at once. `inputs` holds one plane
    /// per test port; bit `t` of plane `j` is the port-`j` input at cycle
    /// `t`. The returned planes carry the outputs in the same layout.
    ///
    /// The provided implementation simply loops over
    /// [`test_clock`](TestableCore::test_clock), so every model stays bit-exact by
    /// construction; models with word-level internal state (e.g. scan
    /// chains stored as `BitVec`s) override this to shift whole words.
    ///
    /// # Panics
    ///
    /// Panics when `inputs.len() != self.test_ports()` or `cycles > 64`.
    fn test_clock_words(&mut self, inputs: &[u64], cycles: usize) -> Vec<u64> {
        assert_eq!(
            inputs.len(),
            self.test_ports(),
            "one input plane per test port"
        );
        assert!(
            cycles <= 64,
            "test_clock_words supports at most 64 cycles, got {cycles}"
        );
        let mut outs = vec![0u64; inputs.len()];
        let mut wpi = BitVec::zeros(inputs.len());
        for t in 0..cycles {
            for (j, plane) in inputs.iter().enumerate() {
                wpi.set(j, (plane >> t) & 1 == 1);
            }
            let wpo = self.test_clock(&wpi);
            for (j, out) in outs.iter_mut().enumerate() {
                if wpo.get(j) == Some(true) {
                    *out |= 1 << t;
                }
            }
        }
        outs
    }
}

impl<T: TestableCore + ?Sized> TestableCore for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn test_ports(&self) -> usize {
        (**self).test_ports()
    }

    fn test_clock(&mut self, inputs: &BitVec) -> BitVec {
        (**self).test_clock(inputs)
    }

    fn capture_clock(&mut self) {
        (**self).capture_clock()
    }

    fn scan_depth(&self) -> usize {
        (**self).scan_depth()
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    // Explicit delegation so a boxed model's word-level override is used
    // instead of the provided bit-serial loop.
    fn test_clock_words(&mut self, inputs: &[u64], cycles: usize) -> Vec<u64> {
        (**self).test_clock_words(inputs, cycles)
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// A minimal in-crate core model: `ports` independent shift registers of
    /// equal `depth`, with capture complementing every bit (so that capture
    /// effects are observable).
    #[derive(Debug, Clone)]
    pub struct ShiftCore {
        name: String,
        chains: Vec<BitVec>,
    }

    impl ShiftCore {
        pub fn new(name: &str, ports: usize, depth: usize) -> Self {
            Self {
                name: name.to_owned(),
                chains: vec![BitVec::zeros(depth); ports],
            }
        }

        pub fn chain(&self, idx: usize) -> &BitVec {
            &self.chains[idx]
        }
    }

    impl TestableCore for ShiftCore {
        fn name(&self) -> &str {
            &self.name
        }

        fn test_ports(&self) -> usize {
            self.chains.len()
        }

        fn test_clock(&mut self, inputs: &BitVec) -> BitVec {
            assert_eq!(inputs.len(), self.chains.len());
            let mut outs = BitVec::new();
            for (chain, bit) in self.chains.iter_mut().zip(inputs.iter()) {
                let depth = chain.len();
                let mut next = BitVec::with_capacity(depth);
                next.push(bit);
                for i in 0..depth.saturating_sub(1) {
                    next.push(chain.get(i).unwrap());
                }
                outs.push(chain.get(depth - 1).unwrap());
                *chain = next;
            }
            outs
        }

        fn capture_clock(&mut self) {
            for chain in &mut self.chains {
                for i in 0..chain.len() {
                    chain.toggle(i);
                }
            }
        }

        fn scan_depth(&self) -> usize {
            self.chains.iter().map(BitVec::len).max().unwrap_or(0)
        }

        fn reset(&mut self) {
            for chain in &mut self.chains {
                *chain = BitVec::zeros(chain.len());
            }
        }
    }

    #[test]
    fn shift_core_roundtrip() {
        let mut core = ShiftCore::new("u0", 2, 3);
        assert_eq!(core.test_ports(), 2);
        assert_eq!(core.scan_depth(), 3);
        // Shift "1,0,1" into chain 0 and "0,1,1" into chain 1.
        let ins = ["10", "01", "11"];
        for s in ins {
            core.test_clock(&s.parse().unwrap());
        }
        assert_eq!(
            core.chain(0).to_string(),
            "101".chars().rev().collect::<String>()
        );
        core.reset();
        assert_eq!(core.chain(0).count_ones(), 0);
    }

    #[test]
    fn capture_complements() {
        let mut core = ShiftCore::new("u0", 1, 2);
        core.capture_clock();
        assert_eq!(core.chain(0).to_string(), "11");
    }

    #[test]
    fn default_test_clock_words_matches_serial_loop() {
        let mut word_core = ShiftCore::new("u0", 2, 5);
        let mut bit_core = ShiftCore::new("u0", 2, 5);
        let planes = [0x5a5a_f0f0_1234_8001u64, 0x0ff0_55aa_9999_c3c3];
        let out_planes = word_core.test_clock_words(&planes, 64);
        for t in 0..64usize {
            let mut wpi = BitVec::new();
            for plane in &planes {
                wpi.push((plane >> t) & 1 == 1);
            }
            let wpo = bit_core.test_clock(&wpi);
            for (j, plane) in out_planes.iter().enumerate() {
                assert_eq!((plane >> t) & 1 == 1, wpo.get(j).unwrap(), "cycle {t}");
            }
        }
        assert_eq!(word_core.chain(0), bit_core.chain(0));
        assert_eq!(word_core.chain(1), bit_core.chain(1));
    }

    #[test]
    fn boxed_core_delegates() {
        let mut boxed: Box<dyn TestableCore> = Box::new(ShiftCore::new("u1", 1, 1));
        assert_eq!(boxed.name(), "u1");
        assert_eq!(boxed.test_ports(), 1);
        let out = boxed.test_clock(&"1".parse().unwrap());
        assert_eq!(out.len(), 1);
        boxed.capture_clock();
        boxed.reset();
        assert_eq!(boxed.scan_depth(), 1);
    }
}
