//! IEEE P1500-style core test wrapper model.
//!
//! The CAS-BUS paper targets the IEEE P1500 *Standard for Embedded Core Test*
//! in its 1998–2000 proposal state: every reusable core is surrounded by a
//! *wrapper* that isolates it from the rest of the SoC and gives the Test
//! Access Mechanism a standard way in and out. The paper relies on exactly
//! these wrapper features (its Fig. 3 shows the CAS attached to a "P1500
//! WRAPPER"):
//!
//! * a **wrapper instruction register** ([`Wir`]) that selects the wrapper
//!   mode, serially loadable — optionally daisy-chained with the CAS
//!   instruction register during the CONFIGURATION phase (§3.1, "tri-state
//!   mechanism"),
//! * a **wrapper boundary register** ([`BoundaryRegister`]) of cells on the
//!   functional terminals, used for interconnect (EXTEST) testing,
//! * a **wrapper bypass register** (one flip-flop) keeping the serial path
//!   short when the core is not under test,
//! * serial and parallel test access to the core internals (INTEST), which is
//!   what the CAS routes the `P` selected bus wires to.
//!
//! The wrapped core itself is abstracted behind the [`TestableCore`] trait;
//! behavioural core models (scan chains, BIST engines, memories) live in the
//! `casbus-soc` crate.
//!
//! # Example
//!
//! ```
//! use casbus_p1500::{Wir, WrapperInstruction};
//!
//! let mut wir = Wir::new();
//! // Shift in the INTEST-scan opcode LSB-first, then update.
//! for bit in WrapperInstruction::IntestScan.opcode_bits().iter() {
//!     wir.shift(bit);
//! }
//! wir.update();
//! assert_eq!(wir.instruction(), WrapperInstruction::IntestScan);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boundary;
pub mod core;
pub mod wir;
pub mod wrapper;

pub use crate::core::TestableCore;
pub use boundary::{BoundaryRegister, CellKind, WrapperCell};
pub use wir::{Wir, WirError, WrapperInstruction};
pub use wrapper::{Wrapper, WrapperControl};
