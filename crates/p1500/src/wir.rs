//! The wrapper instruction register (WIR).

use std::fmt;

use casbus_tpg::BitVec;

/// Width of the WIR in bits; enough to encode all [`WrapperInstruction`]s.
pub const WIR_WIDTH: usize = 3;

/// Wrapper operating modes, selected through the WIR.
///
/// These mirror the instruction set the P1500 working group was converging
/// on at the time of the paper (Marinissen et al., ITC 1999): a mandatory
/// bypass, serial and parallel internal test, external (interconnect) test,
/// and transparent normal operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WrapperInstruction {
    /// Functional operation; the wrapper is transparent and the serial path
    /// goes through the 1-bit bypass register.
    #[default]
    Normal,
    /// Serial path through the 1-bit bypass register, core isolated in a safe
    /// state.
    Bypass,
    /// Internal test via the core's scan chains: the wrapper parallel port is
    /// connected chain-per-wire.
    IntestScan,
    /// Internal test with the core's own BIST engine; the wrapper only
    /// transports start/seed bits in and signature bits out on one wire.
    IntestBist,
    /// External (interconnect) test through the wrapper boundary register.
    Extest,
}

impl WrapperInstruction {
    /// All instructions, in opcode order.
    pub const ALL: [WrapperInstruction; 5] = [
        Self::Normal,
        Self::Bypass,
        Self::IntestScan,
        Self::IntestBist,
        Self::Extest,
    ];

    /// The binary opcode.
    pub fn opcode(self) -> u8 {
        match self {
            Self::Normal => 0b000,
            Self::Bypass => 0b001,
            Self::IntestScan => 0b010,
            Self::IntestBist => 0b011,
            Self::Extest => 0b100,
        }
    }

    /// Decodes an opcode.
    ///
    /// # Errors
    ///
    /// Returns [`WirError::UnknownOpcode`] for unassigned encodings.
    pub fn from_opcode(opcode: u8) -> Result<Self, WirError> {
        Self::ALL
            .into_iter()
            .find(|i| i.opcode() == opcode)
            .ok_or(WirError::UnknownOpcode(opcode))
    }

    /// The opcode as WIR shift bits, LSB first (the order they are shifted
    /// into the register).
    pub fn opcode_bits(self) -> BitVec {
        BitVec::from_u64(u64::from(self.opcode()), WIR_WIDTH)
    }

    /// Whether this mode gives the TAM access to the core internals.
    pub fn is_test_mode(self) -> bool {
        matches!(self, Self::IntestScan | Self::IntestBist | Self::Extest)
    }
}

impl fmt::Display for WrapperInstruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Normal => "WS_NORMAL",
            Self::Bypass => "WS_BYPASS",
            Self::IntestScan => "WS_INTEST_SCAN",
            Self::IntestBist => "WS_INTEST_BIST",
            Self::Extest => "WS_EXTEST",
        })
    }
}

/// Errors raised by the WIR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WirError {
    /// The shifted-in bits decode to no known instruction.
    UnknownOpcode(u8),
}

impl fmt::Display for WirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownOpcode(op) => write!(f, "unknown WIR opcode {op:#05b}"),
        }
    }
}

impl std::error::Error for WirError {}

/// The wrapper instruction register: a [`WIR_WIDTH`]-bit shift stage plus an
/// update (shadow) stage, exactly like the CAS instruction register it can be
/// daisy-chained with during the CONFIGURATION phase.
///
/// Shifting never disturbs the active instruction; only [`Wir::update`]
/// transfers the shift stage into the update stage. Unknown opcodes fall
/// back to [`WrapperInstruction::Bypass`], the safe P1500 default.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Wir {
    shift_stage: u8,
    active: WrapperInstruction,
}

impl Wir {
    /// Creates a WIR holding [`WrapperInstruction::Normal`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Shifts one bit in (LSB first) and returns the bit shifted out the far
    /// end, allowing WIRs and CAS instruction registers to be daisy-chained.
    pub fn shift(&mut self, bit: bool) -> bool {
        let out = self.shift_stage & 1 == 1;
        self.shift_stage >>= 1;
        if bit {
            self.shift_stage |= 1 << (WIR_WIDTH - 1);
        }
        out
    }

    /// Shifts a whole opcode in, LSB first, returning the displaced bits.
    pub fn shift_bits(&mut self, bits: &BitVec) -> BitVec {
        bits.iter().map(|b| self.shift(b)).collect()
    }

    /// Transfers the shift stage into the active instruction.
    ///
    /// Unknown opcodes activate [`WrapperInstruction::Bypass`].
    pub fn update(&mut self) {
        self.active =
            WrapperInstruction::from_opcode(self.shift_stage).unwrap_or(WrapperInstruction::Bypass);
    }

    /// The currently active instruction.
    pub fn instruction(&self) -> WrapperInstruction {
        self.active
    }

    /// Raw shift-stage contents (for inspection and tests).
    pub fn shift_stage(&self) -> u8 {
        self.shift_stage
    }

    /// Resets to [`WrapperInstruction::Normal`] with a cleared shift stage.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_roundtrip() {
        for instr in WrapperInstruction::ALL {
            assert_eq!(WrapperInstruction::from_opcode(instr.opcode()), Ok(instr));
        }
    }

    #[test]
    fn opcodes_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for instr in WrapperInstruction::ALL {
            assert!(seen.insert(instr.opcode()), "duplicate opcode for {instr}");
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert_eq!(
            WrapperInstruction::from_opcode(0b111),
            Err(WirError::UnknownOpcode(0b111))
        );
    }

    #[test]
    fn shift_then_update_activates() {
        let mut wir = Wir::new();
        for bit in WrapperInstruction::Extest.opcode_bits().iter() {
            wir.shift(bit);
        }
        // Not active until update.
        assert_eq!(wir.instruction(), WrapperInstruction::Normal);
        wir.update();
        assert_eq!(wir.instruction(), WrapperInstruction::Extest);
    }

    #[test]
    fn shifting_does_not_disturb_active() {
        let mut wir = Wir::new();
        wir.shift_bits(&WrapperInstruction::IntestScan.opcode_bits());
        wir.update();
        wir.shift_bits(&WrapperInstruction::Bypass.opcode_bits());
        assert_eq!(wir.instruction(), WrapperInstruction::IntestScan);
    }

    #[test]
    fn daisy_chain_two_wirs() {
        // Shift 6 bits through two chained WIRs: the far one ends with the
        // first opcode, the near one with the second.
        let mut near = Wir::new();
        let mut far = Wir::new();
        let mut stream = WrapperInstruction::IntestBist.opcode_bits();
        stream.extend_from(&WrapperInstruction::Extest.opcode_bits());
        for bit in stream.iter() {
            let mid = near.shift(bit);
            far.shift(mid);
        }
        near.update();
        far.update();
        assert_eq!(far.instruction(), WrapperInstruction::IntestBist);
        assert_eq!(near.instruction(), WrapperInstruction::Extest);
    }

    #[test]
    fn unknown_opcode_falls_back_to_bypass() {
        let mut wir = Wir::new();
        wir.shift_bits(&BitVec::ones(WIR_WIDTH)); // 0b111 unassigned
        wir.update();
        assert_eq!(wir.instruction(), WrapperInstruction::Bypass);
    }

    #[test]
    fn reset_restores_normal() {
        let mut wir = Wir::new();
        wir.shift_bits(&WrapperInstruction::Extest.opcode_bits());
        wir.update();
        wir.reset();
        assert_eq!(wir.instruction(), WrapperInstruction::Normal);
        assert_eq!(wir.shift_stage(), 0);
    }

    #[test]
    fn test_mode_classification() {
        assert!(WrapperInstruction::IntestScan.is_test_mode());
        assert!(WrapperInstruction::IntestBist.is_test_mode());
        assert!(WrapperInstruction::Extest.is_test_mode());
        assert!(!WrapperInstruction::Normal.is_test_mode());
        assert!(!WrapperInstruction::Bypass.is_test_mode());
    }

    #[test]
    fn display_names() {
        assert_eq!(WrapperInstruction::IntestScan.to_string(), "WS_INTEST_SCAN");
    }
}
