//! The complete P1500-style wrapper: WIR + bypass + boundary + wrapped core.

use casbus_tpg::BitVec;

use crate::boundary::BoundaryRegister;
use crate::core::TestableCore;
use crate::wir::{Wir, WrapperInstruction};

/// Per-clock wrapper control signals, driven by the SoC test controller
/// (the paper's central controller synchronises these with the CAS control
/// signals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WrapperControl {
    /// Route the serial path through the WIR instead of the selected data
    /// register.
    pub select_wir: bool,
    /// Shift the selected register by one bit this clock.
    pub shift: bool,
    /// Capture functional/response values into the selected register.
    pub capture: bool,
    /// Transfer shift stages into update/hold stages.
    pub update: bool,
}

impl WrapperControl {
    /// Control word for one shift clock on the selected data register.
    pub fn shift_data() -> Self {
        Self {
            shift: true,
            ..Self::default()
        }
    }

    /// Control word for one shift clock on the WIR.
    pub fn shift_wir() -> Self {
        Self {
            select_wir: true,
            shift: true,
            ..Self::default()
        }
    }

    /// Control word updating the WIR after shifting.
    pub fn update_wir() -> Self {
        Self {
            select_wir: true,
            update: true,
            ..Self::default()
        }
    }

    /// Control word for a capture clock on the data register.
    pub fn capture_data() -> Self {
        Self {
            capture: true,
            ..Self::default()
        }
    }

    /// Control word for an update clock on the data register.
    pub fn update_data() -> Self {
        Self {
            update: true,
            ..Self::default()
        }
    }
}

/// A P1500-style wrapper around a [`TestableCore`].
///
/// The wrapper owns:
///
/// * the wrapper instruction register ([`Wir`]),
/// * the 1-bit bypass register (WBY),
/// * the wrapper boundary register ([`BoundaryRegister`]) sized to the
///   core's functional terminal counts,
/// * the core itself.
///
/// Two access paths exist, matching the paper's architecture:
///
/// * the **serial path** ([`Wrapper::clock_serial`]) used during the
///   CONFIGURATION phase (WIR loading, optionally daisy-chained with the CAS
///   instruction register) and for EXTEST/bypass data,
/// * the **parallel path** ([`Wrapper::clock_parallel`]), `P` bits wide,
///   which is what the CAS routes the selected test bus wires to during the
///   TEST phase.
///
/// # Examples
///
/// ```
/// use casbus_p1500::{Wrapper, WrapperControl, WrapperInstruction, TestableCore};
/// use casbus_tpg::BitVec;
///
/// // Any TestableCore works; see casbus-soc for real core models.
/// # struct Nop;
/// # impl TestableCore for Nop {
/// #     fn name(&self) -> &str { "nop" }
/// #     fn test_ports(&self) -> usize { 1 }
/// #     fn test_clock(&mut self, i: &BitVec) -> BitVec { i.clone() }
/// #     fn capture_clock(&mut self) {}
/// #     fn scan_depth(&self) -> usize { 1 }
/// #     fn reset(&mut self) {}
/// # }
/// let mut wrapper = Wrapper::new(Nop, 4, 4);
/// wrapper.apply_instruction(WrapperInstruction::IntestScan);
/// assert_eq!(wrapper.instruction(), WrapperInstruction::IntestScan);
/// ```
#[derive(Debug, Clone)]
pub struct Wrapper<C> {
    wir: Wir,
    wby: bool,
    wbr: BoundaryRegister,
    core: C,
    extest_inputs: BitVec,
}

impl<C: TestableCore> Wrapper<C> {
    /// Wraps `core`, building a boundary register with `functional_inputs`
    /// input cells and `functional_outputs` output cells.
    pub fn new(core: C, functional_inputs: usize, functional_outputs: usize) -> Self {
        Self {
            wir: Wir::new(),
            wby: false,
            wbr: BoundaryRegister::new(functional_inputs, functional_outputs),
            core,
            extest_inputs: BitVec::zeros(functional_inputs),
        }
    }

    /// The wrapped core's name.
    pub fn core_name(&self) -> &str {
        self.core.name()
    }

    /// Immutable access to the wrapped core.
    pub fn core(&self) -> &C {
        &self.core
    }

    /// Mutable access to the wrapped core (for SoC simulators driving
    /// functional activity).
    pub fn core_mut(&mut self) -> &mut C {
        &mut self.core
    }

    /// The active wrapper instruction.
    pub fn instruction(&self) -> WrapperInstruction {
        self.wir.instruction()
    }

    /// The boundary register.
    pub fn boundary(&self) -> &BoundaryRegister {
        &self.wbr
    }

    /// Width of the parallel test port: the core's port count in INTEST
    /// modes, 1 in EXTEST (the WBR is a single serial chain), 1 otherwise.
    pub fn parallel_width(&self) -> usize {
        match self.instruction() {
            WrapperInstruction::IntestScan | WrapperInstruction::IntestBist => {
                self.core.test_ports()
            }
            _ => 1,
        }
    }

    /// Serial depth of one shift-load in the current mode: the longest core
    /// chain in INTEST, the WBR length in EXTEST, 1 in bypass modes.
    pub fn shift_depth(&self) -> usize {
        match self.instruction() {
            WrapperInstruction::IntestScan | WrapperInstruction::IntestBist => {
                self.core.scan_depth()
            }
            WrapperInstruction::Extest => self.wbr.len(),
            WrapperInstruction::Normal | WrapperInstruction::Bypass => 1,
        }
    }

    /// Values present at the core's functional input terminals, captured by
    /// the WBR input cells in EXTEST (driven by the SoC interconnect model).
    pub fn set_extest_inputs(&mut self, values: BitVec) {
        assert_eq!(
            values.len(),
            self.wbr.input_count(),
            "extest input width mismatch"
        );
        self.extest_inputs = values;
    }

    /// Loads and activates an instruction directly (shift LSB-first, then
    /// update) — the shortcut used when the wrapper is configured
    /// independently of the CAS chain (§3.1: "The system test engineer may
    /// configure the wrapper independently").
    pub fn apply_instruction(&mut self, instruction: WrapperInstruction) {
        for bit in instruction.opcode_bits().iter() {
            self.clock_serial(bit, &WrapperControl::shift_wir());
        }
        self.clock_serial(false, &WrapperControl::update_wir());
    }

    /// One clock on the serial path (WSI → WSO).
    ///
    /// With `select_wir` the serial bit shifts through the WIR; otherwise it
    /// shifts through the register the active instruction selects: WBY in
    /// NORMAL/BYPASS, the WBR in EXTEST, the concatenated parallel port in
    /// INTEST modes (modelled as the bypass register, since the CAS uses the
    /// parallel path for INTEST data).
    pub fn clock_serial(&mut self, wsi: bool, ctrl: &WrapperControl) -> bool {
        if ctrl.select_wir {
            let mut out = false;
            if ctrl.shift {
                out = self.wir.shift(wsi);
            }
            if ctrl.update {
                self.wir.update();
            }
            return out;
        }
        match self.instruction() {
            WrapperInstruction::Extest => {
                let mut out = false;
                if ctrl.capture {
                    let mut snapshot = self.extest_inputs.clone();
                    // Output cells capture the core-side values; the
                    // behavioural core model does not expose functional
                    // outputs, so they capture 0.
                    snapshot.extend(std::iter::repeat_n(false, self.wbr.output_count()));
                    self.wbr.capture(&snapshot);
                }
                if ctrl.shift {
                    out = self.wbr.shift(wsi);
                }
                if ctrl.update {
                    self.wbr.update();
                }
                out
            }
            _ => {
                let out = self.wby;
                if ctrl.shift {
                    self.wby = wsi;
                }
                out
            }
        }
    }

    /// One clock on the parallel path (WPI → WPO), `parallel_width()` bits.
    ///
    /// In INTEST modes a `shift` clock moves every core chain by one bit; a
    /// `capture` clock fires the core's functional capture. In EXTEST wire 0
    /// shifts the WBR. In NORMAL/BYPASS the port is inactive and returns
    /// zeros (the CAS keeps those wires on its internal bypass anyway).
    ///
    /// # Panics
    ///
    /// Panics if `wpi.len()` differs from [`Wrapper::parallel_width`].
    pub fn clock_parallel(&mut self, wpi: &BitVec, ctrl: &WrapperControl) -> BitVec {
        assert_eq!(
            wpi.len(),
            self.parallel_width(),
            "parallel port width mismatch on core {}",
            self.core.name()
        );
        match self.instruction() {
            WrapperInstruction::IntestScan | WrapperInstruction::IntestBist => {
                if ctrl.capture {
                    self.core.capture_clock();
                }
                if ctrl.shift {
                    self.core.test_clock(wpi)
                } else {
                    BitVec::zeros(self.parallel_width())
                }
            }
            WrapperInstruction::Extest => {
                let mut out = BitVec::zeros(1);
                if ctrl.capture {
                    let mut snapshot = self.extest_inputs.clone();
                    snapshot.extend(std::iter::repeat_n(false, self.wbr.output_count()));
                    self.wbr.capture(&snapshot);
                }
                if ctrl.shift {
                    out.set(0, self.wbr.shift(wpi.get(0).unwrap_or(false)));
                }
                if ctrl.update {
                    self.wbr.update();
                }
                out
            }
            WrapperInstruction::Normal | WrapperInstruction::Bypass => {
                BitVec::zeros(self.parallel_width())
            }
        }
    }

    /// Runs up to 64 consecutive *shift* clocks on the parallel path in one
    /// call. `inputs` holds one plane per parallel port; bit `t` of plane
    /// `j` is the port-`j` WPI value at cycle `t`, and the returned planes
    /// carry the WPO values in the same layout.
    ///
    /// Behaviourally identical to `cycles` calls of
    /// [`Wrapper::clock_parallel`] with [`WrapperControl::shift_data`]; the
    /// word-level session engine uses it to stream scan data 64 cycles at
    /// a time. INTEST modes go straight to the core's word-level path;
    /// EXTEST falls back to the per-cycle WBR shift, and in NORMAL/BYPASS
    /// the port is inactive and all-zero planes come back.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`Wrapper::parallel_width`]
    /// or `cycles > 64`.
    pub fn clock_parallel_words(&mut self, inputs: &[u64], cycles: usize) -> Vec<u64> {
        assert_eq!(
            inputs.len(),
            self.parallel_width(),
            "parallel port width mismatch on core {}",
            self.core.name()
        );
        assert!(
            cycles <= 64,
            "clock_parallel_words supports at most 64 cycles, got {cycles}"
        );
        match self.instruction() {
            WrapperInstruction::IntestScan | WrapperInstruction::IntestBist => {
                self.core.test_clock_words(inputs, cycles)
            }
            WrapperInstruction::Extest => {
                let ctrl = WrapperControl::shift_data();
                let mut out = 0u64;
                for t in 0..cycles {
                    let mut wpi = BitVec::new();
                    wpi.push((inputs[0] >> t) & 1 == 1);
                    if self.clock_parallel(&wpi, &ctrl).get(0) == Some(true) {
                        out |= 1 << t;
                    }
                }
                vec![out]
            }
            WrapperInstruction::Normal | WrapperInstruction::Bypass => vec![0u64; inputs.len()],
        }
    }

    /// Resets the wrapper and the core to power-on state.
    pub fn reset(&mut self) {
        self.wir.reset();
        self.wby = false;
        let (i, o) = (self.wbr.input_count(), self.wbr.output_count());
        self.wbr = BoundaryRegister::new(i, o);
        self.core.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::test_support::ShiftCore;

    fn wrapper() -> Wrapper<ShiftCore> {
        Wrapper::new(ShiftCore::new("u0", 2, 4), 3, 2)
    }

    #[test]
    fn starts_in_normal_mode() {
        let w = wrapper();
        assert_eq!(w.instruction(), WrapperInstruction::Normal);
        assert_eq!(w.parallel_width(), 1);
        assert_eq!(w.shift_depth(), 1);
    }

    #[test]
    fn apply_instruction_switches_mode() {
        let mut w = wrapper();
        w.apply_instruction(WrapperInstruction::IntestScan);
        assert_eq!(w.instruction(), WrapperInstruction::IntestScan);
        assert_eq!(w.parallel_width(), 2);
        assert_eq!(w.shift_depth(), 4);
    }

    #[test]
    fn bypass_serial_is_one_cycle_delay() {
        let mut w = wrapper();
        w.apply_instruction(WrapperInstruction::Bypass);
        let ctrl = WrapperControl::shift_data();
        assert!(!w.clock_serial(true, &ctrl));
        assert!(w.clock_serial(false, &ctrl));
        assert!(!w.clock_serial(false, &ctrl));
    }

    #[test]
    fn intest_scan_parallel_shifts_chains() {
        let mut w = wrapper();
        w.apply_instruction(WrapperInstruction::IntestScan);
        let ctrl = WrapperControl::shift_data();
        // Shift 4 bits into each 4-deep chain, then 4 more to read them back.
        let data = ["11", "01", "10", "11"];
        for d in data {
            w.clock_parallel(&d.parse().unwrap(), &ctrl);
        }
        let mut seen = Vec::new();
        for _ in 0..4 {
            seen.push(w.clock_parallel(&"00".parse().unwrap(), &ctrl).to_string());
        }
        assert_eq!(seen, vec!["11", "01", "10", "11"]);
    }

    #[test]
    fn intest_capture_fires_core_capture() {
        let mut w = wrapper();
        w.apply_instruction(WrapperInstruction::IntestScan);
        w.clock_parallel(&"00".parse().unwrap(), &WrapperControl::capture_data());
        // ShiftCore capture complements all chain bits: chains become all-1.
        let out = w.clock_parallel(&"00".parse().unwrap(), &WrapperControl::shift_data());
        assert_eq!(out.to_string(), "11");
    }

    #[test]
    fn extest_captures_interconnect_inputs() {
        let mut w = wrapper();
        w.apply_instruction(WrapperInstruction::Extest);
        assert_eq!(w.parallel_width(), 1);
        assert_eq!(w.shift_depth(), 5);
        w.set_extest_inputs("101".parse().unwrap());
        w.clock_serial(false, &WrapperControl::capture_data());
        // Cells hold [1,0,1,0,0]; the last cell exits first.
        let out: BitVec = (0..5)
            .map(|_| w.clock_serial(false, &WrapperControl::shift_data()))
            .collect();
        assert_eq!(out.to_string(), "00101");
    }

    #[test]
    fn extest_update_drives_outputs() {
        let mut w = wrapper();
        w.apply_instruction(WrapperInstruction::Extest);
        w.clock_serial(false, &WrapperControl::shift_data());
        for bit in "11111".parse::<BitVec>().unwrap().iter() {
            w.clock_serial(bit, &WrapperControl::shift_data());
        }
        w.clock_serial(false, &WrapperControl::update_data());
        assert_eq!(w.boundary().driven_outputs().count_ones(), 2);
    }

    #[test]
    fn normal_mode_parallel_port_inactive() {
        let mut w = wrapper();
        let out = w.clock_parallel(&"1".parse().unwrap(), &WrapperControl::shift_data());
        assert_eq!(out.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "parallel port width mismatch")]
    fn parallel_width_mismatch_panics() {
        let mut w = wrapper();
        w.apply_instruction(WrapperInstruction::IntestScan);
        w.clock_parallel(&"1".parse().unwrap(), &WrapperControl::shift_data());
    }

    #[test]
    fn wir_chain_with_external_register() {
        // Emulate the paper's tri-state mechanism: CAS IR and WIR in one
        // serial chain. Here the "CAS IR" is a second wrapper's WIR.
        let mut first = wrapper();
        let mut second = wrapper();
        let mut stream = WrapperInstruction::Extest.opcode_bits();
        stream.extend_from(&WrapperInstruction::IntestBist.opcode_bits());
        for bit in stream.iter() {
            let mid = second.clock_serial(bit, &WrapperControl::shift_wir());
            first.clock_serial(mid, &WrapperControl::shift_wir());
        }
        first.clock_serial(false, &WrapperControl::update_wir());
        second.clock_serial(false, &WrapperControl::update_wir());
        assert_eq!(first.instruction(), WrapperInstruction::Extest);
        assert_eq!(second.instruction(), WrapperInstruction::IntestBist);
    }

    #[test]
    fn clock_parallel_words_matches_per_cycle_shifts() {
        for instruction in [
            WrapperInstruction::IntestScan,
            WrapperInstruction::Extest,
            WrapperInstruction::Bypass,
        ] {
            let mut fast = wrapper();
            let mut slow = wrapper();
            fast.apply_instruction(instruction);
            slow.apply_instruction(instruction);
            let width = fast.parallel_width();
            let planes: Vec<u64> = (0..width)
                .map(|j| 0x0123_4567_89ab_cdefu64.rotate_left(j as u32 * 13))
                .collect();
            let cycles = 37;
            let out_planes = fast.clock_parallel_words(&planes, cycles);
            let ctrl = WrapperControl::shift_data();
            for t in 0..cycles {
                let wpi: BitVec = planes.iter().map(|p| (p >> t) & 1 == 1).collect();
                let wpo = slow.clock_parallel(&wpi, &ctrl);
                for (j, plane) in out_planes.iter().enumerate() {
                    assert_eq!(
                        (plane >> t) & 1 == 1,
                        wpo.get(j).unwrap(),
                        "{instruction:?} cycle {t} port {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn reset_restores_power_on() {
        let mut w = wrapper();
        w.apply_instruction(WrapperInstruction::IntestScan);
        w.clock_parallel(&"11".parse().unwrap(), &WrapperControl::shift_data());
        w.reset();
        assert_eq!(w.instruction(), WrapperInstruction::Normal);
        assert_eq!(w.core().chain(0).count_ones(), 0);
    }

    #[test]
    fn set_extest_inputs_validates_width() {
        let mut w = wrapper();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            w.set_extest_inputs(BitVec::zeros(2));
        }));
        assert!(result.is_err());
    }
}
