//! Property-based tests of the P1500 wrapper invariants.

use casbus_p1500::{
    BoundaryRegister, TestableCore, Wir, Wrapper, WrapperControl, WrapperInstruction,
};
use casbus_tpg::BitVec;
use proptest::prelude::*;

/// A minimal deterministic core for wrapper-level properties.
#[derive(Debug, Clone)]
struct EchoCore {
    chains: Vec<BitVec>,
}

impl EchoCore {
    fn new(ports: usize, depth: usize) -> Self {
        Self {
            chains: vec![BitVec::zeros(depth); ports],
        }
    }
}

impl TestableCore for EchoCore {
    fn name(&self) -> &str {
        "echo"
    }

    fn test_ports(&self) -> usize {
        self.chains.len()
    }

    fn test_clock(&mut self, inputs: &BitVec) -> BitVec {
        let mut outs = BitVec::new();
        for (chain, bit) in self.chains.iter_mut().zip(inputs.iter()) {
            let depth = chain.len();
            outs.push(chain.get(depth - 1).expect("non-empty"));
            let mut next = BitVec::with_capacity(depth);
            next.push(bit);
            for i in 0..depth - 1 {
                next.push(chain.get(i).expect("in range"));
            }
            *chain = next;
        }
        outs
    }

    fn capture_clock(&mut self) {}

    fn scan_depth(&self) -> usize {
        self.chains.first().map_or(0, BitVec::len)
    }

    fn reset(&mut self) {
        for chain in &mut self.chains {
            *chain = BitVec::zeros(chain.len());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The WIR activates exactly the last fully-shifted opcode, regardless
    /// of what was shifted before.
    #[test]
    fn wir_activates_last_opcode(noise in proptest::collection::vec(any::<bool>(), 0..20), pick in 0usize..5) {
        let target = WrapperInstruction::ALL[pick];
        let mut wir = Wir::new();
        for bit in noise {
            wir.shift(bit);
        }
        for bit in target.opcode_bits().iter() {
            wir.shift(bit);
        }
        wir.update();
        prop_assert_eq!(wir.instruction(), target);
    }

    /// Boundary register shifting is a pure delay line: after `len` shifts,
    /// the first `len` input bits come out, reversed capture order aside.
    #[test]
    fn wbr_is_a_delay_line(inputs in 1usize..6, outputs in 0usize..6, stream in proptest::collection::vec(any::<bool>(), 1..40)) {
        let mut wbr = BoundaryRegister::new(inputs, outputs);
        let depth = wbr.len();
        let mut seen = Vec::new();
        for &bit in &stream {
            seen.push(wbr.shift(bit));
        }
        for (t, &out) in seen.iter().enumerate() {
            let expected = if t < depth { false } else { stream[t - depth] };
            prop_assert_eq!(out, expected, "clock {}", t);
        }
    }

    /// INTEST scan through the wrapper returns every stimulus after the
    /// chain depth, untouched, for any chain geometry.
    #[test]
    fn intest_roundtrip(ports in 1usize..4, depth in 1usize..12, seed in any::<u64>()) {
        let mut wrapper = Wrapper::new(EchoCore::new(ports, depth), 2, 2);
        wrapper.apply_instruction(WrapperInstruction::IntestScan);
        let ctrl = WrapperControl::shift_data();
        let stimuli: Vec<BitVec> = (0..depth)
            .map(|t| (0..ports).map(|j| (seed >> ((t * ports + j) % 64)) & 1 == 1).collect())
            .collect();
        for stim in &stimuli {
            wrapper.clock_parallel(stim, &ctrl);
        }
        for stim in &stimuli {
            let out = wrapper.clock_parallel(&BitVec::zeros(ports), &ctrl);
            prop_assert_eq!(&out, stim);
        }
    }

    /// Bypass keeps the serial path exactly one flip-flop long.
    #[test]
    fn bypass_is_single_cycle(stream in proptest::collection::vec(any::<bool>(), 1..30)) {
        let mut wrapper = Wrapper::new(EchoCore::new(1, 4), 1, 1);
        wrapper.apply_instruction(WrapperInstruction::Bypass);
        let ctrl = WrapperControl::shift_data();
        let mut last = false;
        for &bit in &stream {
            let out = wrapper.clock_serial(bit, &ctrl);
            prop_assert_eq!(out, last);
            last = bit;
        }
    }

    /// Mode changes never corrupt the core state: loading a new WIR opcode
    /// leaves the chains exactly as they were.
    #[test]
    fn wir_load_preserves_core_state(stim in proptest::collection::vec(any::<bool>(), 1..10)) {
        let mut wrapper = Wrapper::new(EchoCore::new(1, 10), 1, 1);
        wrapper.apply_instruction(WrapperInstruction::IntestScan);
        for &bit in &stim {
            let mut v = BitVec::new();
            v.push(bit);
            wrapper.clock_parallel(&v, &WrapperControl::shift_data());
        }
        let before = wrapper.core().chains[0].clone();
        wrapper.apply_instruction(WrapperInstruction::Bypass);
        wrapper.apply_instruction(WrapperInstruction::IntestScan);
        prop_assert_eq!(&wrapper.core().chains[0], &before);
    }
}
