//! RTL generation for Core Access Switches — the paper's generator tool.
//!
//! §3.3 of the paper: *"A CAS architecture generator has been developed. It
//! takes as parameters the N and P values, and provides a VHDL description
//! of the CAS, which can be synthesized with a commercial synthesis tool.
//! This generator is written in C, however, we have considered an
//! alternative way of generation, which consists in describing a CAS
//! architecture in generic VHDL."*
//!
//! This crate reproduces all three generation paths in Rust:
//!
//! * [`vhdl::generate_vhdl`] — per-(N, P) behavioural VHDL with an explicit
//!   `case` decode of every switch scheme (the C generator's output),
//! * [`vhdl::generate_generic_vhdl`] — the "generic VHDL" alternative: one
//!   parameterized architecture that unranks the opcode at elaboration time,
//! * [`verilog::generate_verilog`] — the same behavioural machine in
//!   Verilog-2001 for flows without VHDL front-ends,
//! * [`structural`] — gate-level structural emission from a synthesized
//!   [`casbus_netlist::Netlist`] (the paper's "highly optimized gate level
//!   description" future-work variant).
//!
//! There is no VHDL simulator in this workspace; the [`lint`] module
//! provides a structural sanity checker (balanced constructs, declared
//! identifiers, complete scheme decode) that the test suite runs over every
//! generated description, and the *behaviour* the RTL encodes is verified
//! against the behavioural and gate-level models in `casbus` and
//! `casbus-netlist`.
//!
//! # Example
//!
//! ```
//! use casbus::{CasGeometry, SchemeSet};
//! use casbus_rtl::vhdl;
//!
//! let set = SchemeSet::enumerate(CasGeometry::new(4, 2)?)?;
//! let text = vhdl::generate_vhdl(&set);
//! assert!(text.contains("entity cas_n4_p2"));
//! # Ok::<(), casbus::CasError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lint;
pub mod structural;
pub mod testbench;
pub mod verilog;
pub mod vhdl;

pub use lint::{lint_vhdl, LintIssue};
