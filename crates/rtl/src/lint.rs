//! A structural sanity checker for generated VHDL.
//!
//! The workspace has no VHDL front-end, so the generators are checked two
//! ways: behaviourally (the encoded machine is proven equivalent to the
//! `casbus` models elsewhere) and syntactically, here — balanced construct
//! pairs, entity/architecture consistency, legal identifiers, and complete
//! instruction decode.

use std::fmt;

/// One problem found in a VHDL description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintIssue {
    /// A construct opener has no matching closer (or vice versa).
    Unbalanced {
        /// Construct name, e.g. `"process"`.
        construct: String,
        /// Number of openers found.
        opened: usize,
        /// Number of closers found.
        closed: usize,
    },
    /// The architecture references an entity name that is never declared.
    EntityMismatch {
        /// Name in the `entity` declaration.
        declared: Option<String>,
        /// Name referenced by `architecture … of`.
        referenced: Option<String>,
    },
    /// An identifier violates VHDL rules (must start with a letter, contain
    /// only letters, digits, underscores).
    BadIdentifier(String),
    /// The text is empty.
    Empty,
}

impl fmt::Display for LintIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Unbalanced {
                construct,
                opened,
                closed,
            } => {
                write!(
                    f,
                    "unbalanced {construct}: {opened} opened, {closed} closed"
                )
            }
            Self::EntityMismatch {
                declared,
                referenced,
            } => write!(
                f,
                "architecture references entity {referenced:?} but {declared:?} is declared"
            ),
            Self::BadIdentifier(id) => write!(f, "illegal VHDL identifier {id:?}"),
            Self::Empty => f.write_str("empty VHDL text"),
        }
    }
}

impl std::error::Error for LintIssue {}

/// Checks a VHDL description for structural sanity; returns every issue
/// found (empty = clean).
///
/// # Examples
///
/// ```
/// use casbus_rtl::lint_vhdl;
///
/// let ok = "entity x is\nend entity x;\narchitecture a of x is\nbegin\nend architecture a;";
/// assert!(lint_vhdl(ok).is_empty());
/// assert!(!lint_vhdl("architecture a of ghost is\nbegin\nend architecture a;").is_empty());
/// ```
pub fn lint_vhdl(text: &str) -> Vec<LintIssue> {
    let mut issues = Vec::new();
    if text.trim().is_empty() {
        return vec![LintIssue::Empty];
    }
    let stripped = strip_comments(text);
    let lower = stripped.to_lowercase();

    for (open_pat, close_pat, construct) in [
        ("entity ", "end entity", "entity"),
        ("architecture ", "end architecture", "architecture"),
        (": process", "end process", "process"),
        ("case ", "end case", "case"),
    ] {
        let mut opened =
            count_token(&lower, open_pat) - count_token(&lower, &format!("end {open_pat}"));
        if construct == "entity" {
            // `entity work.foo` instantiations reference, not declare.
            opened -= count_token(&lower, "entity work.");
        }
        let closed = count_token(&lower, close_pat);
        if opened != closed {
            issues.push(LintIssue::Unbalanced {
                construct: construct.to_owned(),
                opened,
                closed,
            });
        }
    }

    // `if/end if` pairing: every `… then` except `elsif … then` opens one.
    let ifs = count_token(&lower, " then").saturating_sub(count_token(&lower, "elsif"));
    let end_ifs = count_token(&lower, "end if");
    if ifs != end_ifs {
        issues.push(LintIssue::Unbalanced {
            construct: "if".to_owned(),
            opened: ifs,
            closed: end_ifs,
        });
    }

    let declared = capture_after(&lower, "entity ").map(str::to_owned);
    let referenced = capture_after(&lower, " of ").map(str::to_owned);
    if let (Some(d), Some(r)) = (&declared, &referenced) {
        if d != r {
            issues.push(LintIssue::EntityMismatch {
                declared: declared.clone(),
                referenced: referenced.clone(),
            });
        }
    } else if referenced.is_some() && declared.is_none() {
        issues.push(LintIssue::EntityMismatch {
            declared,
            referenced,
        });
    }

    // Identifier sanity on declared ports and signals.
    for line in lower.lines() {
        let trimmed = line.trim();
        if let Some(rest) = trimmed.strip_prefix("signal ") {
            if let Some(name) = rest.split([':', ' ']).next() {
                if !is_vhdl_identifier(name) {
                    issues.push(LintIssue::BadIdentifier(name.to_owned()));
                }
            }
        }
    }
    issues
}

fn strip_comments(text: &str) -> String {
    text.lines()
        .map(|l| l.split("--").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n")
}

fn count_token(haystack: &str, needle: &str) -> usize {
    haystack.matches(needle).count()
}

fn capture_after<'a>(text: &'a str, marker: &str) -> Option<&'a str> {
    let idx = text.find(marker)?;
    text[idx + marker.len()..]
        .split_whitespace()
        .next()
        .map(|w| w.trim_end_matches(';'))
}

fn is_vhdl_identifier(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_') && !name.ends_with('_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vhdl::{generate_generic_vhdl, generate_vhdl};
    use casbus::{CasGeometry, SchemeSet};

    #[test]
    fn generated_vhdl_is_clean_for_table1_geometries() {
        for (n, p) in [
            (3, 1),
            (4, 2),
            (4, 3),
            (5, 2),
            (5, 3),
            (6, 3),
            (6, 5),
            (8, 4),
        ] {
            let set = SchemeSet::enumerate(CasGeometry::new(n, p).unwrap()).unwrap();
            let issues = lint_vhdl(&generate_vhdl(&set));
            assert!(issues.is_empty(), "N={n} P={p}: {issues:?}");
        }
    }

    #[test]
    fn generic_vhdl_is_clean() {
        let issues = lint_vhdl(&generate_generic_vhdl());
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn empty_text_flagged() {
        assert_eq!(lint_vhdl("   \n"), vec![LintIssue::Empty]);
    }

    #[test]
    fn unbalanced_process_flagged() {
        let bad = "entity x is\nend entity x;\narchitecture a of x is\nbegin\n\
                   p : process (clk)\nbegin\nend architecture a;";
        let issues = lint_vhdl(bad);
        assert!(issues.iter().any(
            |i| matches!(i, LintIssue::Unbalanced { construct, .. } if construct == "process")
        ));
    }

    #[test]
    fn entity_mismatch_flagged() {
        let bad =
            "entity foo is\nend entity foo;\narchitecture a of bar is\nbegin\nend architecture a;";
        let issues = lint_vhdl(bad);
        assert!(issues
            .iter()
            .any(|i| matches!(i, LintIssue::EntityMismatch { .. })));
    }

    #[test]
    fn bad_identifier_flagged() {
        let bad = "entity x is\nend entity x;\narchitecture a of x is\n\
                   signal 1bad : std_logic;\nbegin\nend architecture a;";
        let issues = lint_vhdl(bad);
        assert!(issues
            .iter()
            .any(|i| matches!(i, LintIssue::BadIdentifier(_))));
    }

    #[test]
    fn identifier_rules() {
        assert!(is_vhdl_identifier("ir_shift"));
        assert!(!is_vhdl_identifier("1bad"));
        assert!(!is_vhdl_identifier("bad_"));
        assert!(!is_vhdl_identifier(""));
    }

    #[test]
    fn comments_are_ignored() {
        let text = "entity x is -- case of doom\nend entity x;\n\
                    architecture a of x is\nbegin\nend architecture a;";
        assert!(lint_vhdl(text).is_empty());
    }

    #[test]
    fn issue_display() {
        let issue = LintIssue::Unbalanced {
            construct: "case".into(),
            opened: 2,
            closed: 1,
        };
        assert!(issue.to_string().contains("unbalanced case"));
    }
}
