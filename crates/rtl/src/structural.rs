//! Structural (gate-level) RTL emission from a synthesized netlist —
//! the paper's "highly optimized gate level description" path.

use std::fmt::Write as _;

use casbus_netlist::{GateKind, Netlist};

/// Emits a structural Verilog module instantiating every gate of the
/// netlist as a primitive (`and`, `or`, `not`, …) or a behavioural
/// flip-flop block.
///
/// # Examples
///
/// ```
/// use casbus_netlist::Netlist;
/// use casbus_rtl::structural::netlist_to_verilog;
///
/// let mut nl = Netlist::new("ha");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let s = nl.xor2(a, b);
/// nl.mark_output("sum", s);
/// let text = netlist_to_verilog(&nl);
/// assert!(text.contains("module ha"));
/// assert!(text.contains("xor"));
/// ```
pub fn netlist_to_verilog(netlist: &Netlist) -> String {
    let has_dff = netlist.gates().iter().any(|g| g.kind.is_sequential());
    let mut out = String::new();
    let _ = writeln!(out, "// Structural netlist: {} gates", netlist.gate_count());
    let _ = writeln!(out, "module {} (", sanitize(netlist.name()));
    let mut ports: Vec<String> = Vec::new();
    if has_dff {
        ports.push("  input  wire tck".to_owned());
    }
    for (name, _) in netlist.inputs() {
        ports.push(format!("  input  wire {}", sanitize(name)));
    }
    for (name, _) in netlist.outputs() {
        ports.push(format!("  output wire {}", sanitize(name)));
    }
    out.push_str(&ports.join(",\n"));
    out.push_str("\n);\n\n");

    // Internal wires: every gate-driven net gets an n<id> declaration
    // exactly once (tri-state bus nets have several drivers); input nets
    // are aliased below instead. Output ports read their n<id> via assigns.
    let mut is_port = vec![false; netlist.net_count()];
    for (_, net) in netlist.inputs() {
        is_port[net.index()] = true;
    }
    let mut declared = vec![false; netlist.net_count()];
    for gate in netlist.gates() {
        let id = gate.output.index();
        if !is_port[id] && !declared[id] {
            declared[id] = true;
            let _ = writeln!(out, "  wire n{id};");
        }
    }
    out.push('\n');

    // Port aliases so gates can always reference n<id>.
    for (name, net) in netlist.inputs() {
        let _ = writeln!(out, "  wire n{} = {};", net.index(), sanitize(name));
    }
    let mut output_assigns = String::new();
    for (name, net) in netlist.outputs() {
        let _ = writeln!(
            output_assigns,
            "  assign {} = n{};",
            sanitize(name),
            net.index()
        );
    }

    for (idx, gate) in netlist.gates().iter().enumerate() {
        let o = gate.output.index();
        let ins: Vec<String> = gate
            .inputs
            .iter()
            .map(|n| format!("n{}", n.index()))
            .collect();
        match gate.kind {
            GateKind::Const(false) => {
                let _ = writeln!(out, "  assign n{o} = 1'b0;");
            }
            GateKind::Const(true) => {
                let _ = writeln!(out, "  assign n{o} = 1'b1;");
            }
            GateKind::Buf => {
                let _ = writeln!(out, "  buf g{idx} (n{o}, {});", ins[0]);
            }
            GateKind::Not => {
                let _ = writeln!(out, "  not g{idx} (n{o}, {});", ins[0]);
            }
            GateKind::And2 => {
                let _ = writeln!(out, "  and g{idx} (n{o}, {}, {});", ins[0], ins[1]);
            }
            GateKind::Or2 => {
                let _ = writeln!(out, "  or g{idx} (n{o}, {}, {});", ins[0], ins[1]);
            }
            GateKind::Nand2 => {
                let _ = writeln!(out, "  nand g{idx} (n{o}, {}, {});", ins[0], ins[1]);
            }
            GateKind::Nor2 => {
                let _ = writeln!(out, "  nor g{idx} (n{o}, {}, {});", ins[0], ins[1]);
            }
            GateKind::Xor2 => {
                let _ = writeln!(out, "  xor g{idx} (n{o}, {}, {});", ins[0], ins[1]);
            }
            GateKind::Xnor2 => {
                let _ = writeln!(out, "  xnor g{idx} (n{o}, {}, {});", ins[0], ins[1]);
            }
            GateKind::Mux2 => {
                let _ = writeln!(out, "  assign n{o} = {} ? {} : {};", ins[0], ins[2], ins[1]);
            }
            GateKind::TriBuf => {
                let _ = writeln!(out, "  bufif1 g{idx} (n{o}, {}, {});", ins[1], ins[0]);
            }
            GateKind::DffE => {
                let _ = writeln!(out, "  reg r{idx} = 1'b0;");
                let _ = writeln!(
                    out,
                    "  always @(posedge tck) if ({}) r{idx} <= {};",
                    ins[1], ins[0]
                );
                let _ = writeln!(out, "  assign n{o} = r{idx};");
            }
        }
    }
    out.push('\n');
    out.push_str(&output_assigns);
    out.push_str("\nendmodule\n");
    out
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use casbus::{CasGeometry, SchemeSet};
    use casbus_netlist::synth::synthesize_cas;

    #[test]
    fn emits_every_gate() {
        let set = SchemeSet::enumerate(CasGeometry::new(3, 1).unwrap()).unwrap();
        let nl = synthesize_cas(&set);
        let text = netlist_to_verilog(&nl);
        // Count instantiated primitives + behavioural registers + muxes.
        let instanced = text.matches(" g").count()
            + text.matches("  reg r").count()
            + text.matches("? ").count();
        assert!(
            instanced >= nl.gate_count(),
            "emitted {instanced} of {} gates",
            nl.gate_count()
        );
        assert!(text.contains("module cas_n3_p1"));
        assert!(text.contains("endmodule"));
    }

    #[test]
    fn tri_state_uses_bufif1() {
        let set = SchemeSet::enumerate(CasGeometry::new(3, 1).unwrap()).unwrap();
        let nl = synthesize_cas(&set);
        let text = netlist_to_verilog(&nl);
        assert!(text.contains("bufif1"));
    }

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize("cas-bus 4/2"), "cas_bus_4_2");
    }

    #[test]
    fn deterministic() {
        let set = SchemeSet::enumerate(CasGeometry::new(4, 2).unwrap()).unwrap();
        let nl = synthesize_cas(&set);
        assert_eq!(netlist_to_verilog(&nl), netlist_to_verilog(&nl));
    }
}
