//! Yield-driven admission control for the multi-tenant test floor.
//!
//! A real test floor does not let one collapsing lot burn tester time that
//! healthier lots could use: operators watch in-flight yield and intervene —
//! quarantine the lot, kick it off the floor, or drop its priority. This
//! module is that operator, automated: an [`AdmissionController`] samples
//! each lot's [`LotTracker`] on a fixed cadence
//! and applies an [`AdmissionPolicy`]:
//!
//! * **Yield collapse** — when a lot's *rolling* yield (pass fraction over
//!   the last [`window`](AdmissionPolicy::window) completions) drops below
//!   [`yield_floor`](AdmissionPolicy::yield_floor) after at least
//!   [`min_completed`](AdmissionPolicy::min_completed) devices, the lot's
//!   pool lane is paused for a quarantine interval
//!   ([`CollapseAction::Pause`]), demoted to weight 1
//!   ([`CollapseAction::Demote`]), or drained outright
//!   ([`CollapseAction::Abort`]).
//! * **Starvation** — when the highest-priority unfinished lot has made no
//!   progress for [`starvation_after`](AdmissionPolicy::starvation_after)
//!   while lower-priority lots complete devices, its lane weight is boosted
//!   so the weighted-fair scheduler favours it.
//!
//! Every intervention is recorded as an [`AdmissionEvent`] on the lot's
//! [`LotReport`](crate::floor::LotReport). Interventions only reshape
//! *scheduling* — which lane the workers pop next — never what a device
//! computes, so per-lot reports remain bit-identical to standalone
//! [`FleetRunner`](crate::FleetRunner) runs (pinned by
//! `tests/floor_differential.rs`). The one exception is [`Abort`]: an
//! aborted lot keeps the reports already collected and drops the rest.
//!
//! [`Abort`]: CollapseAction::Abort
//!
//! The decision itself ([`AdmissionPolicy::decide`]) is a pure function of
//! `(completed, rolling_yield)`, unit-testable without a floor.

use std::fmt;
use std::time::{Duration, Instant};

use crate::monitor::LotTracker;
use crate::pool::{LaneId, WorkerPool};

/// What to do with a lot whose rolling yield collapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollapseAction {
    /// Pause the lot's lane for [`AdmissionPolicy::pause_for`], then let it
    /// resume (one quarantine per lot per run). Workers it would have used
    /// serve the co-tenant lots meanwhile.
    Pause,
    /// Drop the lot's lane weight to 1, letting higher-weight co-tenants
    /// take most of the worker slots from here on.
    Demote,
    /// Drain the lot's lane: queued devices are dropped (in-flight jobs
    /// finish), the lot's report keeps only what completed, and its
    /// [`LotStatus`](crate::floor::LotStatus) becomes `Aborted`.
    Abort,
}

impl fmt::Display for CollapseAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollapseAction::Pause => write!(f, "pause"),
            CollapseAction::Demote => write!(f, "demote"),
            CollapseAction::Abort => write!(f, "abort"),
        }
    }
}

/// Tuning for the floor's admission controller.
///
/// The default policy never intervenes ([`yield_floor`](Self::yield_floor)
/// `= 0.0` matches no lot) — the controller then only streams per-lot
/// snapshots. Turn enforcement on by setting a floor:
///
/// ```
/// use casbus_sim::{AdmissionPolicy, CollapseAction};
///
/// let policy = AdmissionPolicy::default()
///     .with_yield_floor(0.25, CollapseAction::Pause)
///     .with_min_completed(8);
/// assert_eq!(policy.decide(16, 0.1), Some(CollapseAction::Pause));
/// assert_eq!(policy.decide(4, 0.1), None, "too early to judge");
/// assert_eq!(policy.decide(16, 0.5), None, "yield above the floor");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionPolicy {
    /// Sampling cadence: how often each lot is snapshotted and judged.
    pub interval: Duration,
    /// Rolling-yield window, in completions (clamped to at least 1).
    pub window: usize,
    /// Completions a lot must reach before it can be judged — protects
    /// young lots from a noisy first handful of dies.
    pub min_completed: u64,
    /// Rolling yield strictly below this triggers the collapse action;
    /// `0.0` (the default) never triggers.
    pub yield_floor: f64,
    /// What a collapse does to the lot.
    pub collapse: CollapseAction,
    /// Quarantine length for [`CollapseAction::Pause`] — the lane resumes
    /// automatically afterwards, so floor runs always terminate.
    pub pause_for: Duration,
    /// When set, the highest-priority unfinished lot is weight-boosted if
    /// it makes no progress for this long while co-tenants complete
    /// devices.
    pub starvation_after: Option<Duration>,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(10),
            window: 32,
            min_completed: 16,
            yield_floor: 0.0,
            collapse: CollapseAction::Pause,
            pause_for: Duration::from_millis(25),
            starvation_after: None,
        }
    }
}

impl AdmissionPolicy {
    /// Sets the sampling cadence.
    #[must_use]
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }

    /// Sets the rolling-yield window (completions).
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Sets the minimum completions before a lot can be judged.
    #[must_use]
    pub fn with_min_completed(mut self, min_completed: u64) -> Self {
        self.min_completed = min_completed;
        self
    }

    /// Arms collapse enforcement: rolling yield strictly below `floor`
    /// (clamped to `[0, 1]`) triggers `action`.
    #[must_use]
    pub fn with_yield_floor(mut self, floor: f64, action: CollapseAction) -> Self {
        self.yield_floor = floor.clamp(0.0, 1.0);
        self.collapse = action;
        self
    }

    /// Sets the quarantine length for [`CollapseAction::Pause`].
    #[must_use]
    pub fn with_pause_for(mut self, pause_for: Duration) -> Self {
        self.pause_for = pause_for;
        self
    }

    /// Arms the starvation boost for the highest-priority unfinished lot.
    #[must_use]
    pub fn with_starvation_after(mut self, after: Duration) -> Self {
        self.starvation_after = Some(after);
        self
    }

    /// The collapse verdict for one lot — a pure function of the lot's
    /// completion count and rolling yield. `None` means the lot may keep
    /// its slots.
    pub fn decide(&self, completed: u64, rolling_yield: f64) -> Option<CollapseAction> {
        (self.yield_floor > 0.0
            && completed >= self.min_completed
            && rolling_yield < self.yield_floor)
            .then_some(self.collapse)
    }
}

/// What the admission controller did to a lot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionAction {
    /// The lot's lane was paused (yield collapse, quarantine begins).
    Paused,
    /// The quarantine expired and the lane resumed.
    Resumed,
    /// The lot's lane weight was dropped to 1 (yield collapse).
    Demoted,
    /// The lot's lane was drained; `dropped` queued jobs were discarded.
    Aborted {
        /// Queued (not yet running) pool jobs discarded by the drain.
        dropped: u64,
    },
    /// The starving lot's lane weight was raised to `weight`.
    Boosted {
        /// The new lane weight.
        weight: u64,
    },
}

impl fmt::Display for AdmissionAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionAction::Paused => write!(f, "paused"),
            AdmissionAction::Resumed => write!(f, "resumed"),
            AdmissionAction::Demoted => write!(f, "demoted to weight 1"),
            AdmissionAction::Aborted { dropped } => {
                write!(f, "aborted ({dropped} queued devices dropped)")
            }
            AdmissionAction::Boosted { weight } => write!(f, "boosted to weight {weight}"),
        }
    }
}

/// One admission intervention, recorded on the lot's
/// [`LotReport`](crate::floor::LotReport).
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionEvent {
    /// Index of the lot on the floor (order of submission).
    pub lot: usize,
    /// The lot's name.
    pub lot_name: String,
    /// Wall-clock microseconds since the controller started.
    pub elapsed_us: u64,
    /// What was done.
    pub action: AdmissionAction,
    /// The lot's completions when the action fired.
    pub completed: u64,
    /// The lot's rolling yield when the action fired.
    pub rolling_yield: f64,
}

impl fmt::Display for AdmissionEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>7.3}s] lot {} ({}): {} at {} completed, rolling yield {:.2}",
            self.elapsed_us as f64 / 1e6,
            self.lot,
            self.lot_name,
            self.action,
            self.completed,
            self.rolling_yield,
        )
    }
}

/// The admission controller's live view of one floor lot.
pub(crate) struct LotLive<'a> {
    /// The lot's name (for events).
    pub(crate) name: &'a str,
    /// The lot's pool lane.
    pub(crate) lane: LaneId,
    /// The lot's submitted priority (initial lane weight).
    pub(crate) priority: u64,
    /// The lot's progress tracker, fed by the floor's collector.
    pub(crate) tracker: &'a LotTracker,
}

/// Applies an [`AdmissionPolicy`] to the lots of one floor run.
///
/// Owned and driven by [`TestFloor`](crate::floor::TestFloor): the floor's
/// admission thread calls `tick` every
/// [`interval`](AdmissionPolicy::interval), which judges every lot and
/// applies at most one collapse action per lot per run (a paused lot
/// resumes automatically when its quarantine expires). All state lives
/// here; the floor reads back what happened through the returned
/// [`AdmissionEvent`]s and the per-lot abort flags.
pub struct AdmissionController {
    policy: AdmissionPolicy,
    started: Instant,
    lots: Vec<LotControl>,
}

#[derive(Default)]
struct LotControl {
    /// When the current quarantine began; `None` when not paused.
    paused_since: Option<Instant>,
    /// The collapse action already fired for this lot.
    acted: bool,
    /// The starvation boost already fired for this lot.
    boosted: bool,
    /// The lot was aborted (lane drained).
    aborted: bool,
}

impl AdmissionController {
    /// A controller for `lots` lots under `policy`.
    pub(crate) fn new(policy: AdmissionPolicy, lots: usize) -> Self {
        Self {
            policy,
            started: Instant::now(),
            lots: (0..lots).map(|_| LotControl::default()).collect(),
        }
    }

    /// Whether lot `lot` was aborted by this controller.
    pub(crate) fn aborted(&self, lot: usize) -> bool {
        self.lots[lot].aborted
    }

    /// Judges every lot once and applies the policy through `pool`,
    /// returning the interventions made this tick.
    pub(crate) fn tick(&mut self, pool: &WorkerPool, lots: &[LotLive<'_>]) -> Vec<AdmissionEvent> {
        let mut events = Vec::new();
        for (idx, lot) in lots.iter().enumerate() {
            let control = &mut self.lots[idx];
            if control.aborted {
                continue;
            }
            if let Some(since) = control.paused_since {
                // A quarantined lot is not re-judged; it only waits out its
                // pause, then rejoins at the scheduler's virtual "now".
                if since.elapsed() >= self.policy.pause_for {
                    pool.set_lane_paused(lot.lane, false);
                    control.paused_since = None;
                    events.push(Self::event(
                        self.started,
                        idx,
                        lot,
                        AdmissionAction::Resumed,
                    ));
                }
                continue;
            }
            if control.acted || lot.tracker.remaining() == 0 {
                continue;
            }
            let completed = lot.tracker.completed();
            let rolling = lot.tracker.rolling_yield();
            let Some(action) = self.policy.decide(completed, rolling) else {
                continue;
            };
            control.acted = true;
            let action = match action {
                CollapseAction::Pause => {
                    pool.set_lane_paused(lot.lane, true);
                    control.paused_since = Some(Instant::now());
                    AdmissionAction::Paused
                }
                CollapseAction::Demote => {
                    pool.set_lane_weight(lot.lane, 1);
                    AdmissionAction::Demoted
                }
                CollapseAction::Abort => {
                    let dropped = pool.drain_lane(lot.lane) as u64;
                    control.aborted = true;
                    AdmissionAction::Aborted { dropped }
                }
            };
            events.push(Self::event(self.started, idx, lot, action));
        }
        if let Some(after) = self.policy.starvation_after {
            events.extend(self.starvation_boost(pool, lots, after));
        }
        events
    }

    /// The starvation rule: the highest-priority lot that still owes
    /// devices gets a one-time weight boost when it has made no progress
    /// for `after` while some co-tenant has.
    fn starvation_boost(
        &mut self,
        pool: &WorkerPool,
        lots: &[LotLive<'_>],
        after: Duration,
    ) -> Option<AdmissionEvent> {
        let (idx, lot) = lots
            .iter()
            .enumerate()
            .filter(|(i, l)| {
                let control = &self.lots[*i];
                !control.aborted
                    && !control.boosted
                    && control.paused_since.is_none()
                    && l.tracker.remaining() > 0
            })
            .max_by_key(|(_, l)| l.priority)?;
        if lot.tracker.last_progress_age() < after {
            return None;
        }
        let co_tenant_progressing = lots.iter().enumerate().any(|(j, other)| {
            j != idx && other.tracker.completed() > 0 && other.tracker.last_progress_age() < after
        });
        if !co_tenant_progressing {
            // Nobody is making progress: the floor is saturated or idle,
            // not unfair — boosting would only thrash weights.
            return None;
        }
        let weight = lots
            .iter()
            .map(|l| l.priority)
            .sum::<u64>()
            .max(lot.priority.saturating_mul(2))
            .max(1);
        pool.set_lane_weight(lot.lane, weight);
        self.lots[idx].boosted = true;
        Some(Self::event(
            self.started,
            idx,
            lot,
            AdmissionAction::Boosted { weight },
        ))
    }

    fn event(
        started: Instant,
        idx: usize,
        lot: &LotLive<'_>,
        action: AdmissionAction,
    ) -> AdmissionEvent {
        AdmissionEvent {
            lot: idx,
            lot_name: lot.name.to_owned(),
            elapsed_us: started.elapsed().as_micros() as u64,
            action,
            completed: lot.tracker.completed(),
            rolling_yield: lot.tracker.rolling_yield(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::DeviceReport;
    use crate::monitor::LotTracker;
    use crate::report::SocTestReport;
    use casbus_tpg::Verdict;

    fn synthetic_report(device_id: u64, pass: bool) -> DeviceReport {
        DeviceReport {
            device_id,
            fault: None,
            report: SocTestReport {
                verdicts: vec![(
                    "core".to_owned(),
                    if pass {
                        Verdict::Pass
                    } else {
                        Verdict::Fail { mismatches: 1 }
                    },
                )],
                total_cycles: 10,
                steps: 1,
                per_core_cycles: Vec::new(),
                bus_cycles: 5,
                signatures: Vec::new(),
            },
        }
    }

    fn record_n(tracker: &LotTracker, from: u64, n: u64, pass: bool) {
        for id in from..from + n {
            tracker.record(&synthetic_report(id, pass));
        }
    }

    #[test]
    fn decide_is_gated_on_floor_min_completed_and_yield() {
        let policy = AdmissionPolicy::default()
            .with_yield_floor(0.5, CollapseAction::Demote)
            .with_min_completed(10);
        assert_eq!(policy.decide(10, 0.2), Some(CollapseAction::Demote));
        assert_eq!(policy.decide(9, 0.2), None, "too few completions");
        assert_eq!(policy.decide(10, 0.5), None, "at the floor is not below");
        let unarmed = AdmissionPolicy::default();
        assert_eq!(unarmed.decide(1000, 0.0), None, "default never triggers");
    }

    #[test]
    fn collapse_pauses_then_resumes_after_quarantine() {
        let policy = AdmissionPolicy::default()
            .with_yield_floor(0.9, CollapseAction::Pause)
            .with_min_completed(4)
            .with_pause_for(Duration::from_millis(1));
        let pool = WorkerPool::new(1);
        let lane = pool.lane(2);
        let tracker = LotTracker::new(16, 8);
        record_n(&tracker, 0, 4, false);
        let lots = [LotLive {
            name: "hot",
            lane,
            priority: 2,
            tracker: &tracker,
        }];
        let mut controller = AdmissionController::new(policy, 1);

        let events = controller.tick(&pool, &lots);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].action, AdmissionAction::Paused);
        assert_eq!(events[0].completed, 4);
        assert!(events[0].rolling_yield < 1e-12);

        // Wait out the quarantine: the next tick resumes the lane.
        std::thread::sleep(Duration::from_millis(2));
        let events = controller.tick(&pool, &lots);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].action, AdmissionAction::Resumed);

        // One quarantine per lot per run.
        assert!(controller.tick(&pool, &lots).is_empty());
        assert!(!controller.aborted(0));
    }

    #[test]
    fn collapse_abort_drains_the_lane() {
        let policy = AdmissionPolicy::default()
            .with_yield_floor(0.9, CollapseAction::Abort)
            .with_min_completed(2);
        let pool = WorkerPool::new(1);
        // Gate the single worker so lane jobs stay queued.
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        pool.execute(move || {
            gate_rx.recv().ok();
        });
        let lane = pool.lane(1);
        for _ in 0..3 {
            pool.execute_in(lane, || {});
        }
        let tracker = LotTracker::new(16, 8);
        record_n(&tracker, 0, 2, false);
        let lots = [LotLive {
            name: "doomed",
            lane,
            priority: 1,
            tracker: &tracker,
        }];
        let mut controller = AdmissionController::new(policy, 1);
        let events = controller.tick(&pool, &lots);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].action, AdmissionAction::Aborted { dropped: 3 });
        assert!(controller.aborted(0));
        assert!(controller.tick(&pool, &lots).is_empty(), "abort is final");
        gate_tx.send(()).ok();
    }

    #[test]
    fn starving_high_priority_lot_gets_boosted_once() {
        let policy = AdmissionPolicy::default().with_starvation_after(Duration::from_millis(1));
        let pool = WorkerPool::new(1);
        let hot_lane = pool.lane(4);
        let cold_lane = pool.lane(1);
        let hot = LotTracker::new(16, 8);
        let cold = LotTracker::new(16, 8);
        // The high-priority lot has never progressed; wait out the
        // starvation window, then let the low-priority lot progress.
        std::thread::sleep(Duration::from_millis(2));
        record_n(&cold, 0, 1, true);
        let lots = [
            LotLive {
                name: "hot",
                lane: hot_lane,
                priority: 4,
                tracker: &hot,
            },
            LotLive {
                name: "cold",
                lane: cold_lane,
                priority: 1,
                tracker: &cold,
            },
        ];
        let mut controller = AdmissionController::new(policy, 2);
        let events = controller.tick(&pool, &lots);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].lot, 0);
        assert_eq!(events[0].action, AdmissionAction::Boosted { weight: 8 });
        // The boost fires once.
        std::thread::sleep(Duration::from_millis(2));
        assert!(controller.tick(&pool, &lots).is_empty());
    }
}
