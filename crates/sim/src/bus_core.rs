//! The behavioural model behind the wrapped system bus (paper Fig. 1).

use casbus_p1500::TestableCore;
use casbus_tpg::BitVec;

/// The system bus as a testable entity: when the functional bus is wrapped
/// by a P1500 wrapper it gets its own CAS and is tested like an interconnect
/// — serially, one wire. The model is a 1-deep pipeline echoing its input
/// (a wire under test *is* a delay-free conductor; the register is the
/// wrapper-side retiming stage).
///
/// A bridging/stuck defect can be injected to verify the session catches it.
#[derive(Debug, Clone)]
pub struct SystemBusCore {
    name: String,
    stage: bool,
    stuck: Option<bool>,
}

impl SystemBusCore {
    /// Creates a healthy bus model.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            stage: false,
            stuck: None,
        }
    }

    /// Injects a stuck-at defect on the bus conductor.
    pub fn inject_stuck(&mut self, value: bool) {
        self.stuck = Some(value);
    }
}

impl TestableCore for SystemBusCore {
    fn name(&self) -> &str {
        &self.name
    }

    fn test_ports(&self) -> usize {
        1
    }

    fn test_clock(&mut self, inputs: &BitVec) -> BitVec {
        assert_eq!(inputs.len(), 1, "the bus model has one serial port");
        let out = self.stage;
        self.stage = match self.stuck {
            Some(v) => v,
            None => inputs.get(0).expect("one bit"),
        };
        let mut result = BitVec::new();
        result.push(out);
        result
    }

    fn capture_clock(&mut self) {}

    fn scan_depth(&self) -> usize {
        1
    }

    fn reset(&mut self) {
        self.stage = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echoes_with_one_cycle_delay() {
        let mut bus = SystemBusCore::new("sysbus");
        let stream: BitVec = "10110".parse().unwrap();
        let mut out = BitVec::new();
        for bit in stream.iter() {
            let mut v = BitVec::new();
            v.push(bit);
            out.push(bus.test_clock(&v).get(0).unwrap());
        }
        // Output is the input delayed by one stage.
        assert_eq!(out.to_string(), "01011");
    }

    #[test]
    fn stuck_defect_corrupts_echo() {
        let mut good = SystemBusCore::new("b");
        let mut bad = SystemBusCore::new("b");
        bad.inject_stuck(false);
        let mut diff = false;
        for i in 0..8 {
            let mut v = BitVec::new();
            v.push(i % 2 == 0);
            diff |= good.test_clock(&v) != bad.test_clock(&v);
        }
        assert!(diff);
    }

    #[test]
    fn reset_clears_stage() {
        let mut bus = SystemBusCore::new("b");
        let mut v = BitVec::new();
        v.push(true);
        bus.test_clock(&v);
        bus.reset();
        let out = bus.test_clock(&"0".parse().unwrap());
        assert_eq!(out.get(0), Some(false));
    }
}
