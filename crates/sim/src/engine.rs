//! The compiled word-level execution engine.
//!
//! [`run_program`](crate::run_program) semantics, ~10–100× faster: instead
//! of interpreting the CAS chain bit by bit every data clock, each step's
//! configuration wave is compiled once into a [`RouteTable`], and every
//! core whose routes are exclusive (no serial wire sharing) becomes an
//! independent *lane* whose scan traffic streams through the word-level
//! wrapper/model paths 64 cycles per call. Cycle counters, per-core stats,
//! wire-busy counts, verdicts, and session signatures are reproduced
//! exactly — the differential suite in `tests/` pins the engine against
//! the bit-serial reference across engines and thread counts.
//!
//! Exactness is preserved by falling back to the cycle-by-cycle
//! interpreter whenever the fast path cannot be bit-faithful:
//!
//! * a waveform probe is attached or a trace sink is enabled (every bus
//!   value change must be emitted),
//! * a step's routing shares wires serially between TEST CASes (cores
//!   concatenate through each other),
//! * a lane's wrapper is not in an INTEST mode, or its port/wire widths
//!   disagree (the interpreter's resize semantics would apply).

use std::sync::Arc;
use std::time::Instant;

use casbus::{CasChain, RouteTable, RouteTableCache};
use casbus_controller::TestProgram;
use casbus_obs::{FlightRecorder, MetricsRegistry, TraceEvent, TraceSink};
use casbus_p1500::{TestableCore, Wrapper, WrapperControl, WrapperInstruction};
use casbus_soc::models;
use casbus_tpg::{BitVec, Verdict};

use crate::pool::lpt_fanout;
use crate::report::{
    collect_lanes, drive_lanes_reference, finish_report, Lane, ReportBaseline, SocTestReport,
};
use crate::session::{lane_signature, ClockKind};
use crate::simulator::{SimError, SocSimulator};

/// A lane index paired with the disjoint wrapper borrow that executes it.
type LaneWork<'a> = (usize, &'a mut Wrapper<Box<dyn TestableCore>>);

/// The compiled word-level TAM/session engine. Drop-in for the reference
/// interpreter: identical [`SocTestReport`]s, cycle counters, and metrics.
///
/// # Examples
///
/// ```
/// use casbus::Tam;
/// use casbus_controller::{schedule, TestProgram};
/// use casbus_sim::{CompiledEngine, SocSimulator};
/// use casbus_soc::catalog;
///
/// let soc = catalog::figure1_soc();
/// let tam = Tam::new(&soc, 8).unwrap();
/// let sched = schedule::packed_schedule(&soc, 8).unwrap();
/// let program = TestProgram::from_schedule(&tam, &soc, &sched).unwrap();
/// let mut sim = SocSimulator::new(&soc, 8).unwrap();
/// let report = CompiledEngine::with_threads(2).run(&mut sim, &program).unwrap();
/// assert!(report.all_pass());
/// ```
#[derive(Debug, Clone)]
pub struct CompiledEngine {
    threads: usize,
    cache: Option<Arc<RouteTableCache>>,
    recorder: Option<Arc<FlightRecorder>>,
}

impl PartialEq for CompiledEngine {
    fn eq(&self, other: &Self) -> bool {
        let same_arc =
            |a: &Option<Arc<RouteTableCache>>, b: &Option<Arc<RouteTableCache>>| match (a, b) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            };
        let same_recorder = match (&self.recorder, &other.recorder) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        self.threads == other.threads && same_arc(&self.cache, &other.cache) && same_recorder
    }
}

impl Eq for CompiledEngine {}

impl Default for CompiledEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl CompiledEngine {
    /// Single-threaded compiled engine (the default used by
    /// [`run_program`](crate::run_program)).
    pub fn new() -> Self {
        Self {
            threads: 1,
            cache: None,
            recorder: None,
        }
    }

    /// Compiled engine running each step's independent lanes on up to
    /// `threads` worker threads, joined at wave boundaries. `0` means one
    /// worker per available hardware thread.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            cache: None,
            recorder: None,
        }
    }

    /// Attaches a shared [`RouteTableCache`]: per-step route compilation
    /// becomes a hash lookup whenever the wave shape repeats, and every
    /// engine (or validation worker) holding a clone of the same `Arc`
    /// shares one compiled copy per shape. Routing results are unchanged —
    /// the cache is keyed on exactly the compilation inputs.
    pub fn with_cache(mut self, cache: Arc<RouteTableCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached route-table cache, if any.
    pub fn route_cache(&self) -> Option<&Arc<RouteTableCache>> {
        self.cache.as_ref()
    }

    /// Attaches a [`FlightRecorder`]: after each program step the engine
    /// records one coarse `engine` span (cycle-accurate `ts`/`dur`, plus
    /// lane count, executed path, and step wall time as args) into the
    /// ring. Unlike a simulator trace sink — which forces the bit-serial
    /// reference path so every bus value change can be emitted — the
    /// recorder observes only step boundaries, so the word-level fast path
    /// stays enabled and results are unchanged.
    pub fn with_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The attached flight recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// The step's compiled routes: through the attached cache when present,
    /// a fresh compile otherwise.
    fn routes_for(&self, chain: &CasChain) -> Arc<RouteTable> {
        match &self.cache {
            Some(cache) => cache.get_or_compile(chain),
            None => Arc::new(RouteTable::compile(chain)),
        }
    }

    /// Worker threads this engine will use (after resolving `0`).
    pub fn threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }

    /// Executes a test program; see [`run_program`](crate::run_program) for
    /// the step semantics.
    ///
    /// # Errors
    ///
    /// Propagates configuration and width errors.
    pub fn run(
        &self,
        sim: &mut SocSimulator,
        program: &TestProgram,
    ) -> Result<SocTestReport, SimError> {
        // No registry at all on this path: per-device fleet runs build
        // thousands of reports, and the report fields come straight from
        // the simulator's own counters.
        self.execute(sim, program, None)
    }

    /// [`CompiledEngine::run`] with metrics publication (identical counter
    /// values to the reference interpreter).
    ///
    /// # Errors
    ///
    /// Propagates configuration and width errors.
    pub fn run_with_metrics(
        &self,
        sim: &mut SocSimulator,
        program: &TestProgram,
        metrics: &MetricsRegistry,
    ) -> Result<SocTestReport, SimError> {
        self.execute(sim, program, Some(metrics))
    }

    /// Shared body of [`run`](Self::run) / [`run_with_metrics`](Self::run_with_metrics):
    /// metrics export is skipped entirely when no registry is attached —
    /// the report's cycle fields read the simulator's counters directly.
    fn execute(
        &self,
        sim: &mut SocSimulator,
        program: &TestProgram,
        metrics: Option<&MetricsRegistry>,
    ) -> Result<SocTestReport, SimError> {
        let baseline = ReportBaseline::capture(sim);
        // Observability wants every per-cycle bus value: stay bit-serial.
        let exact_only = sim.has_probe() || sim.trace().enabled();
        let mut results = Vec::new();
        for (step_index, step) in program.steps().iter().enumerate() {
            let step_start = sim.cycles();
            let wall_start = self.recorder.as_ref().map(|_| Instant::now());
            sim.configure(&step.configuration, &step.wrapper_instructions)?;
            let routes = self.routes_for(sim.tam().chain());
            let lanes = collect_lanes(sim, &step.configuration)?;
            let fast_path = !exact_only && step_is_compilable(sim, &lanes, &routes);
            if fast_path {
                results.extend(self.drive_lanes_compiled(sim, &lanes)?);
            } else {
                results.extend(drive_lanes_reference(sim, &lanes, step_index, step_start)?);
            }
            if let (Some(recorder), Some(wall_start)) = (&self.recorder, wall_start) {
                recorder.record(TraceEvent::span(
                    "engine",
                    format!("step{step_index}"),
                    step_start,
                    sim.cycles() - step_start,
                    vec![
                        ("lanes", lanes.len().into()),
                        (
                            "path",
                            if fast_path { "compiled" } else { "reference" }.into(),
                        ),
                        ("wall_us", (wall_start.elapsed().as_micros() as u64).into()),
                    ],
                ));
            }
        }
        finish_report(sim, metrics, &baseline, results, program.steps().len())
    }

    /// Predicts the exact total tester cycles of `program` without driving
    /// a single data clock. Each step's configuration wave is loaded for
    /// real (measuring the CONFIGURATION-phase cost and warming the
    /// attached route cache on the step's wave shape), then the data phase
    /// is scored analytically as the step horizon — both execution paths
    /// drive exactly `max(plan.len())` data clocks per step, so the sum
    /// equals the executed [`SocTestReport::total_cycles`] (pinned by
    /// tests). This is the cheap scoring entry point schedule search uses
    /// before committing to full candidate execution.
    ///
    /// Leaves the simulator configured at the final step; hand it a fresh
    /// instance afterwards, as with any run.
    ///
    /// # Errors
    ///
    /// Propagates configuration and width errors.
    pub fn dry_run_cycles(
        &self,
        sim: &mut SocSimulator,
        program: &TestProgram,
    ) -> Result<u64, SimError> {
        let start = sim.cycles();
        let mut data_cycles = 0u64;
        for step in program.steps() {
            sim.configure(&step.configuration, &step.wrapper_instructions)?;
            if let Some(cache) = &self.cache {
                cache.get_or_compile(sim.tam().chain());
            }
            let lanes = collect_lanes(sim, &step.configuration)?;
            data_cycles += lanes.iter().map(|l| l.plan.len() as u64).max().unwrap_or(0);
        }
        Ok(sim.cycles() - start + data_cycles)
    }

    /// Runs one compilable step's lanes word-at-a-time, then accounts for
    /// every counter the interpreter would have bumped.
    fn drive_lanes_compiled(
        &self,
        sim: &mut SocSimulator,
        lanes: &[Lane],
    ) -> Result<Vec<(String, Verdict, u64)>, SimError> {
        let horizon = lanes.iter().map(|l| l.plan.len()).max().unwrap_or(0);
        let mut lane_of_cas: Vec<Option<usize>> = vec![None; sim.tam().cas_count()];
        for (pos, lane) in lanes.iter().enumerate() {
            lane_of_cas[lane.cas_index] = Some(pos);
        }
        let mut outcomes: Vec<Option<LaneOutcome>> = (0..lanes.len()).map(|_| None).collect();
        {
            // Pair every lane with its wrapper: iterating the slice hands
            // out one disjoint `&mut` per lane.
            let work: Vec<LaneWork<'_>> = sim
                .wrappers_mut_slice()
                .iter_mut()
                .enumerate()
                .filter_map(|(idx, wrapper)| lane_of_cas[idx].map(|pos| (pos, wrapper)))
                .collect();
            // Weight each lane by plan length and hand the fan-out to the
            // shared scoped LPT helper — the same bucketing the controller's
            // wave partitioner predicts with, so schedule-time estimates and
            // run-time placement agree. `work` is in CAS order, keeping ties
            // deterministic.
            let workers = self.threads().min(lanes.len()).max(1);
            let weighted: Vec<(u64, LaneWork<'_>)> = work
                .into_iter()
                .map(|(pos, wrapper)| (lanes[pos].plan.len() as u64, (pos, wrapper)))
                .collect();
            let computed = lpt_fanout(weighted, workers, |(pos, wrapper)| {
                (pos, run_lane(wrapper, &lanes[pos], horizon))
            });
            for (pos, outcome) in computed {
                outcomes[pos] = Some(outcome);
            }
        }
        // Arithmetic accounting: what the interpreter's per-cycle loop would
        // have added over `horizon` data clocks.
        sim.advance_data_cycles(horizon as u64);
        let stats = sim.core_stats_mut();
        for (idx, slot) in lane_of_cas.iter().enumerate() {
            match slot {
                Some(pos) => {
                    let plan = &lanes[*pos].plan;
                    let shifts = plan.shift_cycles() as u64;
                    stats[idx].shift += shifts;
                    stats[idx].capture += plan.len() as u64 - shifts;
                    stats[idx].idle += (horizon - plan.len()) as u64;
                }
                None => stats[idx].idle += horizon as u64,
            }
        }
        let busy = sim.wire_busy_mut();
        for lane in lanes {
            // Every plan cycle is Shift or Capture (compilability), so the
            // lane's wires are busy for exactly `plan.len()` clocks.
            for &wire in &lane.wires {
                busy[wire] += lane.plan.len() as u64;
            }
        }
        let mut step_results = Vec::with_capacity(lanes.len());
        for (lane, outcome) in lanes.iter().zip(outcomes) {
            let outcome = outcome.expect("every lane ran");
            sim.set_pending(lane.cas_index, outcome.pending);
            let verdict = if outcome.mismatches == 0 {
                Verdict::Pass
            } else {
                Verdict::Fail {
                    mismatches: outcome.mismatches,
                }
            };
            step_results.push((lane.name.clone(), verdict, outcome.signature));
        }
        Ok(step_results)
    }
}

/// Why a configured step cannot run on the word-level fast path. Each
/// variant names the [`step_compile_blocker`] clause that failed — the
/// packed fleet path exports these as `fleet.packed.fallback.reason.*`
/// counters so coverage gaps are observable instead of inferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CompileBlocker {
    /// A lane's routes share wires serially with another CAS.
    DependentRoutes,
    /// A tested wrapper is not in a transparent INTEST mode.
    NonIntestWrapper,
    /// Scheme width, plan width, and wrapper width disagree.
    WidthMismatch,
    /// The plan contains Update or Idle cycles the word path cannot batch.
    UpdateOrIdleCycles,
    /// A test-mode wrapper outside the lanes would still be clocked.
    ArmedBystander,
}

impl CompileBlocker {
    /// Stable metric-suffix name for this blocker.
    pub(crate) fn reason(self) -> &'static str {
        match self {
            Self::DependentRoutes => "step.dependent_routes",
            Self::NonIntestWrapper => "step.non_intest_wrapper",
            Self::WidthMismatch => "step.width_mismatch",
            Self::UpdateOrIdleCycles => "step.update_or_idle_cycles",
            Self::ArmedBystander => "step.armed_bystander",
        }
    }
}

/// The first reason the configured step cannot run on the word-level fast
/// path while staying bit-identical to the interpreter, or `None` when it
/// can. `routes` must be compiled from the chain's current
/// (post-`configure`) state. Also the gate the packed device-parallel fleet
/// path uses: its lane-containment argument (a defect on one core perturbs
/// only that core's verdict and signature) holds exactly when every step
/// passes.
pub(crate) fn step_compile_blocker(
    sim: &SocSimulator,
    lanes: &[Lane],
    routes: &RouteTable,
) -> Option<CompileBlocker> {
    let mut is_lane = vec![false; sim.tam().cas_count()];
    for lane in lanes {
        is_lane[lane.cas_index] = true;
        // Exclusive straight-through wires: no serial concatenation.
        if !routes.is_independent(lane.cas_index) {
            return Some(CompileBlocker::DependentRoutes);
        }
        let wrapper = sim.wrapper_at(lane.cas_index);
        // INTEST modes are transparent shift pipes (wrapper output =
        // model output); EXTEST threads the boundary register per cycle.
        if !matches!(
            wrapper.instruction(),
            WrapperInstruction::IntestScan | WrapperInstruction::IntestBist
        ) {
            return Some(CompileBlocker::NonIntestWrapper);
        }
        let ports = lane.plan.ports();
        // Identity resize: scheme width == plan width == wrapper width.
        if lane.wires.len() != ports || wrapper.parallel_width() != ports {
            return Some(CompileBlocker::WidthMismatch);
        }
        if lane
            .plan
            .cycles()
            .iter()
            .any(|(_, kind)| matches!(kind, ClockKind::Update | ClockKind::Idle))
        {
            return Some(CompileBlocker::UpdateOrIdleCycles);
        }
    }
    // A test-mode wrapper outside the lanes (e.g. a wrapped system bus left
    // armed) would still be clocked by the interpreter: stay exact.
    if (0..sim.tam().cas_count())
        .all(|idx| is_lane[idx] || !sim.wrapper_at(idx).instruction().is_test_mode())
    {
        None
    } else {
        Some(CompileBlocker::ArmedBystander)
    }
}

/// Whether the configured step can run on the word-level fast path —
/// [`step_compile_blocker`] without the diagnosis.
pub(crate) fn step_is_compilable(sim: &SocSimulator, lanes: &[Lane], routes: &RouteTable) -> bool {
    step_compile_blocker(sim, lanes, routes).is_none()
}

/// What one lane's batched session produced.
struct LaneOutcome {
    /// Bit mismatches against the golden model (the interpreter's
    /// `compare`, including its observation-window skip rule).
    mismatches: usize,
    /// [`lane_signature`] over the port-major observed streams.
    signature: u64,
    /// End-of-step value of the CAS boundary retiming register.
    pending: BitVec,
}

/// Streams one lane's whole session plan through the word-level wrapper and
/// golden-model paths, 64 cycles per call.
///
/// Equivalence to the interpreter, per data clock `t` of the step: the bus
/// slice the interpreter records at `t` is the retimed wrapper output of
/// cycle `t - 1` (zeros at `t = 0`, because `configure` clears the retiming
/// register), and it records slices only while `t < plan.len() + 1`. So with
/// `limit = min(horizon, plan.len() + 1)` observation slots, cycle `t`'s
/// output is compared/recorded iff `t + 1 < limit` — the longest lane's
/// final drain shift falls outside the window, exactly as in the reference.
fn run_lane(
    wrapper: &mut Wrapper<Box<dyn TestableCore>>,
    lane: &Lane,
    horizon: usize,
) -> LaneOutcome {
    let ports = lane.plan.ports();
    let len = lane.plan.len();
    let limit = horizon.min(len + 1);
    let mut golden = models::instantiate(&lane.desc);
    let mut mismatches = 0usize;
    let mut streams: Vec<BitVec> = (0..ports)
        .map(|_| {
            let mut stream = BitVec::new();
            if limit > 0 {
                stream.push(false);
            }
            stream
        })
        .collect();
    let mut last_bits = BitVec::zeros(ports);
    let cycles = lane.plan.cycles();
    let mut planes = vec![0u64; ports];
    let mut t = 0usize;
    while t < len {
        if cycles[t].1 == ClockKind::Shift {
            let mut run = 1usize;
            while run < 64 && t + run < len && cycles[t + run].1 == ClockKind::Shift {
                run += 1;
            }
            // Transpose the stimuli into per-port planes (bit c = cycle t+c).
            planes.iter_mut().for_each(|p| *p = 0);
            for (c, (stim, _)) in cycles[t..t + run].iter().enumerate() {
                for (j, plane) in planes.iter_mut().enumerate() {
                    if stim.get(j).expect("stim P wide") {
                        *plane |= 1 << c;
                    }
                }
            }
            let produced = wrapper.clock_parallel_words(&planes, run);
            let expected = golden.test_clock_words(&planes, run);
            let kept = run.min(limit.saturating_sub(t + 1));
            let mask = if kept == 64 {
                u64::MAX
            } else {
                (1u64 << kept) - 1
            };
            for j in 0..ports {
                mismatches += ((produced[j] ^ expected[j]) & mask).count_ones() as usize;
                streams[j].push_word(produced[j], kept);
                last_bits.set(j, (produced[j] >> (run - 1)) & 1 == 1);
            }
            t += run;
        } else {
            // Capture: fire the functional clock on both sides. The wrapper
            // returns zeros on non-shift clocks, so the observed slice for
            // this cycle is all-zero.
            wrapper.clock_parallel(&BitVec::zeros(ports), &WrapperControl::capture_data());
            golden.capture_clock();
            if t + 1 < limit {
                for stream in streams.iter_mut() {
                    stream.push(false);
                }
            }
            for j in 0..ports {
                last_bits.set(j, false);
            }
            t += 1;
        }
    }
    // Idle clocks past the plan leave the wrapper untouched and drive zeros
    // into the retiming register; only the step's longest lane keeps its
    // final shifted word pending.
    let pending = if horizon > len {
        BitVec::zeros(ports)
    } else {
        last_bits
    };
    LaneOutcome {
        mismatches,
        signature: lane_signature(&streams),
        pending,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casbus::Tam;
    use casbus_controller::{schedule, TestProgram};
    use casbus_obs::MetricsRegistry;
    use casbus_soc::catalog;

    use crate::report::{run_program_reference_with_metrics, run_program_with_metrics};

    fn program_for(soc: &casbus_soc::SocDescription, n: usize, packed: bool) -> TestProgram {
        let tam = Tam::new(soc, n).unwrap();
        let sched = if packed {
            schedule::packed_schedule(soc, n).unwrap()
        } else {
            schedule::serial_schedule(soc, n).unwrap()
        };
        TestProgram::from_schedule(&tam, soc, &sched).unwrap()
    }

    /// Runs a program on the reference interpreter and on the compiled
    /// engine at several thread counts; everything must be bit-identical.
    fn assert_engines_agree(soc: &casbus_soc::SocDescription, n: usize, packed: bool) {
        let program = program_for(soc, n, packed);
        let ref_metrics = MetricsRegistry::new();
        let mut ref_sim = SocSimulator::new(soc, n).unwrap();
        let reference =
            run_program_reference_with_metrics(&mut ref_sim, &program, &ref_metrics).unwrap();
        for threads in [1usize, 2, 4] {
            let metrics = MetricsRegistry::new();
            let mut sim = SocSimulator::new(soc, n).unwrap();
            let compiled = CompiledEngine::with_threads(threads)
                .run_with_metrics(&mut sim, &program, &metrics)
                .unwrap();
            assert_eq!(compiled, reference, "report diverged at {threads} threads");
            assert_eq!(sim.cycles(), ref_sim.cycles(), "{threads} threads");
            assert_eq!(sim.config_cycles(), ref_sim.config_cycles());
            assert_eq!(sim.test_cycles(), ref_sim.test_cycles());
            assert_eq!(sim.core_stats(), ref_sim.core_stats());
            assert_eq!(sim.wire_busy(), ref_sim.wire_busy());
            assert_eq!(
                metrics.to_json(),
                ref_metrics.to_json(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn figure1_packed_matches_reference() {
        assert_engines_agree(&catalog::figure1_soc(), 8, true);
    }

    #[test]
    fn figure1_serial_matches_reference() {
        assert_engines_agree(&catalog::figure1_soc(), 8, false);
    }

    #[test]
    fn scan_soc_narrow_bus_matches_reference() {
        assert_engines_agree(&catalog::figure2a_scan_soc(), 4, false);
    }

    #[test]
    fn bist_soc_matches_reference() {
        assert_engines_agree(&catalog::figure2b_bist_soc(), 3, true);
    }

    #[test]
    fn external_soc_matches_reference() {
        assert_engines_agree(&catalog::figure2c_external_soc(), 4, true);
    }

    #[test]
    fn hierarchical_soc_matches_reference() {
        assert_engines_agree(&catalog::figure2d_hierarchical_soc(), 4, false);
    }

    #[test]
    fn itc02_like_soc_matches_reference() {
        assert_engines_agree(&catalog::itc02_like_soc(), 16, true);
    }

    #[test]
    fn compiled_engine_detects_injected_fault() {
        let soc = catalog::figure2a_scan_soc();
        let program = program_for(&soc, 4, false);
        let break_core = |sim: &mut SocSimulator| {
            let wrapper = sim.wrapper_mut("scan3").unwrap();
            let mut faulty = casbus_soc::models::ScanCore::new("scan3", vec![30, 28, 32]);
            faulty.inject_stuck_at(1, 14, true);
            *wrapper = casbus_p1500::Wrapper::new(Box::new(faulty) as Box<dyn TestableCore>, 8, 8);
        };
        let mut ref_sim = SocSimulator::new(&soc, 4).unwrap();
        break_core(&mut ref_sim);
        let reference = crate::report::run_program_reference(&mut ref_sim, &program).unwrap();
        assert!(!reference.all_pass());

        let mut sim = SocSimulator::new(&soc, 4).unwrap();
        break_core(&mut sim);
        let compiled = CompiledEngine::new().run(&mut sim, &program).unwrap();
        assert_eq!(compiled, reference, "identical failure report");
        assert_eq!(
            compiled.verdict("scan3"),
            reference.verdict("scan3"),
            "same mismatch count"
        );
    }

    #[test]
    fn attached_probe_forces_reference_path_and_stays_exact() {
        use casbus_obs::VcdWriter;
        use std::cell::RefCell;
        use std::rc::Rc;

        let soc = catalog::figure2a_scan_soc();
        let program = program_for(&soc, 4, false);
        let mut plain = SocSimulator::new(&soc, 4).unwrap();
        let baseline =
            run_program_with_metrics(&mut plain, &program, &MetricsRegistry::new()).unwrap();

        let mut probed = SocSimulator::new(&soc, 4).unwrap();
        let vcd = Rc::new(RefCell::new(VcdWriter::new("probe")));
        probed.attach_probe(Box::new(Rc::clone(&vcd)));
        let report =
            run_program_with_metrics(&mut probed, &program, &MetricsRegistry::new()).unwrap();
        assert_eq!(report, baseline);
        let dump = vcd.borrow_mut().render();
        assert!(dump.contains("$var"), "probe observed the run");
    }

    #[test]
    fn default_engine_is_single_threaded() {
        assert_eq!(CompiledEngine::new().threads(), 1);
        assert_eq!(CompiledEngine::default(), CompiledEngine::new());
        assert!(CompiledEngine::with_threads(0).threads() >= 1);
    }

    #[test]
    fn reused_simulator_reports_only_its_own_program() {
        // Dynamic reconfiguration across programs: run twice on one
        // simulator; the second report's cycle fields cover only itself.
        let soc = catalog::figure2a_scan_soc();
        let program = program_for(&soc, 4, false);
        let mut sim = SocSimulator::new(&soc, 4).unwrap();
        let first = CompiledEngine::new().run(&mut sim, &program).unwrap();
        let second = CompiledEngine::new().run(&mut sim, &program).unwrap();
        assert_eq!(first, second, "re-running is deterministic");

        let mut ref_sim = SocSimulator::new(&soc, 4).unwrap();
        let ref_first = crate::report::run_program_reference(&mut ref_sim, &program).unwrap();
        let ref_second = crate::report::run_program_reference(&mut ref_sim, &program).unwrap();
        assert_eq!(first, ref_first);
        assert_eq!(second, ref_second);
    }

    #[test]
    fn cached_engine_is_bit_identical_and_reuses_tables() {
        use casbus::RouteTableCache;
        use std::sync::Arc;

        let soc = catalog::figure1_soc();
        let program = program_for(&soc, 8, true);
        let mut plain_sim = SocSimulator::new(&soc, 8).unwrap();
        let plain = CompiledEngine::new().run(&mut plain_sim, &program).unwrap();

        let cache = Arc::new(RouteTableCache::new());
        let engine = CompiledEngine::new().with_cache(Arc::clone(&cache));
        assert_eq!(engine, engine.clone(), "clones share the cache Arc");
        assert_ne!(engine, CompiledEngine::new(), "cached != uncached");

        let mut sim = SocSimulator::new(&soc, 8).unwrap();
        let first = engine.run(&mut sim, &program).unwrap();
        assert_eq!(first, plain, "cache never changes routing results");
        let misses_after_first = cache.misses();
        assert!(misses_after_first > 0, "first run compiles every shape");

        // Re-running the same program repeats every wave shape: pure hits.
        let mut sim2 = SocSimulator::new(&soc, 8).unwrap();
        let second = engine.run(&mut sim2, &program).unwrap();
        assert_eq!(second, plain);
        assert_eq!(cache.misses(), misses_after_first, "no new compiles");
        assert!(cache.hits() >= program.steps().len() as u64);
    }

    #[test]
    fn flight_recorder_keeps_fast_path_and_records_step_spans() {
        use casbus_obs::trace::ArgValue;
        use casbus_obs::FlightRecorder;

        let soc = catalog::figure1_soc();
        let program = program_for(&soc, 8, true);
        let mut plain_sim = SocSimulator::new(&soc, 8).unwrap();
        let plain = CompiledEngine::new().run(&mut plain_sim, &program).unwrap();

        let recorder = Arc::new(FlightRecorder::new(256));
        let engine = CompiledEngine::new().with_recorder(Arc::clone(&recorder));
        assert!(engine.recorder().is_some());
        let mut sim = SocSimulator::new(&soc, 8).unwrap();
        let recorded = engine.run(&mut sim, &program).unwrap();
        assert_eq!(recorded, plain, "recorder never changes results");

        let dump = recorder.dump();
        assert_eq!(dump.events.len(), program.steps().len());
        assert!(
            dump.events
                .windows(2)
                .all(|w| w[1].ts == w[0].ts + w[0].dur),
            "step spans tile the cycle timeline"
        );
        let compiled_steps = dump
            .events
            .iter()
            .filter(|e| {
                e.args
                    .iter()
                    .any(|(k, v)| *k == "path" && *v == ArgValue::Str("compiled".to_owned()))
            })
            .count();
        assert!(
            compiled_steps > 0,
            "the recorder must not force the reference path"
        );
    }

    #[test]
    fn dry_run_predicts_executed_cycles_exactly() {
        for (soc, n, packed) in [
            (catalog::figure1_soc(), 8, true),
            (catalog::figure1_soc(), 8, false),
            (catalog::figure2a_scan_soc(), 4, false),
            (catalog::figure2b_bist_soc(), 3, true),
        ] {
            let program = program_for(&soc, n, packed);
            let mut dry_sim = SocSimulator::new(&soc, n).unwrap();
            let predicted = CompiledEngine::new()
                .dry_run_cycles(&mut dry_sim, &program)
                .unwrap();
            let mut sim = SocSimulator::new(&soc, n).unwrap();
            let report = CompiledEngine::new().run(&mut sim, &program).unwrap();
            assert_eq!(predicted, report.total_cycles, "{}", soc.name());
        }
    }
}
