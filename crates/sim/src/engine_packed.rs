//! Packed device-parallel fleet execution: up to 64 devices per word.
//!
//! Every die in a fleet runs the *identical* compiled test program and
//! differs only by at most one stuck-at defect
//! ([`VariationSpec`](crate::VariationSpec)). [`PackedDeviceEngine`]
//! exploits that structure along the device axis, the way the PPSFP fault
//! simulator exploits it along the sequence axis:
//!
//! * **Healthy dies are one run, ever.** The engine executes the compiled
//!   program once on a defect-free device and keeps the resulting
//!   [`SocTestReport`] as the *baseline*. Every healthy device's report is a
//!   clone of it — the scalar engine is deterministic, so a fresh healthy
//!   run could not produce anything else.
//! * **Defective dies run 64 to a word.** Devices of one cohort (≤ 64)
//!   whose defects land on the same core become *lanes* of one word-level
//!   twin of that core's behavioural model — [`PackedScanLanes`],
//!   [`PackedBistLanes`], or [`PackedMemoryLanes`], covering every defect
//!   kind [`VariationSpec`](crate::VariationSpec) stamps. Each state bit of
//!   the scalar model (a scan flop, a MISR stage, a memory cell bit) is one
//!   `u64`, bit `l` belonging to device-lane `l`, and the per-device
//!   defects become per-lane force/mask words. One shift or capture clock
//!   then advances all of them at once against a single shared golden model
//!   (stimuli are broadcast — every lane sees the same plan). Per-lane
//!   mismatch counts and signatures are extracted at the session boundary
//!   by transposing the time-major observation words back into per-lane
//!   streams and feeding the *same* `lane_signature` fold the scalar
//!   engines use.
//! * **Everything else falls back, per device.** Monitored runs, programs
//!   with any step the word-level fast path cannot express, and defects the
//!   lane encoding cannot carry are executed by the unchanged scalar
//!   [`test_device`](crate::fleet) path — bit-identity is never traded for
//!   speed. Every fallback is attributed: [`PackedDeviceEngine::fallback_reason`]
//!   names the compile clause or defect placement responsible, and the
//!   fleet exports the tallies as `fleet.packed.fallback.reason.*`.
//!
//! # Why patching the baseline is sound
//!
//! The packed path is only used when **every** step of the program passes
//! `step_is_compilable`: all routes independent (no serial wire sharing
//! between cores), all tested wrappers in transparent INTEST modes with
//! exact widths, no Update/Idle plan cycles. Under those conditions a
//! defect inside core X can influence *only* X's own produced bits: each
//! `configure` reloads every CAS instruction and clears every retiming
//! register, session plans are pure functions of the core descriptions, and
//! every lane's traffic flows over exclusive wires. Cycle counters are
//! plan-arithmetic, identical for every device. So a defective device's
//! report differs from the healthy baseline in exactly two places — the
//! verdict and the signature of the defective core's session(s) — and those
//! are what the packed lane run recomputes. The differential suite in
//! `tests/fleet_differential.rs` pins this bit for bit across fleet sizes
//! {1, 2, 63, 64, 65, 256} and thread counts {1, 2, 4}.

use std::collections::HashMap;
use std::sync::Arc;

use casbus::RouteTableCache;
use casbus_controller::CompiledProgram;
use casbus_soc::models::{self, PackedBistLanes, PackedMemoryLanes, PackedScanLanes};
use casbus_soc::{CoreDescription, SocDescription, TestMethod};
use casbus_tpg::lanes::{broadcast, LaneStreams, LANES};
use casbus_tpg::Verdict;

use crate::engine::{step_compile_blocker, CompiledEngine};
use crate::fleet::{test_device, DeviceReport, FaultKind, InjectedFault};
use crate::report::{collect_lanes, SocTestReport};
use crate::session::{lane_signature, ClockKind, SessionPlan};
use crate::simulator::{SimError, SocSimulator};

/// Devices per cohort: the lane capacity of one machine word.
pub const COHORT_LANES: usize = LANES;

/// One tested occurrence of a core in the program: where its verdict and
/// signature live in the report, and the plan/window it executes.
struct PackedLaneSpec {
    /// Index into [`SocTestReport::verdicts`] / `signatures`.
    slot: usize,
    desc: CoreDescription,
    plan: SessionPlan,
    /// The step's data-clock horizon (longest concurrent plan).
    horizon: usize,
}

/// The compiled packed device-parallel engine: one healthy baseline report
/// plus per-core lane specs, shared read-only by every cohort job of a
/// fleet run.
///
/// Built once per [`FleetRunner`](crate::FleetRunner) (lazily, on the first
/// packed run) from exactly the artifacts the scalar path uses — the shared
/// SoC description, compiled program, and route cache — so route-table
/// cache misses stay independent of fleet size and execution mode.
pub struct PackedDeviceEngine {
    baseline: SocTestReport,
    /// Lane specs per core name (one entry per tested occurrence).
    lanes: HashMap<String, Vec<PackedLaneSpec>>,
    /// `None` when every step passed [`step_compile_blocker`] — the
    /// defect-containment argument holds and defective dies may take the
    /// packed lane path. Otherwise the first blocking clause's reason name,
    /// exported under `fleet.packed.fallback.reason.*`.
    program_blocker: Option<&'static str>,
    soc: Arc<SocDescription>,
    plan: Arc<CompiledProgram>,
    cache: Arc<RouteTableCache>,
}

impl std::fmt::Debug for PackedDeviceEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedDeviceEngine")
            .field("cores", &self.lanes.len())
            .field("program_blocker", &self.program_blocker)
            .field("baseline_pass", &self.baseline.all_pass())
            .finish_non_exhaustive()
    }
}

impl PackedDeviceEngine {
    /// Compiles the packed engine: runs the healthy baseline once (warming
    /// `cache` on every wave shape, exactly as the first scalar device
    /// would) and records each step's lane plans plus whether the whole
    /// program is expressible on the word-level fast path.
    ///
    /// # Errors
    ///
    /// Propagates configuration and width errors from the baseline run.
    pub fn compile(
        soc: &Arc<SocDescription>,
        plan: &Arc<CompiledProgram>,
        cache: &Arc<RouteTableCache>,
    ) -> Result<Self, SimError> {
        let mut sim = SocSimulator::new_shared(Arc::clone(soc), plan.bus_width())?;
        let engine = CompiledEngine::new().with_cache(Arc::clone(cache));
        let baseline = engine.run(&mut sim, plan.program())?;

        // Configuration-only spec pass (no data clocks): compilability and
        // lane plans depend only on post-`configure` state, never on data
        // traffic — the same invariant `dry_run_cycles` relies on.
        let mut lanes: HashMap<String, Vec<PackedLaneSpec>> = HashMap::new();
        let mut program_blocker: Option<&'static str> = None;
        let mut slot = 0usize;
        for step in plan.program().steps() {
            sim.configure(&step.configuration, &step.wrapper_instructions)?;
            let routes = cache.get_or_compile(sim.tam().chain());
            let step_lanes = collect_lanes(&sim, &step.configuration)?;
            if let Some(blocker) = step_compile_blocker(&sim, &step_lanes, &routes) {
                // First blocker wins: one stable reason per program.
                program_blocker.get_or_insert(blocker.reason());
            }
            let horizon = step_lanes.iter().map(|l| l.plan.len()).max().unwrap_or(0);
            for lane in step_lanes {
                debug_assert_eq!(baseline.verdicts[slot].0, lane.name, "slot order");
                lanes
                    .entry(lane.name.clone())
                    .or_default()
                    .push(PackedLaneSpec {
                        slot,
                        desc: lane.desc,
                        plan: lane.plan,
                        horizon,
                    });
                slot += 1;
            }
        }
        if slot != baseline.verdicts.len() {
            // A lane/verdict mismatch would make slot patching unsound;
            // structurally impossible, but fail safe to scalar if it ever
            // happens.
            program_blocker.get_or_insert("program.slot_mismatch");
        }
        Ok(Self {
            baseline,
            lanes,
            program_blocker,
            soc: Arc::clone(soc),
            plan: Arc::clone(plan),
            cache: Arc::clone(cache),
        })
    }

    /// The healthy device's report — what every defect-free die receives.
    pub fn baseline(&self) -> &SocTestReport {
        &self.baseline
    }

    /// Whether `fault` can ride a packed lane: the whole program must be
    /// fast-path expressible, and the fault's kind must match the tested
    /// method of every occurrence of the defective core (the lane models
    /// are the scan, BIST, and memory models' word-wise lifts).
    pub fn fault_packable(&self, fault: &InjectedFault) -> bool {
        self.program_blocker.is_none()
            && self.lanes.get(&fault.core).is_some_and(|specs| {
                !specs.is_empty() && specs.iter().all(|s| fault.kind.matches(s.desc.method()))
            })
    }

    /// Why `fault` cannot ride a packed lane, or `None` when it can.
    ///
    /// The returned name is a stable metric suffix: the fleet tallies each
    /// defective device's reason under
    /// `fleet.packed.fallback.reason.<name>`. Program-level blockers
    /// (`step.*` / `program.*`) name the first
    /// `step_compile_blocker` clause the compiled program failed; defect
    /// placements the lane encoding cannot carry come back as
    /// `defect.untested_core` (the core never runs a session in this
    /// program) or `defect.method_mismatch` (the fault kind does not match
    /// the tested method).
    pub fn fallback_reason(&self, fault: &InjectedFault) -> Option<&'static str> {
        if self.fault_packable(fault) {
            return None;
        }
        if let Some(reason) = self.program_blocker {
            return Some(reason);
        }
        match self.lanes.get(&fault.core) {
            Some(specs) if !specs.is_empty() => Some("defect.method_mismatch"),
            _ => Some("defect.untested_core"),
        }
    }

    /// Tests one cohort of up to [`COHORT_LANES`] devices: healthy dies
    /// clone the baseline, packable defective dies share packed lane runs
    /// grouped by defective core, and inexpressible dies fall back to the
    /// scalar per-device path. Reports come back in member order.
    ///
    /// # Errors
    ///
    /// Propagates scalar-fallback simulation errors (packed lanes and
    /// baseline clones are infallible).
    ///
    /// # Panics
    ///
    /// Panics if the cohort exceeds [`COHORT_LANES`] members.
    pub fn run_cohort(
        &self,
        members: Vec<(u64, Option<InjectedFault>)>,
    ) -> Result<Vec<DeviceReport>, SimError> {
        assert!(
            members.len() <= COHORT_LANES,
            "cohort exceeds lane capacity"
        );
        let mut reports: Vec<Option<SocTestReport>> = vec![None; members.len()];
        // Group packable defective members by defective core, preserving
        // member order so lane assignment is deterministic.
        let mut groups: Vec<(&str, Vec<usize>)> = Vec::new();
        for (idx, (device_id, fault)) in members.iter().enumerate() {
            match fault {
                None => reports[idx] = Some(self.baseline.clone()),
                Some(f) if self.fault_packable(f) => {
                    match groups.iter_mut().find(|(name, _)| *name == f.core) {
                        Some((_, group)) => group.push(idx),
                        None => groups.push((f.core.as_str(), vec![idx])),
                    }
                }
                Some(f) => {
                    let scalar = test_device(
                        &self.soc,
                        &self.plan,
                        &self.cache,
                        *device_id,
                        Some(f.clone()),
                    )?;
                    reports[idx] = Some(scalar.report);
                }
            }
        }
        for (core, group) in groups {
            let specs = self.lanes.get(core).expect("packable core has specs");
            let faults: Vec<&InjectedFault> = group
                .iter()
                .map(|&idx| members[idx].1.as_ref().expect("defective member"))
                .collect();
            for &idx in &group {
                reports[idx] = Some(self.baseline.clone());
            }
            for spec in specs {
                let outcomes = run_packed_lane(spec, &faults);
                for (&idx, (verdict, signature)) in group.iter().zip(outcomes) {
                    let report = reports[idx].as_mut().expect("baseline installed");
                    report.verdicts[spec.slot].1 = verdict;
                    report.signatures[spec.slot].1 = signature;
                }
            }
        }
        Ok(members
            .into_iter()
            .zip(reports)
            .map(|((device_id, fault), report)| DeviceReport {
                device_id,
                fault,
                report: report.expect("every member resolved"),
            })
            .collect())
    }
}

/// Word-level lane twin of one behavioural core model, dispatching the two
/// clock edges the session plans use. Construction stamps each lane's
/// defect; kind/method agreement is guaranteed by
/// [`PackedDeviceEngine::fault_packable`]. Payloads are boxed — one model
/// lives per (cohort, defective core) lane run, so the indirection is off
/// the per-cycle path and keeps the variants size-balanced.
enum PackedModel {
    Scan(Box<PackedScanLanes>),
    Bist(Box<PackedBistLanes>),
    Memory(Box<PackedMemoryLanes>),
}

impl PackedModel {
    fn build(desc: &CoreDescription, faults: &[&InjectedFault]) -> Self {
        match desc.method() {
            TestMethod::Scan { chains, .. } => {
                let mut packed = PackedScanLanes::new(desc.name(), chains);
                for (lane, fault) in faults.iter().enumerate() {
                    let FaultKind::ScanStuckAt {
                        chain,
                        position,
                        stuck_at,
                    } = fault.kind
                    else {
                        unreachable!("packable fault kinds match the tested method");
                    };
                    packed.inject_stuck_at(lane, chain, position, stuck_at);
                }
                Self::Scan(Box::new(packed))
            }
            TestMethod::Bist { width, patterns } => {
                let mut packed = PackedBistLanes::new(desc.name(), *width, *patterns);
                for (lane, fault) in faults.iter().enumerate() {
                    let FaultKind::BistResponse { after } = fault.kind else {
                        unreachable!("packable fault kinds match the tested method");
                    };
                    packed.inject_fault_after(lane, after);
                }
                Self::Bist(Box::new(packed))
            }
            TestMethod::Memory { words, data_width } => {
                let mut packed = PackedMemoryLanes::new(desc.name(), *words, *data_width);
                for (lane, fault) in faults.iter().enumerate() {
                    let FaultKind::MemoryStuckCell { word, bit, value } = fault.kind else {
                        unreachable!("packable fault kinds match the tested method");
                    };
                    packed.inject_stuck_cell(lane, word, bit, value);
                }
                Self::Memory(Box::new(packed))
            }
            _ => unreachable!("packable faults land on scan, BIST, or memory cores"),
        }
    }

    fn test_clock_lanes(&mut self, inputs: &[u64]) -> Vec<u64> {
        match self {
            Self::Scan(m) => m.test_clock_lanes(inputs),
            Self::Bist(m) => m.test_clock_lanes(inputs),
            Self::Memory(m) => m.test_clock_lanes(inputs),
        }
    }

    fn capture_clock_lanes(&mut self) {
        match self {
            Self::Scan(m) => m.capture_clock_lanes(),
            Self::Bist(m) => m.capture_clock_lanes(),
            Self::Memory(m) => m.capture_clock_lanes(),
        }
    }
}

/// Runs one core's session once for up to 64 defective devices: lane `l`
/// carries `faults[l]`. Returns each lane's `(verdict, signature)`.
///
/// Per-cycle mirror of the scalar engine's `run_lane`, with the device axis
/// packed into words: `limit = min(horizon, len + 1)` observation slots,
/// one initial all-zero slot (the retimed zeros of `t = 0`), shift cycle
/// `t` observed iff `t + 1 < limit`, capture cycles recording a zero slot.
/// The golden model is shared — stimuli are broadcast, so every lane's
/// expected response is the same healthy response.
fn run_packed_lane(spec: &PackedLaneSpec, faults: &[&InjectedFault]) -> Vec<(Verdict, u64)> {
    let ports = spec.plan.ports();
    let len = spec.plan.len();
    let limit = spec.horizon.min(len + 1);
    let n_lanes = faults.len();
    debug_assert!(0 < n_lanes && n_lanes <= LANES);
    let active_mask = if n_lanes == LANES {
        u64::MAX
    } else {
        (1u64 << n_lanes) - 1
    };

    let mut packed = PackedModel::build(&spec.desc, faults);
    let mut golden = models::instantiate(&spec.desc);
    let mut mismatches = vec![0usize; n_lanes];
    let mut streams = LaneStreams::new(ports);
    if limit > 0 {
        streams.push_zeros();
    }
    let mut in_words = vec![0u64; ports];
    for (t, (stim, kind)) in spec.plan.cycles().iter().enumerate() {
        let observe = t + 1 < limit;
        match kind {
            ClockKind::Shift => {
                for (j, word) in in_words.iter_mut().enumerate() {
                    *word = broadcast(stim.get(j).expect("stim P wide"));
                }
                let produced = packed.test_clock_lanes(&in_words);
                let expected = golden.test_clock(stim);
                if observe {
                    for (j, &word) in produced.iter().enumerate() {
                        let mut diff =
                            (word ^ broadcast(expected.get(j).expect("P wide"))) & active_mask;
                        while diff != 0 {
                            mismatches[diff.trailing_zeros() as usize] += 1;
                            diff &= diff - 1;
                        }
                    }
                    streams.push(&produced);
                }
            }
            ClockKind::Capture => {
                packed.capture_clock_lanes();
                golden.capture_clock();
                if observe {
                    streams.push_zeros();
                }
            }
            ClockKind::Update | ClockKind::Idle => {
                unreachable!("packable plans contain only shifts and captures")
            }
        }
    }
    (0..n_lanes)
        .map(|lane| {
            let signature = lane_signature(&streams.lane_streams(lane));
            let verdict = if mismatches[lane] == 0 {
                Verdict::Pass
            } else {
                Verdict::Fail {
                    mismatches: mismatches[lane],
                }
            };
            (verdict, signature)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use casbus_controller::schedule::packed_schedule;
    use casbus_soc::catalog;

    fn engine_for(soc: &SocDescription, n: usize) -> PackedDeviceEngine {
        let schedule = packed_schedule(soc, n).expect("schedule");
        let plan = Arc::new(CompiledProgram::compile(soc, n, schedule).expect("plan"));
        let soc = Arc::new(soc.clone());
        let cache = Arc::new(RouteTableCache::new());
        PackedDeviceEngine::compile(&soc, &plan, &cache).expect("compile")
    }

    /// Scalar twin of one device, built exactly like the fleet's fallback.
    fn scalar_report(
        soc: &SocDescription,
        n: usize,
        fault: Option<InjectedFault>,
    ) -> SocTestReport {
        let schedule = packed_schedule(soc, n).expect("schedule");
        let plan = CompiledProgram::compile(soc, n, schedule).expect("plan");
        let mut sim = SocSimulator::new(soc, n).expect("sim");
        if let Some(fault) = &fault {
            fault.apply(&mut sim).expect("inject");
        }
        CompiledEngine::new()
            .run(&mut sim, plan.program())
            .expect("run")
    }

    #[test]
    fn healthy_cohort_members_clone_the_baseline() {
        let soc = catalog::figure2a_scan_soc();
        let engine = engine_for(&soc, 4);
        let members: Vec<(u64, Option<InjectedFault>)> = (0..5).map(|id| (id, None)).collect();
        let reports = engine.run_cohort(members).expect("cohort");
        assert_eq!(reports.len(), 5);
        for report in &reports {
            assert_eq!(&report.report, engine.baseline());
            assert!(report.passed());
        }
        assert_eq!(reports[3].device_id, 3, "member order preserved");
    }

    #[test]
    fn packed_defective_lanes_match_scalar_reports() {
        let soc = catalog::figure2a_scan_soc();
        let engine = engine_for(&soc, 4);
        assert!(
            engine.program_blocker.is_none(),
            "scan SoC is fully packable"
        );
        // A full 64-lane cohort of distinct defects across both cores.
        let spec = crate::VariationSpec::new(11, 1.0);
        let members: Vec<(u64, Option<InjectedFault>)> = (0..64)
            .map(|id| (id, Some(spec.fault_for(&soc, id).expect("rate 1.0"))))
            .collect();
        for (_, fault) in &members {
            assert!(engine.fault_packable(fault.as_ref().unwrap()));
        }
        let reports = engine.run_cohort(members.clone()).expect("cohort");
        for (idx, report) in reports.iter().enumerate() {
            let expected = scalar_report(&soc, 4, members[idx].1.clone());
            assert_eq!(report.report, expected, "device {idx}");
        }
    }

    #[test]
    fn forced_fallback_matches_scalar_reports() {
        // Flip the packability gate off by hand: every defective member
        // must take the scalar per-device branch and still produce the
        // exact scalar report.
        let soc = catalog::figure2a_scan_soc();
        let mut engine = engine_for(&soc, 4);
        engine.program_blocker = Some("test.forced_off");
        let spec = crate::VariationSpec::new(5, 0.7);
        let members: Vec<(u64, Option<InjectedFault>)> =
            (0..8).map(|id| (id, spec.fault_for(&soc, id))).collect();
        assert!(
            members.iter().any(|(_, f)| f.is_some()),
            "spec stamps some defects"
        );
        for (_, fault) in &members {
            if let Some(fault) = fault {
                assert!(!engine.fault_packable(fault), "gate forced off");
                assert_eq!(engine.fallback_reason(fault), Some("test.forced_off"));
            }
        }
        let reports = engine.run_cohort(members.clone()).expect("cohort");
        for (idx, report) in reports.iter().enumerate() {
            let expected = scalar_report(&soc, 4, members[idx].1.clone());
            assert_eq!(report.report, expected, "device {idx}");
        }
    }

    #[test]
    fn bist_defects_ride_packed_lanes() {
        // A BIST-only SoC: every defect is a corrupted response stream, and
        // every one must take the lane path and still match its scalar twin.
        let soc = catalog::figure2b_bist_soc();
        let engine = engine_for(&soc, 3);
        assert!(
            engine.program_blocker.is_none(),
            "BIST SoC is fully packable: {engine:?}"
        );
        let spec = crate::VariationSpec::new(3, 1.0);
        let members: Vec<(u64, Option<InjectedFault>)> = (0..64)
            .map(|id| (id, Some(spec.fault_for(&soc, id).expect("rate 1.0"))))
            .collect();
        for (_, fault) in &members {
            let fault = fault.as_ref().unwrap();
            assert!(matches!(fault.kind, FaultKind::BistResponse { .. }));
            assert!(engine.fault_packable(fault));
            assert_eq!(engine.fallback_reason(fault), None);
        }
        let reports = engine.run_cohort(members.clone()).expect("cohort");
        for (idx, report) in reports.iter().enumerate() {
            let expected = scalar_report(&soc, 3, members[idx].1.clone());
            assert_eq!(report.report, expected, "device {idx}");
        }
    }

    #[test]
    fn mixed_method_cohorts_match_scalar_reports() {
        // The maintenance SoC tests one core of each injectable method:
        // a full cohort draws scan, BIST, and memory defects and every one
        // rides its own packed lane model.
        let soc = catalog::maintenance_soc();
        let engine = engine_for(&soc, 4);
        assert!(
            engine.program_blocker.is_none(),
            "maintenance SoC is fully packable: {engine:?}"
        );
        let spec = crate::VariationSpec::new(17, 1.0);
        let members: Vec<(u64, Option<InjectedFault>)> = (0..64)
            .map(|id| (id, Some(spec.fault_for(&soc, id).expect("rate 1.0"))))
            .collect();
        let mut kinds_seen = [false; 3];
        for (_, fault) in &members {
            let fault = fault.as_ref().unwrap();
            kinds_seen[match fault.kind {
                FaultKind::ScanStuckAt { .. } => 0,
                FaultKind::BistResponse { .. } => 1,
                FaultKind::MemoryStuckCell { .. } => 2,
            }] = true;
            assert!(engine.fault_packable(fault), "{fault:?}");
        }
        assert_eq!(
            kinds_seen, [true; 3],
            "64 draws cover scan, BIST, and memory defects"
        );
        let reports = engine.run_cohort(members.clone()).expect("cohort");
        for (idx, report) in reports.iter().enumerate() {
            let expected = scalar_report(&soc, 4, members[idx].1.clone());
            assert_eq!(report.report, expected, "device {idx}");
        }
    }
}
