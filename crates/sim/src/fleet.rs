//! Fleet-scale batch serving: one compiled program, thousands of devices.
//!
//! Silicon test programs are written once and executed against every die
//! that comes off the line. [`FleetRunner`] mirrors that economics in
//! simulation: the schedule is compiled into a [`CompiledProgram`] and its
//! wave shapes route-compiled into a shared [`RouteTableCache`] exactly
//! once, then any number of independent simulated devices execute the same
//! immutable plan on a persistent [`WorkerPool`].
//! Adding a device costs one queue push, never a schedule search, a route
//! compilation, or a thread spawn.
//!
//! Devices are not clones: a [`VariationSpec`] decides, deterministically
//! per device id, whether a die carries a manufacturing defect — a stuck-at
//! flop on a random scan chain, a corrupted BIST response stream, or a
//! stuck memory cell, matching the core's test method ([`FaultKind`]) —
//! defective dies produce diverging signatures and failing verdicts, so a
//! fleet run yields a *yield*.
//! Per-device [`DeviceReport`]s stream back through a bounded channel as
//! they complete; the final [`FleetReport`] aggregates pass counts, cycle
//! totals, and throughput.
//!
//! Determinism contract: every device's report depends only on
//! `(spec, device_id, plan)`, never on the worker that ran it, so the full
//! sorted report list — and every `fleet.*` metric — is bit-identical
//! across thread counts and identical to running the devices one by one.
//!
//! Two execution modes serve the fleet, both bit-identical:
//!
//! * **Packed device-parallel** (default, unmonitored runs): devices are
//!   grouped into cohorts of up to 64 and executed through a shared
//!   [`PackedDeviceEngine`] — healthy dies clone one baseline report,
//!   defective dies run 64 per machine word as bit-lanes of the packed
//!   scan/BIST/memory models, and inexpressible defects fall back per
//!   device to the scalar path (counted under
//!   `fleet.packed.fallback.reason.*`). See [`crate::engine_packed`].
//! * **Scalar per-device** (monitored runs, or [`FleetRunner::with_packed`]
//!   `(false)`): one simulator per device — reused in place per worker
//!   thread, with a power-on reset between devices instead of a rebuild.

use std::cell::RefCell;
use std::fmt;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use casbus::RouteTableCache;
use casbus_controller::search::{search_schedule_with, SearchBudget};
use casbus_controller::{CompiledProgram, Schedule};
use casbus_obs::{MetricsRegistry, TraceEvent, TraceSink};
use casbus_p1500::{TestableCore, Wrapper};
use casbus_soc::models::{BistCore, MemoryCore, ScanCore};
use casbus_soc::{SocDescription, TestMethod};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::engine::CompiledEngine;
use crate::engine_packed::{PackedDeviceEngine, COHORT_LANES};
use crate::monitor::{DeviceDump, FleetMonitor, MonitorShared};
use crate::pool::WorkerPool;
use crate::report::{run_program_reference, SocTestReport};
use crate::search::CompiledValidator;
use crate::simulator::{SimError, SocSimulator};

/// Deterministic per-device manufacturing variation.
///
/// Each device id maps — pure function of `(seed, defect_rate, id)` — to
/// either a defect-free die or one defect on an injectable core: a stuck-at
/// flop on a scan core, a corrupted response stream on a BISTed core, or a
/// stuck cell in an embedded memory (see [`FaultKind`]). The same spec
/// always stamps the same fleet, so differential runs across thread counts
/// or fleet orderings see identical devices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationSpec {
    seed: u64,
    defect_rate: f64,
}

impl VariationSpec {
    /// Every die defect-free: the bring-up baseline.
    pub fn perfect() -> Self {
        Self {
            seed: 0,
            defect_rate: 0.0,
        }
    }

    /// Dies are defective with probability `defect_rate` (clamped to
    /// `[0, 1]`), drawn deterministically from `seed`.
    pub fn new(seed: u64, defect_rate: f64) -> Self {
        Self {
            seed,
            defect_rate: defect_rate.clamp(0.0, 1.0),
        }
    }

    /// The stamping seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Probability that a die carries a defect.
    pub fn defect_rate(&self) -> f64 {
        self.defect_rate
    }

    /// The defect stamped onto device `device_id`, if any. `None` for a
    /// healthy die — and always `None` when the SoC has no injectable
    /// cores (scan, BIST, or memory) to stamp.
    pub fn fault_for(&self, soc: &SocDescription, device_id: u64) -> Option<InjectedFault> {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ device_id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if rng.random::<f64>() >= self.defect_rate {
            return None;
        }
        let injectable: Vec<(&str, &TestMethod)> = soc
            .cores()
            .iter()
            .filter_map(|core| match core.method() {
                TestMethod::Scan { chains, .. } if !chains.is_empty() => {
                    Some((core.name(), core.method()))
                }
                TestMethod::Bist { patterns, .. } if *patterns > 0 => {
                    Some((core.name(), core.method()))
                }
                TestMethod::Memory { .. } => Some((core.name(), core.method())),
                _ => None,
            })
            .collect();
        if injectable.is_empty() {
            return None;
        }
        let (name, method) = injectable[rng.random_range(0..injectable.len())];
        let kind = match method {
            TestMethod::Scan { chains, .. } => {
                let chain = rng.random_range(0..chains.len());
                FaultKind::ScanStuckAt {
                    chain,
                    position: rng.random_range(0..chains[chain].max(1)),
                    stuck_at: rng.random(),
                }
            }
            TestMethod::Bist { patterns, .. } => FaultKind::BistResponse {
                after: rng.random_range(0..*patterns),
            },
            TestMethod::Memory { words, data_width } => FaultKind::MemoryStuckCell {
                word: rng.random_range(0..*words),
                bit: rng.random_range(0..*data_width),
                value: rng.random(),
            },
            _ => unreachable!("only injectable methods are collected above"),
        };
        Some(InjectedFault {
            core: name.to_owned(),
            kind,
        })
    }
}

/// The kind of defect stamped onto a die, matching the defective core's
/// test method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// One stuck-at flip-flop on a scan chain of a scan-tested core.
    ScanStuckAt {
        /// Scan chain index within the core.
        chain: usize,
        /// Flip-flop position along the chain.
        position: usize,
        /// The value the flop is stuck at.
        stuck_at: bool,
    },
    /// A BISTed core whose circuit-under-test response has one bit flipped
    /// from pattern index `after` on — a defect the MISR signature catches.
    BistResponse {
        /// First pattern index whose response is corrupted.
        after: usize,
    },
    /// One memory cell bit stuck at a value — a defect the march self test
    /// detects by construction.
    MemoryStuckCell {
        /// Word index within the memory.
        word: usize,
        /// Bit within the word.
        bit: usize,
        /// The value the cell is stuck at.
        value: bool,
    },
}

impl FaultKind {
    /// Whether this defect kind can be stamped onto (and lane-encoded for)
    /// a core tested by `method`.
    pub fn matches(&self, method: &TestMethod) -> bool {
        matches!(
            (self, method),
            (FaultKind::ScanStuckAt { .. }, TestMethod::Scan { .. })
                | (FaultKind::BistResponse { .. }, TestMethod::Bist { .. })
                | (FaultKind::MemoryStuckCell { .. }, TestMethod::Memory { .. })
        )
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::ScanStuckAt {
                chain,
                position,
                stuck_at,
            } => write!(
                f,
                "stuck-at-{} chain {chain} position {position}",
                u8::from(*stuck_at)
            ),
            FaultKind::BistResponse { after } => {
                write!(f, "corrupted BIST response from pattern {after}")
            }
            FaultKind::MemoryStuckCell { word, bit, value } => write!(
                f,
                "memory cell stuck-at-{} word {word} bit {bit}",
                u8::from(*value)
            ),
        }
    }
}

/// One manufacturing defect on a named core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// Core carrying the defect.
    pub core: String,
    /// What is broken, matching the core's test method.
    pub kind: FaultKind,
}

impl InjectedFault {
    /// Replaces the core's wrapper content with a faulty twin of itself.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownCore`] if the core does not exist or its test
    /// method does not match the defect kind.
    pub fn apply(&self, sim: &mut SocSimulator) -> Result<(), SimError> {
        self.apply_displacing(sim).map(|_| ())
    }

    /// [`apply`](Self::apply), returning the displaced healthy wrapper so
    /// a reused simulator can swap it back after the device's run — model
    /// resets keep injected faults, so restoring the original wrapper is
    /// the only way to cleanly un-stamp a defect.
    pub(crate) fn apply_displacing(
        &self,
        sim: &mut SocSimulator,
    ) -> Result<Wrapper<Box<dyn TestableCore>>, SimError> {
        let (inputs, outputs, method) = {
            let (_, desc) = sim
                .soc()
                .core_by_name(&self.core)
                .ok_or_else(|| SimError::UnknownCore(self.core.clone()))?;
            (
                desc.functional_inputs(),
                desc.functional_outputs(),
                desc.method().clone(),
            )
        };
        let faulty: Box<dyn TestableCore> = match (&method, &self.kind) {
            (
                TestMethod::Scan { chains, .. },
                FaultKind::ScanStuckAt {
                    chain,
                    position,
                    stuck_at,
                },
            ) => {
                let mut core = ScanCore::new(&self.core, chains.clone());
                core.inject_stuck_at(*chain, *position, *stuck_at);
                Box::new(core)
            }
            (TestMethod::Bist { width, patterns }, FaultKind::BistResponse { after }) => {
                let mut core = BistCore::new(&self.core, *width, *patterns);
                core.inject_fault_after(*after);
                Box::new(core)
            }
            (
                TestMethod::Memory { words, data_width },
                FaultKind::MemoryStuckCell { word, bit, value },
            ) => {
                let mut core = MemoryCore::new(&self.core, *words, *data_width);
                core.inject_stuck_cell(*word, *bit, *value);
                Box::new(core)
            }
            _ => return Err(SimError::UnknownCore(self.core.clone())),
        };
        let wrapper = sim.wrapper_mut(&self.core)?;
        Ok(std::mem::replace(
            wrapper,
            Wrapper::new(faulty, inputs, outputs),
        ))
    }
}

/// The outcome of testing one simulated device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceReport {
    /// Fleet-unique device id (`0..fleet_size`).
    pub device_id: u64,
    /// The defect this die was stamped with, if any.
    pub fault: Option<InjectedFault>,
    /// Full per-core test report for this device.
    pub report: SocTestReport,
}

impl DeviceReport {
    /// Whether every core of this device passed.
    pub fn passed(&self) -> bool {
        self.report.all_pass()
    }
}

/// Aggregate outcome of a whole fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Every device's report, sorted by device id.
    pub devices: Vec<DeviceReport>,
    /// Devices whose every core passed.
    pub passed: usize,
    /// Sum of per-device test cycles.
    pub total_cycles: u64,
    /// Sum of per-device busy bus wire-cycles.
    pub wire_cycles: u64,
    /// Wall-clock time of the whole run (scheduling-dependent; excluded
    /// from the determinism contract and from exported metrics).
    pub wall: Duration,
}

impl FleetReport {
    /// Number of devices tested.
    pub fn fleet_size(&self) -> usize {
        self.devices.len()
    }

    /// Devices with at least one failing core.
    pub fn failed(&self) -> usize {
        self.fleet_size() - self.passed
    }

    /// Fraction of devices that passed, in `[0, 1]` (1.0 for an empty
    /// fleet).
    pub fn yield_fraction(&self) -> f64 {
        if self.devices.is_empty() {
            1.0
        } else {
            self.passed as f64 / self.devices.len() as f64
        }
    }

    /// Devices tested per wall-clock second.
    pub fn devices_per_sec(&self) -> f64 {
        self.fleet_size() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Simulated test cycles executed per wall-clock second.
    pub fn cycles_per_sec(&self) -> f64 {
        self.total_cycles as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Busy bus wire-cycles simulated per wall-clock second.
    pub fn wire_cycles_per_sec(&self) -> f64 {
        self.wire_cycles as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

impl std::fmt::Display for FleetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fleet: {} devices, {} pass / {} fail (yield {:.2}%)",
            self.fleet_size(),
            self.passed,
            self.failed(),
            self.yield_fraction() * 100.0
        )?;
        write!(
            f,
            "  {} cycles, {} wire-cycles, {:.1} devices/s, {:.0} wire-cycles/s",
            self.total_cycles,
            self.wire_cycles,
            self.devices_per_sec(),
            self.wire_cycles_per_sec()
        )
    }
}

/// Batch test server: one compiled plan, N simulated devices.
///
/// Construction pays every one-time cost — TAM build, program compilation,
/// optionally a full schedule search, worker-thread spawn — and `run*`
/// calls amortise them over the whole fleet. Devices execute on the
/// persistent pool; each device's engine shares the runner's
/// [`RouteTableCache`], so a wave shape is route-compiled once for the
/// entire fleet regardless of its size.
///
/// # Examples
///
/// ```
/// use casbus_controller::schedule::packed_schedule;
/// use casbus_sim::{FleetRunner, VariationSpec};
/// use casbus_soc::catalog;
///
/// let soc = catalog::figure1_soc();
/// let runner = FleetRunner::new(&soc, 8, packed_schedule(&soc, 8).unwrap())?;
/// let fleet = runner.run(&VariationSpec::perfect(), 16)?;
/// assert_eq!(fleet.passed, 16, "healthy dies all pass");
/// # Ok::<(), casbus_sim::SimError>(())
/// ```
pub struct FleetRunner {
    soc: Arc<SocDescription>,
    plan: Arc<CompiledProgram>,
    cache: Arc<RouteTableCache>,
    pool: WorkerPool,
    trace: Arc<dyn TraceSink>,
    /// Packed device-parallel mode: unmonitored runs execute cohorts of up
    /// to 64 devices per word through a shared [`PackedDeviceEngine`].
    packed: bool,
    /// Lazily compiled packed engine, shared by every run of this runner.
    packed_engine: Mutex<Option<Arc<PackedDeviceEngine>>>,
}

impl std::fmt::Debug for FleetRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetRunner")
            .field("soc", &self.soc.name())
            .field("bus_width", &self.plan.bus_width())
            .field("steps", &self.plan.program().len())
            .field("threads", &self.pool.threads())
            .finish_non_exhaustive()
    }
}

impl FleetRunner {
    /// A runner serving `schedule` compiled for an `n`-wire bus, with one
    /// worker per available hardware thread.
    ///
    /// # Errors
    ///
    /// Propagates TAM/program compilation errors.
    pub fn new(soc: &SocDescription, n: usize, schedule: Schedule) -> Result<Self, SimError> {
        let plan = CompiledProgram::compile(soc, n, schedule)?;
        Ok(Self {
            soc: Arc::new(soc.clone()),
            plan: Arc::new(plan),
            cache: Arc::new(RouteTableCache::new()),
            pool: WorkerPool::new(0),
            trace: casbus_obs::trace::null_sink(),
            packed: true,
            packed_engine: Mutex::new(None),
        })
    }

    /// A runner whose schedule comes from the annealed makespan search
    /// ([`search_schedule_with`] with execution-backed validation), gated
    /// bit-exactly against the reference interpreter before serving —
    /// exactly the plan [`run_program_searched`](crate::run_program_searched)
    /// would execute, compiled once for the whole fleet. The validator
    /// shares this runner's route cache, so shapes compiled during the
    /// search are already warm when devices arrive.
    ///
    /// # Errors
    ///
    /// [`SimError::Schedule`] when the SoC cannot be scheduled on `n`
    /// wires, [`SimError::SearchDiverged`] if the winner fails the
    /// reference gate.
    pub fn searched(
        soc: &SocDescription,
        n: usize,
        budget: SearchBudget,
    ) -> Result<Self, SimError> {
        let threads = std::thread::available_parallelism().map_or(1, |c| c.get());
        let cache = Arc::new(RouteTableCache::new());
        let validator = CompiledValidator::new(threads).with_cache(Arc::clone(&cache));
        let schedule = search_schedule_with(soc, n, budget, &validator, &MetricsRegistry::new())?;
        let plan = CompiledProgram::compile(soc, n, schedule)?;

        // The same bit-exact gate run_program_searched applies: refuse to
        // serve a plan whose compiled execution differs from the reference
        // interpreter on a healthy device.
        let mut sim = SocSimulator::new(soc, n)?;
        let engine = CompiledEngine::new().with_cache(Arc::clone(&cache));
        let compiled = engine.run(&mut sim, plan.program())?;
        let mut reference_sim = SocSimulator::new(soc, n)?;
        let reference = run_program_reference(&mut reference_sim, plan.program())?;
        if compiled != reference {
            return Err(SimError::SearchDiverged);
        }

        Ok(Self {
            soc: Arc::new(soc.clone()),
            plan: Arc::new(plan),
            cache,
            pool: WorkerPool::new(0),
            trace: casbus_obs::trace::null_sink(),
            packed: true,
            packed_engine: Mutex::new(None),
        })
    }

    /// Replaces the worker pool with one of `threads` workers (`0` means
    /// one per available hardware thread).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pool = WorkerPool::new(threads);
        self
    }

    /// Bounds the shared route cache to `capacity` tables (LRU eviction).
    /// Replaces the cache, dropping anything already compiled into it
    /// (along with any packed engine compiled against the old cache).
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = Arc::new(RouteTableCache::with_capacity(capacity));
        self.packed_engine = Mutex::new(None);
        self
    }

    /// Enables or disables packed device-parallel execution (on by
    /// default). When on, unmonitored runs group devices into cohorts of up
    /// to 64 and execute each cohort through one [`PackedDeviceEngine`]:
    /// healthy dies clone a shared baseline report, defective dies run 64
    /// per word as bit-lanes of a packed scan model, and anything the lane
    /// encoding cannot express falls back to the scalar per-device path.
    /// Reports are bit-identical either way (pinned by
    /// `tests/fleet_differential.rs`); only `fleet.packed.*` and
    /// `fleet.route_cache.*` metrics reveal which mode ran. Monitored runs
    /// always use the scalar path so per-device telemetry and
    /// flight-recorder dumps stay meaningful.
    #[must_use]
    pub fn with_packed(mut self, packed: bool) -> Self {
        self.packed = packed;
        self.packed_engine = Mutex::new(None);
        self
    }

    /// Installs a trace sink: each run emits one `fleet` span per device,
    /// in device order on a logical timeline (cumulative test cycles), so
    /// traces are deterministic across thread counts.
    #[must_use]
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = sink;
        self
    }

    /// The plan every device executes.
    pub fn plan(&self) -> &CompiledProgram {
        &self.plan
    }

    /// The schedule the plan realises.
    pub fn schedule(&self) -> &Schedule {
        self.plan.schedule()
    }

    /// The route cache shared by the fleet.
    pub fn cache(&self) -> &Arc<RouteTableCache> {
        &self.cache
    }

    /// Worker threads serving the fleet.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Whether packed device-parallel execution is enabled.
    pub fn packed(&self) -> bool {
        self.packed
    }

    /// The lazily compiled packed engine, building (and memoising) it on
    /// first use. Compilation runs the healthy baseline once, warming the
    /// shared route cache on exactly the shapes the first scalar device
    /// would have compiled.
    fn packed_engine(&self) -> Result<Arc<PackedDeviceEngine>, SimError> {
        let mut slot = self.packed_engine.lock().expect("packed engine poisoned");
        if let Some(engine) = &*slot {
            return Ok(Arc::clone(engine));
        }
        let engine = Arc::new(PackedDeviceEngine::compile(
            &self.soc,
            &self.plan,
            &self.cache,
        )?);
        *slot = Some(Arc::clone(&engine));
        Ok(engine)
    }

    /// Tests `fleet_size` devices stamped by `spec`.
    ///
    /// # Errors
    ///
    /// Propagates the first device-level simulation error (healthy plans
    /// do not produce any).
    pub fn run(&self, spec: &VariationSpec, fleet_size: u64) -> Result<FleetReport, SimError> {
        self.run_with(spec, fleet_size, |_| {})
    }

    /// [`run`](Self::run), invoking `on_report` for every device report as
    /// it streams in — **completion order**, not device order; use the
    /// returned [`FleetReport::devices`] for the sorted view.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_with(
        &self,
        spec: &VariationSpec,
        fleet_size: u64,
        on_report: impl FnMut(&DeviceReport),
    ) -> Result<FleetReport, SimError> {
        self.run_with_metrics(spec, fleet_size, &MetricsRegistry::new(), on_report)
    }

    /// [`run_with`](Self::run_with), also publishing `fleet.*` metrics:
    /// device/pass/fail/defect counts, cycle and wire-cycle totals, the
    /// shared route cache's hit/miss/eviction counters, and a per-device
    /// cycle histogram (observed in device order). Metrics never include
    /// wall-clock quantities, so they are bit-identical across thread
    /// counts.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_with_metrics(
        &self,
        spec: &VariationSpec,
        fleet_size: u64,
        metrics: &MetricsRegistry,
        on_report: impl FnMut(&DeviceReport),
    ) -> Result<FleetReport, SimError> {
        self.run_inner(spec, fleet_size, metrics, None, on_report)
    }

    /// [`run`](Self::run) with a live [`FleetMonitor`] attached: the
    /// monitor's sampler streams [`FleetSnapshot`](crate::FleetSnapshot)s
    /// over its bounded channel while devices execute, per-device phase
    /// timers feed the monitor's `obs.*` telemetry histograms, and any
    /// defective or failing device dumps its flight-recorder ring into
    /// [`FleetMonitor::dumps`]. The report — and every non-`obs.*` metric —
    /// is bit-identical to an unmonitored run (pinned by
    /// `tests/fleet_differential.rs`).
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_monitored(
        &self,
        spec: &VariationSpec,
        fleet_size: u64,
        monitor: &FleetMonitor,
    ) -> Result<FleetReport, SimError> {
        self.run_monitored_with_metrics(spec, fleet_size, &MetricsRegistry::new(), monitor, |_| {})
    }

    /// [`run_monitored`](Self::run_monitored) that also publishes the
    /// standard `fleet.*` metrics plus the monitor's `obs.*` telemetry
    /// (merged in after the run) into `metrics`, streaming reports through
    /// `on_report` in completion order.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_monitored_with_metrics(
        &self,
        spec: &VariationSpec,
        fleet_size: u64,
        metrics: &MetricsRegistry,
        monitor: &FleetMonitor,
        on_report: impl FnMut(&DeviceReport),
    ) -> Result<FleetReport, SimError> {
        self.run_inner(spec, fleet_size, metrics, Some(monitor), on_report)
    }

    fn run_inner(
        &self,
        spec: &VariationSpec,
        fleet_size: u64,
        metrics: &MetricsRegistry,
        monitor: Option<&FleetMonitor>,
        mut on_report: impl FnMut(&DeviceReport),
    ) -> Result<FleetReport, SimError> {
        let started = Instant::now();
        // Packed mode serves unmonitored runs only: a monitored run needs
        // per-device phase timers and flight recorders, which are
        // inherently scalar. The report is bit-identical either way.
        let packed_engine: Option<Arc<PackedDeviceEngine>> =
            if self.packed && monitor.is_none() && fleet_size > 0 {
                Some(self.packed_engine()?)
            } else {
                None
            };
        if let Some(monitor) = monitor {
            monitor.shared().begin_run(fleet_size);
            self.pool.set_metrics(Some(Arc::clone(monitor.telemetry())));
        }
        // Bounded: a lagging consumer backpressures the workers instead of
        // buffering the whole fleet's reports. Reports travel in batches —
        // one per cohort (packed) or per device (scalar) — so a 64-device
        // cohort costs one channel rendezvous, not 64.
        let (tx, rx) = mpsc::sync_channel::<Result<Vec<DeviceReport>, SimError>>(
            self.pool.threads().saturating_mul(2).max(1),
        );
        let collected: Result<Vec<DeviceReport>, SimError> = std::thread::scope(|scope| {
            if let Some(monitor) = monitor {
                let shared = Arc::clone(monitor.shared());
                let cache = Arc::clone(&self.cache);
                scope.spawn(move || shared.sampler_loop(&cache));
            }
            if let Some(engine) = &packed_engine {
                // Cohort dispatch: one pool job per ≤64 devices. Faults are
                // stamped on the dispatch thread, so lane assignment is a
                // pure function of device id regardless of worker timing.
                for members in plan_cohorts(spec, &self.soc, fleet_size) {
                    let engine = Arc::clone(engine);
                    let tx = tx.clone();
                    self.pool.execute(move || {
                        // The receiver hangs up after a first error:
                        // discard late batches instead of panicking.
                        let _ = tx.send(engine.run_cohort(members));
                    });
                }
            } else {
                for device_id in 0..fleet_size {
                    let soc = Arc::clone(&self.soc);
                    let plan = Arc::clone(&self.plan);
                    let cache = Arc::clone(&self.cache);
                    let fault = spec.fault_for(&self.soc, device_id);
                    let tx = tx.clone();
                    let shared = monitor.map(|m| Arc::clone(m.shared()));
                    self.pool.execute(move || {
                        let outcome = match &shared {
                            Some(shared) => {
                                test_device_monitored(&soc, &plan, &cache, device_id, fault, shared)
                            }
                            None => test_device(&soc, &plan, &cache, device_id, fault),
                        };
                        // The receiver hangs up after a first error: discard
                        // late results instead of panicking the worker.
                        let _ = tx.send(outcome.map(|report| vec![report]));
                    });
                }
            }
            drop(tx);

            let mut devices: Vec<DeviceReport> = Vec::with_capacity(fleet_size as usize);
            let mut error = None;
            for outcome in rx {
                match outcome {
                    Ok(batch) => {
                        for report in batch {
                            on_report(&report);
                            devices.push(report);
                        }
                    }
                    Err(err) => {
                        error = Some(err);
                        break;
                    }
                }
            }
            // Always release the sampler before the scope joins it, even on
            // the error path.
            if let Some(monitor) = monitor {
                monitor.shared().finish_run();
            }
            match error {
                Some(err) => Err(err),
                None => Ok(devices),
            }
        });
        if monitor.is_some() {
            self.pool.set_metrics(None);
        }
        let mut devices = collected?;
        let wall = started.elapsed();
        devices.sort_by_key(|d| d.device_id);

        let passed = devices.iter().filter(|d| d.passed()).count();
        let total_cycles: u64 = devices.iter().map(|d| d.report.total_cycles).sum();
        let wire_cycles: u64 = devices.iter().map(|d| d.report.bus_cycles).sum();

        publish_fleet_metrics(
            metrics,
            fleet_size,
            &devices,
            self.pool.threads(),
            &self.cache,
            packed_engine.as_deref(),
        );
        if let Some(monitor) = monitor {
            // Everything wall-clock lands under obs.* so differential runs
            // can compare monitored and unmonitored registries by filtering
            // the prefix.
            metrics.merge_from(monitor.telemetry());
            metrics.set("obs.fleet.snapshots.emitted", monitor.snapshots_emitted());
            metrics.set("obs.fleet.snapshots.dropped", monitor.snapshots_dropped());
            metrics.set("obs.fleet.recorder.dumps", monitor.dumps().len() as u64);
        }

        if self.trace.enabled() {
            // Post-hoc, device-ordered, on a logical cycle timeline: the
            // trace describes the fleet, not the scheduler.
            let mut ts = 0u64;
            for device in &devices {
                self.trace.record(TraceEvent::span(
                    "fleet",
                    format!("device{}", device.device_id),
                    ts,
                    device.report.total_cycles,
                    vec![
                        ("pass", device.passed().into()),
                        ("defective", device.fault.is_some().into()),
                    ],
                ));
                ts += device.report.total_cycles;
            }
        }

        Ok(FleetReport {
            devices,
            passed,
            total_cycles,
            wire_cycles,
            wall,
        })
    }
}

/// Plans the packed cohorts of one lot: device ids `0..fleet_size` grouped
/// consecutively into cohorts of up to [`COHORT_LANES`], each member
/// stamped by `spec` on the calling thread. A pure function of
/// `(spec, soc, fleet_size)`, so lane assignment — and therefore every
/// packed report — is identical whether the lot runs standalone on a
/// [`FleetRunner`] or shares a [`TestFloor`](crate::floor::TestFloor) with
/// other lots.
pub(crate) fn plan_cohorts(
    spec: &VariationSpec,
    soc: &SocDescription,
    fleet_size: u64,
) -> Vec<Vec<(u64, Option<InjectedFault>)>> {
    let mut cohorts = Vec::with_capacity(fleet_size.div_ceil(COHORT_LANES as u64) as usize);
    let mut cohort: Vec<(u64, Option<InjectedFault>)> = Vec::with_capacity(COHORT_LANES);
    for device_id in 0..fleet_size {
        cohort.push((device_id, spec.fault_for(soc, device_id)));
        if cohort.len() == COHORT_LANES || device_id + 1 == fleet_size {
            cohorts.push(std::mem::take(&mut cohort));
            cohort = Vec::with_capacity(COHORT_LANES);
        }
    }
    cohorts
}

/// Publishes the standard `fleet.*` metrics for one completed lot:
/// device/pass/fail/defect counts, cycle and wire-cycle totals, the route
/// cache's counters, packed-path accounting (when `packed_engine` is set),
/// and the per-device cycle histogram observed in device order. `requested`
/// is the lot size that was dispatched — it can exceed `devices.len()` when
/// a floor lot was aborted mid-run. Shared by [`FleetRunner`] (its own
/// registry) and [`TestFloor`](crate::floor::TestFloor) (one registry per
/// lot, merged under `floor.lot.<name>.`). Nothing here is wall-clock, so
/// every value is bit-identical across thread counts.
pub(crate) fn publish_fleet_metrics(
    metrics: &MetricsRegistry,
    requested: u64,
    devices: &[DeviceReport],
    threads: usize,
    cache: &RouteTableCache,
    packed_engine: Option<&PackedDeviceEngine>,
) {
    let passed = devices.iter().filter(|d| d.passed()).count();
    let total_cycles: u64 = devices.iter().map(|d| d.report.total_cycles).sum();
    let wire_cycles: u64 = devices.iter().map(|d| d.report.bus_cycles).sum();
    metrics.set("fleet.devices", requested);
    metrics.set("fleet.passed", passed as u64);
    metrics.set("fleet.failed", devices.len() as u64 - passed as u64);
    metrics.set(
        "fleet.defects.injected",
        devices.iter().filter(|d| d.fault.is_some()).count() as u64,
    );
    metrics.set("fleet.cycles.total", total_cycles);
    metrics.set("fleet.bus.wire_cycles", wire_cycles);
    metrics.set("fleet.threads", threads as u64);
    metrics.set("fleet.route_cache.hits", cache.hits());
    metrics.set("fleet.route_cache.misses", cache.misses());
    metrics.set("fleet.route_cache.evictions", cache.evictions());
    metrics.set("fleet.route_cache.shapes", cache.len() as u64);
    if let Some(engine) = packed_engine {
        // Per-device accounting (not per-cohort): how many devices each
        // packed serving path handled. Pure functions of (spec, id), so
        // bit-identical across thread counts like every fleet.* metric.
        let defective = devices.iter().filter(|d| d.fault.is_some()).count();
        let lane_devices = devices
            .iter()
            .filter(|d| d.fault.as_ref().is_some_and(|f| engine.fault_packable(f)))
            .count();
        metrics.set(
            "fleet.packed.cohorts",
            requested.div_ceil(COHORT_LANES as u64),
        );
        metrics.set(
            "fleet.packed.baseline.devices",
            (devices.len() - defective) as u64,
        );
        metrics.set("fleet.packed.lane.devices", lane_devices as u64);
        metrics.set(
            "fleet.packed.fallback.devices",
            (defective - lane_devices) as u64,
        );
        // Attribute every scalar fallback to the compile clause or
        // defect placement that forced it — pure functions of
        // (program, spec, id), so bit-identical across thread counts.
        for device in devices {
            if let Some(fault) = &device.fault {
                if let Some(reason) = engine.fallback_reason(fault) {
                    metrics.inc(&format!("fleet.packed.fallback.reason.{reason}"), 1);
                }
            }
        }
    }
    for device in devices {
        metrics.observe("fleet.device.cycles", device.report.total_cycles);
    }
}

/// One worker thread's reusable device simulator: a simulator plus engine
/// kept alive between devices, keyed by the artifacts it was built from.
struct WorkerSlot {
    soc: Arc<SocDescription>,
    cache: Arc<RouteTableCache>,
    width: usize,
    sim: SocSimulator,
    engine: CompiledEngine,
}

thread_local! {
    /// Per-worker simulator slot ([`WorkerSlot`]): fleet workers are
    /// persistent pool threads, so consecutive devices of one runner reuse
    /// one simulator (reset in place) instead of re-cloning the SoC and
    /// rebuilding TAM + wrappers per device.
    static WORKER_SLOT: RefCell<Option<WorkerSlot>> = const { RefCell::new(None) };
}

/// Runs `body` with this worker's reusable simulator and engine for
/// `(soc, plan, cache)`, building or rebuilding the slot when the runner's
/// artifacts change and resetting the simulator to power-on state when
/// reusing it. On any error the slot is discarded — a failed run leaves the
/// simulator in an unknown state.
fn with_worker_slot<T>(
    soc: &Arc<SocDescription>,
    plan: &CompiledProgram,
    cache: &Arc<RouteTableCache>,
    body: impl FnOnce(&mut SocSimulator, &CompiledEngine) -> Result<T, SimError>,
) -> Result<T, SimError> {
    WORKER_SLOT.with(|slot| {
        let mut slot = slot.borrow_mut();
        let reusable = slot.as_ref().is_some_and(|w| {
            Arc::ptr_eq(&w.soc, soc) && Arc::ptr_eq(&w.cache, cache) && w.width == plan.bus_width()
        });
        if reusable {
            slot.as_mut().expect("checked above").sim.reset_device();
        } else {
            let sim = SocSimulator::new_shared(Arc::clone(soc), plan.bus_width())?;
            let engine = CompiledEngine::new().with_cache(Arc::clone(cache));
            *slot = Some(WorkerSlot {
                soc: Arc::clone(soc),
                cache: Arc::clone(cache),
                width: plan.bus_width(),
                sim,
                engine,
            });
        }
        let worker = slot.as_mut().expect("slot installed");
        let outcome = body(&mut worker.sim, &worker.engine);
        if outcome.is_err() {
            *slot = None;
        }
        outcome
    })
}

/// Stamps `fault` (if any), runs the program, and restores the displaced
/// healthy wrapper so the simulator is clean for the next device on this
/// worker.
fn run_stamped(
    sim: &mut SocSimulator,
    engine: &CompiledEngine,
    plan: &CompiledProgram,
    fault: Option<&InjectedFault>,
) -> Result<SocTestReport, SimError> {
    let displaced = match fault {
        Some(fault) => Some((fault.core.as_str(), fault.apply_displacing(sim)?)),
        None => None,
    };
    let report = engine.run(sim, plan.program())?;
    if let Some((core, healthy)) = displaced {
        *sim.wrapper_mut(core)? = healthy;
    }
    Ok(report)
}

/// Tests one device on this worker's reused simulator: in-place power-on
/// reset, optional stamped defect (undone afterwards), compiled engine over
/// the shared route cache. Single-threaded per device — the fleet's
/// parallelism lives across devices. Also the scalar fallback the packed
/// path uses for defects its lane encoding cannot express.
pub(crate) fn test_device(
    soc: &Arc<SocDescription>,
    plan: &CompiledProgram,
    cache: &Arc<RouteTableCache>,
    device_id: u64,
    fault: Option<InjectedFault>,
) -> Result<DeviceReport, SimError> {
    let report = with_worker_slot(soc, plan, cache, |sim, engine| {
        run_stamped(sim, engine, plan, fault.as_ref())
    })?;
    Ok(DeviceReport {
        device_id,
        fault,
        report,
    })
}

/// [`test_device`] under a live monitor: phase timers feed the `obs.*`
/// telemetry histograms, a per-device flight recorder captures coarse
/// engine spans, and defective or failing devices dump their ring. The
/// report itself is built exactly as in [`test_device`] — the monitor only
/// observes.
fn test_device_monitored(
    soc: &Arc<SocDescription>,
    plan: &CompiledProgram,
    cache: &Arc<RouteTableCache>,
    device_id: u64,
    fault: Option<InjectedFault>,
    monitor: &MonitorShared,
) -> Result<DeviceReport, SimError> {
    monitor.device_started(device_id);
    let started = Instant::now();
    let recorder = monitor.new_recorder();
    let report = with_worker_slot(soc, plan, cache, |sim, engine| {
        let mut engine = engine.clone();
        if let Some(recorder) = &recorder {
            engine = engine.with_recorder(Arc::clone(recorder));
        }
        monitor.telemetry().observe(
            "obs.fleet.device.setup_us",
            started.elapsed().as_micros() as u64,
        );
        let run_started = Instant::now();
        let report = run_stamped(sim, &engine, plan, fault.as_ref())?;
        monitor.telemetry().observe(
            "obs.fleet.device.run_us",
            run_started.elapsed().as_micros() as u64,
        );
        Ok(report)
    })?;
    let report = DeviceReport {
        device_id,
        fault,
        report,
    };
    let passed = report.passed();
    let defective = report.fault.is_some();
    if defective || !passed {
        if let Some(recorder) = recorder {
            monitor.add_dump(DeviceDump {
                device_id,
                defective,
                passed,
                dump: recorder.dump(),
            });
        }
    }
    monitor.device_finished(device_id, passed, defective, started.elapsed());
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use casbus_controller::schedule::packed_schedule;
    use casbus_soc::catalog;

    #[test]
    fn variation_spec_is_deterministic_and_respects_rate() {
        let soc = catalog::figure1_soc();
        let spec = VariationSpec::new(7, 0.5);
        for id in 0..32 {
            assert_eq!(spec.fault_for(&soc, id), spec.fault_for(&soc, id));
        }
        let perfect = VariationSpec::perfect();
        assert!((0..32).all(|id| perfect.fault_for(&soc, id).is_none()));

        let always = VariationSpec::new(3, 1.0);
        let faults: Vec<InjectedFault> = (0..64)
            .map(|id| always.fault_for(&soc, id).expect("rate 1.0 stamps all"))
            .collect();
        assert!(
            faults.windows(2).any(|w| w[0] != w[1]),
            "devices draw distinct defects"
        );
        let mut kinds_seen = [false; 3];
        for fault in &faults {
            let (_, desc) = soc.core_by_name(&fault.core).unwrap();
            assert!(
                fault.kind.matches(desc.method()),
                "defect kind matches the core's test method"
            );
            match (&fault.kind, desc.method()) {
                (
                    FaultKind::ScanStuckAt {
                        chain, position, ..
                    },
                    TestMethod::Scan { chains, .. },
                ) => {
                    kinds_seen[0] = true;
                    assert!(*position < chains[*chain]);
                }
                (FaultKind::BistResponse { after }, TestMethod::Bist { patterns, .. }) => {
                    kinds_seen[1] = true;
                    assert!(after < patterns);
                }
                (
                    FaultKind::MemoryStuckCell { word, bit, .. },
                    TestMethod::Memory { words, data_width },
                ) => {
                    kinds_seen[2] = true;
                    assert!(word < words && bit < data_width);
                }
                _ => unreachable!("matches() checked above"),
            }
        }
        assert_eq!(
            kinds_seen, [true; 3],
            "figure1 draws scan, BIST, and memory defects"
        );

        // Out-of-range rates clamp instead of misbehaving.
        assert_eq!(VariationSpec::new(1, 7.0).defect_rate(), 1.0);
        assert_eq!(VariationSpec::new(1, -1.0).defect_rate(), 0.0);
    }

    #[test]
    fn fleet_of_one_matches_run_program() {
        let soc = catalog::figure1_soc();
        let schedule = packed_schedule(&soc, 8).unwrap();
        let runner = FleetRunner::new(&soc, 8, schedule.clone()).unwrap();
        let fleet = runner.run(&VariationSpec::perfect(), 1).unwrap();

        let plan = CompiledProgram::compile(&soc, 8, schedule).unwrap();
        let mut sim = SocSimulator::new(&soc, 8).unwrap();
        let expected = crate::report::run_program(&mut sim, plan.program()).unwrap();
        assert_eq!(fleet.devices.len(), 1);
        assert_eq!(fleet.devices[0].report, expected);
        assert!(fleet.devices[0].fault.is_none());
        assert_eq!(fleet.passed, 1);
    }

    #[test]
    fn healthy_fleet_reports_identical_devices_and_full_yield() {
        let soc = catalog::figure2a_scan_soc();
        let runner = FleetRunner::new(&soc, 4, packed_schedule(&soc, 4).unwrap())
            .unwrap()
            .with_threads(3);
        let metrics = MetricsRegistry::new();
        let mut streamed = 0usize;
        let fleet = runner
            .run_with_metrics(&VariationSpec::perfect(), 9, &metrics, |_| streamed += 1)
            .unwrap();

        assert_eq!(streamed, 9, "every report streams through the callback");
        assert_eq!(fleet.passed, 9);
        assert!((fleet.yield_fraction() - 1.0).abs() < f64::EPSILON);
        let ids: Vec<u64> = fleet.devices.iter().map(|d| d.device_id).collect();
        assert_eq!(ids, (0..9).collect::<Vec<_>>(), "sorted by device id");
        assert!(fleet.devices.windows(2).all(|w| w[0].report == w[1].report));
        assert_eq!(metrics.counter("fleet.devices"), 9);
        assert_eq!(metrics.counter("fleet.passed"), 9);
        assert_eq!(metrics.counter("fleet.cycles.total"), fleet.total_cycles);
        assert_eq!(metrics.histogram("fleet.device.cycles").unwrap().count, 9);
    }

    #[test]
    fn defective_dies_fail_only_if_defective() {
        // Detection of a random stuck-at is not guaranteed (the fault may
        // sit on a don't-care position), but a failing device is always a
        // defective one: healthy dies never fail.
        let soc = catalog::figure2a_scan_soc();
        let runner = FleetRunner::new(&soc, 4, packed_schedule(&soc, 4).unwrap())
            .unwrap()
            .with_threads(2);
        let fleet = runner.run(&VariationSpec::new(11, 0.5), 24).unwrap();
        assert!(fleet.failed() > 0, "a 50% defect rate catches some dies");
        for device in &fleet.devices {
            if !device.passed() {
                assert!(device.fault.is_some(), "device {}", device.device_id);
            }
            if device.fault.is_none() {
                assert!(device.passed(), "device {}", device.device_id);
            }
        }
    }

    #[test]
    fn route_compilations_are_independent_of_fleet_size() {
        let soc = catalog::figure2a_scan_soc();
        let schedule = packed_schedule(&soc, 4).unwrap();
        let misses_for = |fleet_size: u64| {
            let runner = FleetRunner::new(&soc, 4, schedule.clone())
                .unwrap()
                .with_threads(4);
            runner.run(&VariationSpec::perfect(), fleet_size).unwrap();
            runner.cache().misses()
        };
        let small = misses_for(2);
        let large = misses_for(16);
        assert!(small > 0, "first device compiles the shapes");
        assert_eq!(small, large, "identical devices never recompile");
    }

    #[test]
    fn fleet_traces_are_device_ordered_and_logical() {
        let soc = catalog::figure2a_scan_soc();
        let sink = casbus_obs::MemorySink::new();
        let runner = FleetRunner::new(&soc, 4, packed_schedule(&soc, 4).unwrap())
            .unwrap()
            .with_threads(4)
            .with_trace(sink.clone());
        runner.run(&VariationSpec::perfect(), 6).unwrap();
        let events = sink.events();
        assert_eq!(events.len(), 6);
        for (idx, event) in events.iter().enumerate() {
            assert_eq!(event.name, format!("device{idx}"));
        }
        assert!(
            events.windows(2).all(|w| w[1].ts == w[0].ts + w[0].dur),
            "cumulative logical timeline"
        );
    }

    #[test]
    fn searched_runner_serves_the_searched_schedule() {
        let soc = catalog::figure1_soc();
        let budget = SearchBudget::smoke();
        let runner = FleetRunner::searched(&soc, 8, budget).unwrap();
        let (expected_schedule, expected_report) =
            crate::search::run_program_searched(&soc, 8, budget).unwrap();
        assert_eq!(runner.schedule(), &expected_schedule);
        let fleet = runner.run(&VariationSpec::perfect(), 3).unwrap();
        assert!(fleet.devices.iter().all(|d| d.report == expected_report));
    }
}
