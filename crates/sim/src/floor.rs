//! Multi-tenant test floor: heterogeneous lots sharing one worker fleet.
//!
//! A production test floor rarely serves one product at a time: several
//! *lots* — each its own SoC, compiled test program, device count, defect
//! profile, and priority — compete for the same bank of testers.
//! [`TestFloor`] reproduces that economics on top of the fleet layer:
//!
//! * every submitted [`LotSpec`] gets its own weighted lane on one shared
//!   [`WorkerPool`] (weight = lot priority, served
//!   by stride scheduling — see [`crate::pool`]),
//! * all lots' route compilations land in **one** shared
//!   [`RouteTableCache`] under one capacity budget
//!   ([`TestFloor::with_cache_capacity`]), so co-tenant pressure and
//!   eviction behave like a real shared tester,
//! * per-lot [`DeviceReport`]s stream back in completion order, per-lot
//!   [`FleetSnapshot`]s are sampled throughout the run, and an
//!   [`AdmissionController`]
//!   enforces the floor's [`AdmissionPolicy`] (yield-collapse quarantine /
//!   demotion / abort, starvation boosts),
//! * the run returns a [`FloorReport`]: one [`LotReport`] per lot plus
//!   merged metrics — lot metrics under `floor.lot.<name>.*`, floor-wide
//!   aggregates under `floor.*`.
//!
//! # Determinism
//!
//! Scheduling decides only *when* a device runs, never *what* it computes:
//! each device report is a pure function of `(spec, device_id, plan)`, and
//! packed cohorts are formed per lot from consecutive device ids exactly as
//! a standalone [`FleetRunner`](crate::FleetRunner) would form them. A
//! completed lot's sorted report list is therefore bit-identical to the
//! same lot run alone, at any thread count, under any admission policy
//! short of [`Abort`](crate::admission::CollapseAction::Abort) (pinned by
//! `tests/floor_differential.rs`). Wall-clock quantities (snapshots,
//! [`FloorReport::wall`]) are observational and excluded from the contract.
//!
//! # Example
//!
//! ```
//! use casbus_controller::schedule::packed_schedule;
//! use casbus_sim::{LotSpec, TestFloor, VariationSpec};
//! use casbus_soc::catalog;
//!
//! let scan = catalog::figure2a_scan_soc();
//! let bist = catalog::figure2b_bist_soc();
//! let floor = TestFloor::new().with_threads(2);
//! let report = floor.run(vec![
//!     LotSpec::new("scan", &scan, 4, packed_schedule(&scan, 4).unwrap(), 24,
//!                  VariationSpec::new(7, 0.25))?.with_priority(3),
//!     LotSpec::new("bist", &bist, 3, packed_schedule(&bist, 3).unwrap(), 16,
//!                  VariationSpec::perfect())?,
//! ])?;
//! assert_eq!(report.lots.len(), 2);
//! assert!(report.lots.iter().all(|lot| !lot.aborted()));
//! assert_eq!(report.lots[1].fleet.passed, 16, "healthy lot all passes");
//! # Ok::<(), casbus_sim::SimError>(())
//! ```

use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use casbus::RouteTableCache;
use casbus_controller::{CompiledProgram, Schedule};
use casbus_obs::MetricsRegistry;
use casbus_soc::SocDescription;

use crate::admission::{
    AdmissionAction, AdmissionController, AdmissionEvent, AdmissionPolicy, LotLive,
};
use crate::engine_packed::{PackedDeviceEngine, COHORT_LANES};
use crate::fleet::{plan_cohorts, publish_fleet_metrics, test_device};
use crate::fleet::{DeviceReport, FleetReport, VariationSpec};
use crate::monitor::{FleetSnapshot, LotTracker};
use crate::pool::{LaneId, WorkerPool};
use crate::simulator::SimError;

/// One lot submitted to the floor: a compiled test program, a device
/// count, a defect profile, and a scheduling priority.
///
/// Lot names label per-lot metrics (`floor.lot.<name>.*`) and admission
/// events; give each lot of a run a distinct name or their metrics merge.
pub struct LotSpec {
    name: String,
    soc: Arc<SocDescription>,
    plan: Arc<CompiledProgram>,
    devices: u64,
    variation: VariationSpec,
    priority: u64,
    packed: bool,
}

impl std::fmt::Debug for LotSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LotSpec")
            .field("name", &self.name)
            .field("soc", &self.soc.name())
            .field("devices", &self.devices)
            .field("priority", &self.priority)
            .field("packed", &self.packed)
            .finish_non_exhaustive()
    }
}

impl LotSpec {
    /// A lot of `devices` dies of `soc`, tested by `schedule` compiled for
    /// an `n`-wire bus, stamped by `variation`. Priority defaults to 1
    /// ([`with_priority`](Self::with_priority)), packed execution to on
    /// ([`with_packed`](Self::with_packed)).
    ///
    /// # Errors
    ///
    /// Propagates TAM/program compilation errors.
    pub fn new(
        name: impl Into<String>,
        soc: &SocDescription,
        n: usize,
        schedule: Schedule,
        devices: u64,
        variation: VariationSpec,
    ) -> Result<Self, SimError> {
        let plan = CompiledProgram::compile(soc, n, schedule)?;
        Ok(Self {
            name: name.into(),
            soc: Arc::new(soc.clone()),
            plan: Arc::new(plan),
            devices,
            variation,
            priority: 1,
            packed: true,
        })
    }

    /// Sets the lot's scheduling priority (clamped to at least 1): its
    /// lane's weight in the pool's weighted-fair scheduler. A priority-3
    /// lot is offered three worker slots for every one offered to a
    /// priority-1 co-tenant while both have work queued.
    #[must_use]
    pub fn with_priority(mut self, priority: u64) -> Self {
        self.priority = priority.max(1);
        self
    }

    /// Enables or disables packed cohort execution for this lot (on by
    /// default). Reports are bit-identical either way.
    #[must_use]
    pub fn with_packed(mut self, packed: bool) -> Self {
        self.packed = packed;
        self
    }

    /// The lot's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Devices this lot brings to the floor.
    pub fn devices(&self) -> u64 {
        self.devices
    }

    /// The lot's scheduling priority.
    pub fn priority(&self) -> u64 {
        self.priority
    }

    /// The plan every device of this lot executes.
    pub fn plan(&self) -> &CompiledProgram {
        &self.plan
    }
}

/// How a lot left the floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LotStatus {
    /// Every requested device was tested.
    Completed,
    /// The admission controller drained the lot's lane; only the devices
    /// already completed are in the report.
    Aborted,
}

/// One lot's outcome on the floor.
#[derive(Debug, Clone)]
pub struct LotReport {
    /// The lot's name.
    pub name: String,
    /// The priority it was submitted with.
    pub priority: u64,
    /// Devices the lot asked to test.
    pub requested: u64,
    /// Whether the lot completed or was aborted.
    pub status: LotStatus,
    /// The lot's fleet outcome — devices sorted by id, bit-identical to a
    /// standalone run of the same lot when `status` is
    /// [`Completed`](LotStatus::Completed). `wall` is the whole floor
    /// run's wall clock (lots share it).
    pub fleet: FleetReport,
    /// Admission interventions applied to this lot, in order.
    pub events: Vec<AdmissionEvent>,
    /// Per-lot health snapshots sampled over the run (last one flagged
    /// `last = true`).
    pub snapshots: Vec<FleetSnapshot>,
}

impl LotReport {
    /// Whether the admission controller aborted this lot.
    pub fn aborted(&self) -> bool {
        self.status == LotStatus::Aborted
    }
}

/// Aggregate outcome of one floor run.
#[derive(Debug, Clone)]
pub struct FloorReport {
    /// Per-lot outcomes, in submission order.
    pub lots: Vec<LotReport>,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
}

impl FloorReport {
    /// Devices requested across all lots.
    pub fn requested(&self) -> u64 {
        self.lots.iter().map(|lot| lot.requested).sum()
    }

    /// Devices actually tested across all lots.
    pub fn completed(&self) -> u64 {
        self.lots
            .iter()
            .map(|lot| lot.fleet.fleet_size() as u64)
            .sum()
    }

    /// Tested devices whose every core passed.
    pub fn passed(&self) -> u64 {
        self.lots.iter().map(|lot| lot.fleet.passed as u64).sum()
    }

    /// Tested devices with at least one failing core.
    pub fn failed(&self) -> u64 {
        self.completed() - self.passed()
    }

    /// Lots the admission controller aborted.
    pub fn aborted_lots(&self) -> usize {
        self.lots.iter().filter(|lot| lot.aborted()).count()
    }

    /// `passed / completed` across the floor (1.0 when nothing ran).
    pub fn yield_fraction(&self) -> f64 {
        let completed = self.completed();
        if completed == 0 {
            1.0
        } else {
            self.passed() as f64 / completed as f64
        }
    }

    /// Devices tested per wall-clock second, all lots together.
    pub fn devices_per_sec(&self) -> f64 {
        self.completed() as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

impl std::fmt::Display for FloorReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "floor: {} lots, {}/{} devices tested, yield {:.2}%, {:.1} devices/s, {} aborted",
            self.lots.len(),
            self.completed(),
            self.requested(),
            self.yield_fraction() * 100.0,
            self.devices_per_sec(),
            self.aborted_lots(),
        )?;
        for lot in &self.lots {
            write!(
                f,
                "  [{}] prio {} {:>9}: {}/{} tested, {} pass",
                lot.name,
                lot.priority,
                match lot.status {
                    LotStatus::Completed => "completed",
                    LotStatus::Aborted => "aborted",
                },
                lot.fleet.fleet_size(),
                lot.requested,
                lot.fleet.passed,
            )?;
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A lot prepared for execution: its lane, tracker, and packed engine.
struct LotRun {
    spec: LotSpec,
    lane: LaneId,
    tracker: LotTracker,
    engine: Option<Arc<PackedDeviceEngine>>,
}

/// Multi-tenant test server: many lots, one worker fleet, one cache
/// budget, one admission policy.
///
/// Construction is cheap; the pool spawns on first use and persists, so
/// consecutive [`run`](Self::run)s reuse warm workers and a warm route
/// cache. See the [module docs](self) for the full model and the
/// determinism contract.
pub struct TestFloor {
    pool: WorkerPool,
    cache: Arc<RouteTableCache>,
    policy: AdmissionPolicy,
}

impl Default for TestFloor {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for TestFloor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TestFloor")
            .field("threads", &self.pool.threads())
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl TestFloor {
    /// A floor with one worker per available hardware thread, an unbounded
    /// shared route cache, and the default (non-intervening)
    /// [`AdmissionPolicy`].
    pub fn new() -> Self {
        Self {
            pool: WorkerPool::new(0),
            cache: Arc::new(RouteTableCache::new()),
            policy: AdmissionPolicy::default(),
        }
    }

    /// Replaces the worker pool with one of `threads` workers (`0` means
    /// one per available hardware thread).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pool = WorkerPool::new(threads);
        self
    }

    /// Bounds the shared route cache to `capacity` tables (LRU eviction
    /// across **all** lots — the floor's single compilation budget).
    /// Replaces the cache, dropping anything already compiled.
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = Arc::new(RouteTableCache::with_capacity(capacity));
        self
    }

    /// Installs the floor's admission policy.
    #[must_use]
    pub fn with_admission(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The route cache all lots share.
    pub fn cache(&self) -> &Arc<RouteTableCache> {
        &self.cache
    }

    /// Worker threads serving the floor.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The floor's admission policy.
    pub fn policy(&self) -> &AdmissionPolicy {
        &self.policy
    }

    /// Runs every lot to completion (or abort) and reports per-lot
    /// outcomes.
    ///
    /// # Errors
    ///
    /// Propagates lot compilation errors and the first device-level
    /// simulation error of any lot (healthy plans do not produce any).
    pub fn run(&self, lots: Vec<LotSpec>) -> Result<FloorReport, SimError> {
        self.run_with(lots, |_, _| {})
    }

    /// [`run`](Self::run), invoking `on_report(lot_index, report)` for
    /// every device report as it streams in — **completion order across
    /// lots**; use the returned per-lot
    /// [`FleetReport::devices`](crate::FleetReport) for sorted views.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_with(
        &self,
        lots: Vec<LotSpec>,
        on_report: impl FnMut(usize, &DeviceReport),
    ) -> Result<FloorReport, SimError> {
        self.run_with_metrics(lots, &MetricsRegistry::new(), on_report)
    }

    /// [`run_with`](Self::run_with), also publishing metrics: each lot's
    /// full `fleet.*` set under `floor.lot.<name>.*` (route-cache counters
    /// therein reflect the **shared** floor cache) and floor-wide
    /// aggregates under `floor.*`.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_with_metrics(
        &self,
        lots: Vec<LotSpec>,
        metrics: &MetricsRegistry,
        mut on_report: impl FnMut(usize, &DeviceReport),
    ) -> Result<FloorReport, SimError> {
        let started = Instant::now();

        // Prepare every lot up front: lane, tracker, packed engine. Engine
        // compilation warms the shared cache exactly as a standalone
        // runner's first device would.
        let mut runs: Vec<LotRun> = Vec::with_capacity(lots.len());
        for spec in lots {
            let lane = self.pool.lane(spec.priority);
            let engine = if spec.packed && spec.devices > 0 {
                Some(Arc::new(PackedDeviceEngine::compile(
                    &spec.soc,
                    &spec.plan,
                    &self.cache,
                )?))
            } else {
                None
            };
            let tracker = LotTracker::new(spec.devices, self.policy.window);
            runs.push(LotRun {
                spec,
                lane,
                tracker,
                engine,
            });
        }

        // One bounded result channel for the whole floor: a lagging
        // collector backpressures the workers, and batches carry their lot
        // index. Dispatch everything up front — queue pushes never block.
        let (tx, rx) = mpsc::sync_channel::<(usize, Result<Vec<DeviceReport>, SimError>)>(
            self.pool.threads().saturating_mul(2).max(1),
        );
        for (idx, run) in runs.iter().enumerate() {
            if let Some(engine) = &run.engine {
                for members in plan_cohorts(&run.spec.variation, &run.spec.soc, run.spec.devices) {
                    let engine = Arc::clone(engine);
                    let tx = tx.clone();
                    self.pool.execute_in(run.lane, move || {
                        // The receiver hangs up after a first error:
                        // discard late batches instead of panicking.
                        let _ = tx.send((idx, engine.run_cohort(members)));
                    });
                }
            } else {
                for device_id in 0..run.spec.devices {
                    let soc = Arc::clone(&run.spec.soc);
                    let plan = Arc::clone(&run.spec.plan);
                    let cache = Arc::clone(&self.cache);
                    let fault = run.spec.variation.fault_for(&run.spec.soc, device_id);
                    let tx = tx.clone();
                    self.pool.execute_in(run.lane, move || {
                        let outcome = test_device(&soc, &plan, &cache, device_id, fault);
                        let _ = tx.send((idx, outcome.map(|report| vec![report])));
                    });
                }
            }
        }
        drop(tx);

        // Shared state between the collector (main thread) and the
        // admission thread.
        let stop = (Mutex::new(false), Condvar::new());
        let events: Mutex<Vec<AdmissionEvent>> = Mutex::new(Vec::new());
        let snapshot_log: Vec<Mutex<Vec<FleetSnapshot>>> =
            runs.iter().map(|_| Mutex::new(Vec::new())).collect();
        let aborted: Mutex<Vec<bool>> = Mutex::new(vec![false; runs.len()]);

        let (mut reports, error) = std::thread::scope(|scope| {
            scope.spawn(|| {
                let views: Vec<LotLive<'_>> = runs
                    .iter()
                    .map(|run| LotLive {
                        name: &run.spec.name,
                        lane: run.lane,
                        priority: run.spec.priority,
                        tracker: &run.tracker,
                    })
                    .collect();
                let mut controller = AdmissionController::new(self.policy, runs.len());
                loop {
                    let guard = stop.0.lock().expect("floor poisoned");
                    let (guard, _) = stop
                        .1
                        .wait_timeout_while(guard, self.policy.interval, |stopped| !*stopped)
                        .expect("floor poisoned");
                    let stopping = *guard;
                    drop(guard);
                    for (idx, run) in runs.iter().enumerate() {
                        // Queued devices still waiting in the lot's lane:
                        // packed lanes queue cohorts, so convert (the last
                        // cohort may be partial — clamp to what's owed).
                        let queued_jobs = self.pool.lane_queued(run.lane) as u64;
                        let queued = if run.engine.is_some() {
                            queued_jobs
                                .saturating_mul(COHORT_LANES as u64)
                                .min(run.tracker.remaining())
                        } else {
                            queued_jobs
                        };
                        let snapshot = run.tracker.snapshot(&self.cache, queued, stopping);
                        snapshot_log[idx]
                            .lock()
                            .expect("floor poisoned")
                            .push(snapshot);
                    }
                    if stopping {
                        let mut flags = aborted.lock().expect("floor poisoned");
                        for (idx, flag) in flags.iter_mut().enumerate() {
                            *flag = controller.aborted(idx);
                        }
                        break;
                    }
                    let ticked = controller.tick(&self.pool, &views);
                    if !ticked.is_empty() {
                        events.lock().expect("floor poisoned").extend(ticked);
                    }
                }
            });

            let mut reports: Vec<Vec<DeviceReport>> = runs
                .iter()
                .map(|run| Vec::with_capacity(run.spec.devices as usize))
                .collect();
            let mut error = None;
            for (idx, outcome) in rx.iter() {
                match outcome {
                    Ok(batch) => {
                        for report in batch {
                            runs[idx].tracker.record(&report);
                            on_report(idx, &report);
                            reports[idx].push(report);
                        }
                    }
                    Err(err) => {
                        error = Some(err);
                        break;
                    }
                }
            }
            if error.is_some() {
                // Flush what the floor still owes: queued jobs are dropped
                // (their sends fail against the hung-up receiver) and no
                // lane stays paused into the next run.
                for run in &runs {
                    self.pool.drain_lane(run.lane);
                }
            }
            for run in &runs {
                self.pool.set_lane_paused(run.lane, false);
            }
            *stop.0.lock().expect("floor poisoned") = true;
            stop.1.notify_all();
            (reports, error)
        });

        if let Some(err) = error {
            return Err(err);
        }
        let wall = started.elapsed();
        let aborted = aborted.into_inner().expect("floor poisoned");
        let mut events_by_lot: Vec<Vec<AdmissionEvent>> = runs.iter().map(|_| Vec::new()).collect();
        let all_events = events.into_inner().expect("floor poisoned");
        let mut action_counts = [0u64; 5];
        for event in all_events {
            action_counts[match event.action {
                AdmissionAction::Paused => 0,
                AdmissionAction::Resumed => 1,
                AdmissionAction::Demoted => 2,
                AdmissionAction::Aborted { .. } => 3,
                AdmissionAction::Boosted { .. } => 4,
            }] += 1;
            events_by_lot[event.lot].push(event);
        }

        let mut lot_reports = Vec::with_capacity(runs.len());
        for (idx, (run, mut devices)) in runs.into_iter().zip(reports.drain(..)).enumerate() {
            devices.sort_by_key(|d| d.device_id);
            let lot_metrics = MetricsRegistry::new();
            publish_fleet_metrics(
                &lot_metrics,
                run.spec.devices,
                &devices,
                self.pool.threads(),
                &self.cache,
                run.engine.as_deref(),
            );
            metrics.merge_from_prefixed(&lot_metrics, &format!("floor.lot.{}.", run.spec.name));
            let passed = devices.iter().filter(|d| d.passed()).count();
            let total_cycles: u64 = devices.iter().map(|d| d.report.total_cycles).sum();
            let wire_cycles: u64 = devices.iter().map(|d| d.report.bus_cycles).sum();
            let mut snapshots = snapshot_log[idx].lock().expect("floor poisoned");
            lot_reports.push(LotReport {
                name: run.spec.name.clone(),
                priority: run.spec.priority,
                requested: run.spec.devices,
                status: if aborted[idx] {
                    LotStatus::Aborted
                } else {
                    LotStatus::Completed
                },
                fleet: FleetReport {
                    devices,
                    passed,
                    total_cycles,
                    wire_cycles,
                    wall,
                },
                events: std::mem::take(&mut events_by_lot[idx]),
                snapshots: std::mem::take(&mut *snapshots),
            });
        }

        let report = FloorReport {
            lots: lot_reports,
            wall,
        };
        metrics.set("floor.lots", report.lots.len() as u64);
        metrics.set("floor.devices", report.requested());
        metrics.set("floor.completed", report.completed());
        metrics.set("floor.passed", report.passed());
        metrics.set("floor.failed", report.failed());
        metrics.set("floor.aborted.lots", report.aborted_lots() as u64);
        metrics.set("floor.threads", self.pool.threads() as u64);
        metrics.set(
            "floor.cycles.total",
            report.lots.iter().map(|l| l.fleet.total_cycles).sum(),
        );
        metrics.set(
            "floor.bus.wire_cycles",
            report.lots.iter().map(|l| l.fleet.wire_cycles).sum(),
        );
        for (name, count) in [
            ("floor.admission.paused", action_counts[0]),
            ("floor.admission.resumed", action_counts[1]),
            ("floor.admission.demoted", action_counts[2]),
            ("floor.admission.aborted", action_counts[3]),
            ("floor.admission.boosted", action_counts[4]),
        ] {
            metrics.set(name, count);
        }
        let stats = self.cache.stats();
        metrics.set("floor.route_cache.hits", stats.hits);
        metrics.set("floor.route_cache.misses", stats.misses);
        metrics.set("floor.route_cache.evictions", stats.evictions);
        metrics.set("floor.route_cache.shapes", stats.len as u64);
        metrics.set("floor.route_cache.high_water", stats.high_water);

        Ok(report)
    }
}
