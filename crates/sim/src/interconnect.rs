//! Inter-core interconnect testing through EXTEST — the wrapper-to-wrapper
//! scenario behind the paper's §4 remark that "SoC interconnect test time
//! can be optimized when adopting a good configuration of the test chains".
//!
//! One core's wrapper drives patterns from its *output* boundary cells onto
//! the interconnect nets; the connected core's wrapper captures them in its
//! *input* boundary cells; both boundary registers are accessed serially
//! over the CAS-BUS.

use casbus::TamConfiguration;
use casbus_p1500::WrapperInstruction;
use casbus_tpg::{BitVec, Verdict};

use crate::session::ClockKind;
use crate::simulator::{SimError, SocSimulator};

/// One physical net: driver's output-cell index → receiver's input-cell
/// index.
pub type Connection = (usize, usize);

/// Runs an EXTEST interconnect test between two wrapped cores.
///
/// `pattern` supplies one bit per *output* boundary cell of the driver.
/// The two wrappers go to EXTEST on bus wires 0 and 1; the driver's WBR is
/// loaded serially and updated, the nets in `connections` propagate, the
/// receiver captures and its WBR is read back serially — all bit-level,
/// through the TAM.
///
/// # Errors
///
/// Returns [`SimError::UnknownCore`] for bad names and propagates TAM
/// errors (the bus must be at least 2 wires wide).
///
/// # Panics
///
/// Panics if `pattern` does not match the driver's output-cell count or a
/// connection indexes out of range.
pub fn run_interconnect_extest(
    sim: &mut SocSimulator,
    driver: &str,
    receiver: &str,
    connections: &[Connection],
    pattern: &BitVec,
) -> Result<Verdict, SimError> {
    let driver_idx = sim.cas_index(driver)?;
    let receiver_idx = sim.cas_index(receiver)?;
    let cas_count = sim.tam().cas_count();
    let n = sim.bus_width();

    // Each CAS is P-wide even though EXTEST uses only its port 0 (the other
    // ports drive constants), so the two schemes need fully disjoint wires:
    // the driver's port 0 on wire 0, the receiver's on wire 1, and the
    // remaining ports parked on distinct spare wires.
    let p_driver = sim.tam().chain().cases()[driver_idx]
        .geometry()
        .switched_wires();
    let p_receiver = sim.tam().chain().cases()[receiver_idx]
        .geometry()
        .switched_wires();
    if p_driver + p_receiver > n {
        return Err(SimError::Tam(casbus::CasError::BusTooNarrow {
            core: format!("{driver}+{receiver} (EXTEST pair)"),
            needed: p_driver + p_receiver,
            n,
        }));
    }
    let mut spares = (2..n).collect::<Vec<usize>>().into_iter();
    let mut driver_wires = vec![0usize];
    driver_wires.extend(spares.by_ref().take(p_driver - 1));
    let mut receiver_wires = vec![1usize];
    receiver_wires.extend(spares.by_ref().take(p_receiver - 1));

    // Configure: driver on wire 0, receiver on wire 1, everyone else bypass.
    let mut config = TamConfiguration::all_bypass(cas_count);
    config.set(
        driver_idx,
        sim.tam().explicit_test(driver_idx, driver_wires)?,
    )?;
    config.set(
        receiver_idx,
        sim.tam().explicit_test(receiver_idx, receiver_wires)?,
    )?;
    let mut wrappers = vec![WrapperInstruction::Bypass; cas_count];
    wrappers[driver_idx] = WrapperInstruction::Extest;
    wrappers[receiver_idx] = WrapperInstruction::Extest;
    sim.configure(&config, &wrappers)?;

    // Geometry of the two boundary registers.
    let (d_inputs, d_outputs, r_inputs, r_len) = {
        let d = sim.wrapper_mut(driver)?;
        let (di, do_) = (d.boundary().input_count(), d.boundary().output_count());
        let r = sim.wrapper_mut(receiver)?;
        (di, do_, r.boundary().input_count(), r.boundary().len())
    };
    assert_eq!(
        pattern.len(),
        d_outputs,
        "pattern must cover the driver's output cells"
    );

    // Load the driver's WBR so that cell c ends up holding target[c]
    // (input cells don't matter for driving; zero them): shift the target
    // reversed, then update.
    let mut target = BitVec::zeros(d_inputs);
    target.extend_from(pattern);
    let reversed = target.reversed();
    let mut kinds = vec![ClockKind::Idle; cas_count];
    for t in 0..reversed.len() {
        let mut bus = BitVec::zeros(n);
        bus.set(0, reversed.get(t).expect("in range"));
        kinds[driver_idx] = ClockKind::Shift;
        sim.data_clock(&bus, &kinds)?;
    }
    kinds[driver_idx] = ClockKind::Update;
    sim.data_clock(&BitVec::zeros(n), &kinds)?;
    kinds[driver_idx] = ClockKind::Idle;

    // The physical nets: driver output cells drive receiver input pins.
    let driven = sim.wrapper_mut(driver)?.boundary().driven_outputs();
    let mut received = BitVec::zeros(r_inputs);
    for &(from, to) in connections {
        received.set(to, driven.get(from).expect("driver cell in range"));
    }
    sim.wrapper_mut(receiver)?
        .set_extest_inputs(received.clone());

    // Capture at the receiver, then shift its WBR out over wire 1.
    kinds[receiver_idx] = ClockKind::Capture;
    sim.data_clock(&BitVec::zeros(n), &kinds)?;
    kinds[receiver_idx] = ClockKind::Shift;
    let mut observed = BitVec::new();
    for _ in 0..r_len + 1 {
        let out = sim.data_clock(&BitVec::zeros(n), &kinds)?;
        observed.push(out.get(1).expect("wire 1"));
    }

    // Expected: the captured snapshot [received inputs, zero outputs]
    // emerges last-cell-first, after the 1-cycle retiming register.
    let mut snapshot = received;
    snapshot.extend(std::iter::repeat_n(false, r_len - r_inputs));
    let mut mismatches = 0usize;
    for t in 0..r_len {
        let expected = snapshot.get(r_len - 1 - t).expect("in range");
        if observed.get(t + 1) != Some(expected) {
            mismatches += 1;
        }
    }
    Ok(if mismatches == 0 {
        Verdict::Pass
    } else {
        Verdict::Fail { mismatches }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use casbus_soc::catalog;

    #[test]
    fn healthy_interconnect_passes() {
        let soc = catalog::figure1_soc();
        let mut sim = SocSimulator::new(&soc, 8).unwrap();
        // core1_cpu drives core2_dsp: cpu has 32 output cells, dsp 24 input
        // cells; wire a few of them straight across.
        let connections: Vec<Connection> = (0..8).map(|i| (i, i)).collect();
        let pattern: BitVec = (0..32).map(|i| i % 3 == 0).collect();
        let verdict =
            run_interconnect_extest(&mut sim, "core1_cpu", "core2_dsp", &connections, &pattern)
                .unwrap();
        assert!(verdict.is_pass(), "{verdict}");
    }

    #[test]
    fn crossed_wiring_is_consistent() {
        let soc = catalog::figure1_soc();
        let mut sim = SocSimulator::new(&soc, 8).unwrap();
        // Swapped nets still pass — the expected model maps through the
        // same connection list. (A *wrong netlist* is modelled by testing
        // with the intended list against a board wired differently; see
        // below.)
        let connections: Vec<Connection> = (0..6).map(|i| (i, 5 - i)).collect();
        // core2_dsp has 24 output boundary cells.
        let pattern: BitVec = (0..24).map(|i| i % 2 == 0).collect();
        let verdict =
            run_interconnect_extest(&mut sim, "core2_dsp", "core1_cpu", &connections, &pattern)
                .unwrap();
        assert!(verdict.is_pass());
    }

    #[test]
    fn unknown_cores_rejected() {
        let soc = catalog::figure1_soc();
        let mut sim = SocSimulator::new(&soc, 8).unwrap();
        assert!(
            run_interconnect_extest(&mut sim, "ghost", "core1_cpu", &[], &BitVec::zeros(32))
                .is_err()
        );
    }

    #[test]
    fn walking_ones_cover_all_nets() {
        // The classic interconnect stimulus: one pattern per net.
        let soc = catalog::figure1_soc();
        let mut sim = SocSimulator::new(&soc, 8).unwrap();
        let connections: Vec<Connection> = (0..4).map(|i| (i, i)).collect();
        for net in 0..4 {
            let mut pattern = BitVec::zeros(32);
            pattern.set(net, true);
            let verdict =
                run_interconnect_extest(&mut sim, "core1_cpu", "core2_dsp", &connections, &pattern)
                    .unwrap();
            assert!(verdict.is_pass(), "net {net}");
        }
    }
}
