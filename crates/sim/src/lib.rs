//! Cycle-accurate end-to-end simulation of CAS-BUS test sessions.
//!
//! This crate closes the loop of the reproduction: behavioural cores
//! (`casbus-soc`) sit inside P1500 wrappers (`casbus-p1500`), which hang off
//! Core Access Switches on the test bus (`casbus`), sequenced by test
//! programs (`casbus-controller`), with sources and sinks from `casbus-tpg`.
//! Every bit of test data travels the same path it would on silicon:
//!
//! ```text
//! source → e wires → CAS → wrapper parallel port → scan chains/BIST
//!        ← s wires ← CAS ← wrapper parallel port ←
//! ```
//!
//! The simulator inserts one retiming register between each wrapper's
//! parallel output and its CAS core-side input (a standard TAM pipelining
//! choice); golden references are computed through the same convention, so
//! comparisons are bit-exact.
//!
//! What you can do with it:
//!
//! * [`SocSimulator`] — configure the TAM + wrappers and drive raw data
//!   clocks,
//! * [`session`] — run a complete, verified test session for any core
//!   (scan, BIST, memory march, external, hierarchical) and get a
//!   [`SessionReport`] with cycle counts and a pass/fail verdict,
//! * [`report::run_program`] — execute a whole scheduled
//!   [`TestProgram`](casbus_controller::TestProgram) (concurrent cores and
//!   all) and get per-core verdicts plus the measured SoC test time,
//! * [`search::run_program_searched`] — let the controller's annealed
//!   makespan search pick the schedule, validating survivors on the
//!   compiled engine and gating the winner bit-exactly against the
//!   reference interpreter,
//! * [`fleet::FleetRunner`] — compile one test program once and serve it
//!   across thousands of simulated devices on a persistent worker pool,
//!   streaming per-device pass/fail reports and a fleet yield summary,
//! * [`engine_packed::PackedDeviceEngine`] — the fleet's packed
//!   device-parallel mode: cohorts of up to 64 devices share one word-level
//!   execution, each device one bit-lane, with per-device reports extracted
//!   bit-identical to the scalar path,
//! * [`monitor::FleetMonitor`] — watch an in-flight fleet run live:
//!   streaming health snapshots (yield, throughput, latency quantiles,
//!   stragglers) over a bounded channel, plus per-device flight-recorder
//!   dumps for failing dies,
//! * [`floor::TestFloor`] — multi-tenant serving: run several heterogeneous
//!   lots ([`floor::LotSpec`]) concurrently on one shared worker pool and
//!   one route-cache budget, weighted-fair by lot priority, each lot's
//!   reports bit-identical to a standalone [`fleet::FleetRunner`] run,
//! * [`admission::AdmissionPolicy`] — yield-driven admission control for
//!   the floor: pause, demote or abort a lot whose rolling yield collapses,
//!   and boost a starved lot, without perturbing co-tenants,
//! * fault injection — flip a core defect on and watch the session fail.
//!
//! # Example
//!
//! ```
//! use casbus_sim::{SocSimulator, session};
//! use casbus_soc::catalog;
//!
//! let soc = catalog::figure2b_bist_soc();
//! let mut sim = SocSimulator::new(&soc, 3)?;
//! let report = session::run_core_session(&mut sim, "bist8")?;
//! assert!(report.verdict.is_pass());
//! # Ok::<(), casbus_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod bus_core;
pub mod engine;
pub mod engine_packed;
pub mod fleet;
pub mod floor;
pub mod interconnect;
pub mod monitor;
pub mod pool;
pub mod report;
pub mod search;
pub mod session;
pub mod simulator;

pub use admission::{
    AdmissionAction, AdmissionController, AdmissionEvent, AdmissionPolicy, CollapseAction,
};
pub use bus_core::SystemBusCore;
pub use engine::CompiledEngine;
pub use engine_packed::PackedDeviceEngine;
pub use fleet::{DeviceReport, FaultKind, FleetReport, FleetRunner, InjectedFault, VariationSpec};
pub use floor::{FloorReport, LotReport, LotSpec, LotStatus, TestFloor};
pub use interconnect::run_interconnect_extest;
pub use monitor::{DeviceDump, FleetMonitor, FleetSnapshot, LotTracker, MonitorConfig, Straggler};
pub use pool::{LaneId, WorkerPool};
pub use report::{
    run_program, run_program_reference, run_program_reference_with_metrics,
    run_program_with_metrics, SocTestReport,
};
pub use search::{run_program_searched, run_program_searched_with_metrics, CompiledValidator};
pub use session::{run_core_session, ClockKind, SessionReport};
pub use simulator::{SimError, SocSimulator};
