//! Live fleet telemetry: streaming health snapshots and post-mortem dumps.
//!
//! A fleet run is a black box between "go" and the final
//! [`FleetReport`](crate::FleetReport) — unacceptable on a real test floor,
//! where operators watch in-flight yield curves, device-latency tails, and
//! per-die post-mortems. [`FleetMonitor`] opens the box without touching
//! the determinism contract:
//!
//! * A sampler thread (spawned inside
//!   [`FleetRunner::run_monitored`](crate::FleetRunner::run_monitored))
//!   periodically assembles a [`FleetSnapshot`] — devices completed /
//!   passed / defective, rolling yield, devices/s, route-cache hit rate,
//!   per-device elapsed and queue-wait quantiles, and the current
//!   straggler list — and pushes it over a **bounded** channel with
//!   `try_send`: a lagging consumer drops snapshots (counted), never
//!   backpressures the fleet.
//! * Each device job records coarse engine spans into a per-device
//!   [`FlightRecorder`]; any defective or failing die dumps its ring as a
//!   [`DeviceDump`], so post-mortems are focused event logs instead of a
//!   full-fleet trace.
//! * All wall-clock measurements live in an `obs.*`-prefixed namespace
//!   inside the monitor's [telemetry](FleetMonitor::telemetry) registry.
//!   Fleet results and every `fleet.*` metric stay bit-identical to an
//!   unmonitored run (pinned by `tests/fleet_differential.rs`).
//! * Monitored runs always execute the **scalar** per-device path. Packed
//!   cohort execution
//!   ([`FleetRunner::with_packed`](crate::FleetRunner::with_packed), the
//!   default for unmonitored runs) shares one word-level execution across
//!   up to 64 devices, which would leave per-device spans, latency
//!   quantiles, and flight recorders with nothing truthful to measure —
//!   so the monitor opts out of it. Results stay bit-identical either way.
//!
//! Snapshots export as single-line JSON ([`FleetSnapshot::to_json`], ready
//! for a JSONL stream) and as Prometheus-style text
//! ([`FleetSnapshot::to_prometheus`]).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use casbus::RouteTableCache;
use casbus_obs::{json, FlightDump, FlightRecorder, Histogram, HistogramSummary, MetricsRegistry};

/// Tuning for a [`FleetMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorConfig {
    /// Period between snapshots.
    pub interval: Duration,
    /// Bounded snapshot-channel capacity; overflow drops (and counts)
    /// snapshots instead of stalling the fleet.
    pub channel_capacity: usize,
    /// Per-device flight-recorder ring capacity in events; `0` disables
    /// the recorder (no per-device ring, no dumps).
    pub recorder_capacity: usize,
    /// Longest-running in-flight devices listed per snapshot.
    pub stragglers: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(25),
            channel_capacity: 64,
            recorder_capacity: 64,
            stragglers: 4,
        }
    }
}

/// One in-flight device and how long it has been running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Straggler {
    /// The device still being tested.
    pub device_id: u64,
    /// Time since its job started, in microseconds.
    pub elapsed_us: u64,
}

/// A point-in-time health readout of an in-flight fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSnapshot {
    /// Monotonic snapshot sequence number (0-based per run).
    pub seq: u64,
    /// Set on the final snapshot emitted after the run completes.
    pub last: bool,
    /// Wall-clock time since the run started, in microseconds.
    pub elapsed_us: u64,
    /// Devices the run was asked to test.
    pub fleet_size: u64,
    /// Devices finished so far.
    pub completed: u64,
    /// Finished devices whose every core passed.
    pub passed: u64,
    /// Finished devices with at least one failing core.
    pub failed: u64,
    /// Finished devices that were stamped with a defect.
    pub defective: u64,
    /// Devices currently executing.
    pub in_flight: u64,
    /// `passed / completed` (1.0 before anything completes).
    pub yield_fraction: f64,
    /// Completed devices per wall-clock second so far.
    pub devices_per_sec: f64,
    /// Route-cache hits over the runner's lifetime.
    pub cache_hits: u64,
    /// Route-cache misses over the runner's lifetime.
    pub cache_misses: u64,
    /// `hits / (hits + misses)` (0.0 before any lookup).
    pub cache_hit_rate: f64,
    /// Packed-lane scalar fallbacks by reason, sorted by reason name —
    /// the live view of the run's `fleet.packed.fallback.reason.*`
    /// counters. Monitored runs are scalar by policy, so every device
    /// lands under the `monitored_run` reason.
    pub packed_fallbacks: Vec<(String, u64)>,
    /// Quantile digest of per-device wall time (µs), completed devices.
    pub device_elapsed_us: HistogramSummary,
    /// Quantile digest of job queue-wait time (µs) on the worker pool.
    pub queue_wait_us: HistogramSummary,
    /// Longest-running in-flight devices, longest first.
    pub stragglers: Vec<Straggler>,
}

impl FleetSnapshot {
    /// Single-line JSON rendering, ready for a JSONL snapshot stream.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\"seq\":{},\"last\":{},\"elapsed_us\":{},\"fleet_size\":{},\
             \"completed\":{},\"passed\":{},\"failed\":{},\"defective\":{},\
             \"in_flight\":{},\"yield\":",
            self.seq,
            self.last,
            self.elapsed_us,
            self.fleet_size,
            self.completed,
            self.passed,
            self.failed,
            self.defective,
            self.in_flight,
        ));
        json::write_f64(&mut out, self.yield_fraction);
        out.push_str(",\"devices_per_sec\":");
        json::write_f64(&mut out, self.devices_per_sec);
        out.push_str(&format!(
            ",\"cache_hits\":{},\"cache_misses\":{},\"cache_hit_rate\":",
            self.cache_hits, self.cache_misses
        ));
        json::write_f64(&mut out, self.cache_hit_rate);
        out.push_str(",\"packed_fallbacks\":{");
        for (idx, (reason, count)) in self.packed_fallbacks.iter().enumerate() {
            if idx > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{reason}\":{count}"));
        }
        out.push('}');
        out.push_str(",\"device_elapsed_us\":");
        self.device_elapsed_us.write_json(&mut out);
        out.push_str(",\"queue_wait_us\":");
        self.queue_wait_us.write_json(&mut out);
        out.push_str(",\"stragglers\":[");
        for (idx, straggler) in self.stragglers.iter().enumerate() {
            if idx > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"device_id\":{},\"elapsed_us\":{}}}",
                straggler.device_id, straggler.elapsed_us
            ));
        }
        out.push_str("]}");
        out
    }

    /// Prometheus-style text exposition of this snapshot.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        let gauge = |out: &mut String, name: &str, value: String| {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        };
        let f64_text = |v: f64| {
            let mut s = String::new();
            json::write_f64(&mut s, v);
            s
        };
        gauge(&mut out, "fleet_size", self.fleet_size.to_string());
        gauge(&mut out, "fleet_completed", self.completed.to_string());
        gauge(&mut out, "fleet_passed", self.passed.to_string());
        gauge(&mut out, "fleet_failed", self.failed.to_string());
        gauge(&mut out, "fleet_defective", self.defective.to_string());
        gauge(&mut out, "fleet_in_flight", self.in_flight.to_string());
        gauge(&mut out, "fleet_yield", f64_text(self.yield_fraction));
        gauge(
            &mut out,
            "fleet_devices_per_sec",
            f64_text(self.devices_per_sec),
        );
        gauge(
            &mut out,
            "fleet_route_cache_hit_rate",
            f64_text(self.cache_hit_rate),
        );
        if !self.packed_fallbacks.is_empty() {
            out.push_str("# TYPE fleet_packed_fallback_reason gauge\n");
            for (reason, count) in &self.packed_fallbacks {
                out.push_str(&format!(
                    "fleet_packed_fallback_reason{{reason=\"{reason}\"}} {count}\n"
                ));
            }
        }
        for (name, summary) in [
            ("fleet_device_elapsed_us", &self.device_elapsed_us),
            ("fleet_queue_wait_us", &self.queue_wait_us),
        ] {
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (q, v) in [
                ("0.5", summary.p50),
                ("0.9", summary.p90),
                ("0.99", summary.p99),
                ("1", summary.max),
            ] {
                out.push_str(&format!("{name}{{quantile=\"{q}\"}} {v}\n"));
            }
            out.push_str(&format!("{name}_count {}\n", summary.count));
        }
        out
    }
}

impl std::fmt::Display for FleetSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:>7.3}s] {:>4}/{} done, yield {:>5.1}%, {:>6.1} dev/s, \
             cache {:>5.1}%, wait p50/p99 {}/{} us",
            self.elapsed_us as f64 / 1e6,
            self.completed,
            self.fleet_size,
            self.yield_fraction * 100.0,
            self.devices_per_sec,
            self.cache_hit_rate * 100.0,
            self.queue_wait_us.p50,
            self.queue_wait_us.p99,
        )
    }
}

/// One failing (or defect-stamped) device's flight-recorder dump.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceDump {
    /// The device the ring belonged to.
    pub device_id: u64,
    /// Whether the die was stamped with a manufacturing defect.
    pub defective: bool,
    /// Whether the device nevertheless passed (a defect on a don't-care
    /// position is undetectable — the dump still lands for triage).
    pub passed: bool,
    /// The retained events and overwrite count.
    pub dump: FlightDump,
}

/// Internal state shared between the fleet's device jobs, the sampler
/// thread, and the monitor handle the caller keeps.
pub(crate) struct MonitorShared {
    config: MonitorConfig,
    fleet_size: AtomicU64,
    completed: AtomicU64,
    passed: AtomicU64,
    defective: AtomicU64,
    seq: AtomicU64,
    emitted: AtomicU64,
    dropped: AtomicU64,
    started: Mutex<Option<Instant>>,
    in_flight: Mutex<BTreeMap<u64, Instant>>,
    device_elapsed: Mutex<Histogram>,
    dumps: Mutex<Vec<DeviceDump>>,
    telemetry: Arc<MetricsRegistry>,
    tx: SyncSender<FleetSnapshot>,
    stop: Mutex<bool>,
    stopped: Condvar,
}

impl MonitorShared {
    /// Arms the monitor for a run of `fleet_size` devices, resetting every
    /// live counter and the dump list (telemetry histograms accumulate
    /// across runs by design — they describe the monitor's lifetime).
    pub(crate) fn begin_run(&self, fleet_size: u64) {
        self.fleet_size.store(fleet_size, Ordering::Relaxed);
        self.completed.store(0, Ordering::Relaxed);
        self.passed.store(0, Ordering::Relaxed);
        self.defective.store(0, Ordering::Relaxed);
        self.seq.store(0, Ordering::Relaxed);
        *self.started.lock().expect("monitor poisoned") = Some(Instant::now());
        self.in_flight.lock().expect("monitor poisoned").clear();
        *self.device_elapsed.lock().expect("monitor poisoned") = Histogram::new();
        self.dumps.lock().expect("monitor poisoned").clear();
        *self.stop.lock().expect("monitor poisoned") = false;
    }

    /// Signals the sampler to emit its final snapshot and exit.
    pub(crate) fn finish_run(&self) {
        *self.stop.lock().expect("monitor poisoned") = true;
        self.stopped.notify_all();
    }

    pub(crate) fn device_started(&self, device_id: u64) {
        self.in_flight
            .lock()
            .expect("monitor poisoned")
            .insert(device_id, Instant::now());
    }

    pub(crate) fn device_finished(
        &self,
        device_id: u64,
        passed: bool,
        defective: bool,
        elapsed: Duration,
    ) {
        self.in_flight
            .lock()
            .expect("monitor poisoned")
            .remove(&device_id);
        self.completed.fetch_add(1, Ordering::Relaxed);
        if passed {
            self.passed.fetch_add(1, Ordering::Relaxed);
        }
        if defective {
            self.defective.fetch_add(1, Ordering::Relaxed);
        }
        self.device_elapsed
            .lock()
            .expect("monitor poisoned")
            .observe(elapsed.as_micros() as u64);
    }

    /// A fresh per-device flight recorder, or `None` when disabled.
    pub(crate) fn new_recorder(&self) -> Option<Arc<FlightRecorder>> {
        (self.config.recorder_capacity > 0)
            .then(|| Arc::new(FlightRecorder::new(self.config.recorder_capacity)))
    }

    pub(crate) fn add_dump(&self, dump: DeviceDump) {
        self.dumps.lock().expect("monitor poisoned").push(dump);
    }

    pub(crate) fn telemetry(&self) -> &Arc<MetricsRegistry> {
        &self.telemetry
    }

    /// The sampler: one snapshot per interval while devices run, plus a
    /// final `last = true` snapshot after [`finish_run`](Self::finish_run).
    pub(crate) fn sampler_loop(&self, cache: &RouteTableCache) {
        loop {
            let guard = self.stop.lock().expect("monitor poisoned");
            let (guard, _timeout) = self
                .stopped
                .wait_timeout_while(guard, self.config.interval, |stop| !*stop)
                .expect("monitor poisoned");
            let stop = *guard;
            drop(guard);
            if stop {
                break;
            }
            self.emit(self.snapshot(cache, false));
        }
        self.emit(self.snapshot(cache, true));
    }

    fn snapshot(&self, cache: &RouteTableCache, last: bool) -> FleetSnapshot {
        let elapsed = self
            .started
            .lock()
            .expect("monitor poisoned")
            .map_or(Duration::ZERO, |s| s.elapsed());
        let completed = self.completed.load(Ordering::Relaxed);
        let passed = self.passed.load(Ordering::Relaxed);
        let mut stragglers: Vec<Straggler> = {
            let in_flight = self.in_flight.lock().expect("monitor poisoned");
            in_flight
                .iter()
                .map(|(&device_id, since)| Straggler {
                    device_id,
                    elapsed_us: since.elapsed().as_micros() as u64,
                })
                .collect()
        };
        let in_flight = stragglers.len() as u64;
        stragglers.sort_by(|a, b| {
            b.elapsed_us
                .cmp(&a.elapsed_us)
                .then(a.device_id.cmp(&b.device_id))
        });
        stragglers.truncate(self.config.stragglers);
        let (cache_hits, cache_misses) = (cache.hits(), cache.misses());
        let lookups = cache_hits + cache_misses;
        FleetSnapshot {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            last,
            elapsed_us: elapsed.as_micros() as u64,
            fleet_size: self.fleet_size.load(Ordering::Relaxed),
            completed,
            passed,
            failed: completed - passed,
            defective: self.defective.load(Ordering::Relaxed),
            in_flight,
            yield_fraction: if completed == 0 {
                1.0
            } else {
                passed as f64 / completed as f64
            },
            devices_per_sec: completed as f64 / elapsed.as_secs_f64().max(1e-9),
            cache_hits,
            cache_misses,
            cache_hit_rate: if lookups == 0 {
                0.0
            } else {
                cache_hits as f64 / lookups as f64
            },
            // Monitored runs execute scalar by policy (see the module doc):
            // every device of the run is a packed fallback with one shared
            // reason.
            packed_fallbacks: vec![(
                "monitored_run".to_owned(),
                self.fleet_size.load(Ordering::Relaxed),
            )],
            device_elapsed_us: self
                .device_elapsed
                .lock()
                .expect("monitor poisoned")
                .summary(),
            queue_wait_us: self
                .telemetry
                .histogram("obs.pool.job.wait_us")
                .map(|h| h.summary())
                .unwrap_or_default(),
            stragglers,
        }
    }

    fn emit(&self, snapshot: FleetSnapshot) {
        match self.tx.try_send(snapshot) {
            Ok(()) => {
                self.emitted.fetch_add(1, Ordering::Relaxed);
            }
            // Full channel or a hung-up receiver: the fleet never waits on
            // its observer.
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// A live observer for [`FleetRunner::run_monitored`](crate::FleetRunner::run_monitored).
///
/// Construction hands back the monitor and the receiving end of its bounded
/// snapshot channel; consume the receiver from any thread (or not at all —
/// overflow drops snapshots, never stalls the fleet). After the run,
/// [`dumps`](Self::dumps) holds a flight-recorder dump per defective or
/// failing device and [`telemetry`](Self::telemetry) the wall-clock
/// (`obs.*`) phase histograms.
///
/// # Examples
///
/// ```
/// use casbus_controller::schedule::packed_schedule;
/// use casbus_sim::{FleetMonitor, FleetRunner, VariationSpec};
/// use casbus_soc::catalog;
///
/// let soc = catalog::figure2a_scan_soc();
/// let runner = FleetRunner::new(&soc, 4, packed_schedule(&soc, 4).unwrap())?;
/// let (monitor, snapshots) = FleetMonitor::new();
/// let fleet = runner.run_monitored(&VariationSpec::new(11, 0.5), 12, &monitor)?;
/// // The run is over, so drain what's buffered (a blocking `iter()` would
/// // wait forever: the monitor still holds the sender).
/// let last = snapshots.try_iter().last().expect("final snapshot always lands");
/// assert!(last.last && last.completed == 12);
/// assert!(monitor.dumps().len() >= fleet.failed(), "every failure dumps");
/// # Ok::<(), casbus_sim::SimError>(())
/// ```
pub struct FleetMonitor {
    shared: Arc<MonitorShared>,
}

impl std::fmt::Debug for FleetMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetMonitor")
            .field("config", &self.shared.config)
            .field("emitted", &self.snapshots_emitted())
            .field("dropped", &self.snapshots_dropped())
            .finish_non_exhaustive()
    }
}

impl FleetMonitor {
    /// A monitor with [`MonitorConfig::default`] and its snapshot receiver.
    pub fn new() -> (Self, Receiver<FleetSnapshot>) {
        Self::with_config(MonitorConfig::default())
    }

    /// A monitor with explicit tuning and its snapshot receiver.
    pub fn with_config(config: MonitorConfig) -> (Self, Receiver<FleetSnapshot>) {
        let (tx, rx) = mpsc::sync_channel(config.channel_capacity.max(1));
        let shared = Arc::new(MonitorShared {
            config,
            fleet_size: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            passed: AtomicU64::new(0),
            defective: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            emitted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            started: Mutex::new(None),
            in_flight: Mutex::new(BTreeMap::new()),
            device_elapsed: Mutex::new(Histogram::new()),
            dumps: Mutex::new(Vec::new()),
            telemetry: MetricsRegistry::new(),
            tx,
            stop: Mutex::new(false),
            stopped: Condvar::new(),
        });
        (Self { shared }, rx)
    }

    /// The tuning this monitor was built with.
    pub fn config(&self) -> &MonitorConfig {
        &self.shared.config
    }

    /// Wall-clock phase telemetry (`obs.fleet.device.setup_us`,
    /// `obs.fleet.device.run_us`, `obs.pool.job.wait_us`,
    /// `obs.pool.job.exec_us`, …). Accumulates across runs of this monitor.
    pub fn telemetry(&self) -> &Arc<MetricsRegistry> {
        self.shared.telemetry()
    }

    /// Flight-recorder dumps collected so far — one per defective or
    /// failing device of the current (or just-finished) run.
    pub fn dumps(&self) -> Vec<DeviceDump> {
        self.shared.dumps.lock().expect("monitor poisoned").clone()
    }

    /// Snapshots successfully handed to the receiver.
    pub fn snapshots_emitted(&self) -> u64 {
        self.shared.emitted.load(Ordering::Relaxed)
    }

    /// Snapshots dropped on a full (or hung-up) channel.
    pub fn snapshots_dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    pub(crate) fn shared(&self) -> &Arc<MonitorShared> {
        &self.shared
    }
}

/// Rolling progress tracker for one lot on a
/// [`TestFloor`](crate::floor::TestFloor).
///
/// The floor's collector calls [`record`](Self::record) for every finished
/// device of the lot; the floor's admission thread periodically turns the
/// tracker into a per-lot [`FleetSnapshot`] via [`snapshot`](Self::snapshot)
/// and feeds [`rolling_yield`](Self::rolling_yield) /
/// [`last_progress_age`](Self::last_progress_age) to the
/// [`AdmissionController`](crate::admission::AdmissionController).
///
/// Unlike the full [`FleetMonitor`] (which owns per-device phase timers and
/// flight recorders and therefore forces the scalar path), a `LotTracker`
/// observes only completion events, so packed cohort execution stays
/// available to floor lots. Snapshot fields the tracker cannot see —
/// per-device latency quantiles, queue-wait digests, stragglers, live
/// fallback attribution — are left empty in lot snapshots.
#[derive(Debug)]
pub struct LotTracker {
    fleet_size: u64,
    window: usize,
    started: Instant,
    seq: AtomicU64,
    completed: AtomicU64,
    passed: AtomicU64,
    defective: AtomicU64,
    recent: Mutex<std::collections::VecDeque<bool>>,
    last_progress: Mutex<Instant>,
}

impl LotTracker {
    /// A tracker for a lot of `fleet_size` devices, judging rolling yield
    /// over the last `window` completions (clamped to at least 1).
    pub fn new(fleet_size: u64, window: usize) -> Self {
        let now = Instant::now();
        Self {
            fleet_size,
            window: window.max(1),
            started: now,
            seq: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            passed: AtomicU64::new(0),
            defective: AtomicU64::new(0),
            recent: Mutex::new(std::collections::VecDeque::with_capacity(window.max(1))),
            last_progress: Mutex::new(now),
        }
    }

    /// Records one finished device of this lot.
    pub fn record(&self, report: &crate::fleet::DeviceReport) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        if report.passed() {
            self.passed.fetch_add(1, Ordering::Relaxed);
        }
        if report.fault.is_some() {
            self.defective.fetch_add(1, Ordering::Relaxed);
        }
        let mut recent = self.recent.lock().expect("lot tracker poisoned");
        if recent.len() == self.window {
            recent.pop_front();
        }
        recent.push_back(report.passed());
        drop(recent);
        *self.last_progress.lock().expect("lot tracker poisoned") = Instant::now();
    }

    /// Devices of this lot finished so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Finished devices whose every core passed.
    pub fn passed(&self) -> u64 {
        self.passed.load(Ordering::Relaxed)
    }

    /// Devices the lot still owes (`fleet_size − completed`).
    pub fn remaining(&self) -> u64 {
        self.fleet_size.saturating_sub(self.completed())
    }

    /// Pass fraction over the last `window` completions — `1.0` before
    /// anything completes. This is the admission controller's collapse
    /// signal: a lot whose overall yield still looks healthy can already be
    /// producing a solid run of failures at the tail.
    pub fn rolling_yield(&self) -> f64 {
        let recent = self.recent.lock().expect("lot tracker poisoned");
        if recent.is_empty() {
            1.0
        } else {
            recent.iter().filter(|&&pass| pass).count() as f64 / recent.len() as f64
        }
    }

    /// Time since this lot last completed a device (or since the tracker
    /// was created, before the first completion) — the starvation signal.
    pub fn last_progress_age(&self) -> Duration {
        self.last_progress
            .lock()
            .expect("lot tracker poisoned")
            .elapsed()
    }

    /// Assembles a per-lot [`FleetSnapshot`]. `queued` is the lot's
    /// still-undispatched device count (from the pool lane), so
    /// `in_flight` counts only devices actually executing on workers.
    /// Tracker-invisible fields (latency digests, stragglers, fallback
    /// attribution) are empty — see the type-level docs.
    pub fn snapshot(&self, cache: &RouteTableCache, queued: u64, last: bool) -> FleetSnapshot {
        let elapsed = self.started.elapsed();
        let completed = self.completed();
        let passed = self.passed();
        let (cache_hits, cache_misses) = (cache.hits(), cache.misses());
        let lookups = cache_hits + cache_misses;
        FleetSnapshot {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            last,
            elapsed_us: elapsed.as_micros() as u64,
            fleet_size: self.fleet_size,
            completed,
            passed,
            failed: completed - passed,
            defective: self.defective.load(Ordering::Relaxed),
            in_flight: self
                .fleet_size
                .saturating_sub(completed)
                .saturating_sub(queued),
            yield_fraction: if completed == 0 {
                1.0
            } else {
                passed as f64 / completed as f64
            },
            devices_per_sec: completed as f64 / elapsed.as_secs_f64().max(1e-9),
            cache_hits,
            cache_misses,
            cache_hit_rate: if lookups == 0 {
                0.0
            } else {
                cache_hits as f64 / lookups as f64
            },
            packed_fallbacks: Vec::new(),
            device_elapsed_us: HistogramSummary::default(),
            queue_wait_us: HistogramSummary::default(),
            stragglers: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reports_counts_yield_and_stragglers() {
        let (monitor, rx) = FleetMonitor::with_config(MonitorConfig {
            stragglers: 2,
            ..MonitorConfig::default()
        });
        let shared = monitor.shared();
        shared.begin_run(8);
        for id in 0..5 {
            shared.device_started(id);
        }
        shared.device_finished(0, true, false, Duration::from_micros(500));
        shared.device_finished(1, false, true, Duration::from_micros(900));
        shared.telemetry().observe("obs.pool.job.wait_us", 10);

        let cache = RouteTableCache::new();
        let snap = shared.snapshot(&cache, false);
        assert_eq!(snap.fleet_size, 8);
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.passed, 1);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.defective, 1);
        assert_eq!(snap.in_flight, 3);
        assert!((snap.yield_fraction - 0.5).abs() < 1e-12);
        assert_eq!(snap.device_elapsed_us.count, 2);
        assert_eq!(snap.queue_wait_us.count, 1);
        assert_eq!(snap.stragglers.len(), 2, "straggler list is truncated");

        assert_eq!(
            snap.packed_fallbacks,
            vec![("monitored_run".to_owned(), 8)],
            "monitored runs attribute every device to the scalar path"
        );

        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"completed\":2"));
        assert!(json.contains("\"packed_fallbacks\":{\"monitored_run\":8}"));
        assert!(json.contains("\"stragglers\":[{\"device_id\":"));
        assert!(!json.contains('\n'), "single line for JSONL streams");

        let prom = snap.to_prometheus();
        assert!(prom.contains("fleet_completed 2\n"));
        assert!(prom.contains("fleet_packed_fallback_reason{reason=\"monitored_run\"} 8\n"));
        assert!(prom.contains("fleet_queue_wait_us{quantile=\"0.5\"} 10\n"));
        drop(rx);
    }

    #[test]
    fn emit_counts_drops_on_a_full_channel() {
        let (monitor, rx) = FleetMonitor::with_config(MonitorConfig {
            channel_capacity: 1,
            ..MonitorConfig::default()
        });
        let shared = monitor.shared();
        shared.begin_run(1);
        let cache = RouteTableCache::new();
        shared.emit(shared.snapshot(&cache, false));
        shared.emit(shared.snapshot(&cache, false));
        shared.emit(shared.snapshot(&cache, false));
        assert_eq!(monitor.snapshots_emitted(), 1);
        assert_eq!(monitor.snapshots_dropped(), 2);
        assert_eq!(rx.try_iter().count(), 1);
    }

    #[test]
    fn sampler_always_emits_a_final_snapshot() {
        let (monitor, rx) = FleetMonitor::with_config(MonitorConfig {
            interval: Duration::from_millis(200),
            ..MonitorConfig::default()
        });
        let shared = Arc::clone(monitor.shared());
        shared.begin_run(0);
        let cache = RouteTableCache::new();
        std::thread::scope(|scope| {
            let sampler = scope.spawn(|| shared.sampler_loop(&cache));
            // Stop well before the first interval elapses: only the final
            // snapshot should be emitted.
            shared.finish_run();
            sampler.join().expect("sampler panicked");
        });
        let snaps: Vec<FleetSnapshot> = rx.try_iter().collect();
        assert_eq!(snaps.len(), 1);
        assert!(snaps[0].last);
        assert_eq!(snaps[0].seq, 0);
    }

    #[test]
    fn recorder_is_gated_on_capacity() {
        let (on, _rx) = FleetMonitor::new();
        assert!(on.shared().new_recorder().is_some());
        let (off, _rx) = FleetMonitor::with_config(MonitorConfig {
            recorder_capacity: 0,
            ..MonitorConfig::default()
        });
        assert!(off.shared().new_recorder().is_none());
    }
}
