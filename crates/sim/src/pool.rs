//! Execution pools for the simulator's parallel paths.
//!
//! Two shapes of parallelism live here:
//!
//! * [`lpt_fanout`] — the *scoped* fan-out every per-wave / per-candidate
//!   path uses: weighted items are balanced over short-lived workers by
//!   longest-processing-time (the same [`partition_lpt`] the schedule
//!   partitioner uses, so schedule-time predictions and run-time bucketing
//!   agree), joined before returning. Borrowed data is fine; thread churn is
//!   paid per call.
//! * [`WorkerPool`] — the *persistent* pool fleet serving runs on:
//!   long-lived workers pull whole jobs from one shared injector queue, so
//!   a thousand-device run spawns its threads exactly once. Jobs must be
//!   `'static` (they outlive the submitting call); results stream back over
//!   whatever channel the job captured.
//!
//! The split is deliberate: a persistent pool cannot safely borrow from the
//! submitting stack frame, and a scoped pool cannot amortise thread startup
//! across calls. Per-device work (owns its simulator) takes the persistent
//! pool; per-lane work (borrows the device's wrappers) takes the scoped
//! fan-out.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use casbus_controller::partition_lpt;
use casbus_obs::MetricsRegistry;

/// Runs `f` over every item, spreading the work across up to `workers`
/// scoped threads balanced by LPT on the supplied weights, and returns the
/// results **in input order**. With one worker (or one item) everything
/// runs inline on the caller's thread — no spawn, no churn.
///
/// Deterministic by construction: each item's result depends only on that
/// item, and the output order is the input order regardless of how the
/// buckets interleave.
pub fn lpt_fanout<T, R, F>(weighted: Vec<(u64, T)>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = workers.min(weighted.len()).max(1);
    if workers <= 1 {
        return weighted.into_iter().map(|(_, item)| f(item)).collect();
    }
    let slotted: Vec<(u64, (usize, T))> = weighted
        .into_iter()
        .enumerate()
        .map(|(slot, (weight, item))| (weight, (slot, item)))
        .collect();
    let mut results: Vec<Option<R>> = (0..slotted.len()).map(|_| None).collect();
    let computed = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = partition_lpt(slotted, workers)
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|(slot, item)| (slot, f(item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("fan-out worker panicked"))
            .collect::<Vec<_>>()
    });
    for (slot, result) in computed {
        results[slot] = Some(result);
    }
    results
        .into_iter()
        .map(|r| r.expect("every slot computed"))
        .collect()
}

/// A job the pool executes: owns everything it touches.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A queued job plus its enqueue instant, so workers can report how long
/// it waited for a free thread. The instant is captured only while a
/// metrics registry is attached — the metric-less serving hot path skips
/// the clock read entirely.
struct QueuedJob {
    run: Job,
    enqueued: Option<Instant>,
}

/// Queue state shared between the submitting side and the workers.
#[derive(Default)]
struct PoolState {
    jobs: VecDeque<QueuedJob>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
    executed: AtomicU64,
    /// When set, workers observe `obs.pool.job.wait_us` (enqueue → pickup)
    /// and `obs.pool.job.exec_us` (run time) per job. Wall-clock values:
    /// intentionally namespaced under `obs.*`, outside the determinism
    /// contract.
    metrics: Mutex<Option<Arc<MetricsRegistry>>>,
    /// Mirror of `metrics.is_some()`, updated under the `metrics` lock.
    /// Workers check this flag per job and only touch the mutex when it is
    /// set, so the (usual) detached case never serializes on the registry
    /// lock.
    metrics_attached: AtomicBool,
}

/// A persistent pool of worker threads pulling jobs from one shared queue.
///
/// Workers are spawned once, at construction, and live until the pool is
/// dropped: submitting ten thousand jobs costs ten thousand queue pushes,
/// not ten thousand thread spawns. Idle workers block on a condvar and
/// steal the next available job the moment one lands, so load balances
/// itself — a worker stuck on a long device simply stops pulling while the
/// others drain the queue.
///
/// Jobs are `FnOnce() + Send + 'static`; anything they produce streams back
/// through channels the job captured. Dropping the pool finishes every
/// queued job first, then joins the workers (tests rely on nothing being
/// silently discarded).
///
/// # Examples
///
/// ```
/// use casbus_sim::pool::WorkerPool;
/// use std::sync::mpsc;
///
/// let pool = WorkerPool::new(4);
/// let (tx, rx) = mpsc::sync_channel(8);
/// for device in 0..32u64 {
///     let tx = tx.clone();
///     pool.execute(move || tx.send(device * device).unwrap());
/// }
/// drop(tx);
/// let mut squares: Vec<u64> = rx.iter().collect();
/// squares.sort_unstable();
/// assert_eq!(squares[31], 31 * 31);
/// ```
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .field("executed", &self.jobs_executed())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `threads` long-lived workers (`0` means one per
    /// available hardware thread).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState::default()),
            work_ready: Condvar::new(),
            executed: AtomicU64::new(0),
            metrics: Mutex::new(None),
            metrics_attached: AtomicBool::new(false),
        });
        let workers = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker_loop(&shared))
            })
            .collect();
        Self { shared, workers }
    }

    fn worker_loop(shared: &PoolShared) {
        loop {
            let job = {
                let mut state = shared.state.lock().expect("worker pool poisoned");
                loop {
                    if let Some(job) = state.jobs.pop_front() {
                        break job;
                    }
                    if state.shutdown {
                        return;
                    }
                    state = shared.work_ready.wait(state).expect("worker pool poisoned");
                }
            };
            // Fast path: no registry attached (the fleet's per-device hot
            // path) — skip the metrics mutex entirely.
            let metrics = if shared.metrics_attached.load(Ordering::Acquire) {
                shared.metrics.lock().expect("worker pool poisoned").clone()
            } else {
                None
            };
            match metrics {
                Some(metrics) => {
                    // Jobs enqueued while detached carry no instant and
                    // report zero wait.
                    let waited = job.enqueued.map_or(0, |at| at.elapsed().as_micros() as u64);
                    metrics.observe("obs.pool.job.wait_us", waited);
                    let started = Instant::now();
                    (job.run)();
                    metrics.observe("obs.pool.job.exec_us", started.elapsed().as_micros() as u64);
                }
                None => (job.run)(),
            }
            shared.executed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Enqueues one job; the first idle worker picks it up.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        let queued = QueuedJob {
            run: Box::new(job),
            enqueued: self
                .shared
                .metrics_attached
                .load(Ordering::Acquire)
                .then(Instant::now),
        };
        let mut state = self.shared.state.lock().expect("worker pool poisoned");
        state.jobs.push_back(queued);
        drop(state);
        self.shared.work_ready.notify_one();
    }

    /// Attaches (or with `None` detaches) a registry receiving per-job
    /// queue-wait and execution-time observations. Jobs already queued when
    /// the registry changes report to whichever registry is installed when
    /// a worker picks them up.
    pub fn set_metrics(&self, metrics: Option<Arc<MetricsRegistry>>) {
        let mut slot = self.shared.metrics.lock().expect("worker pool poisoned");
        self.shared
            .metrics_attached
            .store(metrics.is_some(), Ordering::Release);
        *slot = metrics;
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Jobs completed over the pool's lifetime.
    pub fn jobs_executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("worker pool poisoned");
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            worker.join().expect("pool worker panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn lpt_fanout_preserves_input_order_at_every_worker_count() {
        let items: Vec<(u64, usize)> = (0..13).map(|i| ((13 - i) as u64, i)).collect();
        let expected: Vec<usize> = (0..13).map(|i| i * 3).collect();
        for workers in [1usize, 2, 4, 16] {
            let got = lpt_fanout(items.clone(), workers, |i| i * 3);
            assert_eq!(got, expected, "{workers} workers");
        }
        assert!(lpt_fanout::<usize, usize, _>(vec![], 4, |i| i).is_empty());
    }

    #[test]
    fn pool_executes_every_job_before_dropping() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.threads(), 3);
        let (tx, rx) = mpsc::channel();
        for i in 0..100u64 {
            let tx = tx.clone();
            pool.execute(move || tx.send(i).unwrap());
        }
        drop(tx);
        let mut seen: Vec<u64> = rx.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
        drop(pool);
    }

    #[test]
    fn pool_survives_multiple_submission_rounds() {
        // The persistent pool is reused across runs: same workers, more jobs.
        let pool = WorkerPool::new(2);
        for round in 0..3 {
            let (tx, rx) = mpsc::sync_channel(4);
            for i in 0..10u64 {
                let tx = tx.clone();
                pool.execute(move || tx.send(i).unwrap());
            }
            drop(tx);
            assert_eq!(rx.iter().sum::<u64>(), 45, "round {round}");
        }
        assert_eq!(pool.jobs_executed(), 30);
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let pool = WorkerPool::new(0);
        assert!(pool.threads() >= 1);
    }

    #[test]
    fn attached_metrics_observe_wait_and_exec_per_job() {
        let pool = WorkerPool::new(2);
        let metrics = MetricsRegistry::new();
        pool.set_metrics(Some(Arc::clone(&metrics)));
        let (tx, rx) = mpsc::channel();
        for i in 0..20u64 {
            let tx = tx.clone();
            pool.execute(move || tx.send(i).unwrap());
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 20);

        // Detached: further jobs leave the registry untouched.
        pool.set_metrics(None);
        let (tx, rx) = mpsc::channel::<u64>();
        for _ in 0..5 {
            let tx = tx.clone();
            pool.execute(move || tx.send(1).unwrap());
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 5);

        // Joining the workers guarantees every observation landed.
        drop(pool);
        assert_eq!(metrics.histogram("obs.pool.job.wait_us").unwrap().count, 20);
        assert_eq!(metrics.histogram("obs.pool.job.exec_us").unwrap().count, 20);
    }
}
