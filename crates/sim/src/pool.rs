//! Execution pools for the simulator's parallel paths.
//!
//! Two shapes of parallelism live here:
//!
//! * [`lpt_fanout`] — the *scoped* fan-out every per-wave / per-candidate
//!   path uses: weighted items are balanced over short-lived workers by
//!   longest-processing-time (the same [`partition_lpt`] the schedule
//!   partitioner uses, so schedule-time predictions and run-time bucketing
//!   agree), joined before returning. Borrowed data is fine; thread churn is
//!   paid per call.
//! * [`WorkerPool`] — the *persistent* pool fleet serving runs on:
//!   long-lived workers pull whole jobs from shared injector queues, so
//!   a thousand-device run spawns its threads exactly once. Jobs must be
//!   `'static` (they outlive the submitting call); results stream back over
//!   whatever channel the job captured. Jobs land in weighted-fair
//!   [`LaneId`] lanes: the test floor gives each lot one lane whose weight
//!   is the lot priority, and its admission controller pauses, reweights,
//!   or drains a lane without touching co-tenant lanes.
//!
//! The split is deliberate: a persistent pool cannot safely borrow from the
//! submitting stack frame, and a scoped pool cannot amortise thread startup
//! across calls. Per-device work (owns its simulator) takes the persistent
//! pool; per-lane work (borrows the device's wrappers) takes the scoped
//! fan-out.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use casbus_controller::partition_lpt;
use casbus_obs::MetricsRegistry;

/// Virtual-time quantum for the stride scheduler: a lane of weight `w`
/// advances its pass by `STRIDE_SCALE / w` per job, so over time lanes
/// receive worker pulls proportionally to their weights.
const STRIDE_SCALE: u64 = 1 << 20;

/// Runs `f` over every item, spreading the work across up to `workers`
/// scoped threads balanced by LPT on the supplied weights, and returns the
/// results **in input order**. With one worker (or one item) everything
/// runs inline on the caller's thread — no spawn, no churn.
///
/// Deterministic by construction: each item's result depends only on that
/// item, and the output order is the input order regardless of how the
/// buckets interleave.
pub fn lpt_fanout<T, R, F>(weighted: Vec<(u64, T)>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = workers.min(weighted.len()).max(1);
    if workers <= 1 {
        return weighted.into_iter().map(|(_, item)| f(item)).collect();
    }
    let slotted: Vec<(u64, (usize, T))> = weighted
        .into_iter()
        .enumerate()
        .map(|(slot, (weight, item))| (weight, (slot, item)))
        .collect();
    let mut results: Vec<Option<R>> = (0..slotted.len()).map(|_| None).collect();
    let computed = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = partition_lpt(slotted, workers)
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|(slot, item)| (slot, f(item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("fan-out worker panicked"))
            .collect::<Vec<_>>()
    });
    for (slot, result) in computed {
        results[slot] = Some(result);
    }
    results
        .into_iter()
        .map(|r| r.expect("every slot computed"))
        .collect()
}

/// A job the pool executes: owns everything it touches.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A queued job plus its enqueue instant, so workers can report how long
/// it waited for a free thread. The instant is captured only while a
/// metrics registry is attached — the metric-less serving hot path skips
/// the clock read entirely.
struct QueuedJob {
    run: Job,
    enqueued: Option<Instant>,
}

/// Handle to one submission lane of a [`WorkerPool`].
///
/// Lanes are the pool's unit of *weighted-fair scheduling*: every job is
/// enqueued into some lane ([`WorkerPool::execute`] uses a built-in default
/// lane of weight 1; [`WorkerPool::lane`] registers more), and idle workers
/// pick the next job from the runnable lane with the smallest
/// stride-scheduling pass value — so over time each lane receives worker
/// pulls in proportion to its weight, regardless of how fast jobs are
/// submitted. A multi-tenant serving layer (the test floor) maps each lot
/// to one lane and its priority to the lane weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaneId(usize);

/// One submission lane: its queue plus fair-scheduling state.
struct LaneState {
    jobs: VecDeque<QueuedJob>,
    /// Scheduling weight (≥ 1): a weight-2 lane gets twice the pulls of a
    /// weight-1 lane while both have work queued.
    weight: u64,
    /// Paused lanes are skipped by workers (queued jobs wait; in-flight
    /// jobs finish) until resumed — except during shutdown, when every
    /// queued job still runs so nothing is silently discarded.
    paused: bool,
    /// Stride-scheduling virtual time: advanced by `STRIDE_SCALE / weight`
    /// per popped job; the runnable lane with the smallest pass goes next.
    pass: u64,
}

/// Queue state shared between the submitting side and the workers.
struct PoolState {
    lanes: Vec<LaneState>,
    /// Pass value of the most recently scheduled lane: lanes going from
    /// empty to non-empty rejoin at this virtual "now" instead of replaying
    /// the backlog their idle time would otherwise entitle them to.
    global_pass: u64,
    shutdown: bool,
}

impl PoolState {
    /// A fresh state with the default lane (index 0, weight 1) installed.
    fn new() -> Self {
        Self {
            lanes: vec![LaneState {
                jobs: VecDeque::new(),
                weight: 1,
                paused: false,
                pass: 0,
            }],
            global_pass: 0,
            shutdown: false,
        }
    }

    /// Pops the next job under weighted-fair scheduling: the non-paused,
    /// non-empty lane with the smallest pass (ties to the lowest lane
    /// index). During shutdown paused lanes are eligible too, so dropping
    /// the pool never strands queued work.
    fn next_job(&mut self) -> Option<QueuedJob> {
        let mut best: Option<usize> = None;
        for (idx, lane) in self.lanes.iter().enumerate() {
            if lane.jobs.is_empty() || (lane.paused && !self.shutdown) {
                continue;
            }
            if best.is_none_or(|b| lane.pass < self.lanes[b].pass) {
                best = Some(idx);
            }
        }
        let idx = best?;
        let lane = &mut self.lanes[idx];
        self.global_pass = lane.pass;
        lane.pass += STRIDE_SCALE / lane.weight.max(1);
        lane.jobs.pop_front()
    }
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
    executed: AtomicU64,
    /// When set, workers observe `obs.pool.job.wait_us` (enqueue → pickup)
    /// and `obs.pool.job.exec_us` (run time) per job. Wall-clock values:
    /// intentionally namespaced under `obs.*`, outside the determinism
    /// contract.
    metrics: Mutex<Option<Arc<MetricsRegistry>>>,
    /// Mirror of `metrics.is_some()`, updated under the `metrics` lock.
    /// Workers check this flag per job and only touch the mutex when it is
    /// set, so the (usual) detached case never serializes on the registry
    /// lock.
    metrics_attached: AtomicBool,
}

/// A persistent pool of worker threads pulling jobs from one shared queue.
///
/// Workers are spawned once, at construction, and live until the pool is
/// dropped: submitting ten thousand jobs costs ten thousand queue pushes,
/// not ten thousand thread spawns. Idle workers block on a condvar and
/// steal the next available job the moment one lands, so load balances
/// itself — a worker stuck on a long device simply stops pulling while the
/// others drain the queue.
///
/// Jobs are `FnOnce() + Send + 'static`; anything they produce streams back
/// through channels the job captured. Dropping the pool finishes every
/// queued job first — paused lanes included — then joins the workers
/// (tests rely on nothing being silently discarded).
///
/// # Examples
///
/// ```
/// use casbus_sim::pool::WorkerPool;
/// use std::sync::mpsc;
///
/// let pool = WorkerPool::new(4);
/// let (tx, rx) = mpsc::sync_channel(8);
/// for device in 0..32u64 {
///     let tx = tx.clone();
///     pool.execute(move || tx.send(device * device).unwrap());
/// }
/// drop(tx);
/// let mut squares: Vec<u64> = rx.iter().collect();
/// squares.sort_unstable();
/// assert_eq!(squares[31], 31 * 31);
/// ```
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .field("executed", &self.jobs_executed())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `threads` long-lived workers (`0` means one per
    /// available hardware thread).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState::new()),
            work_ready: Condvar::new(),
            executed: AtomicU64::new(0),
            metrics: Mutex::new(None),
            metrics_attached: AtomicBool::new(false),
        });
        let workers = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker_loop(&shared))
            })
            .collect();
        Self { shared, workers }
    }

    fn worker_loop(shared: &PoolShared) {
        loop {
            let job = {
                let mut state = shared.state.lock().expect("worker pool poisoned");
                loop {
                    if let Some(job) = state.next_job() {
                        break job;
                    }
                    if state.shutdown {
                        return;
                    }
                    state = shared.work_ready.wait(state).expect("worker pool poisoned");
                }
            };
            // Fast path: no registry attached (the fleet's per-device hot
            // path) — skip the metrics mutex entirely.
            let metrics = if shared.metrics_attached.load(Ordering::Acquire) {
                shared.metrics.lock().expect("worker pool poisoned").clone()
            } else {
                None
            };
            match metrics {
                Some(metrics) => {
                    // Jobs enqueued while detached carry no instant and
                    // report zero wait.
                    let waited = job.enqueued.map_or(0, |at| at.elapsed().as_micros() as u64);
                    metrics.observe("obs.pool.job.wait_us", waited);
                    let started = Instant::now();
                    (job.run)();
                    metrics.observe("obs.pool.job.exec_us", started.elapsed().as_micros() as u64);
                }
                None => (job.run)(),
            }
            shared.executed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Enqueues one job on the default lane; the first idle worker picks
    /// it up.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.execute_in(LaneId(0), job);
    }

    /// Registers a new submission lane with the given fair-share `weight`
    /// (clamped to at least 1). Lanes live as long as the pool.
    pub fn lane(&self, weight: u64) -> LaneId {
        let mut state = self.shared.state.lock().expect("worker pool poisoned");
        let pass = state.global_pass;
        state.lanes.push(LaneState {
            jobs: VecDeque::new(),
            weight: weight.max(1),
            paused: false,
            pass,
        });
        LaneId(state.lanes.len() - 1)
    }

    /// Enqueues one job on `lane`; workers pick it up according to the
    /// lane's weight and pause state.
    ///
    /// # Panics
    ///
    /// Panics if `lane` does not belong to this pool.
    pub fn execute_in(&self, lane: LaneId, job: impl FnOnce() + Send + 'static) {
        let queued = QueuedJob {
            run: Box::new(job),
            enqueued: self
                .shared
                .metrics_attached
                .load(Ordering::Acquire)
                .then(Instant::now),
        };
        let mut state = self.shared.state.lock().expect("worker pool poisoned");
        let global_pass = state.global_pass;
        let slot = state.lanes.get_mut(lane.0).expect("lane of another pool");
        if slot.jobs.is_empty() {
            // Rejoin at the scheduler's current virtual time: an idle lane
            // must not replay the share it did not use.
            slot.pass = slot.pass.max(global_pass);
        }
        slot.jobs.push_back(queued);
        drop(state);
        self.shared.work_ready.notify_one();
    }

    /// Pauses or resumes `lane`. Queued jobs of a paused lane wait (workers
    /// skip the lane); jobs already running finish normally. Resuming wakes
    /// every idle worker.
    pub fn set_lane_paused(&self, lane: LaneId, paused: bool) {
        let mut state = self.shared.state.lock().expect("worker pool poisoned");
        state
            .lanes
            .get_mut(lane.0)
            .expect("lane of another pool")
            .paused = paused;
        drop(state);
        if !paused {
            self.shared.work_ready.notify_all();
        }
    }

    /// Changes `lane`'s fair-share weight (clamped to at least 1), taking
    /// effect from the next scheduling decision.
    pub fn set_lane_weight(&self, lane: LaneId, weight: u64) {
        let mut state = self.shared.state.lock().expect("worker pool poisoned");
        state
            .lanes
            .get_mut(lane.0)
            .expect("lane of another pool")
            .weight = weight.max(1);
    }

    /// Drops every job still queued on `lane` (jobs already running
    /// finish), returning how many were discarded. Anything a dropped job
    /// captured — result senders included — is dropped with it, so
    /// collectors observing channel hang-up see the lane end cleanly.
    pub fn drain_lane(&self, lane: LaneId) -> usize {
        let mut state = self.shared.state.lock().expect("worker pool poisoned");
        let slot = state.lanes.get_mut(lane.0).expect("lane of another pool");
        let dropped = slot.jobs.len();
        slot.jobs.clear();
        dropped
    }

    /// Jobs currently queued (not yet picked up) on `lane`.
    pub fn lane_queued(&self, lane: LaneId) -> usize {
        self.shared
            .state
            .lock()
            .expect("worker pool poisoned")
            .lanes
            .get(lane.0)
            .expect("lane of another pool")
            .jobs
            .len()
    }

    /// Attaches (or with `None` detaches) a registry receiving per-job
    /// queue-wait and execution-time observations. Jobs already queued when
    /// the registry changes report to whichever registry is installed when
    /// a worker picks them up.
    pub fn set_metrics(&self, metrics: Option<Arc<MetricsRegistry>>) {
        let mut slot = self.shared.metrics.lock().expect("worker pool poisoned");
        self.shared
            .metrics_attached
            .store(metrics.is_some(), Ordering::Release);
        *slot = metrics;
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Jobs completed over the pool's lifetime.
    pub fn jobs_executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("worker pool poisoned");
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            worker.join().expect("pool worker panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn lpt_fanout_preserves_input_order_at_every_worker_count() {
        let items: Vec<(u64, usize)> = (0..13).map(|i| ((13 - i) as u64, i)).collect();
        let expected: Vec<usize> = (0..13).map(|i| i * 3).collect();
        for workers in [1usize, 2, 4, 16] {
            let got = lpt_fanout(items.clone(), workers, |i| i * 3);
            assert_eq!(got, expected, "{workers} workers");
        }
        assert!(lpt_fanout::<usize, usize, _>(vec![], 4, |i| i).is_empty());
    }

    #[test]
    fn pool_executes_every_job_before_dropping() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.threads(), 3);
        let (tx, rx) = mpsc::channel();
        for i in 0..100u64 {
            let tx = tx.clone();
            pool.execute(move || tx.send(i).unwrap());
        }
        drop(tx);
        let mut seen: Vec<u64> = rx.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
        drop(pool);
    }

    #[test]
    fn pool_survives_multiple_submission_rounds() {
        // The persistent pool is reused across runs: same workers, more jobs.
        let pool = WorkerPool::new(2);
        for round in 0..3 {
            let (tx, rx) = mpsc::sync_channel(4);
            for i in 0..10u64 {
                let tx = tx.clone();
                pool.execute(move || tx.send(i).unwrap());
            }
            drop(tx);
            assert_eq!(rx.iter().sum::<u64>(), 45, "round {round}");
        }
        assert_eq!(pool.jobs_executed(), 30);
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let pool = WorkerPool::new(0);
        assert!(pool.threads() >= 1);
    }

    #[test]
    fn lanes_share_workers_by_weight() {
        // One worker, jobs that record their lane: with weights 3:1 the
        // heavy lane's jobs are picked ~3x as often while both are backed
        // up. Queue everything against a gate first so the scheduler sees
        // both lanes non-empty from the first pull.
        let pool = WorkerPool::new(1);
        let heavy = pool.lane(3);
        let light = pool.lane(1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let gate = Arc::clone(&gate);
            pool.execute(move || {
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            });
        }
        let (tx, rx) = mpsc::channel();
        for _ in 0..12 {
            let tx = tx.clone();
            pool.execute_in(heavy, move || tx.send("heavy").unwrap());
        }
        for _ in 0..12 {
            let tx = tx.clone();
            pool.execute_in(light, move || tx.send("light").unwrap());
        }
        drop(tx);
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        let order: Vec<&str> = rx.iter().collect();
        assert_eq!(order.len(), 24, "every job ran");
        // In the first 8 scheduled jobs, the weight-3 lane must dominate.
        let heavy_early = order[..8].iter().filter(|&&l| l == "heavy").count();
        assert!(
            heavy_early >= 5,
            "weight-3 lane got only {heavy_early}/8 early slots: {order:?}"
        );
    }

    #[test]
    fn paused_lane_waits_and_resumes_without_losing_jobs() {
        let pool = WorkerPool::new(2);
        let lane = pool.lane(1);
        pool.set_lane_paused(lane, true);
        let (tx, rx) = mpsc::channel();
        for i in 0..6u64 {
            let tx = tx.clone();
            pool.execute_in(lane, move || tx.send(i).unwrap());
        }
        drop(tx);
        assert_eq!(pool.lane_queued(lane), 6, "paused jobs stay queued");
        assert!(rx
            .recv_timeout(std::time::Duration::from_millis(50))
            .is_err());
        pool.set_lane_paused(lane, false);
        let mut seen: Vec<u64> = rx.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..6).collect::<Vec<_>>(), "nothing lost on resume");
    }

    #[test]
    fn drain_lane_drops_queued_jobs_and_their_senders() {
        let pool = WorkerPool::new(1);
        let lane = pool.lane(1);
        pool.set_lane_paused(lane, true);
        let (tx, rx) = mpsc::channel::<u64>();
        for i in 0..5u64 {
            let tx = tx.clone();
            pool.execute_in(lane, move || tx.send(i).unwrap());
        }
        drop(tx);
        assert_eq!(pool.drain_lane(lane), 5);
        assert_eq!(pool.lane_queued(lane), 0);
        // Every sender clone died with its job: the channel reports
        // disconnect instead of hanging.
        assert!(rx.iter().next().is_none(), "drained lane sends nothing");
        pool.set_lane_paused(lane, false);
    }

    #[test]
    fn dropping_the_pool_runs_paused_lanes_too() {
        let pool = WorkerPool::new(1);
        let lane = pool.lane(1);
        pool.set_lane_paused(lane, true);
        let (tx, rx) = mpsc::channel();
        for i in 0..3u64 {
            let tx = tx.clone();
            pool.execute_in(lane, move || tx.send(i).unwrap());
        }
        drop(tx);
        drop(pool);
        let mut seen: Vec<u64> = rx.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2], "shutdown strands nothing");
    }

    #[test]
    fn attached_metrics_observe_wait_and_exec_per_job() {
        let pool = WorkerPool::new(2);
        let metrics = MetricsRegistry::new();
        pool.set_metrics(Some(Arc::clone(&metrics)));
        let (tx, rx) = mpsc::channel();
        for i in 0..20u64 {
            let tx = tx.clone();
            pool.execute(move || tx.send(i).unwrap());
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 20);

        // Detached: further jobs leave the registry untouched.
        pool.set_metrics(None);
        let (tx, rx) = mpsc::channel::<u64>();
        for _ in 0..5 {
            let tx = tx.clone();
            pool.execute(move || tx.send(1).unwrap());
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 5);

        // Joining the workers guarantees every observation landed.
        drop(pool);
        assert_eq!(metrics.histogram("obs.pool.job.wait_us").unwrap().count, 20);
        assert_eq!(metrics.histogram("obs.pool.job.exec_us").unwrap().count, 20);
    }
}
