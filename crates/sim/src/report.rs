//! Whole-program execution: run a scheduled test program end to end.

use std::fmt;

use casbus_controller::TestProgram;
use casbus_obs::{MetricsRegistry, TraceEvent};
use casbus_tpg::{BitVec, Verdict};

use crate::session::{compare, golden_run, ClockKind, SessionPlan};
use crate::simulator::{SimError, SocSimulator};

/// The outcome of executing a whole test program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocTestReport {
    /// Per-core verdicts, in first-tested order.
    pub verdicts: Vec<(String, Verdict)>,
    /// Total cycles driven (configuration + data, all steps).
    pub total_cycles: u64,
    /// Steps executed.
    pub steps: usize,
    /// Data clocks each core's wrapper observed during this program, in CAS
    /// order (aggregated through the metrics registry).
    pub per_core_cycles: Vec<(String, u64)>,
    /// Busy wire-cycles across the whole test bus (each wire routed to an
    /// active TEST-mode CAS counts one per non-idle data clock).
    pub bus_cycles: u64,
}

impl SocTestReport {
    /// Whether every core passed.
    pub fn all_pass(&self) -> bool {
        self.verdicts.iter().all(|(_, v)| v.is_pass())
    }

    /// Verdict of one core.
    pub fn verdict(&self, core_name: &str) -> Option<&Verdict> {
        self.verdicts
            .iter()
            .find(|(name, _)| name == core_name)
            .map(|(_, v)| v)
    }
}

impl fmt::Display for SocTestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SoC test: {} steps, {} cycles, {}",
            self.steps,
            self.total_cycles,
            if self.all_pass() {
                "ALL PASS"
            } else {
                "FAILURES"
            }
        )?;
        for (name, verdict) in &self.verdicts {
            writeln!(f, "  {name}: {verdict}")?;
        }
        if !self.per_core_cycles.is_empty() {
            writeln!(f, "  bus busy wire-cycles: {}", self.bus_cycles)?;
            for (name, cycles) in &self.per_core_cycles {
                writeln!(f, "  {name}: {cycles} wrapper data clocks")?;
            }
        }
        Ok(())
    }
}

/// Executes a test program end to end: for every step, the CONFIGURATION
/// phase loads the step's CAS and wrapper instructions, then the concurrent
/// cores' session plans run cycle-interleaved on their scheduled wire
/// windows, and every shifted-out bit is compared against that core's golden
/// model.
///
/// # Errors
///
/// Propagates configuration and width errors.
pub fn run_program(
    sim: &mut SocSimulator,
    program: &TestProgram,
) -> Result<SocTestReport, SimError> {
    run_program_with_metrics(sim, program, &MetricsRegistry::new())
}

/// [`run_program`], additionally publishing the simulator's cycle
/// aggregates into `metrics` (see [`SocSimulator::export_metrics`]); the
/// report's per-core and bus cycle fields are read back from the registry.
///
/// # Errors
///
/// Propagates configuration and width errors.
pub fn run_program_with_metrics(
    sim: &mut SocSimulator,
    program: &TestProgram,
    metrics: &MetricsRegistry,
) -> Result<SocTestReport, SimError> {
    let start_cycles = sim.cycles();
    // Baselines, so a reused simulator reports only this program's cycles.
    let core_baseline: Vec<u64> = sim.core_stats().iter().map(|s| s.total()).collect();
    let busy_baseline: u64 = sim.wire_busy().iter().sum();
    let mut verdicts: Vec<(String, Verdict)> = Vec::new();
    for (step_index, step) in program.steps().iter().enumerate() {
        let step_start = sim.cycles();
        sim.configure(&step.configuration, &step.wrapper_instructions)?;
        // Collect the concurrent cores of this step, their plans, goldens
        // and wire windows (from the now-active schemes).
        struct Lane {
            cas_index: usize,
            name: String,
            plan: SessionPlan,
            golden: Vec<Option<BitVec>>,
            wires: Vec<usize>,
            observed: Vec<BitVec>,
        }
        let mut lanes = Vec::new();
        for cas_index in step.configuration.cores_under_test() {
            let name = sim.tam().label(cas_index)?.to_owned();
            let Some((_, desc)) = sim.soc().core_by_name(&name) else {
                // The wrapped system bus: exercised via run_bus_extest.
                continue;
            };
            let desc = desc.clone();
            let plan = SessionPlan::for_core(&desc);
            let golden = golden_run(&desc, &plan);
            let wires = sim.tam().chain().cases()[cas_index]
                .active_scheme()
                .expect("configured TEST scheme")
                .wires()
                .to_vec();
            lanes.push(Lane {
                cas_index,
                name,
                plan,
                golden,
                wires,
                observed: Vec::new(),
            });
        }
        let horizon = lanes.iter().map(|l| l.plan.len()).max().unwrap_or(0);
        let cas_count = sim.tam().cas_count();
        for t in 0..horizon {
            let mut bus = BitVec::zeros(sim.bus_width());
            let mut kinds = vec![ClockKind::Idle; cas_count];
            for lane in &lanes {
                if let Some((stim, kind)) = lane.plan.cycles().get(t) {
                    kinds[lane.cas_index] = *kind;
                    for (j, &wire) in lane.wires.iter().enumerate() {
                        bus.set(wire, stim.get(j).expect("stim P wide"));
                    }
                }
            }
            let out = sim.data_clock(&bus, &kinds)?;
            for lane in &mut lanes {
                if t < lane.plan.len() + 1 {
                    let slice: BitVec = lane
                        .wires
                        .iter()
                        .map(|&w| out.get(w).expect("wire < n"))
                        .collect();
                    lane.observed.push(slice);
                }
            }
        }
        let trace = sim.trace();
        for lane in lanes {
            let verdict = compare(&lane.golden, &lane.observed, lane.plan.ports());
            if trace.enabled() {
                trace.record(TraceEvent::span(
                    "session",
                    lane.name.clone(),
                    step_start,
                    sim.cycles() - step_start,
                    vec![
                        ("step", step_index.into()),
                        ("cas", lane.cas_index.into()),
                        ("data_cycles", lane.plan.len().into()),
                        ("pass", verdict.is_pass().into()),
                    ],
                ));
            }
            verdicts.push((lane.name, verdict));
        }
    }
    sim.export_metrics(metrics);
    let mut per_core_cycles = Vec::new();
    for (idx, baseline) in core_baseline.iter().enumerate() {
        let name = sim.tam().label(idx)?.to_owned();
        let total = metrics.counter_sum(&crate::simulator::core_metric_prefix(&name));
        per_core_cycles.push((name, total - baseline));
    }
    let bus_cycles = metrics.counter_sum("bus.wire") - busy_baseline;
    Ok(SocTestReport {
        verdicts,
        total_cycles: sim.cycles() - start_cycles,
        steps: program.steps().len(),
        per_core_cycles,
        bus_cycles,
    })
}

/// Tests the wrapped system bus through its wrapper's EXTEST path: a bit
/// stream shifted through the wrapper boundary register must come back
/// intact after `WBR length + 1` cycles.
///
/// # Errors
///
/// Returns [`SimError::UnknownCore`] when the SoC has no wrapped bus.
pub fn run_bus_extest(sim: &mut SocSimulator) -> Result<Verdict, SimError> {
    use casbus::TamConfiguration;
    use casbus_p1500::WrapperInstruction;

    let cas_index = sim
        .tam()
        .cas_for_core("system_bus")
        .ok_or_else(|| SimError::UnknownCore("system_bus".to_owned()))?;
    let mut config = TamConfiguration::all_bypass(sim.tam().cas_count());
    config.set(cas_index, sim.tam().contiguous_test(cas_index, 0)?)?;
    let mut wrappers = vec![WrapperInstruction::Bypass; sim.tam().cas_count()];
    wrappers[cas_index] = WrapperInstruction::Extest;
    sim.configure(&config, &wrappers)?;

    // The EXTEST path depth: the wrapper boundary register.
    let depth = {
        let wrapper = sim.wrapper_mut("system_bus")?;
        wrapper.boundary().len()
    };
    let stream: BitVec = (0..32).map(|i| i % 3 == 0).collect();
    let total = stream.len() + depth + 1;
    let mut observed = BitVec::new();
    let cas_count = sim.tam().cas_count();
    for t in 0..total {
        let mut bus = BitVec::zeros(sim.bus_width());
        bus.set(0, stream.get(t).unwrap_or(false));
        let mut kinds = vec![ClockKind::Idle; cas_count];
        kinds[cas_index] = ClockKind::Shift;
        let out = sim.data_clock(&bus, &kinds)?;
        observed.push(out.get(0).expect("wire 0"));
    }
    // The stream re-emerges delayed by depth + 1 (retiming register).
    let mut mismatches = 0;
    for (i, bit) in stream.iter().enumerate() {
        if observed.get(i + depth + 1) != Some(bit) {
            mismatches += 1;
        }
    }
    Ok(if mismatches == 0 {
        Verdict::Pass
    } else {
        Verdict::Fail { mismatches }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use casbus::Tam;
    use casbus_controller::{schedule, TestProgram};
    use casbus_soc::catalog;

    fn program_for(soc: &casbus_soc::SocDescription, n: usize, packed: bool) -> TestProgram {
        let tam = Tam::new(soc, n).unwrap();
        let sched = if packed {
            schedule::packed_schedule(soc, n).unwrap()
        } else {
            schedule::serial_schedule(soc, n).unwrap()
        };
        TestProgram::from_schedule(&tam, soc, &sched).unwrap()
    }

    #[test]
    fn serial_program_all_cores_pass() {
        let soc = catalog::figure2a_scan_soc();
        let mut sim = SocSimulator::new(&soc, 4).unwrap();
        let program = program_for(&soc, 4, false);
        let report = run_program(&mut sim, &program).unwrap();
        assert!(report.all_pass(), "{report}");
        assert_eq!(report.verdicts.len(), 2);
        assert_eq!(report.steps, 2);
    }

    #[test]
    fn packed_program_concurrent_cores_pass() {
        // Wide bus: both scan cores run simultaneously on disjoint windows.
        let soc = catalog::figure2a_scan_soc();
        let mut sim = SocSimulator::new(&soc, 6).unwrap();
        let program = program_for(&soc, 6, true);
        let report = run_program(&mut sim, &program).unwrap();
        assert!(report.all_pass(), "{report}");
        assert!(report.steps <= 2);
    }

    #[test]
    fn figure1_full_program_passes() {
        let soc = catalog::figure1_soc();
        let mut sim = SocSimulator::new(&soc, 8).unwrap();
        let program = program_for(&soc, 8, true);
        let report = run_program(&mut sim, &program).unwrap();
        assert!(report.all_pass(), "{report}");
        assert_eq!(report.verdicts.len(), 6);
        assert!(report.verdict("core1_cpu").unwrap().is_pass());
    }

    #[test]
    fn bus_extest_passes() {
        let soc = catalog::figure1_soc();
        let mut sim = SocSimulator::new(&soc, 4).unwrap();
        assert!(run_bus_extest(&mut sim).unwrap().is_pass());
    }

    #[test]
    fn bus_extest_requires_wrapped_bus() {
        let soc = catalog::figure2a_scan_soc();
        let mut sim = SocSimulator::new(&soc, 4).unwrap();
        assert!(run_bus_extest(&mut sim).is_err());
    }

    #[test]
    fn report_display_and_lookup() {
        let report = SocTestReport {
            verdicts: vec![("a".into(), Verdict::Pass)],
            total_cycles: 100,
            steps: 1,
            per_core_cycles: vec![("a".into(), 80)],
            bus_cycles: 160,
        };
        let text = report.to_string();
        assert!(text.contains("ALL PASS"));
        assert!(text.contains("bus busy wire-cycles: 160"));
        assert!(text.contains("a: 80 wrapper data clocks"));
        assert!(report.verdict("a").is_some());
        assert!(report.verdict("zz").is_none());
    }

    #[test]
    fn program_report_cycle_fields_match_registry() {
        let soc = catalog::figure2a_scan_soc();
        let mut sim = SocSimulator::new(&soc, 4).unwrap();
        let program = program_for(&soc, 4, false);
        let metrics = casbus_obs::MetricsRegistry::new();
        let report = run_program_with_metrics(&mut sim, &program, &metrics).unwrap();
        assert!(report.all_pass(), "{report}");
        // Fresh simulator: registry totals are exactly this program's.
        assert_eq!(metrics.counter("sim.cycles.total"), sim.cycles());
        assert_eq!(report.per_core_cycles.len(), 2);
        let wrapper_total: u64 = report.per_core_cycles.iter().map(|(_, c)| c).sum();
        // Every data clock touches every wrapper (idle counts included).
        assert_eq!(
            wrapper_total,
            metrics.counter("sim.cycles.test") * 2,
            "{report}"
        );
        assert_eq!(report.bus_cycles, metrics.counter_sum("bus.wire"));
        assert!(report.bus_cycles > 0);
    }
}
