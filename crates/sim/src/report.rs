//! Whole-program execution: run a scheduled test program end to end.

use std::fmt;

use casbus_controller::TestProgram;
use casbus_obs::{MetricsRegistry, TraceEvent};
use casbus_soc::CoreDescription;
use casbus_tpg::{BitVec, Verdict};

use crate::session::{compare, golden_run, lane_signature, ClockKind, SessionPlan};
use crate::simulator::{SimError, SocSimulator};

/// The outcome of executing a whole test program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocTestReport {
    /// Per-core verdicts, in first-tested order.
    pub verdicts: Vec<(String, Verdict)>,
    /// Total cycles driven (configuration + data, all steps).
    pub total_cycles: u64,
    /// Steps executed.
    pub steps: usize,
    /// Data clocks each core's wrapper observed during this program, in CAS
    /// order (aggregated through the metrics registry).
    pub per_core_cycles: Vec<(String, u64)>,
    /// Busy wire-cycles across the whole test bus (each wire routed to an
    /// active TEST-mode CAS counts one per non-idle data clock).
    pub bus_cycles: u64,
    /// Per-session signature of everything the TAM returned for each tested
    /// core (a 64-bit fold over the port-major observed streams), in verdict
    /// order. Every execution engine must reproduce these bit for bit.
    pub signatures: Vec<(String, u64)>,
}

impl SocTestReport {
    /// Whether every core passed.
    pub fn all_pass(&self) -> bool {
        self.verdicts.iter().all(|(_, v)| v.is_pass())
    }

    /// Verdict of one core.
    pub fn verdict(&self, core_name: &str) -> Option<&Verdict> {
        self.verdicts
            .iter()
            .find(|(name, _)| name == core_name)
            .map(|(_, v)| v)
    }
}

impl fmt::Display for SocTestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SoC test: {} steps, {} cycles, {}",
            self.steps,
            self.total_cycles,
            if self.all_pass() {
                "ALL PASS"
            } else {
                "FAILURES"
            }
        )?;
        for (name, verdict) in &self.verdicts {
            writeln!(f, "  {name}: {verdict}")?;
        }
        if !self.per_core_cycles.is_empty() {
            writeln!(f, "  bus busy wire-cycles: {}", self.bus_cycles)?;
            for (name, cycles) in &self.per_core_cycles {
                writeln!(f, "  {name}: {cycles} wrapper data clocks")?;
            }
        }
        Ok(())
    }
}

/// One concurrently-tested core of a step: its description, deterministic
/// session plan, and scheduled wire window (from the now-active scheme).
pub(crate) struct Lane {
    pub(crate) cas_index: usize,
    pub(crate) name: String,
    pub(crate) desc: CoreDescription,
    pub(crate) plan: SessionPlan,
    pub(crate) wires: Vec<usize>,
}

/// Collects the lanes of one configured step, in `cores_under_test` order.
/// Call after [`SocSimulator::configure`] so the active schemes are loaded.
pub(crate) fn collect_lanes(
    sim: &SocSimulator,
    config: &casbus::TamConfiguration,
) -> Result<Vec<Lane>, SimError> {
    let mut lanes = Vec::new();
    for cas_index in config.cores_under_test() {
        let name = sim.tam().label(cas_index)?.to_owned();
        let Some((_, desc)) = sim.soc().core_by_name(&name) else {
            // The wrapped system bus: exercised via run_bus_extest.
            continue;
        };
        let desc = desc.clone();
        let plan = SessionPlan::for_core(&desc);
        let wires = sim.tam().chain().cases()[cas_index]
            .active_scheme()
            .expect("configured TEST scheme")
            .wires()
            .to_vec();
        lanes.push(Lane {
            cas_index,
            name,
            desc,
            plan,
            wires,
        });
    }
    Ok(lanes)
}

/// Runs one configured step's lanes through the cycle-by-cycle interpreter
/// (the reference path, exact under probes, traces, and serial wire
/// sharing). Returns `(name, verdict, signature)` per lane, in lane order.
pub(crate) fn drive_lanes_reference(
    sim: &mut SocSimulator,
    lanes: &[Lane],
    step_index: usize,
    step_start: u64,
) -> Result<Vec<(String, Verdict, u64)>, SimError> {
    let goldens: Vec<Vec<Option<BitVec>>> = lanes
        .iter()
        .map(|lane| golden_run(&lane.desc, &lane.plan))
        .collect();
    let mut observed: Vec<Vec<BitVec>> = lanes.iter().map(|_| Vec::new()).collect();
    let horizon = lanes.iter().map(|l| l.plan.len()).max().unwrap_or(0);
    let cas_count = sim.tam().cas_count();
    for t in 0..horizon {
        let mut bus = BitVec::zeros(sim.bus_width());
        let mut kinds = vec![ClockKind::Idle; cas_count];
        for lane in lanes {
            if let Some((stim, kind)) = lane.plan.cycles().get(t) {
                kinds[lane.cas_index] = *kind;
                for (j, &wire) in lane.wires.iter().enumerate() {
                    bus.set(wire, stim.get(j).expect("stim P wide"));
                }
            }
        }
        let out = sim.data_clock(&bus, &kinds)?;
        for (lane, seen) in lanes.iter().zip(observed.iter_mut()) {
            if t < lane.plan.len() + 1 {
                let slice: BitVec = lane
                    .wires
                    .iter()
                    .map(|&w| out.get(w).expect("wire < n"))
                    .collect();
                seen.push(slice);
            }
        }
    }
    let trace = sim.trace();
    let mut results = Vec::with_capacity(lanes.len());
    for ((lane, golden), seen) in lanes.iter().zip(&goldens).zip(&observed) {
        let verdict = compare(golden, seen, lane.plan.ports());
        // Port-major streams of everything observed, for the signature.
        let streams: Vec<BitVec> = (0..lane.plan.ports())
            .map(|j| seen.iter().map(|o| o.get(j).expect("P wide")).collect())
            .collect();
        let signature = lane_signature(&streams);
        if trace.enabled() {
            trace.record(TraceEvent::span(
                "session",
                lane.name.clone(),
                step_start,
                sim.cycles() - step_start,
                vec![
                    ("step", step_index.into()),
                    ("cas", lane.cas_index.into()),
                    ("data_cycles", lane.plan.len().into()),
                    ("pass", verdict.is_pass().into()),
                ],
            ));
        }
        results.push((lane.name.clone(), verdict, signature));
    }
    Ok(results)
}

/// Cycle/stat baselines captured before a program, so a reused simulator
/// reports only that program's cycles.
pub(crate) struct ReportBaseline {
    start_cycles: u64,
    core: Vec<u64>,
    busy: u64,
}

impl ReportBaseline {
    pub(crate) fn capture(sim: &SocSimulator) -> Self {
        Self {
            start_cycles: sim.cycles(),
            core: sim.core_stats().iter().map(|s| s.total()).collect(),
            busy: sim.wire_busy().iter().sum(),
        }
    }
}

/// Publishes the simulator aggregates into `metrics` (when attached) and
/// assembles the final report from the per-lane `(name, verdict,
/// signature)` results. The report's cycle fields read the simulator's own
/// counters — the very values `export_metrics` publishes — so metric-less
/// runs (the per-device fleet hot path) skip the registry entirely and stay
/// bit-identical.
pub(crate) fn finish_report(
    sim: &SocSimulator,
    metrics: Option<&MetricsRegistry>,
    baseline: &ReportBaseline,
    results: Vec<(String, Verdict, u64)>,
    steps: usize,
) -> Result<SocTestReport, SimError> {
    if let Some(metrics) = metrics {
        sim.export_metrics(metrics);
    }
    let stats = sim.core_stats();
    let mut per_core_cycles = Vec::new();
    for (idx, core_baseline) in baseline.core.iter().enumerate() {
        let name = sim.tam().label(idx)?.to_owned();
        per_core_cycles.push((name, stats[idx].total() - core_baseline));
    }
    let bus_cycles = sim.wire_busy().iter().sum::<u64>() - baseline.busy;
    let mut verdicts = Vec::with_capacity(results.len());
    let mut signatures = Vec::with_capacity(results.len());
    for (name, verdict, signature) in results {
        signatures.push((name.clone(), signature));
        verdicts.push((name, verdict));
    }
    Ok(SocTestReport {
        verdicts,
        total_cycles: sim.cycles() - baseline.start_cycles,
        steps,
        per_core_cycles,
        bus_cycles,
        signatures,
    })
}

/// Executes a test program end to end: for every step, the CONFIGURATION
/// phase loads the step's CAS and wrapper instructions, then the concurrent
/// cores' session plans run on their scheduled wire windows, and every bit
/// returned over the TAM is compared against that core's golden model.
///
/// Runs on the compiled word-level engine ([`crate::CompiledEngine`]),
/// which batches shifting through route tables and falls back to the
/// cycle-by-cycle interpreter whenever exactness demands it (probes,
/// traces, serial wire sharing). [`run_program_reference`] forces the
/// interpreter; both produce identical reports.
///
/// # Errors
///
/// Propagates configuration and width errors.
pub fn run_program(
    sim: &mut SocSimulator,
    program: &TestProgram,
) -> Result<SocTestReport, SimError> {
    crate::engine::CompiledEngine::new().run(sim, program)
}

/// [`run_program`], additionally publishing the simulator's cycle
/// aggregates into `metrics` (see [`SocSimulator::export_metrics`]); the
/// report's per-core and bus cycle fields match the published counters.
///
/// # Errors
///
/// Propagates configuration and width errors.
pub fn run_program_with_metrics(
    sim: &mut SocSimulator,
    program: &TestProgram,
    metrics: &MetricsRegistry,
) -> Result<SocTestReport, SimError> {
    crate::engine::CompiledEngine::new().run_with_metrics(sim, program, metrics)
}

/// [`run_program`] on the bit-serial cycle-by-cycle interpreter, the
/// reference semantics every optimized engine is differentially tested
/// against.
///
/// # Errors
///
/// Propagates configuration and width errors.
pub fn run_program_reference(
    sim: &mut SocSimulator,
    program: &TestProgram,
) -> Result<SocTestReport, SimError> {
    reference_run(sim, program, None)
}

/// [`run_program_reference`] with metrics publication.
///
/// # Errors
///
/// Propagates configuration and width errors.
pub fn run_program_reference_with_metrics(
    sim: &mut SocSimulator,
    program: &TestProgram,
    metrics: &MetricsRegistry,
) -> Result<SocTestReport, SimError> {
    reference_run(sim, program, Some(metrics))
}

/// Shared body of the reference runners: registry export is skipped
/// entirely when no registry is attached.
fn reference_run(
    sim: &mut SocSimulator,
    program: &TestProgram,
    metrics: Option<&MetricsRegistry>,
) -> Result<SocTestReport, SimError> {
    let baseline = ReportBaseline::capture(sim);
    let mut results: Vec<(String, Verdict, u64)> = Vec::new();
    for (step_index, step) in program.steps().iter().enumerate() {
        let step_start = sim.cycles();
        sim.configure(&step.configuration, &step.wrapper_instructions)?;
        let lanes = collect_lanes(sim, &step.configuration)?;
        results.extend(drive_lanes_reference(sim, &lanes, step_index, step_start)?);
    }
    finish_report(sim, metrics, &baseline, results, program.steps().len())
}

/// Tests the wrapped system bus through its wrapper's EXTEST path: a bit
/// stream shifted through the wrapper boundary register must come back
/// intact after `WBR length + 1` cycles.
///
/// # Errors
///
/// Returns [`SimError::UnknownCore`] when the SoC has no wrapped bus.
pub fn run_bus_extest(sim: &mut SocSimulator) -> Result<Verdict, SimError> {
    use casbus::TamConfiguration;
    use casbus_p1500::WrapperInstruction;

    let cas_index = sim
        .tam()
        .cas_for_core("system_bus")
        .ok_or_else(|| SimError::UnknownCore("system_bus".to_owned()))?;
    let mut config = TamConfiguration::all_bypass(sim.tam().cas_count());
    config.set(cas_index, sim.tam().contiguous_test(cas_index, 0)?)?;
    let mut wrappers = vec![WrapperInstruction::Bypass; sim.tam().cas_count()];
    wrappers[cas_index] = WrapperInstruction::Extest;
    sim.configure(&config, &wrappers)?;

    // The EXTEST path depth: the wrapper boundary register.
    let depth = {
        let wrapper = sim.wrapper_mut("system_bus")?;
        wrapper.boundary().len()
    };
    let stream: BitVec = (0..32).map(|i| i % 3 == 0).collect();
    let total = stream.len() + depth + 1;
    let mut observed = BitVec::new();
    let cas_count = sim.tam().cas_count();
    for t in 0..total {
        let mut bus = BitVec::zeros(sim.bus_width());
        bus.set(0, stream.get(t).unwrap_or(false));
        let mut kinds = vec![ClockKind::Idle; cas_count];
        kinds[cas_index] = ClockKind::Shift;
        let out = sim.data_clock(&bus, &kinds)?;
        observed.push(out.get(0).expect("wire 0"));
    }
    // The stream re-emerges delayed by depth + 1 (retiming register).
    let mut mismatches = 0;
    for (i, bit) in stream.iter().enumerate() {
        if observed.get(i + depth + 1) != Some(bit) {
            mismatches += 1;
        }
    }
    Ok(if mismatches == 0 {
        Verdict::Pass
    } else {
        Verdict::Fail { mismatches }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use casbus::Tam;
    use casbus_controller::{schedule, TestProgram};
    use casbus_soc::catalog;

    fn program_for(soc: &casbus_soc::SocDescription, n: usize, packed: bool) -> TestProgram {
        let tam = Tam::new(soc, n).unwrap();
        let sched = if packed {
            schedule::packed_schedule(soc, n).unwrap()
        } else {
            schedule::serial_schedule(soc, n).unwrap()
        };
        TestProgram::from_schedule(&tam, soc, &sched).unwrap()
    }

    #[test]
    fn serial_program_all_cores_pass() {
        let soc = catalog::figure2a_scan_soc();
        let mut sim = SocSimulator::new(&soc, 4).unwrap();
        let program = program_for(&soc, 4, false);
        let report = run_program(&mut sim, &program).unwrap();
        assert!(report.all_pass(), "{report}");
        assert_eq!(report.verdicts.len(), 2);
        assert_eq!(report.steps, 2);
    }

    #[test]
    fn packed_program_concurrent_cores_pass() {
        // Wide bus: both scan cores run simultaneously on disjoint windows.
        let soc = catalog::figure2a_scan_soc();
        let mut sim = SocSimulator::new(&soc, 6).unwrap();
        let program = program_for(&soc, 6, true);
        let report = run_program(&mut sim, &program).unwrap();
        assert!(report.all_pass(), "{report}");
        assert!(report.steps <= 2);
    }

    #[test]
    fn figure1_full_program_passes() {
        let soc = catalog::figure1_soc();
        let mut sim = SocSimulator::new(&soc, 8).unwrap();
        let program = program_for(&soc, 8, true);
        let report = run_program(&mut sim, &program).unwrap();
        assert!(report.all_pass(), "{report}");
        assert_eq!(report.verdicts.len(), 6);
        assert!(report.verdict("core1_cpu").unwrap().is_pass());
    }

    #[test]
    fn bus_extest_passes() {
        let soc = catalog::figure1_soc();
        let mut sim = SocSimulator::new(&soc, 4).unwrap();
        assert!(run_bus_extest(&mut sim).unwrap().is_pass());
    }

    #[test]
    fn bus_extest_requires_wrapped_bus() {
        let soc = catalog::figure2a_scan_soc();
        let mut sim = SocSimulator::new(&soc, 4).unwrap();
        assert!(run_bus_extest(&mut sim).is_err());
    }

    #[test]
    fn report_display_and_lookup() {
        let report = SocTestReport {
            verdicts: vec![("a".into(), Verdict::Pass)],
            total_cycles: 100,
            steps: 1,
            per_core_cycles: vec![("a".into(), 80)],
            bus_cycles: 160,
            signatures: vec![("a".into(), 0xdead_beef)],
        };
        let text = report.to_string();
        assert!(text.contains("ALL PASS"));
        assert!(text.contains("bus busy wire-cycles: 160"));
        assert!(text.contains("a: 80 wrapper data clocks"));
        assert!(report.verdict("a").is_some());
        assert!(report.verdict("zz").is_none());
    }

    #[test]
    fn program_report_cycle_fields_match_registry() {
        let soc = catalog::figure2a_scan_soc();
        let mut sim = SocSimulator::new(&soc, 4).unwrap();
        let program = program_for(&soc, 4, false);
        let metrics = casbus_obs::MetricsRegistry::new();
        let report = run_program_with_metrics(&mut sim, &program, &metrics).unwrap();
        assert!(report.all_pass(), "{report}");
        // Fresh simulator: registry totals are exactly this program's.
        assert_eq!(metrics.counter("sim.cycles.total"), sim.cycles());
        assert_eq!(report.per_core_cycles.len(), 2);
        let wrapper_total: u64 = report.per_core_cycles.iter().map(|(_, c)| c).sum();
        // Every data clock touches every wrapper (idle counts included).
        assert_eq!(
            wrapper_total,
            metrics.counter("sim.cycles.test") * 2,
            "{report}"
        );
        assert_eq!(report.bus_cycles, metrics.counter_sum("bus.wire"));
        assert!(report.bus_cycles > 0);
    }
}
